"""Tests for ``tools/check_concurrency.py`` (the CC001-CC003 AST lint)."""

import importlib.util
import pathlib
import sys
import textwrap

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "check_concurrency.py"

spec = importlib.util.spec_from_file_location("check_concurrency", TOOL)
cc = importlib.util.module_from_spec(spec)
sys.modules["check_concurrency"] = cc
spec.loader.exec_module(cc)


def scan(source, pool_worker=False):
    return cc.scan_source(
        "<test>", textwrap.dedent(source), pool_worker=pool_worker
    )


class TestCC001:
    def test_blocking_call_under_lock_flagged(self):
        findings = scan(
            """
            def f(self, prompt):
                with self._lock:
                    return self._inner.complete(prompt)
            """
        )
        assert [f.code for f in findings] == ["CC001"]
        assert "complete()" in findings[0].message

    def test_sleep_under_lock_flagged(self):
        findings = scan(
            """
            import time
            def f(lock):
                with lock:
                    time.sleep(1)
            """
        )
        assert [f.code for f in findings] == ["CC001"]

    def test_blocking_call_outside_lock_clean(self):
        findings = scan(
            """
            def f(self, prompt):
                with self._lock:
                    ticket = self._claim(prompt)
                return self._inner.complete(prompt)
            """
        )
        assert findings == []

    def test_non_lock_context_clean(self):
        findings = scan(
            """
            def f(path, client, prompt):
                with open(path) as handle:
                    handle.write(client.complete(prompt))
            """
        )
        assert findings == []

    def test_condition_wait_exempt(self):
        findings = scan(
            """
            def f(self):
                with self._cond:
                    self._cond.wait_for(lambda: self.ready)
                    self._cond.notify_all()
            """
        )
        assert findings == []

    def test_lock_depth_unwinds_after_with(self):
        findings = scan(
            """
            def f(self, prompt):
                with self._lock:
                    pass
                self._inner.complete(prompt)
            """
        )
        assert findings == []

    def test_nested_locks_still_flag(self):
        findings = scan(
            """
            def f(self, prompt):
                with self._lock:
                    with self._cond:
                        self._inner.complete(prompt)
            """
        )
        assert [f.code for f in findings] == ["CC001"]

    def test_allow_marker_suppresses(self):
        findings = scan(
            """
            def f(self, prompt):
                with self._lock:
                    return self._inner.complete(prompt)  # cc: allow
            """
        )
        assert findings == []


class TestCC002:
    def test_install_journal_flagged_anywhere(self):
        findings = scan(
            """
            from repro import obs
            def f(journal):
                obs.install_journal(journal)
            """
        )
        assert [f.code for f in findings] == ["CC002"]

    def test_scoped_journaling_clean(self):
        findings = scan(
            """
            from repro import obs
            def f(journal):
                with obs.journaling(journal):
                    pass
            """
        )
        assert findings == []


class TestCC003:
    def test_hub_touchpoints_flagged_in_pool_worker_code(self):
        for name in ("install_hub", "get_hub", "begin_request", "journaling"):
            findings = scan(
                f"""
                from repro.obs import telemetry
                def f(arg):
                    telemetry.{name}(arg)
                """,
                pool_worker=True,
            )
            codes = [finding.code for finding in findings]
            assert "CC003" in codes, name

    def test_same_calls_clean_outside_pool_worker_code(self):
        findings = scan(
            """
            from repro.obs import telemetry
            def f(arg):
                telemetry.get_hub(arg)
            """
        )
        assert findings == []

    def test_scoped_tracing_exempt_in_pool_worker_code(self):
        # Contextvar-scoped trace propagation is the supported route for
        # workers; only the global hub/journal touchpoints are banned.
        findings = scan(
            """
            from repro.obs import telemetry
            def f(trace, fn):
                with telemetry.tracing(trace):
                    return fn(), telemetry.current_trace()
            """,
            pool_worker=True,
        )
        assert findings == []

    def test_allow_marker_suppresses(self):
        findings = scan(
            """
            from repro import obs
            def f():
                return obs.get_hub()  # cc: allow
            """,
            pool_worker=True,
        )
        assert findings == []

    def test_perf_paths_classified_as_pool_worker(self):
        assert cc._is_pool_worker_path("src/repro/perf/pool.py")
        assert cc._is_pool_worker_path("src/repro/perf/campaign.py")
        assert not cc._is_pool_worker_path("src/repro/serve/session.py")


class TestDriver:
    def test_current_tree_is_clean(self):
        findings, scanned = cc.scan_paths(
            [str(REPO_ROOT / t) for t in cc.DEFAULT_TARGETS]
        )
        assert scanned > 0
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert cc.main([str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "def f(lock, c, p):\n    with lock:\n        c.complete(p)\n"
        )
        assert cc.main([str(dirty)]) == 1
        assert "CC001" in capsys.readouterr().out
        assert cc.main([str(tmp_path / "missing.py")]) == 2

    def test_findings_sorted_by_line(self):
        findings = scan(
            """
            from repro import obs
            def f(self, p, journal):
                with self._lock:
                    self._inner.complete(p)
                obs.install_journal(journal)
            """
        )
        assert [f.code for f in findings] == ["CC001", "CC002"]
        assert findings[0].lineno < findings[1].lineno
