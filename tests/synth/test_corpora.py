"""Tests for the synthetic §3 corpora (at reduced scale)."""

from repro.overlap import (
    AclCorpusStats,
    RouteMapCorpusStats,
    acl_overlap_report,
    route_map_overlap_report,
)
from repro.synth import generate_campus_corpus, generate_cloud_corpus
from repro.synth.campus import ArchetypeCounts


class TestArchetypeCounts:
    def test_full_scale_counts_match_paper_percentages(self):
        counts = ArchetypeCounts.for_total(11088)
        conflicting = (
            counts.shadowed_light
            + counts.shadowed_heavy
            + counts.crossing_light
            + counts.crossing_heavy
        )
        nontrivial = counts.crossing_light + counts.crossing_heavy
        assert counts.total == 11088
        assert round(100 * conflicting / 11088, 1) == 37.7
        assert round(100 * nontrivial / 11088, 1) == 18.6
        heavy_conflicting = counts.shadowed_heavy + counts.crossing_heavy
        assert round(100 * heavy_conflicting / conflicting) == 27
        assert round(100 * counts.crossing_heavy / nontrivial, 1) == 16.3

    def test_small_totals_stay_consistent(self):
        for total in (10, 100, 500):
            counts = ArchetypeCounts.for_total(total)
            assert counts.total == total
            assert min(
                counts.clean,
                counts.shadowed_light,
                counts.shadowed_heavy,
                counts.crossing_light,
                counts.crossing_heavy,
            ) >= 0


class TestCampusCorpus:
    def test_scaled_corpus_statistics(self):
        corpus = generate_campus_corpus(seed=1, total_acls=300, route_maps=20)
        assert len(corpus.acls) == 300
        stats = AclCorpusStats.collect(
            acl_overlap_report(acl) for acl in corpus.acls
        )
        # The archetype construction should land within a point of the
        # paper's percentages even at this scale.
        assert abs(stats.conflict_fraction - 37.7) < 1.5
        assert abs(stats.nontrivial_fraction - 18.6) < 1.5
        assert stats.with_many_conflicts > 0

    def test_route_map_shape(self):
        corpus = generate_campus_corpus(seed=1, total_acls=50, route_maps=20)
        assert len(corpus.route_maps) == 20
        reports = [
            route_map_overlap_report(rm, corpus.store)
            for rm in corpus.route_maps
        ]
        stats = RouteMapCorpusStats.collect(reports)
        assert stats.with_overlaps == 2
        by_name = {r.name: r for r in reports}
        triple = by_name["CAMPUS_SPECIAL_TRIPLE"]
        assert triple.overlap_count == 3
        assert triple.conflict_count == 2
        single = by_name["CAMPUS_SPECIAL_SINGLE"]
        assert single.overlap_count == 1
        assert single.conflict_count == 0

    def test_deterministic(self):
        a = generate_campus_corpus(seed=5, total_acls=40, route_maps=5)
        b = generate_campus_corpus(seed=5, total_acls=40, route_maps=5)
        assert a.acls == b.acls
        assert a.route_maps == b.route_maps

    def test_different_seeds_differ(self):
        a = generate_campus_corpus(seed=5, total_acls=40, route_maps=5)
        b = generate_campus_corpus(seed=6, total_acls=40, route_maps=5)
        assert a.acls != b.acls


class TestCampusDevices:
    def test_grouping_into_devices(self):
        from repro.config.device import parse_device, render_device

        corpus = generate_campus_corpus(seed=2, total_acls=90, route_maps=10)
        devices = corpus.devices(device_count=12)
        assert len(devices) == 12
        assert sum(len(list(d.store.acls())) for d in devices) == 90
        assert sum(len(list(d.store.route_maps())) for d in devices) == 10
        # Every ACL is attached to an interface on its device.
        for device in devices:
            attached = {i.acl_in for i in device.interfaces}
            assert {acl.name for acl in device.store.acls()} == attached

    def test_device_files_round_trip(self):
        from repro.config.device import parse_device, render_device

        corpus = generate_campus_corpus(seed=2, total_acls=30, route_maps=4)
        for device in corpus.devices(device_count=4):
            reparsed = parse_device(render_device(device))
            assert reparsed.hostname == device.hostname
            assert reparsed.interfaces == device.interfaces
            assert {a.name for a in reparsed.store.acls()} == {
                a.name for a in device.store.acls()
            }


class TestCloudCorpus:
    def test_scaled_corpus_statistics(self):
        corpus = generate_cloud_corpus(seed=1, scale=0.2)
        stats = AclCorpusStats.collect(
            acl_overlap_report(acl) for acl in corpus.acls
        )
        # Shape: some overlap-free, some heavy, a border ACL >100 pairs.
        assert stats.with_conflicts < stats.total
        assert stats.with_many_conflicts >= 2
        assert stats.max_conflict_count > 100

    def test_border_acl_has_over_100_pairs(self):
        corpus = generate_cloud_corpus(seed=1, scale=0.05)
        border = next(a for a in corpus.acls if a.name == "CLOUD_BORDER_IN")
        report = acl_overlap_report(border)
        assert report.overlap_count == 108
        assert report.nontrivial_conflict_count == 108

    def test_route_map_heavy_band(self):
        corpus = generate_cloud_corpus(seed=1, scale=0.05)
        reports = [
            route_map_overlap_report(rm, corpus.store)
            for rm in corpus.route_maps
        ]
        stats = RouteMapCorpusStats.collect(reports)
        assert stats.with_many_overlaps >= 1
        assert stats.with_overlaps > stats.with_many_overlaps

    def test_deterministic(self):
        a = generate_cloud_corpus(seed=9, scale=0.02)
        b = generate_cloud_corpus(seed=9, scale=0.02)
        assert a.acls == b.acls

    def test_devices_round_trip(self):
        from repro.config.device import parse_device, render_device

        corpus = generate_cloud_corpus(seed=3, scale=0.05)
        devices = corpus.devices(device_count=6)
        assert sum(len(list(d.store.acls())) for d in devices) == len(corpus.acls)
        assert sum(len(list(d.store.route_maps())) for d in devices) == len(
            corpus.route_maps
        )
        reparsed = parse_device(render_device(devices[0]))
        assert reparsed.hostname == devices[0].hostname
