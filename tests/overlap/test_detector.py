"""Tests for pairwise overlap detection and corpus statistics."""

from repro.config import parse_config
from repro.overlap import (
    AclCorpusStats,
    RouteMapCorpusStats,
    acl_overlap_report,
    route_map_overlap_report,
)


class TestAclOverlaps:
    def test_paper_trivial_example(self):
        # The §3.2 example: permit host pair vs deny ip any any — a
        # conflicting overlap where one match is a proper subset.
        text = """
ip access-list extended T
 10 permit tcp host 1.1.1.1 host 2.2.2.2
 20 deny ip any any
"""
        report = acl_overlap_report(parse_config(text).acl("T"))
        assert report.overlap_count == 1
        assert report.conflict_count == 1
        assert report.pairs[0].subset
        assert report.nontrivial_conflict_count == 0
        assert report.has_conflict()
        assert not report.has_nontrivial_conflict()

    def test_nontrivial_conflict(self):
        text = """
ip access-list extended T
 10 permit tcp 10.0.0.0 0.255.255.255 any
 20 deny tcp any 20.0.0.0 0.255.255.255
"""
        report = acl_overlap_report(parse_config(text).acl("T"))
        assert report.overlap_count == 1
        assert report.conflict_count == 1
        assert not report.pairs[0].subset
        assert report.nontrivial_conflict_count == 1

    def test_same_action_overlap_not_conflicting(self):
        text = """
ip access-list extended T
 10 permit tcp 10.0.0.0 0.255.255.255 any
 20 permit tcp any any
"""
        report = acl_overlap_report(parse_config(text).acl("T"))
        assert report.overlap_count == 1
        assert report.conflict_count == 0

    def test_disjoint_rules_have_no_overlap(self):
        text = """
ip access-list extended T
 10 permit tcp 10.0.0.0 0.255.255.255 any
 20 deny tcp 11.0.0.0 0.255.255.255 any
"""
        report = acl_overlap_report(parse_config(text).acl("T"))
        assert report.overlap_count == 0

    def test_port_disjoint_rules(self):
        text = """
ip access-list extended T
 10 permit tcp any any eq 80
 20 deny tcp any any eq 443
"""
        report = acl_overlap_report(parse_config(text).acl("T"))
        assert report.overlap_count == 0

    def test_pair_count_in_crossing_acl(self):
        from repro.synth.builders import PrefixPool, crossing_acl
        import random

        rng = random.Random(7)
        acl = crossing_acl("X", rng, PrefixPool(rng), permits=4, denies=3)
        report = acl_overlap_report(acl)
        assert report.overlap_count == 12
        assert report.nontrivial_conflict_count == 12


class TestWitnesses:
    def test_acl_pair_witness_matches_both_rules(self):
        text = """
ip access-list extended T
 10 permit tcp 10.0.0.0 0.255.255.255 any
 20 deny tcp any 20.0.0.0 0.255.255.255
"""
        acl = parse_config(text).acl("T")
        report = acl_overlap_report(acl, with_witnesses=True)
        witness = report.pairs[0].witness
        assert witness is not None
        assert acl.rules[0].matches(witness)
        assert acl.rules[1].matches(witness)

    def test_route_map_pair_witness_matches_both_stanzas(self):
        from repro.analysis.evaluate import stanza_matches

        text = """
ip community-list expanded C permit _65000:1_
route-map RM deny 10
 match community C
route-map RM permit 20
"""
        store = parse_config(text)
        rm = store.route_map("RM")
        report = route_map_overlap_report(rm, store, with_witnesses=True)
        witness = report.pairs[0].witness
        assert witness is not None
        assert stanza_matches(rm.stanzas[0], witness, store)
        assert stanza_matches(rm.stanzas[1], witness, store)

    def test_witnesses_off_by_default(self):
        text = """
ip access-list extended T
 10 permit tcp any any
 20 deny ip any any
"""
        report = acl_overlap_report(parse_config(text).acl("T"))
        assert report.pairs[0].witness is None


class TestRouteMapOverlaps:
    def test_overlap_ignores_actions(self):
        text = """
ip prefix-list WIDE seq 5 permit 10.0.0.0/8 le 32
ip prefix-list NARROW seq 5 permit 10.1.0.0/16 le 32
route-map RM permit 10
 match ip address prefix-list NARROW
route-map RM permit 20
 match ip address prefix-list WIDE
"""
        store = parse_config(text)
        report = route_map_overlap_report(store.route_map("RM"), store)
        assert report.overlap_count == 1
        assert report.conflict_count == 0
        assert report.pairs[0].subset

    def test_conflicting_stanzas_recorded(self):
        text = """
ip community-list expanded C permit _65000:1_
route-map RM deny 10
 match community C
route-map RM permit 20
"""
        store = parse_config(text)
        report = route_map_overlap_report(store.route_map("RM"), store)
        assert report.overlap_count == 1
        assert report.conflict_count == 1

    def test_disjoint_prefix_stanzas(self):
        text = """
ip prefix-list A seq 5 permit 10.0.0.0/16 le 24
ip prefix-list B seq 5 permit 11.0.0.0/16 le 24
route-map RM permit 10
 match ip address prefix-list A
route-map RM deny 20
 match ip address prefix-list B
"""
        store = parse_config(text)
        report = route_map_overlap_report(store.route_map("RM"), store)
        assert report.overlap_count == 0

    def test_paper_isp_out_overlaps(self):
        # In ISP_OUT, stanza 10 (as-path) overlaps 20 (prefix) and 30
        # (local-pref); 20 and 30 also overlap each other.
        text = """
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
"""
        store = parse_config(text)
        report = route_map_overlap_report(store.route_map("ISP_OUT"), store)
        assert report.overlap_count == 3


class TestCorpusStats:
    def test_acl_stats_fractions(self):
        texts = [
            # conflicting, subset only
            "ip access-list extended A\n 10 permit tcp host 1.1.1.1 any\n 20 deny ip any any",
            # conflicting, non-trivial
            "ip access-list extended B\n 10 permit tcp 10.0.0.0 0.255.255.255 any\n 20 deny tcp any 20.0.0.0 0.255.255.255",
            # clean
            "ip access-list extended C\n 10 permit tcp 10.0.0.0 0.255.255.255 any",
            "ip access-list extended D\n 10 permit udp any any",
        ]
        reports = [
            acl_overlap_report(list(parse_config(t).acls())[0]) for t in texts
        ]
        stats = AclCorpusStats.collect(reports)
        assert stats.total == 4
        assert stats.with_conflicts == 2
        assert stats.with_nontrivial_conflicts == 1
        assert stats.conflict_fraction == 50.0
        assert stats.nontrivial_fraction == 25.0
        assert "ACLs analysed" in stats.render()

    def test_route_map_stats(self):
        text = """
ip community-list expanded C permit _65000:1_
route-map X deny 10
 match community C
route-map X permit 20
route-map Y permit 10
"""
        store = parse_config(text)
        reports = [
            route_map_overlap_report(rm, store) for rm in store.route_maps()
        ]
        stats = RouteMapCorpusStats.collect(reports)
        assert stats.total == 2
        assert stats.with_overlaps == 1
        assert stats.with_many_overlaps == 0
        assert "route-maps analysed" in stats.render()

    def test_empty_corpus(self):
        stats = AclCorpusStats.collect([])
        assert stats.total == 0
        assert stats.conflict_fraction == 0.0
