"""Tests for cross-map chain overlap analysis (§3.1)."""

from repro.config import parse_config
from repro.overlap import chain_overlap_report

CHAIN_TEXT = """
ip prefix-list NETS seq 5 permit 10.0.0.0/8 le 24
ip community-list expanded TAGGED permit _65000:1_

route-map STAGE1 permit 10
 match ip address prefix-list NETS
route-map STAGE1 deny 20
 match community TAGGED

route-map STAGE2 deny 10
 match ip address prefix-list NETS
route-map STAGE2 permit 20
"""


class TestChainOverlaps:
    def test_cross_map_pairs_found(self):
        store = parse_config(CHAIN_TEXT)
        chain = [store.route_map("STAGE1"), store.route_map("STAGE2")]
        report = chain_overlap_report(chain, store)
        assert report.maps == ("STAGE1", "STAGE2")
        # STAGE1/10 (prefix) overlaps STAGE2/10 (same prefix, conflict)
        # and STAGE2/20 (match-all); STAGE1/20 (community) overlaps both
        # STAGE2 stanzas.
        assert report.overlap_count == 4
        assert report.conflict_count >= 2
        assert report.has_overlap()

    def test_intra_map_pairs_excluded(self):
        # A chain of one map reports nothing: cross-map pairs only.
        store = parse_config(CHAIN_TEXT)
        report = chain_overlap_report([store.route_map("STAGE1")], store)
        assert report.overlap_count == 0

    def test_disjoint_maps(self):
        text = """
ip prefix-list A seq 5 permit 10.0.0.0/16 le 24
ip prefix-list B seq 5 permit 99.0.0.0/16 le 24
route-map M1 permit 10
 match ip address prefix-list A
route-map M2 deny 10
 match ip address prefix-list B
"""
        store = parse_config(text)
        report = chain_overlap_report(
            [store.route_map("M1"), store.route_map("M2")], store
        )
        assert not report.has_overlap()

    def test_three_map_chain(self):
        text = """
route-map X permit 10
 match metric 1
route-map Y deny 10
 match metric 1
route-map Z permit 10
 match tag 5
"""
        store = parse_config(text)
        chain = [store.route_map(n) for n in ("X", "Y", "Z")]
        report = chain_overlap_report(chain, store)
        # X/Y overlap (conflicting); X/Z and Y/Z overlap (independent
        # fields).
        assert report.overlap_count == 3
        assert report.conflict_count == 2
        pair_maps = {(p.map_a, p.map_b) for p in report.pairs}
        assert pair_maps == {("X", "Y"), ("X", "Z"), ("Y", "Z")}
