"""Tests for the symbolic ACL checks (AC001-AC004)."""

from repro.analysis.evaluate import eval_acl
from repro.config import parse_config
from repro.lint.acl_checks import check_overlap_pairs, check_unreachable_aces

SHADOWED_RULE = """
ip access-list extended A
 10 permit tcp any any
 20 deny tcp 10.0.0.0 0.255.255.255 any
"""

REDUNDANT_RULE = """
ip access-list extended A
 10 permit tcp any any
 20 permit tcp host 1.1.1.1 any
"""

CROSSING = """
ip access-list extended A
 10 permit tcp 10.0.0.0 0.255.255.255 any
 20 deny tcp any 20.0.0.0 0.255.255.255
"""

GENERALIZATION = """
ip access-list extended A
 10 permit tcp host 1.1.1.1 host 2.2.2.2
 20 deny ip any any
"""

CLEAN = """
ip access-list extended A
 10 permit tcp any 10.0.0.0 0.0.255.255
 20 permit tcp any 20.0.0.0 0.0.255.255
"""


def _acl(text):
    return parse_config(text).acl("A")


class TestUnreachableAces:
    def test_shadowed_rule_is_error(self):
        diags = check_unreachable_aces(_acl(SHADOWED_RULE))
        assert [d.code for d in diags] == ["AC001"]
        diag = diags[0]
        assert diag.severity.value == "error"
        assert diag.location.seq == 20
        assert diag.related and diag.related[0].seq == 10
        # The witness matches the dead rule's guard but is captured by
        # the earlier opposite-action rule.
        assert diag.witness is not None
        result = eval_acl(_acl(SHADOWED_RULE), diag.witness)
        assert result.rule_seq == 10

    def test_redundant_rule_is_warning(self):
        diags = check_unreachable_aces(_acl(REDUNDANT_RULE))
        assert [d.code for d in diags] == ["AC002"]
        assert diags[0].severity.value == "warning"
        assert diags[0].location.seq == 20

    def test_without_witnesses(self):
        diags = check_unreachable_aces(
            _acl(SHADOWED_RULE), with_witnesses=False
        )
        assert len(diags) == 1 and diags[0].witness is None

    def test_reachable_rules_not_flagged(self):
        assert check_unreachable_aces(_acl(CROSSING)) == []
        assert check_unreachable_aces(_acl(GENERALIZATION)) == []
        assert check_unreachable_aces(_acl(CLEAN)) == []


class TestOverlapPairs:
    def test_crossing_pair_is_ac003(self):
        diags = check_overlap_pairs(_acl(CROSSING))
        assert [d.code for d in diags] == ["AC003"]
        diag = diags[0]
        assert diag.location.seq == 20
        assert diag.related[0].seq == 10
        assert diag.witness is not None
        # The witness lies in the overlap: the first rule captures it.
        assert eval_acl(_acl(CROSSING), diag.witness).rule_seq == 10

    def test_generalization_is_ac004(self):
        diags = check_overlap_pairs(_acl(GENERALIZATION))
        assert [d.code for d in diags] == ["AC004"]
        assert diags[0].location.seq == 20
        assert diags[0].related[0].seq == 10

    def test_fully_shadowed_pair_left_to_ac001(self):
        # Rule 20 is inside rule 10 (b_in_a): the reachability check
        # owns that finding.
        assert check_overlap_pairs(_acl(SHADOWED_RULE)) == []
        assert check_overlap_pairs(_acl(REDUNDANT_RULE)) == []

    def test_clean_acl_has_none(self):
        assert check_overlap_pairs(_acl(CLEAN)) == []
