"""Tests for the ``clarify lint`` subcommand."""

import json

import pytest

from repro.cli import main

SHADOWED = """
ip prefix-list WIDE seq 10 permit 10.0.0.0/8 le 32
ip prefix-list NARROW seq 10 permit 10.1.0.0/16 le 32
route-map RM permit 10
 match ip address prefix-list WIDE
route-map RM deny 20
 match ip address prefix-list NARROW
"""

CLEAN = """
ip prefix-list A seq 10 permit 10.0.0.0/16 le 24
route-map RM permit 10
 match ip address prefix-list A
"""

BROKEN = """
route-map RM permit 10
 match ip address prefix-list NOPE
"""


@pytest.fixture
def shadowed_file(tmp_path):
    path = tmp_path / "shadowed.ios"
    path.write_text(SHADOWED)
    return str(path)


class TestLintFile:
    def test_findings_printed(self, shadowed_file, capsys):
        code = main(["lint", "--config", shadowed_file])
        out = capsys.readouterr().out
        assert code == 0  # warnings don't hit the default error threshold
        assert "warning RM001 route-map RM stanza 20" in out
        assert "witness:" in out

    def test_fail_on_warning(self, shadowed_file):
        assert main(["lint", "--config", shadowed_file, "--fail-on", "warning"]) == 1
        assert main(["lint", "--config", shadowed_file, "--fail-on", "none"]) == 0

    def test_clean_config(self, tmp_path, capsys):
        path = tmp_path / "clean.ios"
        path.write_text(CLEAN)
        assert main(["lint", "--config", str(path), "--fail-on", "info"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_error_threshold_on_dangling_reference(self, tmp_path, capsys):
        path = tmp_path / "broken.ios"
        path.write_text(BROKEN)
        assert main(["lint", "--config", str(path)]) == 1
        assert "RF001" in capsys.readouterr().out

    def test_json_format(self, shadowed_file, capsys):
        code = main(["lint", "--config", shadowed_file, "--format", "json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["counts_by_code"] == {"RM001": 1}

    def test_select_and_no_witness(self, shadowed_file, capsys):
        code = main(
            [
                "lint",
                "--config",
                shadowed_file,
                "--select",
                "RM003",
                "--no-witness",
            ]
        )
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_default_lints_walkthrough(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "ISP_OUT" in out


class TestLintCorpus:
    def test_campus_cross_check(self, capsys):
        code = main(
            ["lint", "--corpus", "campus", "--scale", "0.005", "--seed", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "archetype cross-check: MATCH" in out

    def test_cloud_lint(self, capsys):
        code = main(
            [
                "lint",
                "--corpus",
                "cloud",
                "--scale",
                "0.02",
                "--no-witness",
                "--fail-on",
                "error",
            ]
        )
        assert code == 0
        assert "finding" in capsys.readouterr().out
