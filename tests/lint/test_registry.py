"""Tests for the check registry and the lint entry points."""

from repro import obs
from repro.config import parse_config
from repro.config.device import DeviceConfig, Interface
from repro.lint import default_registry, lint_device, lint_store
from repro.lint.registry import counts_by_object

MIXED = """
ip prefix-list WIDE seq 10 permit 10.0.0.0/8 le 32
ip prefix-list NARROW seq 10 permit 10.1.0.0/16 le 32
ip prefix-list ORPHAN seq 10 permit 99.0.0.0/8 le 24
route-map RM permit 10
 match ip address prefix-list WIDE
route-map RM deny 20
 match ip address prefix-list NARROW
ip access-list extended FW
 10 permit tcp host 1.1.1.1 host 2.2.2.2
 20 deny ip any any
"""

DANGLING = """
route-map BAD permit 10
 match ip address prefix-list NOPE
"""


class TestDefaultRegistry:
    def test_all_codes(self):
        assert default_registry().all_codes() == [
            "AC001",
            "AC002",
            "AC003",
            "AC004",
            "NM001",
            "RF001",
            "RF002",
            "RM001",
            "RM002",
            "RM003",
        ]

    def test_scopes(self):
        registry = default_registry()
        assert len(registry.checks("store")) == 3
        assert len(registry.checks("route-map")) == 3
        assert len(registry.checks("acl")) == 2


class TestLintStore:
    def test_mixed_config(self):
        report = lint_store(parse_config(MIXED))
        counts = report.counts_by_code()
        assert counts["RM001"] == 1  # NARROW stanza shadowed by WIDE
        assert counts["RF002"] == 1  # ORPHAN unused
        assert counts["AC004"] == 1  # catch-all deny vs specific permit

    def test_sorted_deterministically_code_primary(self):
        report = lint_store(parse_config(MIXED))
        codes = [d.code for d in report]
        # The stable total order (code, device, position) keeps reports
        # byte-identical across runs — the CI baseline contract.
        assert codes == sorted(codes)

    def test_select_filters_codes(self):
        report = lint_store(parse_config(MIXED), select=["rm001"])
        assert set(report.counts_by_code()) == {"RM001"}

    def test_dangling_refs_skip_symbolic_checks(self):
        # The symbolic engine cannot translate BAD's guard; only RF001
        # fires (no crash, no RM00x).
        report = lint_store(parse_config(DANGLING))
        assert set(report.counts_by_code()) == {"RF001"}

    def test_clean_config_empty(self):
        text = """
ip prefix-list A seq 10 permit 10.0.0.0/16 le 24
route-map RM permit 10
 match ip address prefix-list A
"""
        assert len(lint_store(parse_config(text))) == 0

    def test_counter_emitted(self):
        with obs.recording() as recorder:
            report = lint_store(parse_config(MIXED))
        assert recorder.counter("lint.diagnostics") == len(report)

    def test_counts_by_object(self):
        report = lint_store(parse_config(MIXED))
        counts = counts_by_object(report)
        assert counts["route-map RM"] == 1
        assert counts["acl FW"] == 1


class TestLintDevice:
    def test_device_checks_included(self):
        store = parse_config(MIXED)
        device = DeviceConfig(
            hostname="r1",
            interfaces=[Interface(name="Gi0/0", acl_in="MISSING")],
            store=store,
        )
        report = lint_device(device)
        assert report.counts_by_code()["RF001"] == 1
        # FW is unattached at device level.
        assert ("acl", "FW") in {
            (d.location.kind, d.location.name)
            for d in report.with_code("RF002")
        }
