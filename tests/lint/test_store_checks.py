"""Tests for the reference-graph checks (RF001/RF002/NM001)."""

from repro.config import parse_config
from repro.config.device import DeviceConfig, Interface
from repro.lint.store_checks import (
    check_dangling_references,
    check_naming_families,
    check_unused_definitions,
    referenced_lists,
)

DANGLING = """
ip prefix-list P seq 10 permit 10.0.0.0/8 le 24
route-map RM permit 10
 match ip address prefix-list P
 match community MISSING_CL
route-map RM permit 20
 match as-path MISSING_AL
"""

UNUSED = """
ip prefix-list USED seq 10 permit 10.0.0.0/8 le 24
ip prefix-list UNUSED seq 10 permit 20.0.0.0/8 le 24
ip community-list standard LONELY permit 65000:1
route-map RM permit 10
 match ip address prefix-list USED
"""

FAMILY = """
ip prefix-list D0 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 10 permit 20.0.0.0/8 le 24
ip community-list standard CL7 permit 65000:1
route-map RM permit 10
 match ip address prefix-list D0
 match ip address prefix-list D1
 match community CL7
"""


class TestReferencedLists:
    def test_collects_all_kinds(self):
        store = parse_config(DANGLING)
        refs = referenced_lists(store.route_map("RM"))
        assert refs["prefix-list"] == {"P"}
        assert refs["community-list"] == {"MISSING_CL"}
        assert refs["as-path-list"] == {"MISSING_AL"}


class TestDanglingReferences:
    def test_undefined_lists_flagged(self):
        store = parse_config(DANGLING)
        diags = check_dangling_references(store)
        assert sorted(d.message for d in diags) == sorted(
            [
                "stanza 10 references undefined community-list 'MISSING_CL'",
                "stanza 20 references undefined as-path-list 'MISSING_AL'",
            ]
        )
        assert all(d.code == "RF001" for d in diags)
        assert all(d.severity.value == "error" for d in diags)

    def test_defined_references_clean(self):
        store = parse_config(UNUSED)
        assert check_dangling_references(store) == []

    def test_device_interface_acl_reference(self):
        store = parse_config(UNUSED)
        device = DeviceConfig(
            hostname="r1",
            interfaces=[Interface(name="Gi0/0", acl_in="NO_SUCH_ACL")],
            store=store,
        )
        diags = check_dangling_references(store, device=device)
        assert [d.code for d in diags] == ["RF001"]
        assert diags[0].location.kind == "interface"
        assert "NO_SUCH_ACL" in diags[0].message


class TestUnusedDefinitions:
    def test_unused_lists_flagged(self):
        store = parse_config(UNUSED)
        diags = check_unused_definitions(store)
        assert sorted((d.location.kind, d.location.name) for d in diags) == [
            ("community-list", "LONELY"),
            ("prefix-list", "UNUSED"),
        ]
        assert all(d.code == "RF002" for d in diags)

    def test_unattached_acl_needs_device(self):
        text = UNUSED + "\nip access-list extended FW\n 10 permit ip any any\n"
        store = parse_config(text)
        # Store-level: ACL attachment is unknowable, so no finding.
        acl_diags = [
            d
            for d in check_unused_definitions(store)
            if d.location.kind == "acl"
        ]
        assert acl_diags == []
        device = DeviceConfig(hostname="r1", interfaces=[], store=store)
        diags = check_unused_definitions(store, device=device)
        assert ("acl", "FW") in {
            (d.location.kind, d.location.name) for d in diags
        }

    def test_attached_acl_clean(self):
        text = UNUSED + "\nip access-list extended FW\n 10 permit ip any any\n"
        store = parse_config(text)
        device = DeviceConfig(
            hostname="r1",
            interfaces=[Interface(name="Gi0/0", acl_in="FW")],
            store=store,
        )
        diags = check_unused_definitions(store, device=device)
        assert ("acl", "FW") not in {
            (d.location.kind, d.location.name) for d in diags
        }


class TestNamingFamilies:
    def test_singleton_outside_dominant_family_flagged(self):
        store = parse_config(FAMILY)
        diags = check_naming_families(store)
        assert [(d.code, d.location.name) for d in diags] == [("NM001", "CL7")]
        assert "D<n>" in diags[0].message

    def test_no_numbered_names_clean(self):
        store = parse_config(UNUSED)
        assert check_naming_families(store) == []

    def test_tied_families_clean(self):
        text = """
ip prefix-list D0 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 10 permit 20.0.0.0/8 le 24
ip prefix-list E0 seq 10 permit 30.0.0.0/8 le 24
ip prefix-list E1 seq 10 permit 40.0.0.0/8 le 24
"""
        assert check_naming_families(parse_config(text)) == []

    def test_descriptive_names_never_flagged(self):
        text = """
ip prefix-list D0 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 10 permit 20.0.0.0/8 le 24
ip prefix-list CORP_NETS seq 10 permit 30.0.0.0/8 le 24
"""
        assert check_naming_families(parse_config(text)) == []
