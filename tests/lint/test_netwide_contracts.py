"""Tests for reachability contracts: parsing and RIB-backed checking."""

import pytest

from repro.lint.netwide import (
    Contract,
    build_topology,
    check_contracts,
    load_contracts,
    parse_contracts,
    seed_devices,
)
from repro.netaddr import Ipv4Prefix


class TestParsing:
    def test_both_arrows_and_comments(self):
        contracts = parse_contracts(
            """
            # header comment
            EDGE ~> 10.9.0.0/16 must-reach
            CORE -> 10.8.0.0/16 must-not-reach  # trailing comment
            """
        )
        assert contracts == (
            Contract("EDGE", Ipv4Prefix.parse("10.9.0.0/16"), True),
            Contract("CORE", Ipv4Prefix.parse("10.8.0.0/16"), False),
        )

    def test_render_roundtrips(self):
        contract = Contract("EDGE", Ipv4Prefix.parse("10.9.0.0/16"), False)
        assert parse_contracts(contract.render()) == (contract,)

    @pytest.mark.parametrize(
        "line",
        [
            "EDGE 10.9.0.0/16 must-reach",  # no arrow
            "EDGE ~> 10.9.0.0/16",  # missing expectation
            "EDGE ~> 10.9.0.0/16 should-reach",  # unknown expectation
            "~> 10.9.0.0/16 must-reach",  # empty source
        ],
    )
    def test_malformed_lines_raise_with_line_number(self, line):
        with pytest.raises(ValueError, match="contract line 1"):
            parse_contracts(line)

    def test_bad_prefix_raises(self):
        with pytest.raises(ValueError, match="contract line 2"):
            parse_contracts("# ok\nEDGE ~> not-a-prefix must-reach")

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "c.contracts"
        path.write_text("EDGE ~> 10.9.0.0/16 must-reach\n")
        assert len(load_contracts(str(path))) == 1


def _contract(text):
    return parse_contracts(text)


class TestChecking:
    def test_satisfied_contracts_are_silent(self):
        topo = build_topology(seed_devices())
        violations = check_contracts(
            topo,
            _contract(
                "EDGE ~> 10.9.0.0/16 must-reach\n"
                "EDGE ~> 10.66.0.0/16 must-not-reach"
            ),
        )
        assert violations == ()

    def test_must_reach_violation_is_nw007(self):
        topo = build_topology(seed_devices())
        (diag,) = check_contracts(
            topo, _contract("EDGE ~> 10.66.0.0/16 must-reach")
        )
        assert diag.code == "NW007"
        assert "installs no route" in diag.message
        assert diag.location.device == "EDGE"

    def test_must_not_reach_violation_is_nw008_with_witness(self):
        topo = build_topology(seed_devices())
        (diag,) = check_contracts(
            topo, _contract("EDGE ~> 10.9.0.0/16 must-not-reach")
        )
        assert diag.code == "NW008"
        assert "learned from AGG" in diag.message
        assert str(diag.witness.network) == "10.9.0.0/16"

    def test_unknown_device_is_nw007(self):
        topo = build_topology(seed_devices())
        (diag,) = check_contracts(
            topo, _contract("GHOST ~> 10.9.0.0/16 must-reach")
        )
        assert diag.code == "NW007"
        assert "unknown device" in diag.message

    def test_route_shadow_breaks_the_default_contract(self):
        topo = build_topology(seed_devices(inject_route_shadow=True))
        violations = check_contracts(
            topo, _contract("EDGE ~> 10.9.0.0/16 must-reach")
        )
        assert [d.code for d in violations] == ["NW007"]
