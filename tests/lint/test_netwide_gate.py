"""Tests for the network-wide insertion gate and its session wiring."""

from repro import obs
from repro.config import parse_config
from repro.config.store import ConfigStore
from repro.core import ClarifySession
from repro.lint.netwide import NetwideGate, default_contracts, embed_on_edge

# A session ACL that, grafted as EDGE's egress filter, blocks the
# production prefix CORE_IN expects to see — and breaks the
# must-reach-flavoured traffic the default EDGE_OUT permitted.
BLOCKING_ACL = """
ip access-list extended SESS_OUT
 10 deny ip any 10.9.0.0 0.0.255.255
 20 permit ip any any
"""

# A harmless session ACL: same egress behaviour as permitting all.
OPEN_ACL = """
ip access-list extended SESS_OUT
 10 permit ip any any
"""

RM_BEFORE = """
ip prefix-list WIDE seq 10 permit 10.0.0.0/8 le 32
route-map RM permit 10
 match ip address prefix-list WIDE
"""


class TestNetwideGate:
    def test_no_change_no_warnings(self):
        gate = NetwideGate(embed_on_edge)
        store = parse_config(OPEN_ACL)
        assert gate.check(store, store) == ()

    def test_introduced_conflict_surfaces(self):
        gate = NetwideGate(embed_on_edge)
        warnings = gate.check(ConfigStore(), parse_config(BLOCKING_ACL))
        assert warnings
        assert all(w.startswith("netwide: ") for w in warnings)
        assert any("NW" in w for w in warnings)

    def test_contract_regression_surfaces(self):
        gate = NetwideGate(embed_on_edge, contracts=default_contracts())
        warnings = gate.check(ConfigStore(), parse_config(BLOCKING_ACL))
        # The egress deny doesn't change the RIBs, but the path conflict
        # the graft introduces must fire.
        assert any("NW001" in w or "NW002" in w for w in warnings)

    def test_pre_existing_findings_not_re_reported(self):
        gate = NetwideGate(embed_on_edge)
        store = parse_config(BLOCKING_ACL)
        # The "before" store already carries the defect: nothing new.
        assert gate.check(store, store) == ()

    def test_counters_and_span(self):
        gate = NetwideGate(embed_on_edge)
        with obs.recording() as recorder:
            warnings = gate.check(ConfigStore(), parse_config(BLOCKING_ACL))
        assert recorder.counter("lint.netwide_gate_checks") == 1
        assert recorder.counter("lint.netwide_gate_warnings") == len(warnings)
        assert recorder.find("lint.netwide_gate")

    def test_incremental_across_checks(self):
        gate = NetwideGate(embed_on_edge)
        store = parse_config(OPEN_ACL)
        gate.check(store, store)
        with obs.recording() as recorder:
            gate.check(store, store)
        # The analyzer persisted: the repeat check is fully cached.
        assert recorder.counter("netwide.paths.analyzed") == 0
        assert recorder.counter("netwide.paths.cached") > 0


class TestSessionWiring:
    def test_session_without_gate_unchanged(self):
        session = ClarifySession(store=parse_config(RM_BEFORE))
        assert session.netwide_gate is None

    def test_gate_warnings_reach_update_report(self):
        session = ClarifySession(
            store=parse_config(RM_BEFORE),
            netwide_gate=NetwideGate(embed_on_edge),
        )
        with obs.recording() as recorder:
            report = session.request(
                "Add a stanza to route-map RM that denies routes with "
                "community 65001:999",
                "RM",
            )
        assert isinstance(report.gate_warnings, tuple)
        assert recorder.counter("lint.netwide_gate_checks") == 1
