"""Analyzer-level tests: incrementality, pooled identity, determinism."""

from repro import obs
from repro.config.acl import Acl, AclRule, ProtocolSpec
from repro.lint.netwide import (
    NetwideAnalyzer,
    analyze_network,
    default_contracts,
    seed_devices,
)
from repro.lint.reporters import render_json
from repro.netaddr import Ipv4Wildcard


def _counters(analyzer, devices, **kwargs):
    with obs.recording() as recorder:
        analyzer.analyze(devices, **kwargs)
    return {
        name: recorder.counter(name)
        for name in (
            "netwide.paths",
            "netwide.paths.cached",
            "netwide.paths.analyzed",
        )
    }


class TestIncremental:
    def test_repeat_analysis_is_fully_cached(self):
        analyzer = NetwideAnalyzer()
        devices = seed_devices()
        first = _counters(analyzer, devices)
        assert first["netwide.paths"] == 8
        assert first["netwide.paths.analyzed"] == 8
        assert first["netwide.paths.cached"] == 0
        again = _counters(analyzer, devices)
        assert again["netwide.paths.cached"] == 8
        assert again["netwide.paths.analyzed"] == 0

    def test_single_device_edit_reanalyzes_only_affected_paths(self):
        analyzer = NetwideAnalyzer()
        devices = seed_devices()
        _counters(analyzer, devices)
        core = next(d for d in devices if d.hostname == "CORE")
        # Any content change moves CORE's fingerprint — even an ACL
        # nothing references.
        core.store.add_acl(
            Acl(
                "TOUCHED",
                (AclRule(10, "permit", ProtocolSpec("ip"),
                         Ipv4Wildcard.any(), Ipv4Wildcard.any()),),
            )
        )
        after = _counters(analyzer, devices)
        # The two LAB-branch paths (EDGE<->LAB via AGG) avoid CORE and
        # stay cached; the six paths crossing CORE re-run.
        assert after["netwide.paths.cached"] == 2
        assert after["netwide.paths.analyzed"] == 6

    def test_cache_is_bounded(self):
        analyzer = NetwideAnalyzer(max_cached_paths=3)
        analyzer.analyze(seed_devices())
        assert len(analyzer._path_cache) == 3


class TestPooledIdentity:
    def test_pooled_report_identical_to_serial(self):
        devices = seed_devices(
            inject_shadow=True, inject_drift=True, inject_route_shadow=True
        )
        contracts = default_contracts()
        serial = analyze_network(devices, contracts=contracts)
        pooled = analyze_network(
            devices, contracts=contracts, workers=2, chunks=2
        )
        assert render_json(serial) == render_json(pooled)


class TestDeterminism:
    def test_fresh_runs_render_byte_identical(self):
        kwargs = dict(
            inject_shadow=True, inject_drift=True, inject_route_shadow=True
        )
        first = render_json(
            analyze_network(seed_devices(**kwargs), default_contracts())
        )
        second = render_json(
            analyze_network(seed_devices(**kwargs), default_contracts())
        )
        assert first == second

    def test_report_sorted_code_primary(self):
        report = analyze_network(
            seed_devices(
                inject_shadow=True,
                inject_drift=True,
                inject_route_shadow=True,
            ),
            default_contracts(),
        )
        codes = [d.code for d in report]
        assert codes == sorted(codes)
        assert len(codes) >= 3  # NW001 + NW003 + NW005 at least


class TestDegradedModes:
    def test_no_topology_runs_drift_only(self):
        from repro.config.device import DeviceConfig

        devices = [DeviceConfig(hostname="A"), DeviceConfig(hostname="B")]
        with obs.recording() as recorder:
            report = analyze_network(devices)
        assert len(report) == 0
        assert recorder.counter("netwide.paths") == 0

    def test_contracts_without_topology_are_unverifiable_errors(self):
        from repro.config.device import DeviceConfig

        report = analyze_network(
            [DeviceConfig(hostname="A")], contracts=default_contracts()
        )
        assert [d.code for d in report] == ["NW007"] * 3
        assert all("cannot check" in d.message for d in report)
