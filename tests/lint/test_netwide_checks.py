"""Unit tests for each NW check: one injected defect per code."""

from repro.config.acl import Acl, AclRule, PortSpec, ProtocolSpec
from repro.config.device import DeviceConfig
from repro.config.lists import PrefixList, PrefixListEntry
from repro.config.matches import MatchMetric, MatchPrefixList
from repro.config.routemap import RouteMap, RouteMapStanza
from repro.lint.diagnostics import Severity
from repro.lint.netwide import analyze_network, seed_devices
from repro.netaddr import Ipv4Prefix, Ipv4Wildcard


def _dst(prefix):
    return Ipv4Wildcard.from_prefix(Ipv4Prefix.parse(prefix))


def _by_code(report, code):
    return [d for d in report if d.code == code]


class TestCleanBaseline:
    def test_default_topology_is_finding_free(self):
        assert len(analyze_network(seed_devices())) == 0


class TestNW001FullShadow:
    def test_injected_shadow_found(self):
        report = analyze_network(seed_devices(inject_shadow=True))
        findings = _by_code(report, "NW001")
        assert findings
        diag = findings[0]
        assert diag.severity is Severity.ERROR
        assert diag.location.device == "CORE"
        assert diag.location.name == "CORE_IN"
        assert "every packet" in diag.message
        assert "EDGE_OUT" in diag.message

    def test_witness_destination_inside_prefix(self):
        report = analyze_network(seed_devices(inject_shadow=True))
        diag = _by_code(report, "NW001")[0]
        prefix = Ipv4Prefix.parse("10.9.0.0/16")
        assert prefix.contains_address(diag.witness.dst_ip)

    def test_related_points_at_upstream_permit(self):
        report = analyze_network(seed_devices(inject_shadow=True))
        diag = _by_code(report, "NW001")[0]
        assert any(
            loc.device == "EDGE" and loc.name == "EDGE_OUT"
            for loc in diag.related
        )


class TestNW002PartialShadow:
    def test_partial_cancellation_warns(self):
        devices = seed_devices()
        core = next(d for d in devices if d.hostname == "CORE")
        # Deny only HTTPS toward 10.9/16: cancels one of EDGE_OUT's two
        # explicit permits, but SSH still gets through — a partial kill.
        core.store.add_acl(
            Acl(
                "CORE_IN",
                (
                    AclRule(10, "deny", ProtocolSpec("tcp"),
                            Ipv4Wildcard.any(), _dst("10.9.0.0/16"),
                            dst_ports=PortSpec("eq", (443,))),
                    AclRule(20, "permit", ProtocolSpec("ip"),
                            Ipv4Wildcard.any(), Ipv4Wildcard.any()),
                ),
            ),
            replace=True,
        )
        report = analyze_network(devices)
        findings = _by_code(report, "NW002")
        assert findings
        diag = findings[0]
        assert diag.severity is Severity.WARNING
        assert "part of the traffic" in diag.message
        assert diag.witness.dst_port == 443
        assert not _by_code(report, "NW001")


class TestNW003RouteChainCancellation:
    def test_injected_route_shadow_found(self):
        report = analyze_network(seed_devices(inject_route_shadow=True))
        findings = _by_code(report, "NW003")
        assert findings
        diag = findings[0]
        assert diag.severity is Severity.WARNING
        assert diag.location.device == "EDGE"
        assert diag.location.name == "FROM_AGG"
        assert "FROM_CORE" in diag.message
        assert str(diag.witness.network) == "10.9.0.0/16"

    def test_propagation_path_in_message(self):
        report = analyze_network(seed_devices(inject_route_shadow=True))
        diag = _by_code(report, "NW003")[0]
        assert "DC -> CORE -> AGG -> EDGE" in diag.message


class TestNW004PartialRouteCancellation:
    def test_attribute_scoped_deny_is_partial(self):
        devices = seed_devices()
        edge = next(d for d in devices if d.hostname == "EDGE")
        # FROM_AGG drops routes carrying metric 777 — a slice of the
        # route space, not the whole prefix: partial cancellation.
        edge.store.add_route_map(
            RouteMap(
                "FROM_AGG",
                (
                    RouteMapStanza(10, "deny", matches=(MatchMetric(777),)),
                    RouteMapStanza(
                        20, "permit", matches=(MatchPrefixList(("ANY",)),)
                    ),
                ),
            ),
            replace=True,
        )
        report = analyze_network(devices)
        findings = _by_code(report, "NW004")
        assert findings
        diag = findings[0]
        assert diag.severity is Severity.INFO
        assert diag.witness.metric == 777
        assert not _by_code(report, "NW003")


class TestNW005AclDrift:
    def test_injected_drift_found(self):
        report = analyze_network(seed_devices(inject_drift=True))
        findings = _by_code(report, "NW005")
        assert findings
        diag = findings[0]
        assert diag.severity is Severity.WARNING
        assert diag.location.name == "MGMT_GUARD"
        assert "drifted" in diag.message

    def test_same_semantics_no_drift(self):
        # EDGE_OUT exists only on EDGE; CORE_IN only on CORE — no
        # same-named pair, hence no NW005 on the clean topology.
        report = analyze_network(seed_devices())
        assert not _by_code(report, "NW005")


class TestNW006RouteMapDrift:
    def test_divergent_same_named_route_maps(self):
        a = DeviceConfig(hostname="A")
        b = DeviceConfig(hostname="B")
        for device, action in ((a, "permit"), (b, "deny")):
            device.store.add_prefix_list(
                PrefixList(
                    "P10",
                    (PrefixListEntry(
                        10, "permit", Ipv4Prefix.parse("10.0.0.0/8"), le=32
                    ),),
                )
            )
            device.store.add_route_map(
                RouteMap(
                    "POLICY",
                    (RouteMapStanza(
                        10, action, matches=(MatchPrefixList(("P10",)),)
                    ),),
                )
            )
        report = analyze_network([a, b])
        findings = _by_code(report, "NW006")
        assert findings
        diag = findings[0]
        assert diag.location.name == "POLICY"
        assert diag.witness is not None

    def test_identical_route_maps_clean(self):
        a = DeviceConfig(hostname="A")
        b = DeviceConfig(hostname="B")
        for device in (a, b):
            device.store.add_route_map(
                RouteMap("POLICY", (RouteMapStanza(10, "permit"),))
            )
        assert not _by_code(analyze_network([a, b]), "NW006")
