"""Tests for the insertion gate and its workflow wiring."""

from repro import obs
from repro.config import parse_config
from repro.core import ClarifySession
from repro.lint.gate import gate_insertion

BEFORE = """
ip prefix-list WIDE seq 10 permit 10.0.0.0/8 le 32
route-map RM permit 10
 match ip address prefix-list WIDE
"""

# The same map after inserting a NARROW deny at the bottom (index 1):
# NARROW is inside WIDE, so the new stanza is fully shadowed.
AFTER_SHADOWED = """
ip prefix-list WIDE seq 10 permit 10.0.0.0/8 le 32
ip prefix-list NARROW seq 10 permit 10.1.0.0/16 le 32
route-map RM permit 10
 match ip address prefix-list WIDE
route-map RM deny 20
 match ip address prefix-list NARROW
"""

# The same insertion at the top (index 0): reachable, no new findings
# beyond the order-sensitivity note.
AFTER_TOP = """
ip prefix-list WIDE seq 10 permit 10.0.0.0/8 le 32
ip prefix-list NARROW seq 10 permit 10.1.0.0/16 le 32
route-map RM deny 10
 match ip address prefix-list NARROW
route-map RM permit 20
 match ip address prefix-list WIDE
"""


class TestGateInsertion:
    def test_shadowed_landing_warns(self):
        gate = gate_insertion(
            parse_config(BEFORE),
            parse_config(AFTER_SHADOWED),
            "route-map",
            "RM",
            position=1,
        )
        assert gate.inserted_shadowed
        assert any("fully shadowed" in w for w in gate.warnings)
        assert gate.new_counts.get("RM001") == 1
        assert gate  # truthiness == has warnings

    def test_reachable_landing_counts_only_new_diagnostics(self):
        gate = gate_insertion(
            parse_config(BEFORE),
            parse_config(AFTER_TOP),
            "route-map",
            "RM",
            position=0,
        )
        assert not gate.inserted_shadowed
        # The insertion creates one RM002 (order-sensitive pair).
        assert gate.new_counts == {"RM002": 1}
        assert all("fully shadowed" not in w for w in gate.warnings)

    def test_identical_stores_clean(self):
        store = parse_config(BEFORE)
        gate = gate_insertion(store, store, "route-map", "RM", position=0)
        assert gate.warnings == ()
        assert not gate

    def test_unknown_target_is_not_shadowed(self):
        gate = gate_insertion(
            parse_config(BEFORE),
            parse_config(BEFORE),
            "route-map",
            "NOPE",
            position=0,
        )
        assert not gate.inserted_shadowed

    def test_counter_emitted(self):
        with obs.recording() as recorder:
            gate = gate_insertion(
                parse_config(BEFORE),
                parse_config(AFTER_SHADOWED),
                "route-map",
                "RM",
                position=1,
            )
        assert recorder.counter("lint.gate_warnings") == len(gate.warnings)


ACL_BEFORE = """
ip access-list extended FW
 10 deny ip any any
"""

ACL_AFTER = """
ip access-list extended FW
 10 deny ip any any
 20 permit tcp host 1.1.1.1 any
"""


class TestGateAcl:
    def test_rule_below_catch_all_is_shadowed(self):
        gate = gate_insertion(
            parse_config(ACL_BEFORE),
            parse_config(ACL_AFTER),
            "acl",
            "FW",
            position=1,
        )
        assert gate.inserted_shadowed
        assert any("rule" in w for w in gate.warnings)


class TestWorkflowWiring:
    def test_update_report_carries_gate_warnings(self):
        session = ClarifySession(store=parse_config(BEFORE))
        report = session.request(
            "Add a stanza to route-map RM that denies routes with "
            "community 65001:999",
            "RM",
        )
        assert isinstance(report.gate_warnings, tuple)

    def test_gate_can_be_disabled(self):
        session = ClarifySession(store=parse_config(BEFORE), lint_gate=False)
        report = session.request(
            "Add a stanza to route-map RM that denies routes with "
            "community 65001:999",
            "RM",
        )
        assert report.gate_warnings == ()

    def test_gate_counter_reaches_recorder(self):
        with obs.recording() as recorder:
            session = ClarifySession(store=parse_config(BEFORE))
            session.request(
                "Add a stanza to route-map RM that denies routes with "
                "community 65001:999",
                "RM",
            )
        # The gate ran: both the before- and after-store lint passes
        # registered the counter, and the gate span exists.
        assert "lint.diagnostics" in recorder.counters
        assert recorder.find("lint.gate")
