"""Tests for the ``clarify netlint`` subcommand."""

import json

from repro.cli import main


class TestSeededDemo:
    def test_clean_topology_exits_zero(self, capsys):
        assert main(["netlint"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_injected_shadow_fails_with_witness(self, capsys):
        assert main(["netlint", "--inject-shadow"]) == 1
        out = capsys.readouterr().out
        assert "error NW001" in out
        assert "CORE_IN" in out
        assert "witness:" in out

    def test_injected_drift_warns_but_passes_error_threshold(self, capsys):
        assert main(["netlint", "--inject-drift"]) == 0
        assert "NW005" in capsys.readouterr().out
        assert main(["netlint", "--inject-drift", "--fail-on", "warning"]) == 1

    def test_route_shadow_with_contracts(self, capsys):
        code = main(
            ["netlint", "--inject-route-shadow", "--contracts", "default"]
        )
        out = capsys.readouterr().out
        assert code == 1  # the broken must-reach contract is an error
        assert "NW003" in out
        assert "NW007" in out

    def test_json_format(self, capsys):
        assert main(["netlint", "--inject-shadow", "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["counts_by_code"].get("NW001", 0) >= 1

    def test_workers_match_serial(self, capsys):
        assert (
            main(["netlint", "--inject-shadow", "--format", "json"]) == 1
        )
        serial = capsys.readouterr().out
        assert (
            main(
                [
                    "netlint",
                    "--inject-shadow",
                    "--format",
                    "json",
                    "--workers",
                    "2",
                    "--chunks",
                    "2",
                ]
            )
            == 1
        )
        assert capsys.readouterr().out == serial


class TestBaselineFlow:
    def test_output_then_baseline_roundtrip(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert (
            main(["netlint", "--format", "json", "--output", str(report)])
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "netlint",
                    "--format",
                    "json",
                    "--baseline",
                    str(report),
                ]
            )
            == 0
        )

    def test_baseline_mismatch_exits_three(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert (
            main(["netlint", "--format", "json", "--output", str(report)])
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "netlint",
                "--inject-shadow",
                "--format",
                "json",
                "--baseline",
                str(report),
                "--fail-on",
                "none",
            ]
        )
        assert code == 3
        assert "BASELINE MISMATCH" in capsys.readouterr().err

    def test_shipped_baseline_matches(self, capsys):
        code = main(
            [
                "netlint",
                "--contracts",
                "examples/netwide.contracts",
                "--format",
                "json",
                "--title",
                "seeded demo topology (5 devices)",
                "--baseline",
                "benchmarks/BASELINE_netlint.json",
            ]
        )
        assert code == 0


class TestDeviceFilesAndCorpora:
    def test_device_files(self, tmp_path, capsys):
        from repro.config.device import render_device
        from repro.lint.netwide import seed_devices

        paths = []
        for device in seed_devices(inject_shadow=True):
            path = tmp_path / f"{device.hostname}.ios"
            path.write_text(render_device(device))
            paths.append(str(path))
        assert main(["netlint", "--devices", *paths]) == 1
        assert "NW001" in capsys.readouterr().out

    def test_corpus_drift_only(self, capsys):
        code = main(
            [
                "netlint",
                "--corpus",
                "cloud",
                "--scale",
                "0.05",
                "--seed",
                "2025",
            ]
        )
        assert code == 0
