"""Tests for corpus mode: archetype recovery from diagnostics alone."""

import random

import pytest

from repro.lint.corpus import (
    CLEAN,
    CROSSING_HEAVY,
    CROSSING_LIGHT,
    SHADOWED_HEAVY,
    SHADOWED_LIGHT,
    classify_acl,
    lint_campus_corpus,
)
from repro.synth.builders import (
    PrefixPool,
    clean_acl,
    crossing_acl,
    shadowed_acl,
)
from repro.synth.campus import generate_campus_corpus


def _pool(seed=0):
    rng = random.Random(seed)
    return rng, PrefixPool(rng)


class TestClassifyAcl:
    def test_clean(self):
        rng, pool = _pool()
        result = classify_acl(clean_acl("A", rng, pool, rules=6))
        assert result.archetype == CLEAN
        assert result.conflict_pairs == 0
        assert not result.diagnostics

    def test_shadowed_light(self):
        rng, pool = _pool()
        result = classify_acl(shadowed_acl("A", rng, pool, permits=5))
        assert result.archetype == SHADOWED_LIGHT
        assert result.conflict_pairs == 5
        assert set(result.diagnostics.counts_by_code()) == {"AC004"}

    def test_shadowed_heavy(self):
        rng, pool = _pool()
        result = classify_acl(shadowed_acl("A", rng, pool, permits=25))
        assert result.archetype == SHADOWED_HEAVY
        assert result.conflict_pairs == 25

    def test_crossing_light(self):
        rng, pool = _pool()
        result = classify_acl(crossing_acl("A", rng, pool, permits=3, denies=4))
        assert result.archetype == CROSSING_LIGHT
        assert result.conflict_pairs == 12
        assert set(result.diagnostics.counts_by_code()) == {"AC003"}

    def test_crossing_heavy(self):
        rng, pool = _pool()
        result = classify_acl(crossing_acl("A", rng, pool, permits=7, denies=4))
        assert result.archetype == CROSSING_HEAVY
        assert result.conflict_pairs == 28

    def test_witnesses_on_request(self):
        rng, pool = _pool()
        result = classify_acl(
            shadowed_acl("A", rng, pool, permits=2), with_witnesses=True
        )
        assert all(d.witness is not None for d in result.diagnostics)


@pytest.mark.parametrize("seed", [7, 1421])
class TestCampusCrossCheck:
    def test_archetypes_recovered_exactly(self, seed):
        corpus = generate_campus_corpus(seed=seed, total_acls=80, route_maps=8)
        result = lint_campus_corpus(corpus)
        assert result.total_acls == 80
        assert result.matches_expected
        assert result.observed.get("mixed", 0) == 0

    def test_special_route_maps_flagged(self, seed):
        corpus = generate_campus_corpus(seed=seed, total_acls=20, route_maps=8)
        result = lint_campus_corpus(corpus)
        # §3.2: one route-map with three overlapping pairs, two of them
        # conflicting — exactly two RM002 findings, both on the triple map.
        report = result.route_map_report
        assert report.counts_by_code() == {"RM002": 2}
        assert {d.location.name for d in report} == {"CAMPUS_SPECIAL_TRIPLE"}

    def test_render_mentions_cross_check(self, seed):
        corpus = generate_campus_corpus(seed=seed, total_acls=30, route_maps=4)
        text = lint_campus_corpus(corpus).render()
        assert "archetype cross-check: MATCH" in text
