"""Tests for the text and JSON reporters."""

import json

from repro.config import parse_config
from repro.lint import lint_store, render_json, render_text

CONFIG = """
ip prefix-list WIDE seq 10 permit 10.0.0.0/8 le 32
ip prefix-list NARROW seq 10 permit 10.1.0.0/16 le 32
route-map RM permit 10
 match ip address prefix-list WIDE
route-map RM deny 20
 match ip address prefix-list NARROW
"""


def _report():
    return lint_store(parse_config(CONFIG))


class TestRenderText:
    def test_structure(self):
        text = render_text(_report(), title="example")
        lines = text.splitlines()
        assert lines[0] == "example"
        assert any(line.startswith("warning RM001") for line in lines)
        assert any(line.strip().startswith("fix:") for line in lines)
        assert any(line.strip() == "witness:" for line in lines)
        assert lines[-1].startswith("1 finding(s):")

    def test_suppression_flags(self):
        text = render_text(
            _report(), show_witnesses=False, show_suggestions=False
        )
        assert "witness:" not in text
        assert "fix:" not in text

    def test_empty_report(self):
        from repro.lint import LintReport

        assert "no findings" in render_text(LintReport(), title="t")


class TestRenderJson:
    def test_round_trips_as_json(self):
        document = json.loads(render_json(_report(), title="example"))
        assert document["title"] == "example"
        assert document["max_severity"] == "warning"
        assert document["counts_by_code"] == {"RM001": 1}
        (diag,) = document["diagnostics"]
        assert diag["code"] == "RM001"
        assert diag["location"] == {
            "kind": "route-map",
            "name": "RM",
            "seq": 20,
        }
        assert "witness" in diag
        assert diag["related"][0]["seq"] == 10

    def test_empty_report(self):
        document = json.loads(render_json(lint_store(parse_config(""))))
        assert document["diagnostics"] == []
        assert document["max_severity"] is None
