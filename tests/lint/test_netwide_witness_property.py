"""Witness soundness: every path finding's witness reproduces concretely.

The property every ``NW001``/``NW002`` diagnostic must hold: its witness
packet traverses the reported forwarding path, is permitted by every
filter before the reported hop, and is denied exactly there
(:func:`repro.lint.netwide.witness_flips_at`).  Checked on the seeded
defect topologies and on a family of randomized CORE_IN variants.
"""

import random

from repro.config.acl import Acl, AclRule, PortSpec, ProtocolSpec
from repro.lint.netwide import (
    analyze_path,
    build_topology,
    extract_paths,
    replay_packet,
    seed_devices,
    witness_flips_at,
)
from repro.netaddr import Ipv4Prefix, Ipv4Wildcard

CONFLICT_PATH_CODES = ("NW001", "NW002")


def _assert_witnesses_sound(devices):
    """Every path finding over ``devices`` carries a flipping witness."""
    topo = build_topology(devices)
    devices_map = {d.hostname: d for d in devices}
    checked = 0
    for path in extract_paths(topo):
        for diag in analyze_path(path, devices_map):
            assert diag.code in CONFLICT_PATH_CODES
            # The reported hop is the filter the diagnostic points at.
            index = next(
                i
                for i, pf in enumerate(path.filters)
                if pf.device == diag.location.device
                and pf.acl == diag.location.name
            )
            assert witness_flips_at(path, devices_map, diag.witness, index)
            actions = replay_packet(path, devices_map, diag.witness)
            assert all(a == "permit" for a in actions[:index])
            assert actions[index] == "deny"
            # The witness is traffic this path actually carries.
            assert path.prefix.contains_address(diag.witness.dst_ip)
            checked += 1
    return checked


class TestSeededWitnesses:
    def test_injected_shadow_witnesses_flip(self):
        assert _assert_witnesses_sound(seed_devices(inject_shadow=True)) > 0

    def test_clean_topology_emits_nothing(self):
        assert _assert_witnesses_sound(seed_devices()) == 0


class TestRandomizedWitnesses:
    def test_random_core_filters_never_emit_unsound_witnesses(self):
        """Randomized CORE_IN variants: soundness holds whether or not a
        variant produces findings (partial, full, or no cancellation)."""
        rng = random.Random(20250808)
        protocols = ("ip", "tcp", "udp")
        prefixes = ("10.9.0.0/16", "10.9.128.0/17", "10.8.0.0/16",
                    "10.0.0.0/8", "10.20.0.0/16")
        found = 0
        for _ in range(12):
            rules = []
            seq = 10
            for _ in range(rng.randint(1, 4)):
                protocol = rng.choice(protocols)
                ports = (
                    PortSpec("eq", (rng.choice((22, 53, 443, 8080)),))
                    if protocol != "ip" and rng.random() < 0.5
                    else PortSpec()
                )
                rules.append(
                    AclRule(
                        seq,
                        rng.choice(("permit", "deny")),
                        ProtocolSpec(protocol),
                        Ipv4Wildcard.any(),
                        Ipv4Wildcard.from_prefix(
                            Ipv4Prefix.parse(rng.choice(prefixes))
                        ),
                        dst_ports=ports,
                    )
                )
                seq += 10
            rules.append(
                AclRule(seq, "permit", ProtocolSpec("ip"),
                        Ipv4Wildcard.any(), Ipv4Wildcard.any())
            )
            devices = seed_devices()
            core = next(d for d in devices if d.hostname == "CORE")
            core.store.add_acl(Acl("CORE_IN", tuple(rules)), replace=True)
            found += _assert_witnesses_sound(devices)
        # The family is rigged to produce at least some cancellations.
        assert found > 0
