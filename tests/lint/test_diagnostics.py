"""Tests for the diagnostic model: severities, locations, reports."""

import pytest

from repro.lint import Diagnostic, LintReport, Severity, SourceLocation


def _diag(code, severity, kind="route-map", name="RM", seq=10):
    return Diagnostic(
        code=code,
        severity=severity,
        location=SourceLocation(kind, name, seq),
        message=f"{code} message",
    )


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.INFO.rank
        assert Severity.ERROR.at_least(Severity.WARNING)
        assert Severity.WARNING.at_least(Severity.WARNING)
        assert not Severity.INFO.at_least(Severity.WARNING)

    def test_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse("WARNING") is Severity.WARNING
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestSourceLocation:
    def test_render_route_map_stanza(self):
        loc = SourceLocation("route-map", "ISP_OUT", 30)
        assert loc.render() == "route-map ISP_OUT stanza 30"

    def test_render_acl_rule(self):
        assert SourceLocation("acl", "FW", 20).render() == "acl FW rule 20"

    def test_render_without_seq(self):
        assert SourceLocation("prefix-list", "D0").render() == "prefix-list D0"


class TestDiagnostic:
    def test_render_one_line(self):
        diag = _diag("RM001", Severity.WARNING)
        assert diag.render() == (
            "warning RM001 route-map RM stanza 10: RM001 message"
        )

    def test_witness_text_without_witness(self):
        assert _diag("RM001", Severity.INFO).witness_text() is None

    def test_witness_text_uses_render(self):
        class FakeWitness:
            def render(self, indent=""):
                return indent + "w"

        diag = Diagnostic(
            code="AC001",
            severity=Severity.ERROR,
            location=SourceLocation("acl", "A", 10),
            message="m",
            witness=FakeWitness(),
        )
        assert diag.witness_text(indent="  ") == "  w"


class TestLintReport:
    def _report(self):
        return LintReport.of(
            [
                _diag("RM002", Severity.INFO, seq=30),
                _diag("AC001", Severity.ERROR, kind="acl", name="A", seq=20),
                _diag("RM001", Severity.WARNING, seq=20),
                _diag("RM001", Severity.WARNING, seq=40),
            ]
        )

    def test_len_bool_iter(self):
        report = self._report()
        assert len(report) == 4
        assert report
        assert not LintReport()
        assert [d.code for d in report] == ["RM002", "AC001", "RM001", "RM001"]

    def test_with_code(self):
        assert len(self._report().with_code("RM001")) == 2
        assert len(self._report().with_code("RM001", "AC001")) == 3

    def test_for_object(self):
        assert len(self._report().for_object("acl", "A")) == 1
        assert len(self._report().for_object("route-map", "RM")) == 3

    def test_at_least(self):
        report = self._report()
        assert len(report.at_least(Severity.WARNING)) == 3
        assert len(report.at_least(Severity.ERROR)) == 1

    def test_counts(self):
        report = self._report()
        assert report.counts_by_code() == {"RM002": 1, "AC001": 1, "RM001": 2}
        assert report.counts_by_severity() == {
            "info": 1,
            "error": 1,
            "warning": 2,
        }

    def test_max_severity(self):
        assert self._report().max_severity() is Severity.ERROR
        assert LintReport().max_severity() is None

    def test_fails_threshold(self):
        report = self._report()
        assert report.fails(Severity.ERROR)
        assert report.fails(Severity.INFO)
        assert not report.fails(None)
        info_only = report.with_code("RM002")
        assert not info_only.fails(Severity.WARNING)

    def test_sorted_severity_descending(self):
        codes = [d.code for d in self._report().sorted()]
        assert codes == ["AC001", "RM001", "RM001", "RM002"]

    def test_extend(self):
        merged = self._report().extend(LintReport.of([_diag("X", Severity.INFO)]))
        assert len(merged) == 5
