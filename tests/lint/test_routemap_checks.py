"""Tests for the symbolic route-map checks (RM001/RM002/RM003)."""

from repro.analysis.evaluate import eval_route_map
from repro.config import parse_config
from repro.lint.routemap_checks import (
    check_conflicting_overlaps,
    check_no_terminal_permit,
    check_shadowed_stanzas,
)

SHADOWED = """
ip prefix-list WIDE seq 10 permit 10.0.0.0/8 le 32
ip prefix-list NARROW seq 10 permit 10.1.0.0/16 le 32
route-map RM permit 10
 match ip address prefix-list WIDE
route-map RM deny 20
 match ip address prefix-list NARROW
route-map RM permit 30
"""

CONFLICTING = """
ip prefix-list A seq 10 permit 10.0.0.0/8 le 24
ip community-list standard C permit 65000:1
route-map RM deny 10
 match community C
route-map RM permit 20
 match ip address prefix-list A
"""

CLEAN = """
ip prefix-list A seq 10 permit 10.0.0.0/16 le 24
ip prefix-list B seq 10 permit 20.0.0.0/16 le 24
route-map RM permit 10
 match ip address prefix-list A
route-map RM deny 20
 match ip address prefix-list B
"""

ALL_DENY = """
ip prefix-list A seq 10 permit 10.0.0.0/16 le 24
route-map RM deny 10
 match ip address prefix-list A
"""


class TestShadowedStanzas:
    def test_fully_shadowed_stanza_flagged_with_witness(self):
        store = parse_config(SHADOWED)
        diags = check_shadowed_stanzas(store.route_map("RM"), store)
        assert [d.code for d in diags] == ["RM001"]
        diag = diags[0]
        assert diag.location.seq == 20
        assert diag.severity.value == "warning"
        # The witness is a route the stanza would match, captured earlier.
        assert diag.witness is not None
        result = eval_route_map(store.route_map("RM"), store, diag.witness)
        assert result.stanza_seq == 10
        assert diag.related and diag.related[0].seq == 10

    def test_without_witnesses(self):
        store = parse_config(SHADOWED)
        diags = check_shadowed_stanzas(
            store.route_map("RM"), store, with_witnesses=False
        )
        assert len(diags) == 1 and diags[0].witness is None

    def test_clean_map_has_none(self):
        store = parse_config(CLEAN)
        assert check_shadowed_stanzas(store.route_map("RM"), store) == []


class TestConflictingOverlaps:
    def test_conflicting_partial_overlap_flagged(self):
        store = parse_config(CONFLICTING)
        diags = check_conflicting_overlaps(store.route_map("RM"), store)
        assert [d.code for d in diags] == ["RM002"]
        diag = diags[0]
        assert diag.location.seq == 20
        assert diag.related[0].seq == 10
        assert diag.witness is not None

    def test_subset_pairs_left_to_rm001(self):
        store = parse_config(SHADOWED)
        # Stanza 20 is inside stanza 10 (conflicting subset): RM001
        # territory, not RM002 — only the (20, 30) pair remains.
        diags = check_conflicting_overlaps(store.route_map("RM"), store)
        assert [(d.location.seq, d.related[0].seq) for d in diags] == [(30, 20)]

    def test_clean_map_has_none(self):
        store = parse_config(CLEAN)
        assert check_conflicting_overlaps(store.route_map("RM"), store) == []


class TestNoTerminalPermit:
    def test_all_deny_flagged(self):
        store = parse_config(ALL_DENY)
        diags = check_no_terminal_permit(store.route_map("RM"), store)
        assert [d.code for d in diags] == ["RM003"]
        assert diags[0].location.seq is None

    def test_map_with_permit_clean(self):
        store = parse_config(CLEAN)
        assert check_no_terminal_permit(store.route_map("RM"), store) == []

    def test_empty_map_not_flagged(self):
        from repro.config.routemap import RouteMap
        from repro.config.store import ConfigStore

        store = ConfigStore()
        assert check_no_terminal_permit(RouteMap("E", ()), store) == []
