"""Tests for the netwide network model: topology, paths, filters."""

import pytest

from repro.config.device import DeviceConfig
from repro.lint.netwide import (
    TopologyError,
    build_topology,
    extract_paths,
    path_filters,
    seed_devices,
    topology_capable,
)


class TestTopology:
    def test_seed_topology_assembles(self):
        topo = build_topology(seed_devices())
        assert set(topo.devices) == {"EDGE", "AGG", "CORE", "DC", "LAB"}
        # Every device installed a RIB (the simulation converged).
        assert set(topo.ribs) == set(topo.devices)

    def test_facing_interfaces_cover_every_session(self):
        topo = build_topology(seed_devices())
        # Both directions of all four links.
        assert len(topo.facing) == 8
        iface = topo.facing[("EDGE", "AGG")]
        assert iface.name == "Link0"
        assert iface.acl_out == "EDGE_OUT"

    def test_duplicate_hostname_rejected(self):
        devices = seed_devices()
        with pytest.raises(TopologyError):
            build_topology(devices + [devices[0]])

    def test_topology_capable(self):
        assert topology_capable(seed_devices())
        assert not topology_capable([])
        # A device without BGP makes the set unsimulatable.
        assert not topology_capable(
            seed_devices() + [DeviceConfig(hostname="LONER")]
        )


class TestExtractPaths:
    def test_paths_follow_learned_from_chains(self):
        topo = build_topology(seed_devices())
        paths = extract_paths(topo)
        rendered = {p.render() for p in paths}
        assert "EDGE -> AGG -> CORE -> DC dst 10.9.0.0/16" in rendered

    def test_only_maximal_chains_kept(self):
        topo = build_topology(seed_devices())
        paths = extract_paths(topo)
        for path in paths:
            suffixes = {
                other.devices
                for other in paths
                if other.prefix == path.prefix and other is not path
            }
            # No other path toward the same prefix ends with this chain.
            assert not any(
                s != path.devices and s[-len(path.devices):] == path.devices
                for s in suffixes
            )

    def test_deterministic_order(self):
        topo = build_topology(seed_devices())
        assert extract_paths(topo) == extract_paths(topo)

    def test_filters_in_traversal_order(self):
        topo = build_topology(seed_devices())
        filters = path_filters(topo, ("EDGE", "AGG", "CORE", "DC"))
        assert [(f.device, f.direction, f.acl) for f in filters] == [
            ("EDGE", "out", "EDGE_OUT"),
            ("CORE", "in", "CORE_IN"),
        ]

    def test_branch_paths_present(self):
        topo = build_topology(seed_devices())
        rendered = {p.render() for p in extract_paths(topo)}
        assert "EDGE -> AGG -> LAB dst 10.20.0.0/16" in rendered
