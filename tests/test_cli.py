"""Tests for the ``clarify`` CLI."""

import io
import json

import pytest

from repro.cli import StdioOracle, main
from repro.core.errors import ClarifyError

ISP_OUT = """
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
"""

PAPER_INTENT = (
    "Write a route-map stanza that permits routes containing the prefix "
    "100.0.0.0/16 with mask length less than or equal to 23 and tagged "
    "with the community 300:3. Their MED value should be set to 55."
)


@pytest.fixture
def config_file(tmp_path):
    path = tmp_path / "config.ios"
    path.write_text(ISP_OUT)
    return str(path)


class TestAdd:
    def test_add_with_scripted_answers(self, config_file, capsys):
        code = main(
            [
                "add",
                PAPER_INTENT,
                "--config",
                config_file,
                "--target",
                "ISP_OUT",
                "--answers",
                "1,1",
                "--top-bottom",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "route-map ISP_OUT" in out
        assert "set metric 55" in out

    def test_add_into_fresh_map_needs_no_answers(self, capsys):
        # Inserting into a brand-new route-map asks no questions, so the
        # interactive oracle is never consulted.
        code = main(
            [
                "add",
                "Write a route-map stanza that denies routes originating from AS 32.",
                "--target",
                "NEW",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "route-map NEW deny 10" in out
        assert "ip as-path access-list" in out

    def test_add_with_diff_output(self, config_file, capsys):
        code = main(
            [
                "add",
                PAPER_INTENT,
                "--config",
                config_file,
                "--target",
                "ISP_OUT",
                "--answers",
                "1,1",
                "--top-bottom",
                "--diff",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("--- before")
        assert "+ set metric 55" in out

    def test_unparseable_intent_reports_error(self, config_file, capsys):
        code = main(
            [
                "add",
                "Write a route-map stanza that permits routes.",
                "--config",
                config_file,
                "--target",
                "ISP_OUT",
                "--answers",
                "1",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestOverlaps:
    def test_overlap_report(self, config_file, capsys):
        code = main(["overlaps", "--config", config_file, "--verbose"])
        assert code == 0
        out = capsys.readouterr().out
        assert "route-maps analysed" in out
        assert "overlap" in out


class TestCompare:
    def test_equivalent(self, config_file, capsys):
        code = main(
            [
                "compare",
                "--config-a",
                config_file,
                "--config-b",
                config_file,
                "--name",
                "ISP_OUT",
            ]
        )
        assert code == 0
        assert "equivalent" in capsys.readouterr().out

    def test_different(self, tmp_path, config_file, capsys):
        other = tmp_path / "other.ios"
        other.write_text(ISP_OUT.replace("deny 10", "permit 10"))
        code = main(
            [
                "compare",
                "--config-a",
                config_file,
                "--config-b",
                str(other),
                "--name",
                "ISP_OUT",
            ]
        )
        assert code == 2
        out = capsys.readouterr().out
        assert "difference 1" in out
        assert "OPTION 1:" in out


class TestEval:
    def test_eval_prints_figure4(self, capsys):
        code = main(["eval"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "M       4             9           5" in out
        assert out.count("PASS") == 5

    def test_eval_from_configs(self, capsys):
        code = main(["eval", "--from-configs"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reassembled from rendered device files" in out
        assert out.count("PASS") == 5


class TestCorpus:
    def test_campus_small(self, capsys):
        code = main(["corpus", "campus", "--scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ACLs analysed" in out
        assert "route-maps analysed" in out

    def test_cloud_small(self, capsys):
        code = main(["corpus", "cloud", "--scale", "0.02"])
        assert code == 0
        assert "ACLs analysed" in capsys.readouterr().out


class TestListAdd:
    def test_prefix_list_exception(self, tmp_path, capsys):
        path = tmp_path / "lists.ios"
        path.write_text(
            "ip prefix-list EDGE seq 10 deny 10.1.0.0/16 le 32\n"
            "ip prefix-list EDGE seq 20 permit 10.0.0.0/8 le 24\n"
        )
        code = main(
            [
                "list-add",
                "--config",
                str(path),
                "--target",
                "EDGE",
                "--action",
                "permit",
                "--prefix",
                "10.1.2.0/24",
                "--le",
                "32",
                "--answers",
                "1,1",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "permit 10.1.2.0/24 le 32" in captured.out
        assert "inserted at position" in captured.err

    def test_bad_prefix_reports_error(self, capsys):
        code = main(
            [
                "list-add",
                "--target",
                "EDGE",
                "--action",
                "permit",
                "--prefix",
                "10.1.2.1/24",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestTrace:
    def test_default_walkthrough_cross_checks(self, capsys):
        code = main(["trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert "== span tree ==" in out
        assert "clarify.request" in out
        assert "== metrics ==" in out
        assert "llm.calls" in out
        assert "== cross-check vs UpdateReport ==" in out
        assert "MISMATCH" not in out
        assert out.count("OK") == 3

    def test_trace_leaves_no_global_recorder(self):
        from repro import obs

        main(["trace"])
        assert not obs.enabled()

    def test_json_output_is_a_snapshot(self, capsys):
        from repro import obs

        code = main(["trace", "--json", "--top-bottom"])
        assert code == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["version"] == obs.SNAPSHOT_VERSION
        assert snap["counters"]["llm.calls"] == 3
        assert snap["spans"][0]["name"] == "clarify.request"

    def test_custom_config_and_intent(self, config_file, capsys):
        code = main(
            [
                "trace",
                PAPER_INTENT,
                "--config",
                config_file,
                "--target",
                "ISP_OUT",
                "--answers",
                "1,1,1",
            ]
        )
        assert code == 0
        assert "synthesis.synthesize" in capsys.readouterr().out

    def test_exhausted_answers_report_error(self, capsys):
        # The walkthrough needs two answers in FULL mode; give it one.
        code = main(["trace", "--answers", "1"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestJournalAndReplay:
    def test_trace_writes_replayable_journal(self, tmp_path, capsys):
        journal = tmp_path / "walkthrough.jsonl"
        assert main(["trace", "--journal", str(journal)]) == 0
        capsys.readouterr()
        code = main(["replay", str(journal)])
        assert code == 0
        out = capsys.readouterr().out
        assert "journal verified" in out
        assert "0 live calls" in out

    def test_add_writes_replayable_journal(
        self, tmp_path, config_file, capsys
    ):
        journal = tmp_path / "add.jsonl"
        code = main(
            [
                "add",
                PAPER_INTENT,
                "--config",
                config_file,
                "--target",
                "ISP_OUT",
                "--answers",
                "1,1",
                "--top-bottom",
                "--journal",
                str(journal),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["replay", str(journal)]) == 0

    def test_eval_writes_replayable_journal(self, tmp_path, capsys):
        journal = tmp_path / "eval.jsonl"
        assert main(["eval", "--journal", str(journal)]) == 0
        capsys.readouterr()
        code = main(["replay", str(journal), "--json"])
        assert code == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["ok"] is True
        assert verdict["cycles"] > 1  # multi-session, with reuses

    def test_replay_detects_tampering(self, tmp_path, capsys):
        journal = tmp_path / "walkthrough.jsonl"
        assert main(["trace", "--journal", str(journal)]) == 0
        lines = journal.read_text().splitlines()
        for idx, line in enumerate(lines):
            event = json.loads(line)
            if event["type"] == "cycle.end":
                event["data"]["config_sha256"] = "0" * 64
                lines[idx] = json.dumps(event, sort_keys=True)
        journal.write_text("\n".join(lines) + "\n")
        capsys.readouterr()
        code = main(["replay", str(journal), "--divergence"])
        assert code == 2
        err = capsys.readouterr().err
        assert "DIVERGED" in err
        assert "divergence at event" in err

    def test_replay_missing_file_errors(self, tmp_path, capsys):
        code = main(["replay", str(tmp_path / "nope.jsonl")])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestBenchCheck:
    BASE = {
        "counters": {"llm.calls": 45},
        "histograms": {},
        "spans": [],
        "version": 2,
    }

    def _write(self, path, data):
        path.write_text(json.dumps(data))
        return str(path)

    def test_identical_snapshots_pass(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", self.BASE)
        code = main(["bench-check", "--baseline", base, "--current", base])
        assert code == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_counter_regression_exits_nonzero(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", self.BASE)
        regressed = dict(self.BASE, counters={"llm.calls": 90})
        cur = self._write(tmp_path / "cur.json", regressed)
        code = main(["bench-check", "--baseline", base, "--current", cur])
        assert code == 2
        out = capsys.readouterr().out
        assert "regression" in out
        assert "45 -> 90" in out

    def test_json_format(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", self.BASE)
        code = main(
            ["bench-check", "--baseline", base, "--current", base,
             "--format", "json"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True

    def test_missing_snapshot_errors(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", self.BASE)
        code = main(
            ["bench-check", "--baseline", base,
             "--current", str(tmp_path / "missing.json")]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestStdioOracle:
    def test_reads_choice(self):
        from repro.analysis.compare import BehaviorDifference
        from repro.analysis.evaluate import RouteMapResult
        from repro.core.oracle import DisambiguationQuestion
        from repro.route import BgpRoute

        diff = BehaviorDifference(
            BgpRoute.build("10.0.0.0/8"),
            RouteMapResult("permit", BgpRoute.build("10.0.0.0/8"), 10),
            RouteMapResult("deny", None, 20),
        )
        question = DisambiguationQuestion(diff)
        out = io.StringIO()
        oracle = StdioOracle(out=out, inp=io.StringIO("x\n2\n"))
        assert oracle.choose(question) == 2
        assert "OPTION 1:" in out.getvalue()

    def test_eof_raises(self):
        from repro.analysis.compare import BehaviorDifference
        from repro.analysis.evaluate import RouteMapResult
        from repro.core.oracle import DisambiguationQuestion
        from repro.route import BgpRoute

        diff = BehaviorDifference(
            BgpRoute.build("10.0.0.0/8"),
            RouteMapResult("permit", BgpRoute.build("10.0.0.0/8"), 10),
            RouteMapResult("deny", None, 20),
        )
        oracle = StdioOracle(out=io.StringIO(), inp=io.StringIO(""))
        with pytest.raises(ClarifyError):
            oracle.choose(DisambiguationQuestion(diff))
