"""Docs lint: every ``repro.*`` path and ``clarify`` subcommand the
documentation mentions must actually exist.

Checks five things across ``README.md`` and ``docs/*.md``:

1. import lines inside ```python blocks resolve (module imports, and
   every imported name is an attribute or submodule);
2. inline-code dotted references like ``repro.config.device.parse_device``
   resolve to a module or a module attribute;
3. ``clarify <subcommand>`` invocations inside ```bash blocks (and in
   inline code) name real subcommands of the CLI parser;
4. every ``--flag`` those bash invocations pass (``\\`` line
   continuations folded) is accepted by that subcommand's parser;
5. every ``CLARIFY_*`` / ``ANTHROPIC_*`` / ``REPRO_*`` environment
   variable the docs mention is actually read somewhere under ``src/``.

Plus per-doc coverage floors (SERVING.md, LLM_BACKENDS.md) and a
README index-completeness check over ``docs/*.md``.
"""

import argparse
import importlib
import pathlib
import re

import pytest

from repro.cli import build_parser

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md"))
)

FENCE_RE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)
IMPORT_FROM_RE = re.compile(r"^\s*from\s+(repro[\w.]*)\s+import\s+(.+)$")
IMPORT_RE = re.compile(r"^\s*import\s+(repro[\w.]*)\s*$")
DOTTED_REF_RE = re.compile(r"`(repro(?:\.\w+)+)(?:\(\))?`")
CLARIFY_RE = re.compile(r"^\s*clarify\s+([\w-]+)")
FLAG_RE = re.compile(r"(--[\w-]+)")
ENV_VAR_RE = re.compile(r"\b((?:CLARIFY|ANTHROPIC|REPRO)_[A-Z0-9_]+)\b")


def fenced_blocks(text, language):
    return [
        body for lang, body in FENCE_RE.findall(text) if lang == language
    ]


def resolves(dotted):
    """True if ``dotted`` is an importable module or a module attribute."""
    try:
        importlib.import_module(dotted)
        return True
    except ImportError:
        pass
    if "." not in dotted:
        return False
    parent, _, attr = dotted.rpartition(".")
    try:
        module = importlib.import_module(parent)
    except ImportError:
        return False
    return hasattr(module, attr)


def subparsers():
    parser = build_parser()
    action = next(
        a
        for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    return dict(action.choices)


def subcommands():
    return set(subparsers())


def subcommand_flags(name):
    """Every ``--flag`` the named subcommand accepts."""
    return {
        option
        for action in subparsers()[name]._actions
        for option in action.option_strings
        if option.startswith("--")
    }


def clarify_invocations(text):
    """``(subcommand, [flags])`` per ``clarify`` call in bash blocks.

    Shell ``\\`` line continuations are folded first, so flags on
    wrapped lines count against the command that opened them.
    """
    invocations = []
    for block in fenced_blocks(text, "bash"):
        folded = re.sub(r"\\\n", " ", block)
        for line in folded.splitlines():
            line = line.split("#")[0]
            match = re.search(r"\bclarify\s+([\w-]+)", line)
            if match:
                invocations.append(
                    (match.group(1), FLAG_RE.findall(line[match.end():]))
                )
    return invocations


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[p.name for p in DOC_FILES]
)
class TestDocsLint:
    def test_python_block_imports_resolve(self, doc):
        errors = []
        for block in fenced_blocks(doc.read_text(), "python"):
            for line in block.splitlines():
                match = IMPORT_FROM_RE.match(line)
                if match:
                    module_name, names = match.groups()
                    try:
                        module = importlib.import_module(module_name)
                    except ImportError:
                        errors.append(f"{line.strip()}: no module {module_name}")
                        continue
                    for name in names.split(","):
                        name = name.strip().split(" as ")[0]
                        if not name or name == "(":
                            continue
                        if not (
                            hasattr(module, name)
                            or resolves(f"{module_name}.{name}")
                        ):
                            errors.append(
                                f"{line.strip()}: {module_name} has no {name}"
                            )
                    continue
                match = IMPORT_RE.match(line)
                if match and not resolves(match.group(1)):
                    errors.append(f"{line.strip()}: does not import")
        assert not errors, f"{doc.name}:\n" + "\n".join(errors)

    def test_dotted_references_resolve(self, doc):
        stale = sorted(
            {
                ref
                for ref in DOTTED_REF_RE.findall(doc.read_text())
                if not resolves(ref)
            }
        )
        assert not stale, f"{doc.name} references unknown paths: {stale}"

    def test_clarify_subcommands_exist(self, doc):
        known = subcommands()
        text = doc.read_text()
        used = set()
        for block in fenced_blocks(text, "bash"):
            for line in block.splitlines():
                match = CLARIFY_RE.match(line)
                if match:
                    used.add(match.group(1))
        for inline in re.findall(r"`clarify\s+([\w-]+)[^`]*`", text):
            used.add(inline)
        unknown = sorted(used - known)
        assert not unknown, f"{doc.name} uses unknown subcommands: {unknown}"

    def test_clarify_flags_exist(self, doc):
        """Every --flag a bash example passes is accepted by the parser."""
        known = subcommands()
        errors = []
        for sub, flags in clarify_invocations(doc.read_text()):
            if sub not in known:
                continue  # test_clarify_subcommands_exist reports these
            unknown = sorted(set(flags) - subcommand_flags(sub))
            if unknown:
                errors.append(f"clarify {sub}: unknown flags {unknown}")
        assert not errors, f"{doc.name}:\n" + "\n".join(errors)

    def test_env_vars_are_read_by_the_source(self, doc):
        """Every env var the docs mention is read somewhere in src/."""
        mentioned = set(ENV_VAR_RE.findall(doc.read_text()))
        if not mentioned:
            return
        source = "\n".join(
            path.read_text()
            for path in (REPO_ROOT / "src").rglob("*.py")
        )
        unread = sorted(var for var in mentioned if var not in source)
        assert not unread, (
            f"{doc.name} mentions env vars never read in src/: {unread}"
        )


def test_doc_set_is_present():
    names = {path.name for path in DOC_FILES}
    assert {
        "README.md",
        "ARCHITECTURE.md",
        "OBSERVABILITY.md",
        "TUTORIAL.md",
        "PERFORMANCE.md",
        "SERVING.md",
        "LLM_BACKENDS.md",
    } <= names


def test_readme_layout_indexes_every_doc():
    """The README repository-layout block lists every file in docs/."""
    readme = (REPO_ROOT / "README.md").read_text()
    missing = sorted(
        f"docs/{path.name}"
        for path in (REPO_ROOT / "docs").glob("*.md")
        if f"docs/{path.name}" not in readme
    )
    assert not missing, f"README.md does not mention: {missing}"


def test_serving_doc_covers_the_layer():
    text = (REPO_ROOT / "docs" / "SERVING.md").read_text()
    for needle in (
        "admission control",
        "SessionManager",
        "ClarifyService",
        "DedupClient",
        "TimeBudget",
        "loadgen",
        "LLM_BACKENDS.md",
    ):
        assert needle in text, f"SERVING.md does not mention {needle}"


def test_lint_doc_covers_netwide():
    text = (REPO_ROOT / "docs" / "LINT.md").read_text()
    for needle in (
        "NW001",
        "NW002",
        "NW003",
        "NW004",
        "NW005",
        "NW006",
        "NW007",
        "NW008",
        "NetwideAnalyzer",
        "NetwideGate",
        "must-not-reach",
        "netwide.paths.cached",
        "--contracts",
        "--inject-shadow",
        "--baseline",
        "benchmarks/BASELINE_netlint.json",
        "examples/netwide.contracts",
    ):
        assert needle in text, f"LINT.md does not mention {needle}"


def test_serving_doc_covers_netwide_and_concurrency_lint():
    text = (REPO_ROOT / "docs" / "SERVING.md").read_text()
    for needle in (
        "--netwide",
        "NetwideGate",
        "check_concurrency",
        "LINT.md",
    ):
        assert needle in text, f"SERVING.md does not mention {needle}"


def test_serving_doc_covers_sharding_and_durability():
    text = (REPO_ROOT / "docs" / "SERVING.md").read_text()
    for needle in (
        "SessionStore",
        "DurableSessionStore",
        "sessions.manifest.jsonl",
        "fsync",
        "complete-cycle prefix",
        "RestoreError",
        "recovered",
        "HashRing",
        "ShardedCluster",
        "virtual nodes",
        "kill-shard",
        "restart-shard",
        "--store-dir",
        "--restore",
        "--shards",
        "--check-shard-identity",
        "BENCH_shard.json",
        "exactly-once",
    ):
        assert needle in text, f"SERVING.md does not mention {needle}"


def test_observability_doc_covers_serving_telemetry():
    text = (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text()
    for needle in (
        "Serving telemetry",
        "TraceContext",
        "trace_id",
        "request_id",
        "wide-event",
        "x-clarify-trace-id",
        "schema_version",
        "check_schema_match",
        "/metrics",
        "/healthz",
        "burn",
        "max_burn_rate",
        "--metrics-port",
        "--event-log",
        "--slo-report",
        "--check-telemetry-overhead",
        "--no-telemetry",
        "CLARIFY_METRICS_PORT",
        "CLARIFY_EVENT_LOG",
        "clarify tail",
        "telemetry_smoke",
    ):
        assert needle in text, f"OBSERVABILITY.md does not mention {needle}"


def test_serving_doc_links_serving_telemetry():
    text = (REPO_ROOT / "docs" / "SERVING.md").read_text()
    for needle in (
        "Serving telemetry",
        "--metrics-port",
        "--event-log",
        "request_id",
        "trace_id",
        "clarify tail",
        "--slo-report",
        "--check-telemetry-overhead",
    ):
        assert needle in text, f"SERVING.md does not mention {needle}"


def test_performance_doc_covers_perf_layer():
    text = (REPO_ROOT / "docs" / "PERFORMANCE.md").read_text()
    for needle in (
        "PersistentPool",
        "fork",
        "copy-on-write",
        "calibration",
        "REPRO_POOL",
        "REPRO_KERNELS",
        "--pool",
        "persistent",
        "spawn",
        "serial",
        "FlatSets",
        "disjoint_matrix",
        "subset_matrix",
        "intersect_many",
        "subtract_many",
        "CC003",
        "profile_regions",
        "--perf-snapshot",
        "--campaign-tolerance",
        "parallel_2worker_s",
    ):
        assert needle in text, f"PERFORMANCE.md does not mention {needle}"


def test_llm_backends_doc_covers_the_tier():
    text = (REPO_ROOT / "docs" / "LLM_BACKENDS.md").read_text()
    for needle in (
        "SimulatedLLM",
        "RemoteLLMClient",
        "BackendRouter",
        "CachedClient",
        "BatchingClient",
        "DedupClient",
        "FaultyLLM",
        "cache_safe",
        "RetryPolicy",
        "no jitter",
        "CLARIFY_LLM_API_KEY",
        "ANTHROPIC_API_KEY",
        "CLARIFY_LLM_BASE_URL",
        "CLARIFY_LLM_MODEL",
        "DeadlineExceeded",
        "--backend",
        "--cache-dir",
        "--batch-window",
        "--check-cache-effectiveness",
    ):
        assert needle in text, f"LLM_BACKENDS.md does not mention {needle}"
