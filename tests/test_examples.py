"""Smoke tests: every example script runs clean and prints its headline."""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "classifier says: route-map" in out
        assert '"set": {"metric": 55}' in out
        assert "OPTION 1:" in out
        assert "route-map ISP_OUT permit 10" in out

    def test_datacenter_policies(self):
        out = run_example("datacenter_policies.py")
        assert "M       4             9           5" in out
        assert "R1      5             12          6" in out
        assert out.count("[PASS]") == 5

    def test_acl_update(self):
        out = run_example("acl_update.py")
        assert "SSH from 10.9.1.1" in out
        assert "-> deny" in out

    def test_overlap_audit_scaled(self):
        out = run_example("overlap_audit.py")
        assert "cloud WAN corpus" in out
        assert "campus corpus" in out
        assert "ACLs analysed" in out

    def test_list_insertion(self):
        out = run_example("list_insertion.py")
        assert "questions asked: 1" in out
        assert "permit 10.1.2.0/24 le 32" in out

    def test_device_roundtrip(self):
        out = run_example("device_roundtrip.py", "--show", "R1")
        assert out.count("[PASS]") == 5
        assert "hostname R1" in out
        assert "router bgp 65010" in out
