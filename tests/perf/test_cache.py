"""Unit tests for the hash-consing/memoization primitives.

The layer's contract: tables only ever change *speed*.  These tests pin
the mechanics that make that true — LRU bounds, hit/miss accounting,
clear-preserves-totals, and the ``disabled``/``isolated`` contexts the
differential tests and the campaign runner are built on.
"""

import pytest

from repro import obs
from repro.perf import cache


@pytest.fixture
def scratch_tables():
    """Create throwaway tables and deregister them afterwards."""
    created = []

    def make(kind, *args, **kwargs):
        table = kind(*args, **kwargs)
        created.append(table)
        return table

    yield make
    for table in created:
        cache._REGISTRY.remove(table)


class TestMemo:
    def test_miss_then_hit(self, scratch_tables):
        memo = scratch_tables(cache.Memo, "t.memo")
        calls = []
        compute = lambda: calls.append(1) or "value"  # noqa: E731
        assert memo.lookup("k", compute) == "value"
        assert memo.lookup("k", compute) == "value"
        assert len(calls) == 1
        assert (memo.hits, memo.misses) == (1, 1)

    def test_none_results_are_cached(self, scratch_tables):
        memo = scratch_tables(cache.Memo, "t.none")
        calls = []
        assert memo.lookup("k", lambda: calls.append(1)) is None
        assert memo.lookup("k", lambda: calls.append(1)) is None
        assert len(calls) == 1

    def test_lru_eviction_order(self, scratch_tables):
        memo = scratch_tables(cache.Memo, "t.lru", max_size=2)
        memo.lookup("a", lambda: 1)
        memo.lookup("b", lambda: 2)
        memo.lookup("a", lambda: 1)  # refresh "a": "b" is now oldest
        memo.lookup("c", lambda: 3)  # evicts "b"
        assert len(memo) == 2
        calls = []
        memo.lookup("b", lambda: calls.append(1) or 2)
        assert calls, "evicted key must recompute"
        memo.lookup("a", lambda: calls.append(2))
        assert len(calls) == 2, "refreshed key was evicted"

    def test_clear_preserves_totals(self, scratch_tables):
        memo = scratch_tables(cache.Memo, "t.clear")
        memo.lookup("k", lambda: 1)
        memo.lookup("k", lambda: 1)
        memo.clear()
        assert len(memo) == 0
        assert (memo.hits, memo.misses) == (1, 1)

    def test_disabled_bypasses_and_counts_nothing(self, scratch_tables):
        memo = scratch_tables(cache.Memo, "t.off")
        calls = []
        with cache.disabled():
            assert not cache.enabled()
            memo.lookup("k", lambda: calls.append(1) or "v")
            memo.lookup("k", lambda: calls.append(1) or "v")
        assert cache.enabled()
        assert len(calls) == 2
        assert (memo.hits, memo.misses) == (0, 0)
        assert len(memo) == 0  # cleared on exit


class TestInterner:
    def test_equal_values_collapse_to_one_object(self, scratch_tables):
        interner = scratch_tables(cache.Interner, "t.intern")
        first = interner.intern(tuple([1, 2, 3]))
        second = interner.intern(tuple([1, 2, 3]))
        assert second is first
        assert (interner.hits, interner.misses) == (1, 1)

    def test_eviction_starts_a_new_equivalence_class(self, scratch_tables):
        interner = scratch_tables(cache.Interner, "t.evict", max_size=1)
        # tuple([...]) defeats CPython's per-code-object constant folding,
        # which would otherwise make the two literals one object already.
        first = interner.intern(tuple([1]))
        interner.intern(tuple([2]))  # evicts (1,)
        again = interner.intern(tuple([1]))
        assert again is not first and again == first

    def test_disabled_returns_value_unchanged(self, scratch_tables):
        interner = scratch_tables(cache.Interner, "t.iOff")
        with cache.disabled():
            value = (1, 2)
            assert interner.intern(value) is value
        assert (interner.hits, interner.misses) == (0, 0)


class TestRegistryAndCounters:
    def test_stats_and_totals_naming(self, scratch_tables):
        memo = scratch_tables(cache.Memo, "t.stats")
        memo.lookup("k", lambda: 1)
        memo.lookup("k", lambda: 1)
        stats = cache.cache_stats()["t.stats"]
        assert stats == {"hits": 1, "misses": 1, "size": 1}
        totals = cache.cache_totals()
        assert totals["cache.hits.t.stats"] == 1
        assert totals["cache.misses.t.stats"] == 1
        assert totals["cache.hits"] >= 1
        assert totals["cache.misses"] >= 1

    def test_publish_counters_records_deltas_once(self, scratch_tables):
        memo = scratch_tables(cache.Memo, "t.pub")
        before = cache.cache_totals()
        memo.lookup("k", lambda: 1)
        memo.lookup("k", lambda: 1)
        recorder = obs.Recorder(capture_spans=False)
        with obs.recording(recorder):
            deltas = cache.publish_counters(before)
        assert deltas["cache.hits.t.pub"] == 1
        assert deltas["cache.misses.t.pub"] == 1
        assert recorder.counter("cache.hits.t.pub") == 1
        assert recorder.counter("cache.misses.t.pub") == 1
        # Nothing moved since: publishing again is a no-op.
        assert cache.publish_counters(cache.cache_totals()) == {}


class TestIsolated:
    def test_restores_totals_and_clears_tables(self, scratch_tables):
        memo = scratch_tables(cache.Memo, "t.iso")
        memo.lookup("warm", lambda: 1)
        before = (memo.hits, memo.misses)
        with cache.isolated():
            assert len(memo) == 0, "isolated starts cold"
            memo.lookup("a", lambda: 1)
            memo.lookup("a", lambda: 1)
            assert memo.hits == before[0] + 1
        assert (memo.hits, memo.misses) == before
        assert len(memo) == 0

    def test_tables_created_inside_are_zeroed(self, scratch_tables):
        with cache.isolated():
            inner = scratch_tables(cache.Memo, "t.isoNew")
            inner.lookup("a", lambda: 1)
            inner.lookup("a", lambda: 1)
        assert (inner.hits, inner.misses) == (0, 0)

    def test_restores_on_error(self, scratch_tables):
        memo = scratch_tables(cache.Memo, "t.isoErr")
        memo.lookup("warm", lambda: 1)
        with pytest.raises(RuntimeError):
            with cache.isolated():
                memo.lookup("x", lambda: 2)
                raise RuntimeError("boom")
        assert (memo.hits, memo.misses) == (0, 1)
        assert len(memo) == 0
