"""Differential tests for the batch interval kernels.

Every kernel in :mod:`repro.perf.kernels` claims *exact* equivalence
with the corresponding :class:`~repro.netaddr.intervals.IntervalSet`
operation.  This suite pins that claim over randomized-but-seeded
populations laced with the adversarial edges (empty sets, adjacent
intervals, single points, full-range sets), on every backend the
process can run — the pure-stdlib sweep always, the numpy fast path
when numpy is importable.
"""

import random

import pytest

from repro.netaddr.intervals import EMPTY_SET, IntervalSet
from repro.perf import kernels

BACKENDS = kernels.available_backends()

#: Universe the random populations draw from; small enough that random
#: sets collide, overlap, and contain each other often.
UNIVERSE_HI = 200

#: Hand-picked sets hitting the edges random draws may miss.
EDGE_SETS = [
    EMPTY_SET,
    IntervalSet.single(0),
    IntervalSet.single(UNIVERSE_HI),
    IntervalSet.closed(0, UNIVERSE_HI),  # full range
    IntervalSet.from_pairs([(0, 9), (10, 19)]),  # adjacent: coalesces
    IntervalSet.from_pairs([(0, 9), (11, 19)]),  # one-apart gap
    IntervalSet.from_pairs([(5, 5), (7, 7), (9, 9)]),  # point cloud
    IntervalSet.from_pairs([(0, 99), (150, UNIVERSE_HI)]),
]


def random_sets(seed, count=40):
    """Seeded random interval sets, edge cases prepended."""
    rng = random.Random(seed)
    out = list(EDGE_SETS)
    while len(out) < count + len(EDGE_SETS):
        pairs = []
        for _ in range(rng.randint(0, 4)):
            lo = rng.randint(0, UNIVERSE_HI)
            hi = min(UNIVERSE_HI, lo + rng.randint(0, 40))
            pairs.append((lo, hi))
        out.append(IntervalSet.from_pairs(pairs))
    return out


@pytest.fixture(params=BACKENDS)
def backend(request):
    with kernels.use_backend(request.param):
        yield request.param


class TestEncoding:
    def test_decode_roundtrips(self, backend):
        sets = random_sets(1)
        flat = kernels.encode(sets)
        assert len(flat) == len(sets)
        for i, value in enumerate(sets):
            assert flat.decode(i) == value
            assert flat.size(i) == len(value.intervals)

    def test_wide_endpoints_widen_the_typecode(self):
        narrow = kernels.encode([IntervalSet.closed(0, 0xFFFFFFFF)])
        wide = kernels.encode([IntervalSet.closed(0, 0x1_0000_0000)])
        assert narrow.los.typecode == "I"
        assert wide.los.typecode == "q"
        assert wide.decode(0) == IntervalSet.closed(0, 0x1_0000_0000)

    def test_empty_set_box_is_empty(self):
        flat = kernels.encode([EMPTY_SET])
        assert flat.box_lo[0] > flat.box_hi[0]


class TestMatrices:
    def test_disjoint_matrix_matches_intersect(self, backend):
        a = random_sets(2)
        b = random_sets(3)
        flat_a, flat_b = kernels.encode(a), kernels.encode(b)
        matrix = kernels.disjoint_matrix(flat_a, flat_b)
        for i, va in enumerate(a):
            for j, vb in enumerate(b):
                expected = va.intersect(vb).is_empty()
                assert bool(matrix[i][j]) == expected, (i, j)

    def test_subset_matrix_matches_is_subset_of(self, backend):
        a = random_sets(4)
        b = random_sets(5)
        flat_a, flat_b = kernels.encode(a), kernels.encode(b)
        matrix = kernels.subset_matrix(flat_a, flat_b)
        for i, va in enumerate(a):
            for j, vb in enumerate(b):
                assert bool(matrix[i][j]) == va.is_subset_of(vb), (i, j)

    def test_self_products(self, backend):
        # The overlap hot path runs a set against itself.
        sets = random_sets(6)
        flat = kernels.encode(sets)
        disjoint = kernels.disjoint_matrix(flat, flat)
        subset = kernels.subset_matrix(flat, flat)
        for i, value in enumerate(sets):
            assert bool(disjoint[i][i]) == value.is_empty()
            assert subset[i][i] == 1  # every set contains itself


class TestElementwise:
    def test_intersect_many_matches(self, backend):
        a = random_sets(7)
        b = list(reversed(random_sets(8, count=len(a) - len(EDGE_SETS))))
        flat_a, flat_b = kernels.encode(a), kernels.encode(b)
        result = kernels.intersect_many(flat_a, flat_b)
        assert result == [va.intersect(vb) for va, vb in zip(a, b)]

    def test_subtract_many_matches(self, backend):
        a = random_sets(9)
        b = list(reversed(random_sets(10, count=len(a) - len(EDGE_SETS))))
        flat_a, flat_b = kernels.encode(a), kernels.encode(b)
        result = kernels.subtract_many(flat_a, flat_b)
        assert result == [va.subtract(vb) for va, vb in zip(a, b)]

    def test_length_mismatch_rejected(self, backend):
        two = kernels.encode([EMPTY_SET, EMPTY_SET])
        one = kernels.encode([EMPTY_SET])
        with pytest.raises(ValueError, match="length mismatch"):
            kernels.intersect_many(two, one)
        with pytest.raises(ValueError, match="length mismatch"):
            kernels.subtract_many(two, one)

    def test_contains_vector_matches(self, backend):
        sets = random_sets(11)
        flat = kernels.encode(sets)
        for value in (0, 5, 10, 100, UNIVERSE_HI):
            got = kernels.contains_vector(flat, value)
            assert got == [s.contains(value) for s in sets], value


class TestBackendSelection:
    def test_py_backend_always_available(self):
        assert "py" in kernels.available_backends()

    def test_use_backend_forces_and_restores(self):
        before = kernels.active_backend()
        with kernels.use_backend("py"):
            assert kernels.active_backend() == "py"
        assert kernels.active_backend() == before

    def test_unknown_backend_rejected(self):
        with pytest.raises(kernels.KernelBackendError, match="unknown"):
            with kernels.use_backend("fortran"):
                pass  # pragma: no cover

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "py")
        assert kernels.active_backend() == "py"
        monkeypatch.setenv("REPRO_KERNELS", "fortran")
        with pytest.raises(kernels.KernelBackendError, match="REPRO_KERNELS"):
            kernels.active_backend()

    def test_env_numpy_without_numpy_raises(self, monkeypatch):
        if kernels._np is not None:
            pytest.skip("numpy importable: the error path cannot trigger")
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        with pytest.raises(kernels.KernelBackendError, match="numpy"):
            kernels.active_backend()

    @pytest.mark.skipif(
        "numpy" not in BACKENDS, reason="numpy not importable"
    )
    def test_backends_agree_on_matrices(self):
        sets = random_sets(12)
        flat = kernels.encode(sets)
        with kernels.use_backend("py"):
            py_disjoint = kernels.disjoint_matrix(flat, flat)
            py_subset = kernels.subset_matrix(flat, flat)
        with kernels.use_backend("numpy"):
            np_disjoint = kernels.disjoint_matrix(flat, flat)
            np_subset = kernels.subset_matrix(flat, flat)
        assert py_disjoint == np_disjoint
        assert py_subset == np_subset
