"""Tests for the parallel campaign runner.

The runner's contract: a process-pool campaign is *indistinguishable*
from a serial one — same results in the same order, same published
counters — and the chunk partition depends only on the payload count,
never on scheduling or the worker count.
"""

import random

import pytest

from repro import obs
from repro.overlap import acl_overlap_report
from repro.perf import campaign
from repro.synth.builders import PrefixPool, crossing_acl, shadowed_acl


def _acls(seed=11, count=12):
    rng = random.Random(seed)
    pool = PrefixPool(rng)
    out = []
    for idx in range(count):
        if idx % 2:
            out.append(crossing_acl(f"X{idx}", rng, pool, permits=3, denies=3))
        else:
            out.append(shadowed_acl(f"S{idx}", rng, pool, permits=4))
    return out


class TestChunkBounds:
    def test_partition_is_contiguous_and_complete(self):
        for count in (0, 1, 5, 12, 13):
            for chunk_count in (1, 2, 4, 7):
                bounds = campaign._chunk_bounds(count, chunk_count)
                flat = [i for lo, hi in bounds for i in range(lo, hi)]
                assert flat == list(range(count)), (count, chunk_count)

    def test_no_empty_chunks_when_chunks_exceed_items(self):
        # chunk_count > count used to emit empty chunks that idled
        # workers; surplus chunks are dropped instead.
        assert campaign._chunk_bounds(1, 4) == [(0, 1)]
        assert campaign._chunk_bounds(3, 8) == [(0, 1), (1, 2), (2, 3)]
        for count in (1, 2, 5):
            for chunk_count in (1, 3, 16):
                bounds = campaign._chunk_bounds(count, chunk_count)
                assert all(hi > lo for lo, hi in bounds), (count, chunk_count)
                assert len(bounds) == min(count, chunk_count)

    def test_empty_campaign_has_no_chunks(self):
        assert campaign._chunk_bounds(0, 4) == []

    def test_independent_of_worker_count(self):
        # The partition is a pure function of (count, chunks): nothing
        # about scheduling can change which payloads share a cache.
        assert campaign._chunk_bounds(100, 4) == campaign._chunk_bounds(100, 4)

    def test_balanced(self):
        sizes = [hi - lo for lo, hi in campaign._chunk_bounds(10, 4)]
        assert max(sizes) - min(sizes) <= 1


class TestRunCampaign:
    def test_results_match_direct_serial_map(self):
        acls = _acls()
        result = campaign.acl_overlap_campaign(acls, workers=1, chunks=3)
        assert list(result.results) == [acl_overlap_report(acl) for acl in acls]

    def test_serial_and_parallel_identical_results_and_counters(self):
        acls = _acls()

        def run(workers):
            recorder = obs.Recorder(capture_spans=False)
            with obs.recording(recorder):
                result = campaign.acl_overlap_campaign(
                    acls, workers=workers, chunks=4
                )
            return result.results, dict(recorder.counters)

        serial_results, serial_counters = run(1)
        parallel_results, parallel_counters = run(2)
        assert serial_results == parallel_results
        assert serial_counters == parallel_counters
        assert serial_counters.get("cache.hits", 0) > 0

    def test_serial_campaign_leaks_nothing_into_parent_caches(self):
        from repro.perf import cache as perf

        acl = _acls(count=2)[0]
        acl_overlap_report(acl)  # warm the parent's tables
        before = perf.cache_totals()
        campaign.acl_overlap_campaign(_acls(), workers=1, chunks=2)
        assert perf.cache_totals() == before

    def test_counters_depend_on_chunking_not_workers(self):
        acls = _acls()

        def counters(workers, chunks):
            recorder = obs.Recorder(capture_spans=False)
            with obs.recording(recorder):
                campaign.acl_overlap_campaign(acls, workers=workers, chunks=chunks)
            return dict(recorder.counters)

        assert counters(1, 4) == counters(2, 4)
        assert counters(1, 1) != counters(1, 4)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign kind"):
            campaign.run_campaign("no-such-kind", [1])

    def test_single_item_campaign_uses_one_worker_and_chunk(self):
        acls = _acls(count=1)
        result = campaign.acl_overlap_campaign(acls, workers=4, chunks=4)
        assert result.workers == 1
        assert result.chunks == 1
        assert list(result.results) == [acl_overlap_report(acls[0])]

    def test_empty_campaign_runs_no_chunks(self):
        result = campaign.acl_overlap_campaign([], workers=4, chunks=4)
        assert result.results == ()
        assert result.chunks == 0


class TestPoolModes:
    def test_resolve_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown pool mode"):
            campaign.resolve_pool_mode("threads")

    def test_resolve_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "spawn")
        assert campaign.resolve_pool_mode("serial") == "serial"
        assert campaign.resolve_pool_mode() == "spawn"
        monkeypatch.delenv("REPRO_POOL")
        assert campaign.resolve_pool_mode() == "auto"

    def test_serial_mode_forces_one_worker(self):
        acls = _acls(count=4)
        result = campaign.acl_overlap_campaign(acls, workers=4, pool="serial")
        assert result.workers == 1

    @pytest.mark.skipif(
        not campaign._pool.fork_available(), reason="fork unavailable"
    )
    def test_persistent_pool_identical_to_serial(self):
        # Forced persistent mode exercises real forked workers even on a
        # one-core host, where auto would (correctly) stay in-process.
        acls = _acls()

        def run(pool_mode, workers):
            recorder = obs.Recorder(capture_spans=False)
            with obs.recording(recorder):
                result = campaign.acl_overlap_campaign(
                    acls, workers=workers, chunks=4, pool=pool_mode
                )
            return result.results, dict(recorder.counters)

        serial_results, serial_counters = run("serial", 1)
        pooled_results, pooled_counters = run("persistent", 2)
        assert serial_results == pooled_results
        assert serial_counters == pooled_counters

    @pytest.mark.skipif(
        not campaign._pool.fork_available(), reason="fork unavailable"
    )
    def test_persistent_calibration_still_covers_every_payload(self):
        # No pinned chunks: the probe chunk + calibrated rest must cover
        # the payload list exactly once, in order.
        acls = _acls()
        result = campaign.acl_overlap_campaign(
            acls, workers=2, pool="persistent"
        )
        assert list(result.results) == [acl_overlap_report(a) for a in acls]
        assert result.chunks >= 2  # the probe plus at least one rest chunk

    def test_choose_engine_degrades_without_parallel_hardware(self):
        assert campaign._choose_engine("serial", 4) == "inline"
        assert campaign._choose_engine("auto", 1) == "inline"
        assert campaign._choose_engine("spawn", 4) == "spawn"

    def test_task_kinds_lists_the_registry(self):
        kinds = campaign.task_kinds()
        assert "acl-overlap" in kinds
        assert "figure3-eval" in kinds


class TestStudies:
    def test_campus_study_scales_down_and_matches_serial(self):
        serial = campaign.campus_overlap_study(
            workers=1, chunks=3, total_acls=80, route_maps=8
        )
        pooled = campaign.campus_overlap_study(
            workers=2, chunks=3, total_acls=80, route_maps=8
        )
        assert serial == pooled
        acl_stats, _, triple, device_count = serial
        assert acl_stats.total == 80
        assert device_count == 1421
        assert triple.overlap_count == 3

    def test_evaluation_campaign_reproduces_figure4(self):
        result = campaign.evaluation_campaign(runs=1, workers=1, chunks=1)
        rows, policies = result.results[0]
        by_name = {name: (maps, calls) for name, maps, calls, _ in rows}
        assert set(by_name) == {"M", "R1", "R2"}
        assert all(holds for holds in policies.values())


class TestCli:
    def test_campaign_campus_cli(self, capsys):
        from repro.cli import main

        code = main(
            [
                "campaign",
                "campus",
                "--serial",
                "--chunks",
                "2",
                "--scale",
                "0.005",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ACL" in out or "acl" in out

    def test_campaign_eval_benchmark_cli(self, capsys):
        from repro.cli import main

        code = main(["campaign", "eval", "--benchmark", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "serial:" in out and "parallel:" in out
