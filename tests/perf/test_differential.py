"""Differential tests: the memoized engines equal the original ones.

Every test runs the same workload twice — once with the cache layer
active, once under :func:`repro.perf.cache.disabled` — and asserts the
outputs are *equal*, not merely similar: reachable spaces, witnesses,
and overlap reports.  Plus soundness checks for the cheap disjointness
pre-checks the incremental engines rely on.
"""

import random

import pytest

from repro.analysis import acl_reachable_spaces
from repro.analysis.headerspace import acl_rule_region, regions_disjoint
from repro.analysis.routespace import (
    regions_cheaply_disjoint,
    route_map_reachable_spaces,
    stanza_guard_space,
)
from repro.config.acl import Acl, AclRule, PortSpec, ProtocolSpec
from repro.config.store import ConfigStore
from repro.netaddr import Ipv4Wildcard
from repro.overlap import acl_overlap_report
from repro.overlap.detector import route_map_overlap_report
from repro.perf import cache as perf
from repro.synth.builders import PrefixPool, tagged_route_map

SEEDS = (7, 42, 1421)


def random_acl(seed, rules=24):
    """A seeded ACL exercising protocols, ports, and ``established``."""
    rng = random.Random(seed)
    pool = PrefixPool(rng)
    out = []
    for idx in range(rules):
        protocol = rng.choice(("ip", "tcp", "tcp", "udp", "icmp"))
        kwargs = {}
        if protocol in ("tcp", "udp"):
            if rng.random() < 0.6:
                port = rng.choice((22, 53, 80, 179, 443))
                kwargs["dst_ports"] = PortSpec("eq", (port,))
            if protocol == "tcp" and rng.random() < 0.3:
                kwargs["established"] = True
        src = pool.block16() if rng.random() < 0.7 else None
        dst = pool.block24() if rng.random() < 0.7 else None
        out.append(
            AclRule(
                seq=10 * (idx + 1),
                action=rng.choice(("permit", "deny")),
                protocol=ProtocolSpec(protocol),
                src=Ipv4Wildcard.from_prefix(src) if src else Ipv4Wildcard.any(),
                dst=Ipv4Wildcard.from_prefix(dst) if dst else Ipv4Wildcard.any(),
                **kwargs,
            )
        )
    return Acl(f"RAND_{seed}", tuple(out))


def random_route_map(seed):
    rng = random.Random(seed)
    store = ConfigStore()
    rm = tagged_route_map(
        f"RM_{seed}", rng, PrefixPool(rng), store, prefix_stanzas=5, tag_stanzas=3
    )
    return rm, store


@pytest.mark.parametrize("seed", SEEDS)
class TestAclDifferential:
    def test_reachable_spaces_identical(self, seed):
        acl = random_acl(seed)
        with perf.isolated():
            cached = acl_reachable_spaces(acl, include_implicit_deny=True)
        with perf.disabled():
            plain = acl_reachable_spaces(acl, include_implicit_deny=True)
        assert cached == plain

    def test_witnesses_identical(self, seed):
        acl = random_acl(seed)
        with perf.isolated():
            cached = [
                region.witness()
                for _, space in acl_reachable_spaces(acl)
                for region in space.regions
            ]
        with perf.disabled():
            plain = [
                region.witness()
                for _, space in acl_reachable_spaces(acl)
                for region in space.regions
            ]
        assert cached == plain

    def test_overlap_report_identical(self, seed):
        acl = random_acl(seed)
        with perf.isolated():
            cached = acl_overlap_report(acl, with_witnesses=True)
        with perf.disabled():
            plain = acl_overlap_report(acl, with_witnesses=True)
        assert cached == plain


@pytest.mark.parametrize("seed", SEEDS)
class TestRouteMapDifferential:
    def test_reachable_spaces_identical(self, seed):
        rm, store = random_route_map(seed)
        with perf.isolated():
            cached = route_map_reachable_spaces(
                rm, store, include_implicit_deny=True
            )
        with perf.disabled():
            plain = route_map_reachable_spaces(
                rm, store, include_implicit_deny=True
            )
        assert cached == plain

    def test_overlap_report_identical(self, seed):
        rm, store = random_route_map(seed)
        with perf.isolated():
            cached = route_map_overlap_report(rm, store, with_witnesses=True)
        with perf.disabled():
            plain = route_map_overlap_report(rm, store, with_witnesses=True)
        assert cached == plain


def _sample_packet_regions(seed, count=12):
    """Rule regions plus pairwise intersections (established corners)."""
    regions = [acl_rule_region(rule) for rule in random_acl(seed, count).rules]
    regions += [
        a.intersect(b) for a, b in zip(regions, regions[1:])
    ]
    return regions


@pytest.mark.parametrize("seed", SEEDS)
def test_subsumes_matches_subtraction_ground_truth(seed):
    regions = _sample_packet_regions(seed)
    for a in regions:
        for b in regions:
            claimed = a.subsumes(b)
            # Ground truth: b ⊆ a iff carving a out of b leaves nothing.
            carved = b.subtract_region(a)
            actual = all(piece.is_empty() for piece in carved)
            assert claimed == actual, (a, b)


@pytest.mark.parametrize("seed", SEEDS)
def test_regions_disjoint_is_exact(seed):
    regions = _sample_packet_regions(seed)
    for a in regions:
        for b in regions:
            assert regions_disjoint(a, b) == a.intersect(b).is_empty()


@pytest.mark.parametrize("seed", SEEDS)
def test_regions_cheaply_disjoint_is_sound(seed):
    rm, store = random_route_map(seed)
    regions = [
        region
        for stanza in rm.stanzas
        for region in stanza_guard_space(stanza, store).regions
    ]
    for a in regions:
        for b in regions:
            if regions_cheaply_disjoint(a, b):
                # Sound: a claimed disjointness must be a real one.
                assert a.intersect(b).is_empty(), (a, b)
