"""Tests for the persistent campaign worker pool.

The pool's contract: workers are forked once and reused across ``run``
calls; chunk outcomes come back in chunk order regardless of which
worker ran what; a dead worker breaks the pool loudly (the campaign
layer then falls back in-process); task errors surface as
:class:`PoolTaskError` without killing workers.
"""

import random

import pytest

from repro.perf import campaign, pool
from repro.perf.campaign import _run_chunk
from repro.synth.builders import PrefixPool, crossing_acl, shadowed_acl

pytestmark = pytest.mark.skipif(
    not pool.fork_available(), reason="fork start method unavailable"
)


def _acls(seed=11, count=8):
    rng = random.Random(seed)
    prefix_pool = PrefixPool(rng)
    out = []
    for idx in range(count):
        if idx % 2:
            out.append(
                crossing_acl(f"X{idx}", rng, prefix_pool, permits=3, denies=3)
            )
        else:
            out.append(shadowed_acl(f"S{idx}", rng, prefix_pool, permits=4))
    return out


@pytest.fixture
def two_workers():
    p = pool.PersistentPool(2)
    try:
        yield p
    finally:
        p.close()


class TestPersistentPool:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            pool.PersistentPool(0)

    def test_run_matches_inline_chunks(self, two_workers):
        acls = _acls()
        chunks = [acls[:3], acls[3:5], acls[5:]]
        outcomes = two_workers.run("acl-overlap", chunks, None, None, True)
        expected = [_run_chunk("acl-overlap", chunk, None) for chunk in chunks]
        assert outcomes == expected

    def test_results_come_back_in_chunk_order(self, two_workers):
        # Uneven chunks so the two workers finish out of lockstep.
        acls = _acls(count=9)
        chunks = [acls[:6], [acls[6]], [acls[7]], [acls[8]]]
        outcomes = two_workers.run("acl-overlap", chunks, None, None, True)
        names = [r.name for results, _ in outcomes for r in results]
        assert names == [acl.name for acl in acls]

    def test_workers_survive_across_runs(self, two_workers):
        chunks = [[acl] for acl in _acls(count=4)]
        two_workers.run("acl-overlap", chunks, None, None, True)
        pids = sorted(w.process.pid for w in two_workers._workers)
        two_workers.run("acl-overlap", chunks, None, None, True)
        assert sorted(w.process.pid for w in two_workers._workers) == pids
        assert two_workers.size == 2

    def test_context_token_set_once_per_run(self, two_workers):
        # The context rides a 'ctx' message once per worker per run; the
        # token stamped on each worker proves it arrived (and a stale
        # token would make the worker error out, not silently reuse).
        store = {"marker": 1}
        chunks = [[0], [1], [2], [3]]
        two_workers.run("figure3-eval", chunks, store, None, True)
        used = [w for w in two_workers._workers if w.ctx_token is not None]
        assert used
        assert {w.ctx_token for w in used} == {1}

    def test_task_error_reports_lowest_chunk(self, two_workers):
        with pytest.raises(pool.PoolTaskError, match="chunk 0"):
            two_workers.run("no-such-kind", [[1], [2], [3]], None, None, True)
        # Workers survive task errors: the pool still runs real work.
        outcomes = two_workers.run(
            "acl-overlap", [[acl] for acl in _acls(count=2)], None, None, True
        )
        assert len(outcomes) == 2

    def test_dead_worker_breaks_and_closes_the_pool(self, two_workers):
        two_workers.ensure_workers(2)
        victim = two_workers._workers[0].process
        victim.terminate()
        victim.join()
        with pytest.raises(pool.PoolBrokenError):
            two_workers.run(
                "acl-overlap", [[acl] for acl in _acls(count=4)], None, None,
                True,
            )
        assert two_workers.closed
        with pytest.raises(pool.PoolBrokenError, match="closed"):
            two_workers.run("acl-overlap", [[_acls(count=1)[0]]], None, None,
                            True)

    def test_grow_raises_target_only(self, two_workers):
        two_workers.grow(1)
        assert two_workers.target == 2
        two_workers.grow(5)
        assert two_workers.target == 5


class TestSharedPool:
    @pytest.fixture(autouse=True)
    def _clean_shared(self):
        pool.shutdown_shared_pool()
        yield
        pool.shutdown_shared_pool()

    def test_reused_and_grown(self):
        first = pool.get_shared_pool(1)
        second = pool.get_shared_pool(3)
        assert second is first
        assert first.target == 3

    def test_broken_pool_replaced(self):
        first = pool.get_shared_pool(1)
        first.close()
        second = pool.get_shared_pool(1)
        assert second is not first
        assert not second.closed

    def test_warm_pool_forks_eagerly(self):
        warmed = pool.warm_pool(2)
        assert warmed.size == 2


class TestCampaignFallback:
    @pytest.fixture(autouse=True)
    def _clean_shared(self):
        pool.shutdown_shared_pool()
        yield
        pool.shutdown_shared_pool()

    def test_broken_pool_falls_back_in_process(self):
        acls = _acls()
        expected = campaign.acl_overlap_campaign(acls, workers=1, chunks=2)
        shared = pool.warm_pool(2)
        for worker in shared._workers:
            worker.process.terminate()
            worker.process.join()
        result = campaign.acl_overlap_campaign(
            acls, workers=2, chunks=2, pool="persistent"
        )
        assert result.results == expected.results
        assert result.counters == expected.counters
        assert shared.closed

    def test_task_error_reraises_real_exception(self):
        # chain-overlap with a None store errors identically in a worker
        # and in-process; the pooled run must surface the *real* error,
        # not a PoolTaskError wrapper.
        with pytest.raises(AttributeError):
            campaign.chain_overlap_campaign(
                [("A", "B")], None, workers=2, chunks=2, pool="persistent"
            )
