"""Tests for the ``repro.perf`` cache layer and campaign runner."""
