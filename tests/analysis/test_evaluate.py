"""Tests for concrete route-map and ACL evaluation."""

from repro.analysis import eval_acl, eval_route_map
from repro.config import parse_config
from repro.route import BgpRoute, Packet

ISP_OUT = """
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
"""


class TestRouteMapEvaluation:
    def setup_method(self):
        self.store = parse_config(ISP_OUT)
        self.rm = self.store.route_map("ISP_OUT")

    def test_stanza_10_denies_asn_32_origin(self):
        route = BgpRoute.build("50.0.0.0/8", as_path=[100, 32], local_preference=300)
        result = eval_route_map(self.rm, self.store, route)
        assert result.action == "deny"
        assert result.stanza_seq == 10
        assert result.output is None

    def test_stanza_20_denies_d1_prefixes(self):
        route = BgpRoute.build("10.5.0.0/24", local_preference=300)
        result = eval_route_map(self.rm, self.store, route)
        assert result.action == "deny"
        assert result.stanza_seq == 20

    def test_stanza_30_permits_lp_300(self):
        route = BgpRoute.build("50.0.0.0/8", local_preference=300)
        result = eval_route_map(self.rm, self.store, route)
        assert result.action == "permit"
        assert result.stanza_seq == 30
        assert result.output == route

    def test_implicit_deny(self):
        route = BgpRoute.build("50.0.0.0/8", local_preference=100)
        result = eval_route_map(self.rm, self.store, route)
        assert result.action == "deny"
        assert result.stanza_seq is None

    def test_set_clauses_applied(self):
        text = ISP_OUT + """
route-map TRANSFORM permit 10
 set metric 55
 set community 300:3 additive
 set as-path prepend 65000
"""
        store = parse_config(text)
        rm = store.route_map("TRANSFORM")
        route = BgpRoute.build("50.0.0.0/8", as_path=[7], communities=["1:1"])
        result = eval_route_map(rm, store, route)
        assert result.permitted()
        assert result.output.metric == 55
        assert result.output.communities == frozenset({"1:1", "300:3"})
        assert result.output.asns() == [65000, 7]

    def test_set_community_replace(self):
        text = """
route-map R permit 10
 set community 9:9
"""
        store = parse_config(text)
        route = BgpRoute.build("50.0.0.0/8", communities=["1:1", "2:2"])
        result = eval_route_map(store.route_map("R"), store, route)
        assert result.output.communities == frozenset({"9:9"})

    def test_empty_stanza_matches_everything(self):
        store = parse_config("route-map ANY permit 10")
        result = eval_route_map(
            store.route_map("ANY"), store, BgpRoute.build("1.2.3.0/24")
        )
        assert result.permitted()

    def test_render_matches_paper_format(self):
        route = BgpRoute.build(
            "100.0.0.0/16",
            as_path=[32],
            communities=["300:3"],
            metric=55,
        )
        store = parse_config("route-map ANY permit 10")
        result = eval_route_map(store.route_map("ANY"), store, route)
        text = result.render()
        assert "ACTION: permit" in text
        assert "Network: 100.0.0.0/16" in text
        assert '"asns": [32]' in text
        assert 'Communities: ["300:3"]' in text
        assert "Metric: 55" in text

    def test_deny_render(self):
        store = parse_config("route-map NOPE deny 10")
        result = eval_route_map(
            store.route_map("NOPE"), store, BgpRoute.build("1.2.3.0/24")
        )
        assert result.render() == "ACTION: deny"


class TestAclEvaluation:
    ACL = """
ip access-list extended FILTER
 10 deny tcp 10.0.0.0 0.255.255.255 any eq 22
 20 permit tcp 10.0.0.0 0.255.255.255 any
 30 permit udp any any range 5000 6000
"""

    def setup_method(self):
        self.acl = parse_config(self.ACL).acl("FILTER")

    def test_first_match_wins(self):
        denied = Packet.build("10.1.1.1", "8.8.8.8", dst_port=22)
        assert eval_acl(self.acl, denied).action == "deny"
        assert eval_acl(self.acl, denied).rule_seq == 10
        permitted = Packet.build("10.1.1.1", "8.8.8.8", dst_port=80)
        assert eval_acl(self.acl, permitted).action == "permit"
        assert eval_acl(self.acl, permitted).rule_seq == 20

    def test_implicit_deny(self):
        packet = Packet.build("11.1.1.1", "8.8.8.8", dst_port=80)
        result = eval_acl(self.acl, packet)
        assert result.action == "deny"
        assert result.rule_seq is None

    def test_udp_range(self):
        inside = Packet.build("9.9.9.9", "8.8.8.8", protocol=17, dst_port=5500)
        outside = Packet.build("9.9.9.9", "8.8.8.8", protocol=17, dst_port=4999)
        assert eval_acl(self.acl, inside).permitted()
        assert not eval_acl(self.acl, outside).permitted()
