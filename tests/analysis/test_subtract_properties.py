"""Property tests for the exact rectangle-carving subtraction.

``PacketRegion.subtract_region`` is the workhorse keeping first-match
reachability linear on corpus-size ACLs; its contract: the returned
pieces are pairwise disjoint, disjoint from the subtrahend, and their
union is exactly ``self minus other``.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.headerspace import PacketRegion, PacketSpace
from repro.netaddr import IntervalSet, Ipv4Address
from repro.route import Packet


@st.composite
def small_regions(draw):
    def interval(lo_max, hi_max):
        lo = draw(st.integers(0, lo_max))
        hi = draw(st.integers(lo, hi_max))
        return IntervalSet.closed(lo, hi)

    return PacketRegion(
        src=interval(6, 6),
        dst=interval(6, 6),
        protocol=draw(
            st.sampled_from([IntervalSet.closed(0, 255), IntervalSet.single(6)])
        ),
        dst_ports=interval(6, 6),
        established=draw(
            st.sampled_from(
                [
                    frozenset((True, False)),
                    frozenset((False,)),
                ]
            )
        ),
    )


def probe_packets():
    packets = []
    for src, dst, port in itertools.product(range(0, 8), repeat=3):
        packets.append(
            Packet(
                src_ip=Ipv4Address(src),
                dst_ip=Ipv4Address(dst),
                protocol=6,
                dst_port=port,
            )
        )
    return packets


PROBES = probe_packets()


class TestSubtractRegion:
    @given(small_regions(), small_regions())
    @settings(max_examples=80, deadline=None)
    def test_semantics(self, a, b):
        pieces = a.subtract_region(b)
        for packet in PROBES:
            expected = a.contains(packet) and not b.contains(packet)
            got = any(piece.contains(packet) for piece in pieces)
            assert got == expected

    @given(small_regions(), small_regions())
    @settings(max_examples=80, deadline=None)
    def test_pieces_are_disjoint(self, a, b):
        pieces = a.subtract_region(b)
        for i in range(len(pieces)):
            for j in range(i + 1, len(pieces)):
                assert pieces[i].intersect(pieces[j]).is_empty()

    @given(small_regions(), small_regions())
    @settings(max_examples=80, deadline=None)
    def test_disjoint_regions_untouched(self, a, b):
        if a.intersect(b).is_empty():
            assert a.subtract_region(b) == (a,)

    @given(small_regions())
    @settings(max_examples=40, deadline=None)
    def test_self_subtraction_is_empty(self, a):
        assert a.subtract_region(a) == ()


class TestSpaceSubtract:
    @given(
        st.lists(small_regions(), max_size=3),
        st.lists(small_regions(), max_size=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_space_subtract_semantics(self, regions_a, regions_b):
        space_a = PacketSpace(tuple(regions_a))
        space_b = PacketSpace(tuple(regions_b))
        difference = space_a.subtract(space_b)
        for packet in PROBES:
            expected = space_a.contains(packet) and not space_b.contains(packet)
            assert difference.contains(packet) == expected

    @given(st.lists(small_regions(), max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_complement_round_trip(self, regions):
        space = PacketSpace(tuple(regions))
        double = space.complement().complement()
        for packet in PROBES:
            assert double.contains(packet) == space.contains(packet)
