"""Property tests for differential comparison.

The disambiguator's correctness rests on two guarantees:

* **soundness** — every reported difference is real (validated against
  the concrete evaluator);
* **equivalence soundness** — if ``compare_route_policies`` reports no
  differences, the two policies behave identically on every input (this
  is what lets the disambiguator silently skip an overlapping stanza).

We check both over randomly generated route-maps whose guards live in a
small scalar sub-domain (metric/tag matches) that can be probed
exhaustively, plus transform diversity via set clauses.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import compare_route_policies, eval_route_map
from repro.config import parse_config
from repro.route import BgpRoute

METRIC_DOMAIN = range(0, 4)
TAG_DOMAIN = range(0, 3)


@st.composite
def stanza_lines(draw, seq):
    action = draw(st.sampled_from(["permit", "deny"]))
    lines = [f"route-map RM {action} {seq}"]
    # 0-2 match clauses over the probeable domain.
    if draw(st.booleans()):
        lines.append(f" match metric {draw(st.integers(0, 3))}")
    if draw(st.booleans()):
        lines.append(f" match tag {draw(st.integers(0, 2))}")
    if action == "permit":
        if draw(st.booleans()):
            lines.append(f" set local-preference {draw(st.integers(100, 102))}")
        if draw(st.booleans()):
            lines.append(f" set metric {draw(st.integers(0, 3))}")
        if draw(st.booleans()):
            lines.append(" set community 9:9 additive")
    return lines


@st.composite
def route_maps(draw):
    count = draw(st.integers(0, 3))
    lines = []
    for idx in range(count):
        lines.extend(draw(stanza_lines(10 * (idx + 1))))
    return parse_config("\n".join(lines)) if lines else parse_config("route-map RM deny 10\n match metric 99")


def probe_routes():
    routes = []
    for metric in METRIC_DOMAIN:
        for tag in TAG_DOMAIN:
            routes.append(BgpRoute.build("1.0.0.0/8", metric=metric, tag=tag))
            routes.append(
                BgpRoute.build(
                    "1.0.0.0/8", metric=metric, tag=tag, communities=["9:9"]
                )
            )
    return routes


PROBES = probe_routes()


class TestCompareProperties:
    @given(route_maps(), route_maps())
    @settings(max_examples=60, deadline=None)
    def test_reported_differences_are_real(self, store_a, store_b):
        map_a, map_b = store_a.route_map("RM"), store_b.route_map("RM")
        for diff in compare_route_policies(map_a, map_b, store_a, store_b):
            result_a = eval_route_map(map_a, store_a, diff.route)
            result_b = eval_route_map(map_b, store_b, diff.route)
            assert result_a.behaviour_key() != result_b.behaviour_key()
            assert result_a.behaviour_key() == diff.result_a.behaviour_key()
            assert result_b.behaviour_key() == diff.result_b.behaviour_key()

    @given(route_maps(), route_maps())
    @settings(max_examples=60, deadline=None)
    def test_no_differences_means_equivalent_on_probes(self, store_a, store_b):
        map_a, map_b = store_a.route_map("RM"), store_b.route_map("RM")
        diffs = compare_route_policies(map_a, map_b, store_a, store_b)
        if diffs:
            return
        for route in PROBES:
            result_a = eval_route_map(map_a, store_a, route)
            result_b = eval_route_map(map_b, store_b, route)
            assert result_a.behaviour_key() == result_b.behaviour_key(), route

    @given(route_maps())
    @settings(max_examples=30, deadline=None)
    def test_policy_equivalent_to_itself(self, store):
        rm = store.route_map("RM")
        assert compare_route_policies(rm, rm, store) == []

    @given(route_maps(), route_maps())
    @settings(max_examples=40, deadline=None)
    def test_probe_difference_implies_reported_difference(self, store_a, store_b):
        # Completeness on the probeable fragment: if any probe route
        # distinguishes the policies, compare must report something.
        map_a, map_b = store_a.route_map("RM"), store_b.route_map("RM")
        probed_differ = any(
            eval_route_map(map_a, store_a, r).behaviour_key()
            != eval_route_map(map_b, store_b, r).behaviour_key()
            for r in PROBES
        )
        if not probed_differ:
            return
        assert compare_route_policies(map_a, map_b, store_a, store_b)
