"""Tests for witness de-coinciding in differential comparison.

When two permit stanzas' outputs happen to coincide on a cell witness
(the input metric already equals the ``set metric`` value, the set
community is already on the route, ...) the comparator must nudge the
witness inside the cell until the difference becomes observable — or
prove the stanzas genuinely coincide.  These tests pin both the helper
(:func:`repro.analysis.compare._decoincide`) and the end-to-end paths
through :func:`compare_route_policies`.
"""

from repro.analysis.compare import (
    _decoincide,
    _decoincide_communities,
    compare_route_policies,
    transform_summary,
)
from repro.analysis.routespace import RouteRegion
from repro.config import parse_config
from repro.route import BgpRoute


def _cell() -> RouteRegion:
    return RouteRegion()


def _route(**kwargs) -> BgpRoute:
    return BgpRoute.build("10.0.0.0/8", **kwargs)


def _summary(text: str):
    store = parse_config("route-map S permit 10\n " + text)
    return transform_summary(store.route_map("S").stanzas[0])


class TestDecoincideScalars:
    def test_metric_nudged_off_the_set_value(self):
        route = _route(metric=55)
        nudged = _decoincide(route, _cell(), _summary("set metric 55"), {})
        assert nudged is not None
        assert nudged.metric != 55

    def test_field_set_by_both_sides_is_skipped(self):
        route = _route(metric=55)
        nudged = _decoincide(
            route,
            _cell(),
            _summary("set metric 55"),
            _summary("set metric 55"),
        )
        assert nudged is None

    def test_local_preference_and_tag(self):
        route = _route(local_preference=300, tag=7)
        nudged = _decoincide(
            route, _cell(), {}, _summary("set local-preference 300")
        )
        assert nudged is not None and nudged.local_preference != 300
        nudged = _decoincide(route, _cell(), _summary("set tag 7"), {})
        assert nudged is not None and nudged.tag != 7

    def test_weight_flips(self):
        nudged = _decoincide(
            _route(weight=0), _cell(), _summary("set weight 0"), {}
        )
        assert nudged is not None and nudged.weight == 1
        nudged = _decoincide(
            _route(weight=5), _cell(), _summary("set weight 5"), {}
        )
        assert nudged is not None and nudged.weight == 0

    def test_next_hop_moves_off_the_set_address(self):
        route = _route()
        summary = _summary("set ip next-hop " + str(route.next_hop))
        nudged = _decoincide(route, _cell(), summary, {})
        assert nudged is not None
        assert str(nudged.next_hop) != str(route.next_hop)

    def test_prepend_never_needs_a_nudge(self):
        nudged = _decoincide(
            _route(), _cell(), _summary("set as-path prepend 65000"), {}
        )
        assert nudged is None

    def test_no_transforms_no_nudge(self):
        assert _decoincide(_route(), _cell(), {}, {}) is None


class TestDecoincideCommunities:
    def test_fresh_community_added(self):
        route = _route(communities=["65000:1"])
        nudged = _decoincide_communities(
            route, _cell(), (("65000:1",), False)
        )
        assert nudged is not None
        added = set(nudged.communities) - set(route.communities)
        assert len(added) == 1
        assert added.pop() not in {"65000:1"}

    def test_forbidden_patterns_respected(self):
        # The cell forbids the first few candidate communities; the
        # helper must skip them and still find a fresh one.
        cell = RouteRegion(
            communities_forbidden=frozenset(
                {f"{seed}:99" for seed in range(64000, 64010)}
            )
        )
        nudged = _decoincide_communities(_route(), cell, ((), False))
        assert nudged is not None
        added = set(nudged.communities)
        assert added and not (added & cell.communities_forbidden)
        assert cell.contains(nudged)

    def test_via_decoincide_dispatch(self):
        route = _route(communities=["65000:1"])
        nudged = _decoincide(
            route, _cell(), _summary("set community 65000:1"), {}
        )
        assert nudged is not None
        assert set(nudged.communities) > set(route.communities)


COINCIDENT_METRIC = """
ip prefix-list P seq 10 permit 10.0.0.0/8 le 24
route-map RM permit 10
 match ip address prefix-list P
 set metric 0
"""

PLAIN_PERMIT = """
ip prefix-list P seq 10 permit 10.0.0.0/8 le 24
route-map RM permit 10
 match ip address prefix-list P
"""

COINCIDENT_COMMUNITY = """
ip community-list standard CL permit 65000:1
route-map RM permit 10
 match community CL
 set community 65000:1
"""

PLAIN_COMMUNITY_PERMIT = """
ip community-list standard CL permit 65000:1
route-map RM permit 10
 match community CL
"""


class TestEndToEnd:
    def _compare(self, text_a, text_b):
        store_a, store_b = parse_config(text_a), parse_config(text_b)
        return compare_route_policies(
            store_a.route_map("RM"),
            store_b.route_map("RM"),
            store_a,
            store_b,
            max_differences=1,
        )

    def test_coincident_metric_witness_is_nudged(self):
        # The cell witness has metric 0, and side A sets metric 0 — the
        # outputs coincide until the witness metric is nudged.
        differences = self._compare(COINCIDENT_METRIC, PLAIN_PERMIT)
        assert differences
        diff = differences[0]
        assert diff.route.metric != 0
        assert diff.result_a.output.metric == 0
        assert diff.result_b.output.metric == diff.route.metric

    def test_coincident_community_witness_is_nudged(self):
        # Both sides see a route already tagged 65000:1; the replace-set
        # is invisible until a fresh community is added to the input.
        differences = self._compare(
            COINCIDENT_COMMUNITY, PLAIN_COMMUNITY_PERMIT
        )
        assert differences
        diff = differences[0]
        assert set(diff.route.communities) > {"65000:1"}
        assert set(diff.result_a.output.communities) == {"65000:1"}
        assert set(diff.result_b.output.communities) == set(
            diff.route.communities
        )

    def test_genuinely_identical_stanzas_have_no_difference(self):
        assert self._compare(COINCIDENT_METRIC, COINCIDENT_METRIC) == []
