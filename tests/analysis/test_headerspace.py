"""Tests for symbolic packet spaces and ACL reachability."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import PacketRegion, PacketSpace, acl_reachable_spaces
from repro.analysis.headerspace import (
    HeaderSpaceError,
    acl_rule_region,
    wildcard_to_intervals,
)
from repro.config import parse_config
from repro.netaddr import IntervalSet, Ipv4Address, Ipv4Wildcard
from repro.route import Packet

ACL_TEXT = """
ip access-list extended FILTER
 10 deny tcp 10.0.0.0 0.255.255.255 any eq 22
 20 permit tcp 10.0.0.0 0.255.255.255 any
 30 permit udp any any range 5000 6000
 40 permit tcp any any established
"""


def probe_packets():
    return [
        Packet.build("10.1.1.1", "8.8.8.8", dst_port=22),
        Packet.build("10.1.1.1", "8.8.8.8", dst_port=80),
        Packet.build("11.1.1.1", "8.8.8.8", dst_port=80),
        Packet.build("11.1.1.1", "8.8.8.8", dst_port=80, tcp_established=True),
        Packet.build("9.9.9.9", "8.8.8.8", protocol=17, dst_port=5500),
        Packet.build("9.9.9.9", "8.8.8.8", protocol=17, dst_port=80),
        Packet.build("9.9.9.9", "8.8.8.8", protocol=1),
    ]


class TestWildcardToIntervals:
    def test_prefix_like(self):
        wc = Ipv4Wildcard(
            Ipv4Address.parse("10.0.0.0"), Ipv4Address.parse("0.255.255.255")
        )
        intervals = wildcard_to_intervals(wc)
        assert intervals.min() == Ipv4Address.parse("10.0.0.0").value
        assert intervals.max() == Ipv4Address.parse("10.255.255.255").value
        assert intervals.size() == 1 << 24

    def test_host(self):
        wc = Ipv4Wildcard.host(Ipv4Address.parse("1.2.3.4"))
        intervals = wildcard_to_intervals(wc)
        assert intervals.size() == 1
        assert intervals.contains(Ipv4Address.parse("1.2.3.4").value)

    def test_scattered_bits(self):
        # Wildcard on one non-trailing bit: two intervals.
        wc = Ipv4Wildcard(
            Ipv4Address.parse("10.0.0.0"), Ipv4Address.parse("0.1.0.255")
        )
        intervals = wildcard_to_intervals(wc)
        assert intervals.size() == 2 * 256
        assert intervals.contains(Ipv4Address.parse("10.0.0.77").value)
        assert intervals.contains(Ipv4Address.parse("10.1.0.77").value)
        assert not intervals.contains(Ipv4Address.parse("10.2.0.77").value)

    def test_pathological_mask_refused(self):
        wc = Ipv4Wildcard(
            Ipv4Address.parse("0.0.0.0"), Ipv4Address.parse("85.85.85.0")
        )
        with pytest.raises(HeaderSpaceError):
            wildcard_to_intervals(wc)


class TestPacketRegion:
    def test_rule_region_agrees_with_concrete_matching(self):
        acl = parse_config(ACL_TEXT).acl("FILTER")
        for rule in acl.rules:
            region = acl_rule_region(rule)
            for packet in probe_packets():
                assert region.contains(packet) == rule.matches(packet), (
                    rule.seq,
                    packet,
                )

    def test_witness_in_region(self):
        acl = parse_config(ACL_TEXT).acl("FILTER")
        for rule in acl.rules:
            region = acl_rule_region(rule)
            witness = region.witness()
            assert witness is not None
            assert rule.matches(witness)

    def test_established_only_region_needs_tcp(self):
        region = PacketRegion(
            protocol=IntervalSet.single(17), established=frozenset((True,))
        )
        assert region.is_empty()

    def test_established_witness_is_tcp(self):
        region = PacketRegion(established=frozenset((True,)))
        witness = region.witness()
        assert witness.protocol == 6
        assert witness.tcp_established

    def test_negation_covers_complement(self):
        acl = parse_config(ACL_TEXT).acl("FILTER")
        region = acl_rule_region(acl.rules[0])
        negation = PacketSpace(region.negation_regions())
        for packet in probe_packets():
            assert negation.contains(packet) != region.contains(packet)


class TestAclReachability:
    def test_reaches_agree_with_evaluator(self):
        from repro.analysis import eval_acl

        acl = parse_config(ACL_TEXT).acl("FILTER")
        reaches = acl_reachable_spaces(acl, include_implicit_deny=True)
        for packet in probe_packets():
            result = eval_acl(acl, packet)
            for rule, space in reaches:
                seq = rule.seq if rule is not None else None
                assert space.contains(packet) == (result.rule_seq == seq), (
                    seq,
                    packet,
                )

    def test_reach_witnesses_hit_their_rule(self):
        from repro.analysis import eval_acl

        acl = parse_config(ACL_TEXT).acl("FILTER")
        for rule, space in acl_reachable_spaces(acl, include_implicit_deny=True):
            witness = space.witness()
            assert witness is not None
            result = eval_acl(acl, witness)
            assert result.rule_seq == (rule.seq if rule is not None else None)

    def test_shadowed_rule_has_empty_reach(self):
        text = """
ip access-list extended SHADOW
 10 permit tcp any any
 20 deny tcp host 1.1.1.1 any
"""
        acl = parse_config(text).acl("SHADOW")
        reaches = dict(
            (rule.seq if rule else None, space)
            for rule, space in acl_reachable_spaces(acl)
        )
        assert reaches[20].is_empty()


class TestPacketSpaceProperties:
    @st.composite
    @staticmethod
    def small_regions(draw):
        lo = draw(st.integers(0, 200))
        hi = draw(st.integers(lo, 200))
        plo = draw(st.integers(0, 100))
        phi = draw(st.integers(plo, 100))
        return PacketRegion(
            src=IntervalSet.closed(lo, hi), dst_ports=IntervalSet.closed(plo, phi)
        )

    @given(small_regions(), small_regions())
    @settings(max_examples=30)
    def test_intersection_semantics(self, a, b):
        space = PacketSpace.of(a).intersect(PacketSpace.of(b))
        for src in (0, 50, 150, 200):
            for port in (0, 50, 100):
                packet = Packet(
                    src_ip=Ipv4Address(src),
                    dst_ip=Ipv4Address(0),
                    dst_port=port,
                )
                expected = a.contains(packet) and b.contains(packet)
                assert space.contains(packet) == expected

    @given(small_regions())
    @settings(max_examples=30)
    def test_complement_semantics(self, a):
        space = PacketSpace.of(a).complement()
        for src in (0, 50, 150, 200, 201):
            for port in (0, 50, 100, 101):
                packet = Packet(
                    src_ip=Ipv4Address(src),
                    dst_ip=Ipv4Address(0),
                    dst_port=port,
                )
                assert space.contains(packet) != a.contains(packet)
