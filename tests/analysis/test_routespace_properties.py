"""Property tests: symbolic route-space algebra vs concrete evaluation.

Guards are generated over a finite probe domain that covers every field
kind (prefixes, communities, AS paths, scalars); each symbolic operation
(intersection, negation, subtraction, reachability) is checked against
exhaustive concrete probing.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.evaluate import eval_route_map, stanza_matches
from repro.analysis.routespace import (
    route_map_reachable_spaces,
    stanza_guard_space,
)
from repro.config import parse_config
from repro.route import BgpRoute

LISTS_TEXT = """
ip prefix-list PL_A seq 5 permit 10.0.0.0/8 le 16
ip prefix-list PL_B seq 5 deny 10.1.0.0/16
ip prefix-list PL_B seq 10 permit 10.0.0.0/8 le 24
ip community-list expanded CL_X permit _65000:1_
ip community-list expanded CL_Y deny ^65000:2$
ip community-list expanded CL_Y permit ^65000:
ip as-path access-list AL_P permit _100$
ip as-path access-list AL_Q deny _666_
ip as-path access-list AL_Q permit .*
"""

MATCH_CLAUSES = [
    " match ip address prefix-list PL_A",
    " match ip address prefix-list PL_B",
    " match community CL_X",
    " match community CL_Y",
    " match as-path AL_P",
    " match as-path AL_Q",
    " match local-preference 300",
    " match metric 5",
]


def probe_routes():
    networks = ["10.0.0.0/8", "10.1.0.0/16", "10.2.0.0/16", "10.1.2.0/24", "99.0.0.0/8"]
    community_sets = [(), ("65000:1",), ("65000:2",), ("65000:1", "65000:3")]
    paths = [(), (100,), (7, 100), (100, 7), (666, 100)]
    lps = [100, 300]
    routes = []
    for network, communities, path in itertools.product(
        networks, community_sets, paths
    ):
        routes.append(
            BgpRoute.build(
                network,
                as_path=path,
                communities=communities,
                local_preference=100,
            )
        )
    routes.append(BgpRoute.build("10.0.0.0/8", local_preference=300))
    routes.append(BgpRoute.build("10.0.0.0/8", metric=5))
    return routes


PROBES = probe_routes()


@st.composite
def stanzas(draw):
    clauses = draw(st.lists(st.sampled_from(MATCH_CLAUSES), max_size=2, unique=True))
    action = draw(st.sampled_from(["permit", "deny"]))
    text = LISTS_TEXT + f"route-map RM {action} 10\n" + "\n".join(clauses)
    store = parse_config(text)
    return store, store.route_map("RM").stanzas[0]


class TestGuardSemantics:
    @given(stanzas())
    @settings(max_examples=80, deadline=None)
    def test_guard_space_matches_concrete(self, case):
        store, stanza = case
        guard = stanza_guard_space(stanza, store)
        for route in PROBES:
            assert guard.contains(route) == stanza_matches(stanza, route, store)

    @given(stanzas())
    @settings(max_examples=60, deadline=None)
    def test_complement_partitions_probes(self, case):
        store, stanza = case
        guard = stanza_guard_space(stanza, store)
        complement = guard.complement()
        for route in PROBES:
            assert guard.contains(route) != complement.contains(route)

    @given(stanzas(), stanzas())
    @settings(max_examples=60, deadline=None)
    def test_intersection_matches_conjunction(self, case_a, case_b):
        store_a, stanza_a = case_a
        store_b, stanza_b = case_b
        guard_a = stanza_guard_space(stanza_a, store_a)
        guard_b = stanza_guard_space(stanza_b, store_b)
        both = guard_a.intersect(guard_b)
        for route in PROBES:
            expected = guard_a.contains(route) and guard_b.contains(route)
            assert both.contains(route) == expected

    @given(stanzas(), stanzas())
    @settings(max_examples=40, deadline=None)
    def test_emptiness_agrees_with_probing_one_way(self, case_a, case_b):
        # Symbolic emptiness is exact, probing is not exhaustive over the
        # infinite domain: empty => no probe inside.
        store_a, stanza_a = case_a
        store_b, stanza_b = case_b
        both = stanza_guard_space(stanza_a, store_a).intersect(
            stanza_guard_space(stanza_b, store_b)
        )
        if both.is_empty():
            for route in PROBES:
                assert not both.contains(route)

    @given(stanzas(), stanzas())
    @settings(max_examples=40, deadline=None)
    def test_nonempty_witness_is_contained(self, case_a, case_b):
        store_a, stanza_a = case_a
        store_b, stanza_b = case_b
        both = stanza_guard_space(stanza_a, store_a).intersect(
            stanza_guard_space(stanza_b, store_b)
        )
        witness = both.witness()
        if witness is not None:
            assert both.contains(witness)
            assert stanza_matches(stanza_a, witness, store_a)
            assert stanza_matches(stanza_b, witness, store_b)


@st.composite
def multi_stanza_maps(draw):
    count = draw(st.integers(1, 4))
    lines = [LISTS_TEXT]
    for idx in range(count):
        action = draw(st.sampled_from(["permit", "deny"]))
        lines.append(f"route-map RM {action} {10 * (idx + 1)}")
        clauses = draw(
            st.lists(st.sampled_from(MATCH_CLAUSES), max_size=2, unique=True)
        )
        lines.extend(clauses)
    store = parse_config("\n".join(lines))
    return store, store.route_map("RM")


class TestReachabilitySemantics:
    @given(multi_stanza_maps())
    @settings(max_examples=40, deadline=None)
    def test_reaches_partition_probe_routes(self, case):
        store, rm = case
        reaches = route_map_reachable_spaces(rm, store, include_implicit_deny=True)
        for route in PROBES:
            containing = [
                (stanza.seq if stanza else None)
                for stanza, space in reaches
                if space.contains(route)
            ]
            assert len(containing) == 1, (route, containing)
            assert containing[0] == eval_route_map(rm, store, route).stanza_seq
