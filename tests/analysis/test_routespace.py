"""Tests for symbolic route spaces: guards, reachability, witnesses."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    RouteRegion,
    RouteSpace,
    route_map_reachable_spaces,
    stanza_guard_space,
)
from repro.analysis.routespace import (
    as_path_list_dnf,
    community_list_dnf,
    prefix_list_space,
)
from repro.config import parse_config
from repro.netaddr import IntervalSet, Ipv4Prefix
from repro.route import BgpRoute

ISP_OUT = """
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
"""


def routes_for_probing():
    return [
        BgpRoute.build("10.5.0.0/24", local_preference=300),
        BgpRoute.build("10.5.0.0/25"),
        BgpRoute.build("20.0.1.0/24", as_path=[32]),
        BgpRoute.build("1.0.0.0/24", local_preference=300),
        BgpRoute.build("1.0.0.0/20"),
        BgpRoute.build("50.0.0.0/8", as_path=[100, 32], local_preference=300),
        BgpRoute.build("50.0.0.0/8", as_path=[32, 100]),
        BgpRoute.build("50.0.0.0/8", local_preference=300),
        BgpRoute.build("50.0.0.0/8", communities=["300:3"]),
        BgpRoute.build("100.0.0.0/16", as_path=[32], communities=["300:3"]),
    ]


class TestPrefixListSpace:
    def test_permitted_space_matches_concrete(self):
        store = parse_config(ISP_OUT)
        pl = store.prefix_list("D1")
        space = prefix_list_space(pl)
        for text in [
            "10.0.0.0/8",
            "10.5.0.0/24",
            "10.5.0.0/25",
            "20.0.0.0/16",
            "20.0.1.0/30",
            "1.0.0.0/20",
            "1.0.1.0/24",
            "1.0.0.0/32",
            "99.0.0.0/8",
        ]:
            network = Ipv4Prefix.parse(text)
            assert space.contains(network) == pl.permits(network), text

    def test_deny_entries_shadow(self):
        text = """
ip prefix-list L seq 10 deny 10.1.0.0/16 le 32
ip prefix-list L seq 20 permit 10.0.0.0/8 le 32
"""
        store = parse_config(text)
        pl = store.prefix_list("L")
        space = prefix_list_space(pl)
        for probe in ["10.1.0.0/16", "10.1.2.0/24", "10.2.0.0/16", "10.0.0.0/8"]:
            network = Ipv4Prefix.parse(probe)
            assert space.contains(network) == pl.permits(network), probe


class TestListDnf:
    def test_community_list_with_deny(self):
        text = """
ip community-list expanded C deny ^300:1$
ip community-list expanded C permit ^300:
"""
        store = parse_config(text)
        dnf = community_list_dnf(store.community_list("C"))
        assert dnf == [(frozenset({"^300:"}), frozenset({"^300:1$"}))]

    def test_standard_community_list_expansion(self):
        text = "ip community-list standard S permit 100:1 100:2"
        store = parse_config(text)
        dnf = community_list_dnf(store.community_list("S"))
        assert len(dnf) == 1
        required, forbidden = dnf[0]
        assert len(required) == 2
        assert not forbidden

    def test_as_path_list_with_deny(self):
        text = """
ip as-path access-list A deny _100_
ip as-path access-list A permit .*
"""
        store = parse_config(text)
        dnf = as_path_list_dnf(store.as_path_list("A"))
        assert dnf == [(frozenset({".*"}), frozenset({"_100_"}))]


class TestStanzaGuards:
    def test_guard_agrees_with_concrete_matching(self):
        store = parse_config(ISP_OUT)
        rm = store.route_map("ISP_OUT")
        from repro.analysis.evaluate import stanza_matches

        for stanza in rm.stanzas:
            guard = stanza_guard_space(stanza, store)
            for route in routes_for_probing():
                assert guard.contains(route) == stanza_matches(
                    stanza, route, store
                ), (stanza.seq, route.network)

    def test_guard_witness_is_in_guard(self):
        store = parse_config(ISP_OUT)
        rm = store.route_map("ISP_OUT")
        from repro.analysis.evaluate import stanza_matches

        for stanza in rm.stanzas:
            guard = stanza_guard_space(stanza, store)
            witness = guard.witness()
            assert witness is not None
            assert stanza_matches(stanza, witness, store)


class TestReachableSpaces:
    def test_reaches_agree_with_evaluator(self):
        store = parse_config(ISP_OUT)
        rm = store.route_map("ISP_OUT")
        from repro.analysis.evaluate import eval_route_map

        reaches = route_map_reachable_spaces(rm, store, include_implicit_deny=True)
        for route in routes_for_probing():
            result = eval_route_map(rm, store, route)
            for stanza, space in reaches:
                seq = stanza.seq if stanza is not None else None
                expected = result.stanza_seq == seq
                assert space.contains(route) == expected, (seq, route.network)

    def test_reach_witnesses_hit_their_stanza(self):
        store = parse_config(ISP_OUT)
        rm = store.route_map("ISP_OUT")
        from repro.analysis.evaluate import eval_route_map

        reaches = route_map_reachable_spaces(rm, store, include_implicit_deny=True)
        for stanza, space in reaches:
            witness = space.witness()
            assert witness is not None
            result = eval_route_map(rm, store, witness)
            expected_seq = stanza.seq if stanza is not None else None
            assert result.stanza_seq == expected_seq


class TestRouteRegion:
    def test_witness_prefers_defaults(self):
        region = RouteRegion()
        witness = region.witness()
        assert witness.local_preference == 100
        assert witness.metric == 0

    def test_witness_respects_constraints(self):
        region = RouteRegion(
            communities_required=frozenset({"_300:3_"}),
            as_path_required=frozenset({"_32$"}),
            local_preference=IntervalSet.single(300),
        )
        witness = region.witness()
        assert witness is not None
        assert region.contains(witness)
        assert witness.local_preference == 300
        assert witness.asns()[-1] == 32

    def test_unsatisfiable_community_constraint(self):
        region = RouteRegion(
            communities_required=frozenset({"^300:3$"}),
            communities_forbidden=frozenset({"^300:"}),
        )
        assert region.is_empty()
        assert region.witness() is None

    def test_unsatisfiable_as_path_constraint(self):
        region = RouteRegion(
            as_path_required=frozenset({"^$"}),
            as_path_forbidden=frozenset({"^$"}),
        )
        assert region.is_empty()

    def test_negation_covers_complement(self):
        region = RouteRegion(
            communities_required=frozenset({"_300:3_"}),
            local_preference=IntervalSet.single(300),
        )
        negation = RouteSpace(region.negation_regions())
        probes = [
            BgpRoute.build("1.0.0.0/8", communities=["300:3"], local_preference=300),
            BgpRoute.build("1.0.0.0/8", communities=["300:3"]),
            BgpRoute.build("1.0.0.0/8", local_preference=300),
            BgpRoute.build("1.0.0.0/8"),
        ]
        for route in probes:
            assert negation.contains(route) != region.contains(route)

    def test_space_subtract(self):
        everything = RouteSpace.universe()
        lp300 = RouteSpace.of(RouteRegion(local_preference=IntervalSet.single(300)))
        rest = everything.subtract(lp300)
        assert not rest.contains(BgpRoute.build("1.0.0.0/8", local_preference=300))
        assert rest.contains(BgpRoute.build("1.0.0.0/8", local_preference=100))

    @given(st.integers(0, 1000), st.integers(0, 1000))
    @settings(max_examples=30)
    def test_scalar_region_intersection(self, a, b):
        ra = RouteRegion(metric=IntervalSet.closed(0, a))
        rb = RouteRegion(metric=IntervalSet.closed(b, 2000))
        both = ra.intersect(rb)
        route = BgpRoute.build("1.0.0.0/8", metric=min(a, b))
        assert both.contains(route) == (b <= min(a, b) <= a)
