"""Tests for differential comparison and spec search.

The central test reproduces the paper's §2.2 walkthrough: inserting the
synthesised stanza at the top vs the bottom of ISP_OUT must yield a
differential route shaped like the paper's example (network 100.0.0.0/16,
AS path ending in 32, community 300:3), with OPTION 1 = permit + metric 55
and OPTION 2 = deny.
"""

from repro.analysis import (
    compare_filters,
    compare_route_policies,
    eval_route_map,
    search_filters,
    search_route_policies,
)
from repro.analysis.headerspace import PacketRegion, PacketSpace
from repro.analysis.routespace import RouteRegion, RouteSpace
from repro.analysis.prefixspace import PrefixAtom, PrefixSpace
from repro.config import parse_config
from repro.netaddr import IntervalSet, Ipv4Prefix

TOP_INSERTED = """
ip as-path access-list D0 permit _32$
ip community-list expanded D2 permit _300:3_
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
ip prefix-list D3 permit 100.0.0.0/16 le 23
route-map ISP_OUT permit 10
 match community D2
 match ip address prefix-list D3
 set metric 55
route-map ISP_OUT deny 20
 match as-path D0
route-map ISP_OUT deny 30
 match ip address prefix-list D1
route-map ISP_OUT permit 40
 match local-preference 300
"""

BOTTOM_INSERTED = """
ip as-path access-list D0 permit _32$
ip community-list expanded D2 permit _300:3_
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
ip prefix-list D3 permit 100.0.0.0/16 le 23
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
route-map ISP_OUT permit 40
 match community D2
 match ip address prefix-list D3
 set metric 55
"""


class TestPaperDifferentialExample:
    def test_top_vs_bottom_insertion_differs(self):
        store_a = parse_config(TOP_INSERTED)
        store_b = parse_config(BOTTOM_INSERTED)
        diffs = compare_route_policies(
            store_a.route_map("ISP_OUT"),
            store_b.route_map("ISP_OUT"),
            store_a,
            store_b,
        )
        assert diffs
        # The paper's example: a route matching both the new stanza and an
        # original deny stanza.  At the top it is permitted with metric 55;
        # at the bottom the deny wins.
        shaped = [
            d
            for d in diffs
            if d.result_a.action == "permit" and d.result_b.action == "deny"
        ]
        assert shaped
        example = shaped[0]
        assert example.result_a.output.metric == 55
        assert "300:3" in example.route.communities
        # The route is permitted by stanza 10 of (a) and denied by (b).
        assert example.result_a.stanza_seq == 10

    def test_differences_are_real(self):
        store_a = parse_config(TOP_INSERTED)
        store_b = parse_config(BOTTOM_INSERTED)
        map_a = store_a.route_map("ISP_OUT")
        map_b = store_b.route_map("ISP_OUT")
        for diff in compare_route_policies(map_a, map_b, store_a, store_b):
            ra = eval_route_map(map_a, store_a, diff.route)
            rb = eval_route_map(map_b, store_b, diff.route)
            assert ra.behaviour_key() != rb.behaviour_key()
            assert ra.behaviour_key() == diff.result_a.behaviour_key()
            assert rb.behaviour_key() == diff.result_b.behaviour_key()

    def test_render_format(self):
        store_a = parse_config(TOP_INSERTED)
        store_b = parse_config(BOTTOM_INSERTED)
        diffs = compare_route_policies(
            store_a.route_map("ISP_OUT"),
            store_b.route_map("ISP_OUT"),
            store_a,
            store_b,
            max_differences=1,
        )
        text = diffs[0].render()
        assert "OPTION 1:" in text
        assert "OPTION 2:" in text
        assert "Network:" in text

    def test_identical_policies_have_no_differences(self):
        store = parse_config(TOP_INSERTED)
        rm = store.route_map("ISP_OUT")
        assert compare_route_policies(rm, rm, store) == []


class TestTransformCoincidence:
    def test_set_metric_vs_nothing_found_even_with_overlap(self):
        # Both stanzas permit the same space; one sets metric 55.  A naive
        # witness (metric defaults to 0) still differs, but a region that
        # *requires* metric 55 must be recognised as behaviourally equal.
        text_a = """
route-map RM permit 10
 match metric 55
 set metric 55
"""
        text_b = """
route-map RM permit 10
 match metric 55
"""
        store_a = parse_config(text_a)
        store_b = parse_config(text_b)
        diffs = compare_route_policies(
            store_a.route_map("RM"), store_b.route_map("RM"), store_a, store_b
        )
        assert diffs == []

    def test_set_metric_vs_nothing_differs_on_open_region(self):
        store_a = parse_config("route-map RM permit 10\n set metric 55")
        store_b = parse_config("route-map RM permit 10")
        diffs = compare_route_policies(
            store_a.route_map("RM"), store_b.route_map("RM"), store_a, store_b
        )
        assert diffs
        assert diffs[0].result_a.output.metric == 55
        assert diffs[0].result_b.output.metric != 55

    def test_set_community_replace_vs_nothing(self):
        # A route already carrying exactly the replaced communities would
        # coincide; the comparator must find a distinguishing route.
        store_a = parse_config("route-map RM permit 10\n set community 9:9")
        store_b = parse_config("route-map RM permit 10")
        diffs = compare_route_policies(
            store_a.route_map("RM"), store_b.route_map("RM"), store_a, store_b
        )
        assert diffs
        d = diffs[0]
        assert d.result_a.output.communities != d.result_b.output.communities

    def test_prepend_always_differs(self):
        store_a = parse_config("route-map RM permit 10\n set as-path prepend 65000")
        store_b = parse_config("route-map RM permit 10")
        diffs = compare_route_policies(
            store_a.route_map("RM"), store_b.route_map("RM"), store_a, store_b
        )
        assert diffs
        assert diffs[0].result_a.output.asns()[:1] == [65000]


class TestCompareFilters:
    def test_acl_rule_order_difference(self):
        text_a = """
ip access-list extended A
 10 deny tcp 10.0.0.0 0.255.255.255 any eq 22
 20 permit tcp any any
"""
        text_b = """
ip access-list extended B
 10 permit tcp any any
 20 deny tcp 10.0.0.0 0.255.255.255 any eq 22
"""
        acl_a = parse_config(text_a).acl("A")
        acl_b = parse_config(text_b).acl("B")
        diffs = compare_filters(acl_a, acl_b)
        assert diffs
        packet = diffs[0].packet
        assert packet.dst_port == 22
        assert str(packet.src_ip).startswith("10.")
        assert {diffs[0].result_a.action, diffs[0].result_b.action} == {
            "permit",
            "deny",
        }

    def test_equivalent_acls(self):
        text = """
ip access-list extended A
 10 permit tcp any any
"""
        acl = parse_config(text).acl("A")
        assert compare_filters(acl, acl) == []


class TestSearch:
    def setup_method(self):
        self.store = parse_config(BOTTOM_INSERTED)
        self.rm = self.store.route_map("ISP_OUT")

    def test_search_permit_in_constrained_space(self):
        space = RouteSpace.of(
            RouteRegion(local_preference=IntervalSet.single(300))
        )
        result = search_route_policies(self.rm, self.store, space, "permit")
        assert result.found()
        assert result.route.local_preference == 300
        assert eval_route_map(self.rm, self.store, result.route).permitted()

    def test_search_deny(self):
        space = RouteSpace.of(
            RouteRegion(
                prefix=PrefixSpace.of_atom(
                    PrefixAtom(Ipv4Prefix.parse("10.0.0.0/8"), 8, 24)
                )
            )
        )
        result = search_route_policies(self.rm, self.store, space, "deny")
        assert result.found()
        assert not eval_route_map(self.rm, self.store, result.route).permitted()

    def test_search_unsatisfiable(self):
        # Routes with local-preference 300 not originating anywhere: the
        # route-map permits them, so searching for a deny on a space where
        # every route is permitted must fail.
        space = RouteSpace.of(
            RouteRegion(
                prefix=PrefixSpace.exact(Ipv4Prefix.parse("42.0.0.0/8")),
                local_preference=IntervalSet.single(300),
                as_path_forbidden=frozenset({"_32$"}),
            )
        )
        result = search_route_policies(self.rm, self.store, space, "deny")
        assert not result.found()

    def test_search_filters(self):
        text = """
ip access-list extended A
 10 deny tcp 10.0.0.0 0.255.255.255 any eq 22
 20 permit tcp any any
"""
        acl = parse_config(text).acl("A")
        space = PacketSpace.of(PacketRegion(dst_ports=IntervalSet.single(22)))
        denied = search_filters(acl, space, "deny")
        assert denied.found()
        assert denied.packet.dst_port == 22
        permitted = search_filters(acl, space, "permit")
        assert permitted.found()
        assert not str(permitted.packet.src_ip).startswith("10.")
