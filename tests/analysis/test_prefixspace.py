"""Unit and property tests for the prefix-space algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.prefixspace import PrefixAtom, PrefixSpace
from repro.netaddr import Ipv4Address, Ipv4Prefix


def atom(prefix, lo=None, hi=None):
    p = Ipv4Prefix.parse(prefix)
    return PrefixAtom(p, lo if lo is not None else p.length, hi if hi is not None else 32)


@st.composite
def prefixes(draw):
    length = draw(st.integers(0, 8))
    # Keep networks inside a small universe so brute-force checks are cheap.
    bits = draw(st.integers(0, (1 << length) - 1)) if length else 0
    value = bits << (32 - length) if length else 0
    return Ipv4Prefix(Ipv4Address(value), length)


@st.composite
def atoms(draw):
    covering = draw(prefixes())
    lo = draw(st.integers(covering.length, 8))
    hi = draw(st.integers(lo, 8))
    return PrefixAtom(covering, lo, hi)


def all_test_networks():
    """Every prefix of length <= 8 inside the top 256 /8 blocks... kept tiny."""
    out = []
    for length in range(0, 9):
        step = 1 << (32 - length) if length else 1 << 32
        count = 1 << length
        for i in range(count):
            out.append(Ipv4Prefix(Ipv4Address(i * (1 << (32 - length))), length))
    return out


TEST_NETWORKS = all_test_networks()


class TestPrefixAtom:
    def test_contains_respects_length_window(self):
        a = atom("10.0.0.0/8", 8, 24)
        assert a.contains(Ipv4Prefix.parse("10.0.0.0/8"))
        assert a.contains(Ipv4Prefix.parse("10.1.0.0/16"))
        assert not a.contains(Ipv4Prefix.parse("10.1.2.128/25"))
        assert not a.contains(Ipv4Prefix.parse("11.0.0.0/8"))
        assert not a.contains(Ipv4Prefix.parse("0.0.0.0/0"))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            atom("10.0.0.0/8", 4, 24)
        with pytest.raises(ValueError):
            atom("10.0.0.0/8", 24, 16)

    def test_intersect_nested(self):
        outer = atom("10.0.0.0/8", 8, 24)
        inner = atom("10.1.0.0/16", 16, 32)
        got = outer.intersect(inner)
        assert got == PrefixAtom(Ipv4Prefix.parse("10.1.0.0/16"), 16, 24)

    def test_intersect_disjoint(self):
        assert atom("10.0.0.0/8").intersect(atom("11.0.0.0/8")) is None

    def test_intersect_window_miss(self):
        a = atom("10.0.0.0/8", 8, 15)
        b = atom("10.1.0.0/16", 16, 32)
        assert a.intersect(b) is None

    def test_witness_in_atom(self):
        a = atom("10.0.0.0/8", 12, 24)
        assert a.contains(a.witness())

    def test_universe_contains_everything(self):
        for network in ["0.0.0.0/0", "10.0.0.0/8", "255.255.255.255/32"]:
            assert PrefixAtom.universe().contains(Ipv4Prefix.parse(network))

    @given(atoms())
    @settings(max_examples=50)
    def test_complement_is_exact(self, a):
        complement = a.complement_atoms()
        for network in TEST_NETWORKS:
            in_atom = a.contains(network)
            in_complement = any(c.contains(network) for c in complement)
            assert in_atom != in_complement, (a, network)


class TestPrefixSpace:
    def test_empty_and_universe(self):
        assert PrefixSpace.empty().is_empty()
        assert PrefixSpace.universe().is_universe()
        assert PrefixSpace.universe().complement().is_empty()

    def test_absorption(self):
        space = PrefixSpace((atom("10.0.0.0/8", 8, 32), atom("10.1.0.0/16", 16, 24)))
        assert len(space.atoms) == 1

    def test_subtract(self):
        space = PrefixSpace.of_atom(atom("10.0.0.0/8", 8, 32))
        space = space.subtract(PrefixSpace.of_atom(atom("10.1.0.0/16", 16, 32)))
        assert space.contains(Ipv4Prefix.parse("10.0.0.0/8"))
        assert space.contains(Ipv4Prefix.parse("10.2.0.0/16"))
        assert not space.contains(Ipv4Prefix.parse("10.1.0.0/16"))
        assert not space.contains(Ipv4Prefix.parse("10.1.2.0/24"))

    def test_subset(self):
        inner = PrefixSpace.of_atom(atom("10.1.0.0/16", 16, 24))
        outer = PrefixSpace.of_atom(atom("10.0.0.0/8", 8, 32))
        assert inner.is_subset_of(outer)
        assert not outer.is_subset_of(inner)

    def test_witness(self):
        assert PrefixSpace.empty().witness() is None
        space = PrefixSpace.of_atom(atom("10.0.0.0/8", 12, 24))
        assert space.contains(space.witness())

    @given(atoms(), atoms())
    @settings(max_examples=50)
    def test_intersection_semantics(self, a, b):
        space = PrefixSpace.of_atom(a).intersect(PrefixSpace.of_atom(b))
        for network in TEST_NETWORKS:
            expected = a.contains(network) and b.contains(network)
            assert space.contains(network) == expected

    @given(atoms(), atoms())
    @settings(max_examples=50)
    def test_union_semantics(self, a, b):
        space = PrefixSpace.of_atom(a).union(PrefixSpace.of_atom(b))
        for network in TEST_NETWORKS:
            expected = a.contains(network) or b.contains(network)
            assert space.contains(network) == expected

    @given(atoms(), atoms())
    @settings(max_examples=30)
    def test_subtraction_semantics(self, a, b):
        space = PrefixSpace.of_atom(a).subtract(PrefixSpace.of_atom(b))
        for network in TEST_NETWORKS:
            expected = a.contains(network) and not b.contains(network)
            assert space.contains(network) == expected
