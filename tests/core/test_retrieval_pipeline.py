"""Tests for retrieval-augmented prompting in the synthesis pipeline."""

from repro.core.synthesis import SynthesisPipeline
from repro.llm import PromptDatabase, SimulatedLLM, TaskKind, TranscribingClient
from repro.llm.strategies import ExampleRetriever, build_library

PAPER_PROMPT = (
    "Write a route-map stanza that permits routes containing the prefix "
    "100.0.0.0/16 with mask length less than or equal to 23 and tagged "
    "with the community 300:3. Their MED value should be set to 55."
)


def make_pipeline():
    db = PromptDatabase()
    library = build_library([db.template(k) for k in TaskKind])
    llm = TranscribingClient(SimulatedLLM())
    pipeline = SynthesisPipeline(
        llm, prompts=db, retriever=ExampleRetriever(library, k=1)
    )
    return pipeline, llm


class TestRetrievalAugmentedPipeline:
    def test_synthesis_still_verifies(self):
        pipeline, _llm = make_pipeline()
        result = pipeline.synthesize(PAPER_PROMPT)
        assert result.attempts == 1
        assert result.kind == "route-map"

    def test_retrieved_example_is_relevant(self):
        pipeline, llm = make_pipeline()
        pipeline.synthesize(PAPER_PROMPT)
        synth_calls = [
            r for r in llm.records if r.task is TaskKind.ROUTE_MAP_SYNTH
        ]
        assert synth_calls
        system = synth_calls[0].system
        # Exactly one example (k=1), and it is the most relevant one.
        assert system.count("EXAMPLE 1 PROMPT:") == 1
        assert "EXAMPLE 2 PROMPT:" not in system
        assert "100.0.0.0/16" in system

    def test_acl_query_pulls_acl_example(self):
        pipeline, llm = make_pipeline()
        pipeline.synthesize(
            "Add a rule that denies tcp traffic from 10.0.0.0/8 to host "
            "2.2.2.2 on destination port 22."
        )
        synth_calls = [r for r in llm.records if r.task is TaskKind.ACL_SYNTH]
        assert "tcp traffic" in synth_calls[0].system

    def test_without_retriever_examples_are_fixed(self):
        llm = TranscribingClient(SimulatedLLM())
        pipeline = SynthesisPipeline(llm)
        pipeline.synthesize(PAPER_PROMPT)
        synth_calls = [
            r for r in llm.records if r.task is TaskKind.ROUTE_MAP_SYNTH
        ]
        assert "EXAMPLE 2 PROMPT:" in synth_calls[0].system
