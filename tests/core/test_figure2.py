"""Figure 2 fidelity: the four insertion points and their behaviour classes.

Figure 2 shows the synthesised stanza inserted at four positions in
ISP_OUT: (a) the top, (b) the bottom, (c) between the as-path deny and
the prefix deny, (d) between the prefix deny and the local-pref permit.

The new stanza's match space overlaps stanza 10 (as-path is an
independent dimension) and stanza 30 (local-preference is independent),
but NOT stanza 20 (the D1 prefixes are disjoint from 100.0.0.0/16).
Hence (c) and (d) are behaviourally equivalent — only the order relative
to stanzas 10 and 30 matters — and the disambiguator's three candidate
slots correspond exactly to the classes {a}, {c, d}, {b}.
"""


import pytest

from repro.analysis import compare_route_policies, eval_route_map
from repro.config import parse_config
from repro.config.names import rename_snippet_lists
from repro.core.insertion import insert_stanza_into_store
from repro.core.disambiguator import route_map_overlaps
from repro.route import BgpRoute

ISP_OUT = """
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
"""

SNIPPET = """
ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
"""


@pytest.fixture(scope="module")
def candidates():
    store = parse_config(ISP_OUT)
    snippet = rename_snippet_lists(parse_config(SNIPPET), store)
    built = {}
    for label, position in (("a", 0), ("c", 1), ("d", 2), ("b", 3)):
        built[label] = insert_stanza_into_store(
            store, "ISP_OUT", snippet, position
        )
    return store, snippet, built


class TestFigure2:
    def test_overlaps_are_stanzas_10_and_30(self, candidates):
        store, snippet, _built = candidates
        overlaps = route_map_overlaps(store.route_map("ISP_OUT"), store, snippet)
        assert overlaps == [0, 2]  # stanza 10 and stanza 30, not 20

    def test_c_and_d_are_equivalent(self, candidates):
        _store, _snippet, built = candidates
        store_c, map_c = built["c"]
        store_d, map_d = built["d"]
        assert compare_route_policies(map_c, map_d, store_c, store_d) == []

    @pytest.mark.parametrize("pair", [("a", "b"), ("a", "c"), ("c", "b")])
    def test_distinct_classes_differ(self, candidates, pair):
        _store, _snippet, built = candidates
        store_x, map_x = built[pair[0]]
        store_y, map_y = built[pair[1]]
        diffs = compare_route_policies(map_x, map_y, store_x, store_y)
        assert diffs, pair

    def test_paper_route_distinguishes_a_from_b(self, candidates):
        _store, _snippet, built = candidates
        route = BgpRoute.build(
            "100.0.0.0/16", as_path=[32], communities=["300:3"]
        )
        store_a, map_a = built["a"]
        store_b, map_b = built["b"]
        result_a = eval_route_map(map_a, store_a, route)
        result_b = eval_route_map(map_b, store_b, route)
        assert result_a.permitted() and result_a.output.metric == 55
        assert not result_b.permitted()

    def test_a_vs_c_differs_exactly_on_as_path_overlap(self, candidates):
        # Routes matching both the new stanza and the as-path deny are the
        # only ones (a) and (c) disagree on.
        _store, _snippet, built = candidates
        store_a, map_a = built["a"]
        store_c, map_c = built["c"]
        for diff in compare_route_policies(map_a, map_c, store_a, store_c):
            assert diff.route.asns()[-1:] == [32]
            assert "300:3" in diff.route.communities

    def test_all_four_positions_keep_non_overlap_behaviour(self, candidates):
        # Routes untouched by the new stanza behave identically at every
        # insertion point (the §4 incremental-update condition).
        store, _snippet, built = candidates
        base = store.route_map("ISP_OUT")
        probes = [
            BgpRoute.build("10.5.0.0/24"),
            BgpRoute.build("50.0.0.0/8", as_path=[100, 32]),
            BgpRoute.build("50.0.0.0/8", local_preference=300),
            BgpRoute.build("50.0.0.0/8"),
        ]
        for route in probes:
            baseline = eval_route_map(base, store, route).behaviour_key()
            for label, (cand_store, cand_map) in built.items():
                got = eval_route_map(cand_map, cand_store, route).behaviour_key()
                assert got == baseline, (label, route.network)
