"""Tests for the §7 extension: disambiguated list-entry insertion."""

import pytest

from repro.config import parse_config
from repro.config.lists import AsPathEntry, CommunityListEntry, PrefixListEntry
from repro.core import CountingOracle, IntentOracle, ScriptedOracle
from repro.core.disambiguator import DisambiguationMode
from repro.core.listinsert import (
    compare_as_path_lists,
    compare_community_lists,
    compare_prefix_lists,
    disambiguate_as_path_entry,
    disambiguate_community_entry,
    disambiguate_prefix_list_entry,
    prefix_list_entry_overlaps,
)
from repro.netaddr import Ipv4Prefix


def pl_entry(action, prefix, ge=None, le=None, seq=5):
    return PrefixListEntry(seq, action, Ipv4Prefix.parse(prefix), ge=ge, le=le)


STORE_TEXT = """
ip prefix-list EDGE seq 10 deny 10.1.0.0/16 le 32
ip prefix-list EDGE seq 20 permit 10.0.0.0/8 le 24
ip as-path access-list PATHS deny _666_
ip as-path access-list PATHS permit _100_
ip community-list expanded COMMS deny ^65000:1$
ip community-list expanded COMMS permit ^65000:
"""


class TestComparePrefixLists:
    def test_equivalent_lists(self):
        store = parse_config(STORE_TEXT)
        pl = store.prefix_list("EDGE")
        assert compare_prefix_lists(pl, pl) is None

    def test_order_difference_found(self):
        a = parse_config(
            "ip prefix-list L seq 10 deny 10.1.0.0/16 le 32\n"
            "ip prefix-list L seq 20 permit 10.0.0.0/8 le 32\n"
        ).prefix_list("L")
        b = parse_config(
            "ip prefix-list L seq 10 permit 10.0.0.0/8 le 32\n"
            "ip prefix-list L seq 20 deny 10.1.0.0/16 le 32\n"
        ).prefix_list("L")
        diff = compare_prefix_lists(a, b)
        assert diff is not None
        network = diff.subject
        assert Ipv4Prefix.parse("10.1.0.0/16").contains_prefix(network)
        assert {diff.result_a.action, diff.result_b.action} == {"permit", "deny"}
        assert "Network:" in diff.render()


class TestPrefixListInsertion:
    def test_overlaps_detected(self):
        store = parse_config(STORE_TEXT)
        entry = pl_entry("permit", "10.1.2.0/24", le=32)
        overlaps = prefix_list_entry_overlaps(store.prefix_list("EDGE"), entry)
        assert overlaps == [0, 1]

    def test_exception_above_the_deny(self):
        # Intent: 10.1.2.0/24 should be permitted even though 10.1/16 is
        # denied -> the new entry must land above the deny.
        store = parse_config(STORE_TEXT)
        entry = pl_entry("permit", "10.1.2.0/24", le=32)

        def intended(network):
            if Ipv4Prefix.parse("10.1.2.0/24").contains_prefix(network):
                return ("permit",)
            if Ipv4Prefix.parse("10.1.0.0/16").contains_prefix(network):
                return ("deny",)
            if (
                Ipv4Prefix.parse("10.0.0.0/8").contains_prefix(network)
                and network.length <= 24
            ):
                return ("permit",)
            return ("deny",)

        oracle = CountingOracle(IntentOracle(intended))
        result = disambiguate_prefix_list_entry(store, "EDGE", entry, oracle)
        assert result.position == 0
        updated = result.store.prefix_list("EDGE")
        assert updated.permits(Ipv4Prefix.parse("10.1.2.0/25"))
        assert not updated.permits(Ipv4Prefix.parse("10.1.3.0/24"))
        assert result.question_count >= 1

    def test_shadowed_placement_below(self):
        # Intent: the deny keeps winning; the new permit goes below it.
        store = parse_config(STORE_TEXT)
        entry = pl_entry("permit", "10.1.2.0/24", le=32)

        def intended(network):
            if Ipv4Prefix.parse("10.1.0.0/16").contains_prefix(network):
                return ("deny",)
            if Ipv4Prefix.parse("10.1.2.0/24").contains_prefix(network):
                return ("permit",)  # unreachable; kept for clarity
            if (
                Ipv4Prefix.parse("10.0.0.0/8").contains_prefix(network)
                and network.length <= 24
            ):
                return ("permit",)
            return ("deny",)

        oracle = CountingOracle(IntentOracle(intended))
        result = disambiguate_prefix_list_entry(store, "EDGE", entry, oracle)
        assert result.position >= 1
        updated = result.store.prefix_list("EDGE")
        assert not updated.permits(Ipv4Prefix.parse("10.1.2.0/25"))

    def test_fresh_list_no_questions(self):
        store = parse_config("")
        entry = pl_entry("permit", "10.0.0.0/8", le=24)
        oracle = CountingOracle(ScriptedOracle([]))
        result = disambiguate_prefix_list_entry(store, "NEW", entry, oracle)
        assert result.question_count == 0
        assert result.store.prefix_list("NEW").permits(
            Ipv4Prefix.parse("10.5.0.0/24")
        )

    def test_non_overlapping_appends(self):
        store = parse_config(STORE_TEXT)
        entry = pl_entry("permit", "99.0.0.0/8")
        oracle = CountingOracle(ScriptedOracle([]))
        result = disambiguate_prefix_list_entry(store, "EDGE", entry, oracle)
        assert result.overlaps == ()
        assert result.question_count == 0
        assert result.position == 2

    def test_top_bottom_mode(self):
        store = parse_config(STORE_TEXT)
        entry = pl_entry("permit", "10.1.2.0/24", le=32)
        oracle = CountingOracle(ScriptedOracle([1]))
        result = disambiguate_prefix_list_entry(
            store, "EDGE", entry, oracle, DisambiguationMode.TOP_BOTTOM
        )
        assert result.position == 0
        assert result.question_count == 1


class TestAsPathInsertion:
    def test_compare_finds_order_difference(self):
        a = parse_config(
            "ip as-path access-list L deny _666_\n"
            "ip as-path access-list L permit _100_\n"
        ).as_path_list("L")
        b = parse_config(
            "ip as-path access-list L permit _100_\n"
            "ip as-path access-list L deny _666_\n"
        ).as_path_list("L")
        diff = compare_as_path_lists(a, b)
        assert diff is not None
        path = diff.subject
        assert 100 in path and 666 in path

    def test_deny_exception(self):
        # New entry: permit paths through AS 666 if they end at AS 42 --
        # must land above the blanket deny of AS 666.
        store = parse_config(STORE_TEXT)
        entry = AsPathEntry("permit", "_666 42$")

        def intended(path):
            rendered = " ".join(str(a) for a in path)
            if rendered.endswith("666 42") or rendered == "666 42":
                return ("permit",)
            if 666 in path:
                return ("deny",)
            if 100 in path:
                return ("permit",)
            return ("deny",)

        oracle = CountingOracle(IntentOracle(intended))
        result = disambiguate_as_path_entry(store, "PATHS", entry, oracle)
        assert result.position == 0
        updated = result.store.as_path_list("PATHS")
        from repro.route import BgpRoute

        assert updated.permits(BgpRoute.build("1.0.0.0/8", as_path=[666, 42]))
        assert not updated.permits(BgpRoute.build("1.0.0.0/8", as_path=[666, 43]))


class TestCommunityInsertion:
    def test_compare_finds_order_difference(self):
        a = parse_config(
            "ip community-list expanded L deny ^65000:1$\n"
            "ip community-list expanded L permit ^65000:\n"
        ).community_list("L")
        b = parse_config(
            "ip community-list expanded L permit ^65000:\n"
            "ip community-list expanded L deny ^65000:1$\n"
        ).community_list("L")
        diff = compare_community_lists(a, b)
        assert diff is not None
        assert any("65000:1" == c for c in diff.subject)

    def test_exception_above_the_deny(self):
        # permit 65000:1 when 65000:99 is also present -> above the deny.
        store = parse_config(STORE_TEXT)
        entry = CommunityListEntry("permit", regex="^65000:99$")

        def intended(communities):
            has = lambda c: c in communities
            if has("65000:99"):
                return ("permit",)
            if has("65000:1"):
                return ("deny",)
            if any(c.startswith("65000:") for c in communities):
                return ("permit",)
            return ("deny",)

        oracle = CountingOracle(IntentOracle(intended))
        result = disambiguate_community_entry(store, "COMMS", entry, oracle)
        updated = result.store.community_list("COMMS")
        from repro.route import BgpRoute

        assert updated.permits(
            BgpRoute.build("1.0.0.0/8", communities=["65000:99"])
        )

    def test_kind_mismatch_rejected(self):
        store = parse_config(STORE_TEXT)
        entry = CommunityListEntry("permit", communities=("65000:5",))
        with pytest.raises(ValueError):
            disambiguate_community_entry(
                store, "COMMS", entry, ScriptedOracle([1, 1, 1])
            )

    def test_standard_list_insertion(self):
        store = parse_config(
            "ip community-list standard STD permit 65000:1 65000:2"
        )
        entry = CommunityListEntry("deny", communities=("65000:1",))

        def intended(communities):
            if "65000:1" in communities:
                return ("deny",)
            return ("deny",)  # nothing else is permitted by STD alone

        oracle = CountingOracle(IntentOracle(intended))
        result = disambiguate_community_entry(store, "STD", entry, oracle)
        updated = result.store.community_list("STD")
        from repro.route import BgpRoute

        assert not updated.permits(
            BgpRoute.build("1.0.0.0/8", communities=["65000:1", "65000:2"])
        )
