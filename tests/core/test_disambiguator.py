"""Tests for the disambiguation algorithm (§4)."""

import math

import pytest

from repro.analysis import eval_route_map
from repro.config import parse_config
from repro.config.names import rename_snippet_lists
from repro.core import (
    CountingOracle,
    DisambiguationMode,
    IntentOracle,
    ScriptedOracle,
    disambiguate_acl_rule,
    disambiguate_stanza,
)
from repro.core.disambiguator import acl_overlaps, route_map_overlaps
from repro.core.errors import DisambiguationError
from repro.route import BgpRoute

ISP_OUT = """
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
"""

SNIPPET = """
ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
"""


def paper_setup():
    store = parse_config(ISP_OUT)
    snippet = rename_snippet_lists(parse_config(SNIPPET), store)
    return store, snippet


class TestOverlaps:
    def test_paper_snippet_overlaps_all_three_stanzas(self):
        store, snippet = paper_setup()
        # The new stanza's space (prefix 100.0.0.0/16..23 + community
        # 300:3) intersects: stanza 10 (a route can also have AS path
        # ending in 32), stanza 20 (no: 100.0.0.0/16 is outside D1...)
        overlaps = route_map_overlaps(store.route_map("ISP_OUT"), store, snippet)
        # Stanza 10 matches on as-path (independent field) -> overlap.
        # Stanza 20 matches D1 prefixes only, disjoint from 100.0.0.0/16.
        # Stanza 30 matches local-preference 300 (independent) -> overlap.
        assert overlaps == [0, 2]

    def test_renamed_lists_follow_family(self):
        store, snippet = paper_setup()
        # D0/D1 exist; snippet lists continue the family as in Fig. 2.
        names = set(snippet.list_names())
        assert names == {"D2", "D3"}


class TestTopBottomMode:
    def test_paper_walkthrough_option1(self):
        store, snippet = paper_setup()
        oracle = CountingOracle(ScriptedOracle([1]))
        result = disambiguate_stanza(
            store, "ISP_OUT", snippet, oracle, DisambiguationMode.TOP_BOTTOM
        )
        assert result.question_count == 1
        assert result.position == 0  # Figure 2(a)
        rm = result.store.route_map("ISP_OUT")
        assert rm.stanzas[0].action == "permit"
        # The paper's differential route behaviour: permitted with metric 55.
        route = BgpRoute.build(
            "100.0.0.0/16", as_path=[32], communities=["300:3"]
        )
        outcome = eval_route_map(rm, result.store, route)
        assert outcome.permitted()
        assert outcome.output.metric == 55

    def test_paper_walkthrough_option2(self):
        store, snippet = paper_setup()
        oracle = CountingOracle(ScriptedOracle([2]))
        result = disambiguate_stanza(
            store, "ISP_OUT", snippet, oracle, DisambiguationMode.TOP_BOTTOM
        )
        assert result.position == 3  # Figure 2(b): bottom
        rm = result.store.route_map("ISP_OUT")
        route = BgpRoute.build(
            "100.0.0.0/16", as_path=[32], communities=["300:3"]
        )
        assert not eval_route_map(rm, result.store, route).permitted()

    def test_question_shows_both_options(self):
        store, snippet = paper_setup()
        oracle = CountingOracle(ScriptedOracle([1]))
        result = disambiguate_stanza(
            store, "ISP_OUT", snippet, oracle, DisambiguationMode.TOP_BOTTOM
        )
        text = result.questions[0].render()
        assert "OPTION 1:" in text and "OPTION 2:" in text
        assert "Which behaviour do you want?" in text

    def test_empty_map_needs_no_questions(self):
        store, snippet = paper_setup()
        oracle = CountingOracle(ScriptedOracle([]))
        result = disambiguate_stanza(
            store, "FRESH", snippet, oracle, DisambiguationMode.TOP_BOTTOM
        )
        assert result.question_count == 0
        assert result.position == 0
        assert len(result.store.route_map("FRESH").stanzas) == 1


class TestFullMode:
    def test_full_mode_places_between_stanzas(self):
        # Intent: deny a subset before the broad permit but after the
        # narrow deny -- only a middle insertion implements it.
        store, snippet = paper_setup()

        def intended(route):
            # Want the new stanza's behaviour (permit + metric) except for
            # routes from AS 32, which must stay denied: i.e. insert after
            # stanza 10 (deny as-path) but before stanza 30.
            from repro.regexlib.cisco import as_path_matches

            if as_path_matches("_32$", route.asns()):
                return ("deny", None)
            result = eval_route_map(
                snippet_route_map(), snippet_merged(store, snippet), route
            )
            return result.behaviour_key()

        def snippet_route_map():
            return list(snippet.route_maps())[0]

        def snippet_merged(base, snip):
            from repro.core.insertion import merge_snippet_lists

            return merge_snippet_lists(base, snip)

        oracle = CountingOracle(IntentOracle(intended))
        result = disambiguate_stanza(
            store, "ISP_OUT", snippet, oracle, DisambiguationMode.FULL
        )
        # Inserted between stanza 10 and stanza 30 (position 1 or 2).
        assert result.position in (1, 2)
        rm = result.store.route_map("ISP_OUT")
        denied = BgpRoute.build(
            "100.0.0.0/16", as_path=[32], communities=["300:3"]
        )
        assert not eval_route_map(rm, result.store, denied).permitted()
        permitted = BgpRoute.build(
            "100.0.0.0/16", as_path=[174], communities=["300:3"]
        )
        outcome = eval_route_map(rm, result.store, permitted)
        assert outcome.permitted() and outcome.output.metric == 55

    def test_no_overlap_appends_without_questions(self):
        store = parse_config(
            """
ip prefix-list ONLY seq 10 permit 42.0.0.0/8
route-map RM deny 10
 match ip address prefix-list ONLY
"""
        )
        snippet = rename_snippet_lists(parse_config(SNIPPET), store)
        oracle = CountingOracle(ScriptedOracle([]))
        result = disambiguate_stanza(store, "RM", snippet, oracle)
        assert result.overlaps == ()
        assert result.question_count == 0
        assert result.position == 1  # appended after the only stanza

    def test_question_count_is_logarithmic(self):
        # n overlapping deny stanzas with distinct metrics; new permit
        # stanza overlaps all of them.  Binary search asks ceil(log2(n+1)).
        for n in (2, 4, 8, 15):
            lines = []
            for i in range(n):
                lines.append(f"route-map RM deny {10 * (i + 1)}")
                lines.append(f" match metric {i}")
            store = parse_config("\n".join(lines))
            snippet = parse_config(
                "route-map NEW permit 10\n set local-preference 200"
            )
            snippet = rename_snippet_lists(snippet, store)

            def intended(route, n=n):
                # Insert in the middle: metrics below n//2 keep denying.
                if route.metric < n // 2:
                    return ("deny", None)
                return (
                    "permit",
                    route.with_updates(local_preference=200),
                )

            oracle = CountingOracle(IntentOracle(intended))
            result = disambiguate_stanza(store, "RM", snippet, oracle)
            assert result.question_count <= math.ceil(math.log2(n + 1)), n
            # Placement is correct: stanza sits at index n//2.
            assert result.position == n // 2

    def test_equivalent_overlaps_skipped_without_questions(self):
        # New deny stanza overlaps existing deny stanzas: order never
        # matters, so no questions should be asked.
        store = parse_config(
            "route-map RM deny 10\n match metric 1\n"
            "route-map RM deny 20\n match metric 2\n"
        )
        snippet = parse_config("route-map NEW deny 10\n match tag 7")
        snippet = rename_snippet_lists(snippet, store)
        oracle = CountingOracle(ScriptedOracle([]))
        result = disambiguate_stanza(store, "RM", snippet, oracle)
        assert result.question_count == 0
        assert len(result.overlaps) == 2

    def test_intent_oracle_rejects_impossible_intent(self):
        store, snippet = paper_setup()
        oracle = IntentOracle(lambda route: ("flarp",))
        with pytest.raises(DisambiguationError):
            disambiguate_stanza(store, "ISP_OUT", snippet, oracle)


class TestAclDisambiguation:
    TARGET = """
ip access-list extended EDGE
 10 permit tcp 10.0.0.0 0.255.255.255 any
 20 deny ip any any
"""
    NEW_RULE = """
ip access-list extended NEW_RULE
 10 deny tcp 10.1.0.0 0.0.255.255 any eq 22
"""

    def test_overlaps_found(self):
        store = parse_config(self.TARGET)
        snippet = parse_config(self.NEW_RULE)
        assert acl_overlaps(store.acl("EDGE"), snippet) == [0, 1]

    def test_binary_search_over_acl(self):
        from repro.analysis import eval_acl

        store = parse_config(self.TARGET)
        snippet = parse_config(self.NEW_RULE)

        def intended(packet):
            # The new deny should take precedence over rule 10.
            if (
                packet.protocol == 6
                and packet.dst_port == 22
                and str(packet.src_ip).startswith("10.1.")
            ):
                return ("deny",)
            return eval_acl(store.acl("EDGE"), packet).behaviour_key()

        oracle = CountingOracle(IntentOracle(intended))
        result = disambiguate_acl_rule(store, "EDGE", snippet, oracle)
        assert result.position == 0
        acl = result.store.acl("EDGE")
        from repro.route import Packet

        assert not eval_acl(
            acl, Packet.build("10.1.5.5", "8.8.8.8", dst_port=22)
        ).permitted()
        assert eval_acl(
            acl, Packet.build("10.1.5.5", "8.8.8.8", dst_port=80)
        ).permitted()

    def test_scripted_out_of_answers(self):
        store = parse_config(self.TARGET)
        snippet = parse_config(self.NEW_RULE)
        with pytest.raises(DisambiguationError):
            disambiguate_acl_rule(store, "EDGE", snippet, ScriptedOracle([]))
