"""Tests for snippet insertion plumbing and session-level reuse."""

import pytest

from repro.analysis import eval_route_map
from repro.config import parse_config
from repro.core import ClarifySession, ScriptedOracle, insert_stanza_into_store
from repro.core.insertion import (
    insert_rule_into_acl,
    merge_snippet_lists,
    snippet_rule,
    snippet_stanza,
)
from repro.route import BgpRoute

SNIPPET = """
ip prefix-list PL permit 100.0.0.0/16 le 23
route-map NEW permit 10
 match ip address prefix-list PL
 set metric 55
"""


class TestInsertionPlumbing:
    def test_snippet_stanza_extraction(self):
        stanza = snippet_stanza(parse_config(SNIPPET))
        assert stanza.action == "permit"

    def test_snippet_stanza_rejects_multi(self):
        with pytest.raises(ValueError):
            snippet_stanza(parse_config("route-map A permit 10\nroute-map A deny 20"))
        with pytest.raises(ValueError):
            snippet_rule(parse_config("ip access-list extended A\n permit tcp any any\n deny ip any any"))

    def test_insert_creates_missing_route_map(self):
        store, updated = insert_stanza_into_store(
            parse_config(""), "FRESH", parse_config(SNIPPET), 0
        )
        assert store.has_route_map("FRESH")
        assert [s.seq for s in updated.stanzas] == [10]

    def test_insert_renumbers(self):
        base = parse_config(
            "route-map RM deny 10\nroute-map RM deny 23\nroute-map RM permit 99"
        )
        store, updated = insert_stanza_into_store(
            base, "RM", parse_config(SNIPPET), 1
        )
        assert [s.seq for s in updated.stanzas] == [10, 20, 30, 40]
        assert updated.stanzas[1].action == "permit"

    def test_insert_position_bounds_checked(self):
        base = parse_config("route-map RM deny 10")
        with pytest.raises(ValueError):
            insert_stanza_into_store(base, "RM", parse_config(SNIPPET), 5)

    def test_acl_insert_creates_missing(self):
        snippet = parse_config(
            "ip access-list extended NEW\n 10 deny tcp any any eq 22"
        )
        store, updated = insert_rule_into_acl(parse_config(""), "FW", snippet, 0)
        assert store.has_acl("FW")
        assert len(updated.rules) == 1

    def test_merge_collision_raises(self):
        base = parse_config("ip prefix-list PL seq 5 permit 1.0.0.0/8")
        with pytest.raises(ValueError):
            merge_snippet_lists(base, parse_config(SNIPPET))


class TestSessionReuse:
    def test_reuse_costs_no_llm_calls(self):
        session = ClarifySession(oracle=ScriptedOracle([1] * 4))
        first = session.request(
            "Write a route-map stanza that denies routes originating from AS 32.",
            "MAP_A",
        )
        assert first.llm_calls == 3
        reused = session.reuse(first.snippet, "MAP_B")
        assert reused.llm_calls == 0
        assert session.total_llm_calls == 3
        assert session.spec_reviews == 1
        assert session.store.has_route_map("MAP_A")
        assert session.store.has_route_map("MAP_B")
        # Both maps behave identically.
        route = BgpRoute.build("1.0.0.0/8", as_path=[32])
        for name in ("MAP_A", "MAP_B"):
            result = eval_route_map(
                session.store.route_map(name), session.store, route
            )
            assert result.action == "deny"

    def test_reused_lists_get_fresh_names(self):
        session = ClarifySession(oracle=ScriptedOracle([1] * 4))
        first = session.request(
            "Write a route-map stanza that denies routes originating from AS 32.",
            "MAP_A",
        )
        session.reuse(first.snippet, "MAP_B")
        names = session.store.list_names()
        assert len(names) == 2
        assert len(set(names)) == 2

    def test_per_request_oracle_counts_on_session(self):
        session = ClarifySession(oracle=ScriptedOracle([]))
        session.request(
            "Write a route-map stanza that denies routes originating from AS 32.",
            "OUT",
        )
        report = session.request(
            "Write a route-map stanza that permits routes with local-preference 300.",
            "OUT",
            oracle=ScriptedOracle([2]),
        )
        assert report.questions == 1
        assert session.total_questions == 1
        assert session.total_interactions == 3  # 2 specs + 1 question
