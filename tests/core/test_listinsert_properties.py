"""Property tests for list-entry insertion (§7 extension): placement
found by disambiguation is behaviourally equivalent to the intended one."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.lists import PrefixList, PrefixListEntry
from repro.config.store import ConfigStore
from repro.core import CountingOracle, IntentOracle
from repro.core.listinsert import (
    disambiguate_prefix_list_entry,
    insert_prefix_list_entry,
)
from repro.netaddr import Ipv4Address, Ipv4Prefix


def block(index: int) -> Ipv4Prefix:
    """Nested /8../16 prefixes under 10.0.0.0/8 for rich overlaps."""
    return Ipv4Prefix.canonical(
        Ipv4Address((10 << 24) | (index << 16)), 16 if index else 8
    )


@st.composite
def cases(draw):
    n = draw(st.integers(1, 5))
    entries = []
    for idx in range(n):
        which = draw(st.integers(0, 3))
        prefix = block(which)
        le = draw(st.sampled_from([24, 32, None]))
        entries.append(
            PrefixListEntry(
                seq=10 * (idx + 1),
                action=draw(st.sampled_from(["permit", "deny"])),
                prefix=prefix,
                le=le,
            )
        )
    target = PrefixList("L", tuple(entries))
    new_entry = PrefixListEntry(
        seq=0,
        action=draw(st.sampled_from(["permit", "deny"])),
        prefix=block(draw(st.integers(0, 3))),
        le=draw(st.sampled_from([24, 32, None])),
    )
    position = draw(st.integers(0, n))
    return target, new_entry, position


def probe_networks():
    probes = []
    for index in range(0, 4):
        base = block(index)
        probes.append(base)
        for length in (16, 20, 24, 28, 32):
            if length >= base.length:
                probes.append(Ipv4Prefix.canonical(base.network, length))
    probes.append(Ipv4Prefix.parse("99.0.0.0/8"))
    return probes


PROBES = probe_networks()


class TestPrefixListPlacementProperty:
    @given(cases())
    @settings(max_examples=60, deadline=None)
    def test_found_placement_matches_reference(self, case):
        target, entry, position = case
        reference = insert_prefix_list_entry(target, entry, position)

        def intended(network):
            return ("permit" if reference.permits(network) else "deny",)

        store = ConfigStore()
        store.add_prefix_list(target)
        oracle = CountingOracle(IntentOracle(intended))
        result = disambiguate_prefix_list_entry(store, "L", entry, oracle)
        produced = result.store.prefix_list("L")
        for network in PROBES:
            assert produced.permits(network) == reference.permits(network), (
                network,
                result.position,
                position,
            )

    @given(cases())
    @settings(max_examples=40, deadline=None)
    def test_question_count_bounded(self, case):
        import math

        target, entry, position = case
        reference = insert_prefix_list_entry(target, entry, position)

        def intended(network):
            return ("permit" if reference.permits(network) else "deny",)

        store = ConfigStore()
        store.add_prefix_list(target)
        oracle = CountingOracle(IntentOracle(intended))
        result = disambiguate_prefix_list_entry(store, "L", entry, oracle)
        k = len(result.overlaps)
        bound = math.ceil(math.log2(k + 1)) if k else 0
        assert result.question_count <= bound
