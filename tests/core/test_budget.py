"""Tests for the ambient per-request time budget."""

import pytest

from repro.config import parse_config, render_config
from repro.core import ClarifySession
from repro.core.budget import (
    TimeBudget,
    budget_expired,
    budget_scope,
    check_budget,
    current_budget,
    remaining_time,
)
from repro.core.errors import DeadlineExceeded, SynthesisPunt
from repro.llm import FaultyLLM, SimulatedLLM

MULTI_STANZA_CONFIG = """
ip as-path access-list D0 permit _10$
ip as-path access-list D1 permit _20$
ip as-path access-list D2 permit _30$
route-map OUT deny 10
 match as-path D0
route-map OUT deny 20
 match as-path D1
route-map OUT deny 30
 match as-path D2
"""

LOCAL_PREF_INTENT = (
    "Write a route-map stanza that permits routes with local-preference 700."
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


class ClockAdvancingOracle:
    """Answers option 1, advancing a fake clock on every question."""

    def __init__(self, clock: FakeClock, step: float) -> None:
        self.clock = clock
        self.step = step

    def choose(self, question) -> int:
        self.clock.t += self.step
        return 1


class TestTimeBudget:
    def test_elapsed_remaining_expired(self):
        clock = FakeClock()
        budget = TimeBudget(10.0, clock=clock)
        assert budget.elapsed() == 0.0
        assert budget.remaining() == 10.0
        assert not budget.expired()
        clock.t = 4.0
        assert budget.elapsed() == 4.0
        assert budget.remaining() == 6.0
        clock.t = 10.0
        assert budget.expired()
        assert budget.remaining() == 0.0

    def test_check_raises_with_context(self):
        clock = FakeClock()
        budget = TimeBudget(1.0, clock=clock)
        budget.check("synthesis")  # within budget: no raise
        clock.t = 2.0
        with pytest.raises(DeadlineExceeded) as excinfo:
            budget.check("disambiguation", questions_asked=3)
        assert excinfo.value.where == "disambiguation"
        assert excinfo.value.budget_s == 1.0
        assert excinfo.value.questions_asked == 3
        assert "disambiguation" in str(excinfo.value)

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            TimeBudget(0.0)
        with pytest.raises(ValueError):
            TimeBudget(-1.0)

    def test_scope_installs_and_restores(self):
        assert current_budget() is None
        budget = TimeBudget(5.0, clock=FakeClock())
        with budget_scope(budget):
            assert current_budget() is budget
            assert not budget_expired()
        assert current_budget() is None

    def test_none_scope_inherits_outer(self):
        outer = TimeBudget(5.0, clock=FakeClock())
        with budget_scope(outer):
            with budget_scope(None):
                assert current_budget() is outer
            assert current_budget() is outer

    def test_check_budget_noop_without_scope(self):
        check_budget("anywhere")  # no ambient budget: never raises
        assert not budget_expired()

    def test_remaining_time_without_scope_returns_default(self):
        assert remaining_time() is None
        assert remaining_time(default=30.0) == 30.0

    def test_remaining_time_tracks_the_ambient_budget(self):
        clock = FakeClock()
        with budget_scope(TimeBudget(10.0, clock=clock)):
            assert remaining_time() == 10.0
            clock.t = 4.0
            assert remaining_time() == 6.0
            clock.t = 99.0
            assert remaining_time() == 0.0  # never negative

    def test_remaining_time_ignores_default_when_budgeted(self):
        with budget_scope(TimeBudget(10.0, clock=FakeClock())):
            assert remaining_time(default=3.0) == 10.0

    def test_expired_ambient_budget_raises(self):
        clock = FakeClock()
        budget = TimeBudget(1.0, clock=clock)
        clock.t = 2.0
        with budget_scope(budget):
            with pytest.raises(DeadlineExceeded):
                check_budget("late")


class TestBudgetedWorkflow:
    def test_deadline_mid_binary_search_leaves_store_untouched(self):
        clock = FakeClock()
        session = ClarifySession(
            store=parse_config(MULTI_STANZA_CONFIG),
            oracle=ClockAdvancingOracle(clock, step=10.0),
        )
        before = render_config(session.store)
        with pytest.raises(DeadlineExceeded) as excinfo:
            session.request(
                LOCAL_PREF_INTENT, "OUT", budget=TimeBudget(5.0, clock=clock)
            )
        # This scenario asks two questions unbudgeted; the budget expires
        # after the first, mid-binary-search.
        assert excinfo.value.where == "disambiguation"
        assert excinfo.value.questions_asked == 1
        assert render_config(session.store) == before

    def test_unbudgeted_baseline_asks_two_questions(self):
        session = ClarifySession(store=parse_config(MULTI_STANZA_CONFIG))
        report = session.request(LOCAL_PREF_INTENT, "OUT")
        assert report.questions == 2

    def test_deadline_during_retries_degrades_to_punt(self):
        clock = FakeClock()
        faulty = FaultyLLM(SimulatedLLM(), error_rate=1.0, seed=7)
        original = faulty.complete

        def complete_and_tick(system, prompt):
            clock.t += 3.0
            return original(system, prompt)

        faulty.complete = complete_and_tick
        session = ClarifySession(llm=faulty, max_attempts=10)
        with pytest.raises(SynthesisPunt) as excinfo:
            session.request(
                LOCAL_PREF_INTENT, "OUT", budget=TimeBudget(10.0, clock=clock)
            )
        # The budget (not the attempt cap) ended the retry loop, and the
        # punt says so — a graceful partial result, not an exception blast.
        assert excinfo.value.attempts < 10
        assert any("time budget" in f for f in excinfo.value.failures)

    def test_generous_budget_changes_nothing(self):
        clock = FakeClock()
        budgeted = ClarifySession(store=parse_config(MULTI_STANZA_CONFIG))
        report = budgeted.request(
            LOCAL_PREF_INTENT, "OUT", budget=TimeBudget(1e9, clock=clock)
        )
        bare = ClarifySession(store=parse_config(MULTI_STANZA_CONFIG))
        baseline = bare.request(LOCAL_PREF_INTENT, "OUT")
        assert report.questions == baseline.questions
        assert report.llm_calls == baseline.llm_calls
        assert render_config(budgeted.store) == render_config(bare.store)
