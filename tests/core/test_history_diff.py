"""Tests for the session audit history and configuration diffs."""

from repro.config import parse_config
from repro.config.diff import added_lines, config_diff, removed_lines
from repro.core import ClarifySession, ScriptedOracle


class TestConfigDiff:
    def test_identical_stores_diff_empty(self):
        store = parse_config("route-map RM permit 10")
        assert config_diff(store, store) == ""

    def test_added_lines_reported(self):
        before = parse_config("route-map RM permit 10")
        after = parse_config(
            "route-map RM permit 10\nroute-map RM deny 20\n match metric 5"
        )
        added = added_lines(before, after)
        assert "route-map RM deny 20" in added
        assert " match metric 5" in added
        assert removed_lines(before, after) == []

    def test_removed_lines_reported(self):
        before = parse_config("route-map RM permit 10\nroute-map RM deny 20")
        after = parse_config("route-map RM permit 10")
        assert "route-map RM deny 20" in removed_lines(before, after)

    def test_unified_format(self):
        before = parse_config("route-map RM permit 10")
        after = parse_config("route-map RM deny 10")
        diff = config_diff(before, after)
        assert diff.startswith("--- before")
        assert "+route-map RM deny 10" in diff
        assert "-route-map RM permit 10" in diff


class TestSessionHistory:
    def test_history_records_each_update(self):
        session = ClarifySession(oracle=ScriptedOracle([2, 2]))
        session.request(
            "Write a route-map stanza that denies routes originating from AS 32.",
            "OUT",
        )
        session.request(
            "Write a route-map stanza that permits routes with local-preference 300.",
            "OUT",
        )
        assert len(session.history) == 2
        first, second = session.history
        assert "route-map OUT deny 10" in first.diff
        assert "match local-preference 300" in second.diff
        # Resequencing shows up in the diff as well.
        assert first.diff.startswith("--- before")

    def test_reuse_recorded_too(self):
        session = ClarifySession(oracle=ScriptedOracle([1, 1]))
        report = session.request(
            "Write a route-map stanza that denies routes originating from AS 32.",
            "MAP_A",
        )
        session.reuse(report.snippet, "MAP_B")
        assert len(session.history) == 2
        assert "route-map MAP_B deny 10" in session.history[1].diff
