"""Tests for the JSON spec model and snippet verification."""

import pytest

from repro.config import parse_config
from repro.core import (
    AclSpec,
    RouteMapSpec,
    SpecError,
    verify_acl_snippet,
    verify_route_map_snippet,
)
from repro.route import BgpRoute

PAPER_SPEC = (
    '{"permit": true, "prefix": ["100.0.0.0/16:16-23"], '
    '"community": "/_300:3_/", "set": {"metric": 55}}'
)

PAPER_SNIPPET = """
ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
"""


class TestRouteMapSpecParsing:
    def test_paper_spec(self):
        spec = RouteMapSpec.from_json(PAPER_SPEC)
        assert spec.permit
        assert spec.action() == "permit"
        assert len(spec.prefixes) == 1
        prefix, lo, hi = spec.prefixes[0]
        assert str(prefix) == "100.0.0.0/16" and (lo, hi) == (16, 23)
        assert spec.communities == ("_300:3_",)
        assert spec.sets == {"metric": 55}

    def test_match_space_semantics(self):
        spec = RouteMapSpec.from_json(PAPER_SPEC)
        space = spec.match_space()
        assert space.contains(
            BgpRoute.build("100.0.0.0/16", communities=["300:3"])
        )
        assert space.contains(
            BgpRoute.build("100.0.128.0/23", communities=["300:3", "1:1"])
        )
        assert not space.contains(BgpRoute.build("100.0.0.0/16"))
        assert not space.contains(
            BgpRoute.build("100.0.0.0/24", communities=["300:3"])
        )
        assert not space.contains(
            BgpRoute.build("101.0.0.0/16", communities=["300:3"])
        )

    @pytest.mark.parametrize(
        "text",
        [
            "not json",
            "[1,2]",
            '{"prefix": []}',
            '{"permit": "yes"}',
            '{"permit": true, "prefix": ["100.0.0.0/16"]}',
            '{"permit": true, "prefix": ["100.0.0.0/16:8-23"]}',
            '{"permit": true, "community": "_300:3_"}',
            '{"permit": true, "wibble": 1}',
            '{"permit": true, "set": {"colour": "red"}}',
            '{"permit": true, "local_preference": "high"}',
            '{"permit": true, "set": {"community": "300:3"}}',
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(SpecError):
            RouteMapSpec.from_json(text)


class TestRouteMapVerification:
    def test_paper_snippet_verifies(self):
        snippet = parse_config(PAPER_SNIPPET)
        spec = RouteMapSpec.from_json(PAPER_SPEC)
        result = verify_route_map_snippet(snippet, spec)
        assert result.ok, result

    def test_wrong_action_detected(self):
        snippet = parse_config(PAPER_SNIPPET.replace("permit 10", "deny 10"))
        spec = RouteMapSpec.from_json(PAPER_SPEC)
        result = verify_route_map_snippet(snippet, spec)
        assert not result.ok
        assert any("action" in p for p in result.problems)

    def test_wrong_metric_detected(self):
        snippet = parse_config(PAPER_SNIPPET.replace("set metric 55", "set metric 56"))
        spec = RouteMapSpec.from_json(PAPER_SPEC)
        result = verify_route_map_snippet(snippet, spec)
        assert not result.ok
        assert any("set clauses" in p for p in result.problems)

    def test_too_narrow_guard_detected(self):
        snippet = parse_config(PAPER_SNIPPET.replace("le 23", "le 20"))
        spec = RouteMapSpec.from_json(PAPER_SPEC)
        result = verify_route_map_snippet(snippet, spec)
        assert not result.ok
        assert result.counterexample is not None
        # The counterexample is a route the spec covers but the stanza misses.
        assert spec.match_space().contains(result.counterexample)
        assert 21 <= result.counterexample.network.length <= 23

    def test_too_wide_guard_detected(self):
        snippet = parse_config(PAPER_SNIPPET.replace("le 23", "le 24"))
        spec = RouteMapSpec.from_json(PAPER_SPEC)
        result = verify_route_map_snippet(snippet, spec)
        assert not result.ok
        assert result.counterexample is not None
        assert not spec.match_space().contains(result.counterexample)

    def test_missing_match_detected(self):
        snippet = parse_config(
            """
ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match ip address prefix-list PREFIX_100
 set metric 55
"""
        )
        spec = RouteMapSpec.from_json(PAPER_SPEC)
        result = verify_route_map_snippet(snippet, spec)
        assert not result.ok

    def test_multi_stanza_snippet_rejected(self):
        snippet = parse_config(
            "route-map X permit 10\nroute-map X deny 20"
        )
        spec = RouteMapSpec.from_json('{"permit": true}')
        result = verify_route_map_snippet(snippet, spec)
        assert not result.ok

    def test_dangling_reference_reported(self):
        snippet = parse_config(
            "route-map X permit 10\n match ip address prefix-list NOPE"
        )
        spec = RouteMapSpec.from_json('{"permit": true}')
        result = verify_route_map_snippet(snippet, spec)
        assert not result.ok
        assert any("dangling" in p for p in result.problems)


class TestAclSpec:
    ACL_SPEC = (
        '{"permit": false, "protocol": "tcp", "src": "10.0.0.0/8", '
        '"dst": "2.2.2.2/32", "dst_ports": ["22-22"]}'
    )
    ACL_SNIPPET = """
ip access-list extended NEW_RULE
 10 deny tcp 10.0.0.0 0.255.255.255 host 2.2.2.2 eq 22
"""

    def test_parse(self):
        spec = AclSpec.from_json(self.ACL_SPEC)
        assert not spec.permit
        assert spec.protocol == "tcp"
        assert str(spec.src) == "10.0.0.0/8"
        assert spec.dst_ports == ((22, 22),)

    def test_verifies(self):
        result = verify_acl_snippet(
            parse_config(self.ACL_SNIPPET), AclSpec.from_json(self.ACL_SPEC)
        )
        assert result.ok, result

    def test_wrong_port_detected(self):
        snippet = parse_config(self.ACL_SNIPPET.replace("eq 22", "eq 23"))
        result = verify_acl_snippet(snippet, AclSpec.from_json(self.ACL_SPEC))
        assert not result.ok
        assert result.counterexample is not None

    def test_wrong_action_detected(self):
        snippet = parse_config(self.ACL_SNIPPET.replace("deny", "permit"))
        result = verify_acl_snippet(snippet, AclSpec.from_json(self.ACL_SPEC))
        assert not result.ok

    def test_wrong_protocol_detected(self):
        snippet = parse_config(self.ACL_SNIPPET.replace("tcp", "udp").replace(" eq 22", ""))
        result = verify_acl_snippet(snippet, AclSpec.from_json(self.ACL_SPEC))
        assert not result.ok

    @pytest.mark.parametrize(
        "text",
        [
            "nope",
            '{"permit": false, "protocol": "carrier-pigeon"}',
            '{"permit": false, "src": "10.0.0.1/8"}',
            '{"permit": false, "dst_ports": ["22"]}',
            '{"permit": false, "dst_ports": ["9-800000"]}',
            '{"permit": false, "extra": 1}',
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(SpecError):
            AclSpec.from_json(text)
