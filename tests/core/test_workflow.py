"""End-to-end tests for ClarifySession (the full Fig. 1 loop)."""

import pytest

from repro.analysis import eval_acl, eval_route_map
from repro.config import parse_config
from repro.core import ClarifySession, DisambiguationMode, ScriptedOracle
from repro.core.errors import SynthesisPunt
from repro.llm import FaultyLLM, SimulatedLLM
from repro.route import BgpRoute, Packet

ISP_OUT = """
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
"""

PAPER_INTENT = (
    "Write a route-map stanza that permits routes containing the prefix "
    "100.0.0.0/16 with mask length less than or equal to 23 and tagged "
    "with the community 300:3. Their MED value should be set to 55."
)


class TestPaperWalkthrough:
    def test_full_cycle_reproduces_figure_2a(self):
        session = ClarifySession(
            store=parse_config(ISP_OUT),
            oracle=ScriptedOracle([1, 1]),  # prefer the new behaviour
            mode=DisambiguationMode.TOP_BOTTOM,
        )
        report = session.request(PAPER_INTENT, "ISP_OUT")
        assert report.kind == "route-map"
        assert report.llm_calls == 3  # classify + spec + one synthesis pass
        assert report.attempts == 1
        assert report.questions == 1
        assert report.position == 0

        rm = session.store.route_map("ISP_OUT")
        assert [s.seq for s in rm.stanzas] == [10, 20, 30, 40]
        # Figure 2(a): the new stanza is at the top, lists renamed D2/D3.
        assert session.store.has_community_list("D2")
        assert session.store.has_prefix_list("D3")
        route = BgpRoute.build("100.0.0.0/16", as_path=[32], communities=["300:3"])
        outcome = eval_route_map(rm, session.store, route)
        assert outcome.permitted() and outcome.output.metric == 55

    def test_acl_request_routed_to_acl_pipeline(self):
        session = ClarifySession(oracle=ScriptedOracle([]))
        report = session.request(
            "Add a rule that denies tcp traffic from 10.0.0.0/8 to host "
            "2.2.2.2 on destination port 22.",
            "EDGE_IN",
        )
        assert report.kind == "acl"
        acl = session.store.acl("EDGE_IN")
        assert len(acl.rules) == 1
        assert not eval_acl(
            acl, Packet.build("10.1.1.1", "2.2.2.2", dst_port=22)
        ).permitted()

    def test_incremental_growth(self):
        session = ClarifySession(oracle=ScriptedOracle([2, 2, 2, 2]))
        session.request(
            "Write a route-map stanza that denies routes originating from AS 32.",
            "OUT",
        )
        session.request(
            "Write a route-map stanza that permits routes with local-preference 300.",
            "OUT",
        )
        rm = session.store.route_map("OUT")
        assert len(rm.stanzas) == 2
        assert session.total_llm_calls == 6


class TestFaultyLLMRetries:
    def test_verifier_catches_faults_and_retries(self):
        # Error rate below 1: some attempt eventually passes verification.
        llm = FaultyLLM(SimulatedLLM(), error_rate=0.6, seed=3)
        session = ClarifySession(
            llm=llm, oracle=ScriptedOracle([1] * 5), max_attempts=10
        )
        report = session.request(PAPER_INTENT, "ISP_OUT")
        assert report.attempts >= 1
        rm = session.store.route_map("ISP_OUT")
        # Whatever the retries, the inserted stanza is the verified one.
        route = BgpRoute.build("100.0.0.0/16", as_path=[174], communities=["300:3"])
        outcome = eval_route_map(rm, session.store, route)
        assert outcome.permitted() and outcome.output.metric == 55

    def test_punt_at_threshold(self):
        llm = FaultyLLM(SimulatedLLM(), error_rate=1.0, seed=3)
        session = ClarifySession(llm=llm, max_attempts=3)
        with pytest.raises(SynthesisPunt) as exc_info:
            session.request(PAPER_INTENT, "ISP_OUT")
        assert exc_info.value.attempts == 3
        assert len(exc_info.value.failures) == 3
