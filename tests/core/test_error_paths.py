"""Robustness tests: every pipeline failure mode surfaces loudly."""

import pytest

from repro.core import SpecError, SynthesisPunt
from repro.core.synthesis import SynthesisPipeline
from repro.llm import TaskKind
from repro.llm.prompts import task_kind_of
from repro.llm.simulated import SimulatedLLM

PAPER_PROMPT = (
    "Write a route-map stanza that permits routes containing the prefix "
    "100.0.0.0/16 with mask length less than or equal to 23 and tagged "
    "with the community 300:3. Their MED value should be set to 55."
)


class ScriptedLLM:
    """Returns canned responses per task kind (for failure injection)."""

    def __init__(self, overrides):
        self._overrides = overrides
        self._fallback = SimulatedLLM()

    def complete(self, system: str, prompt: str) -> str:
        kind = task_kind_of(system)
        if kind in self._overrides:
            value = self._overrides[kind]
            if isinstance(value, list):
                return value.pop(0) if value else self._fallback.complete(system, prompt)
            return value
        return self._fallback.complete(system, prompt)


class TestClassifierFailures:
    def test_garbage_classification_raises(self):
        llm = ScriptedLLM({TaskKind.CLASSIFY: "potato"})
        pipeline = SynthesisPipeline(llm)
        with pytest.raises(SpecError, match="potato"):
            pipeline.synthesize(PAPER_PROMPT)

    def test_classifier_answer_is_normalised(self):
        llm = ScriptedLLM({TaskKind.CLASSIFY: "  Route-Map \n"})
        pipeline = SynthesisPipeline(llm)
        assert pipeline.classify(PAPER_PROMPT) == "route-map"


class TestSpecFailures:
    def test_malformed_spec_raises(self):
        llm = ScriptedLLM({TaskKind.ROUTE_MAP_SPEC: "not json at all"})
        pipeline = SynthesisPipeline(llm)
        with pytest.raises(SpecError):
            pipeline.synthesize(PAPER_PROMPT)

    def test_spec_with_unknown_keys_raises(self):
        llm = ScriptedLLM(
            {TaskKind.ROUTE_MAP_SPEC: '{"permit": true, "frobnicate": 1}'}
        )
        pipeline = SynthesisPipeline(llm)
        with pytest.raises(SpecError, match="frobnicate"):
            pipeline.synthesize(PAPER_PROMPT)


class TestSynthesisFailures:
    def test_unparseable_snippet_retries_then_punts(self):
        llm = ScriptedLLM({TaskKind.ROUTE_MAP_SYNTH: "%% garbage %%"})
        pipeline = SynthesisPipeline(llm, max_attempts=2)
        with pytest.raises(SynthesisPunt) as info:
            pipeline.synthesize(PAPER_PROMPT)
        assert info.value.attempts == 2
        assert all("does not parse" in f for f in info.value.failures)

    def test_wrong_snippet_retries_and_recovers(self):
        wrong = (
            "ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23\n"
            "route-map SET_METRIC permit 10\n"
            " match ip address prefix-list PREFIX_100\n"
            " set metric 55"
        )  # missing the community match
        llm = ScriptedLLM({TaskKind.ROUTE_MAP_SYNTH: [wrong]})
        pipeline = SynthesisPipeline(llm, max_attempts=3)
        result = pipeline.synthesize(PAPER_PROMPT)
        assert result.attempts == 2
        assert len(result.failures) == 1
        assert "outside the spec" in result.failures[0]

    def test_punt_message_summarises_failures(self):
        llm = ScriptedLLM({TaskKind.ROUTE_MAP_SYNTH: "%% garbage %%"})
        pipeline = SynthesisPipeline(llm, max_attempts=3)
        with pytest.raises(SynthesisPunt) as info:
            pipeline.synthesize(PAPER_PROMPT)
        message = str(info.value)
        assert "3 times" in message

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            SynthesisPipeline(SimulatedLLM(), max_attempts=0)
