"""The round-trip property: journal → replay → identical outcome.

For every workflow mode the pipeline supports (FULL / TOP_BOTTOM /
LINEAR disambiguation, ACL and route-map kinds, snippet reuse, faulty-LLM
retries, and the punt path), recording a session journal and replaying
it must reproduce the identical event stream — same rendered
configuration hashes, same ``UpdateReport`` fields — with **zero** live
LLM or oracle calls.
"""

import pytest

from repro import obs
from repro.config import parse_config, render_config
from repro.core import ClarifySession, DisambiguationMode, ScriptedOracle
from repro.core.errors import SynthesisPunt
from repro.llm import FaultyLLM, SimulatedLLM
from repro.obs.replay import replay_journal

ISP_OUT = """
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
"""

PAPER_INTENT = (
    "Write a route-map stanza that permits routes containing the prefix "
    "100.0.0.0/16 with mask length less than or equal to 23 and tagged "
    "with the community 300:3. Their MED value should be set to 55."
)

ACL_INTENT = (
    "Add a rule that denies tcp traffic from 10.0.0.0/8 to host "
    "2.2.2.2 on destination port 22."
)


@pytest.fixture(autouse=True)
def _no_active_journal():
    obs.uninstall_journal()
    yield
    obs.uninstall_journal()


def assert_round_trips(record):
    """Record a session under a journal, replay it, compare everything."""
    journal = obs.JournalRecorder()
    with obs.journaling(journal):
        sessions, reports = record()
    result = replay_journal(journal.events)
    assert result.ok, (
        result.divergence.render() if result.divergence else "diverged"
    )
    assert result.llm_calls_served + result.answers_served >= 0
    flat_reports = [r for r in reports if r is not None]
    assert len(result.reports) == len(flat_reports)
    for recorded, replayed in zip(flat_reports, result.reports):
        assert replayed.kind == recorded.kind
        assert replayed.target == recorded.target
        assert replayed.position == recorded.position
        assert replayed.llm_calls == recorded.llm_calls
        assert replayed.questions == recorded.questions
        assert replayed.attempts == recorded.attempts
        assert replayed.overlaps == recorded.overlaps
        assert replayed.diff == recorded.diff
        assert replayed.gate_warnings == recorded.gate_warnings
    return result


@pytest.mark.parametrize(
    "mode",
    [
        DisambiguationMode.FULL,
        DisambiguationMode.TOP_BOTTOM,
        DisambiguationMode.LINEAR,
    ],
)
def test_route_map_round_trip_every_mode(mode):
    def record():
        session = ClarifySession(
            store=parse_config(ISP_OUT),
            oracle=ScriptedOracle([1, 1, 1, 1]),
            mode=mode,
        )
        report = session.request(PAPER_INTENT, "ISP_OUT")
        return [session], [report]

    result = assert_round_trips(record)
    assert result.cycles == 1
    assert result.llm_calls_served == 3


def test_acl_round_trip():
    def record():
        session = ClarifySession(oracle=ScriptedOracle([]))
        report = session.request(ACL_INTENT, "EDGE_IN")
        return [session], [report]

    result = assert_round_trips(record)
    assert result.reports[0].kind == "acl"


def test_incremental_growth_round_trip():
    def record():
        session = ClarifySession(oracle=ScriptedOracle([2, 2, 2, 2]))
        r1 = session.request(
            "Write a route-map stanza that denies routes originating "
            "from AS 32.",
            "OUT",
        )
        r2 = session.request(
            "Write a route-map stanza that permits routes with "
            "local-preference 300.",
            "OUT",
        )
        return [session], [r1, r2]

    result = assert_round_trips(record)
    assert result.cycles == 2


def test_reuse_round_trip():
    def record():
        session = ClarifySession(
            store=parse_config(ISP_OUT), oracle=ScriptedOracle([1] * 8)
        )
        report = session.request(PAPER_INTENT, "ISP_OUT")
        reused = session.reuse(report.snippet, "ISP_OUT_2")
        return [session], [report, reused]

    result = assert_round_trips(record)
    assert result.cycles == 2
    # The reuse cycle consumed zero recorded LLM calls.
    assert result.llm_calls_served == 3


def test_multi_session_round_trip():
    def record():
        a = ClarifySession(oracle=ScriptedOracle([1] * 4))
        b = ClarifySession(
            store=parse_config(ISP_OUT), oracle=ScriptedOracle([1] * 4)
        )
        ra = a.request(ACL_INTENT, "EDGE_IN")
        rb = b.request(PAPER_INTENT, "ISP_OUT")
        return [a, b], [ra, rb]

    result = assert_round_trips(record)
    assert result.cycles == 2


def test_faulty_llm_retries_round_trip():
    def record():
        llm = FaultyLLM(SimulatedLLM(), error_rate=0.6, seed=3)
        session = ClarifySession(
            llm=llm, oracle=ScriptedOracle([1] * 5), max_attempts=10
        )
        report = session.request(PAPER_INTENT, "ISP_OUT")
        return [session], [report]

    result = assert_round_trips(record)
    # The retries (and their verdicts) are part of the recorded stream,
    # so a replay reproduces the exact retry trajectory.
    assert result.reports[0].attempts >= 1


def test_punt_round_trip():
    journal = obs.JournalRecorder()
    with obs.journaling(journal):
        llm = FaultyLLM(SimulatedLLM(), error_rate=1.0, seed=3)
        session = ClarifySession(llm=llm, max_attempts=3)
        with pytest.raises(SynthesisPunt):
            session.request(PAPER_INTENT, "ISP_OUT")
    types = [e.type for e in journal.events]
    assert "synthesis.punt" in types
    assert "cycle.error" in types
    result = replay_journal(journal.events)
    assert result.ok, (
        result.divergence.render() if result.divergence else "diverged"
    )
    assert result.reports == []  # the cycle never completed


def test_replayed_final_config_hash_matches():
    journal = obs.JournalRecorder()
    with obs.journaling(journal):
        session = ClarifySession(
            store=parse_config(ISP_OUT), oracle=ScriptedOracle([1, 1])
        )
        session.request(PAPER_INTENT, "ISP_OUT")
        recorded_config = render_config(session.store)
    ends = [e for e in journal.events if e.type == "cycle.end"]
    assert ends[-1].data["config_sha256"] == obs.sha256_text(recorded_config)
    result = replay_journal(journal.events)
    assert result.ok
    replayed_ends = [
        e for e in result.replayed_events if e.type == "cycle.end"
    ]
    assert (
        replayed_ends[-1].data["config_sha256"]
        == obs.sha256_text(recorded_config)
    )


def test_journal_file_round_trip(tmp_path):
    path = tmp_path / "session.jsonl"
    with obs.JournalRecorder(str(path)) as journal:
        with obs.journaling(journal):
            session = ClarifySession(
                store=parse_config(ISP_OUT), oracle=ScriptedOracle([1, 1])
            )
            session.request(PAPER_INTENT, "ISP_OUT")
    events = obs.read_journal(str(path))
    assert events == journal.events
    assert replay_journal(events).ok
