"""End-to-end property tests for the disambiguation algorithm (§4).

The main theorem behind the paper's algorithm: if the user's intended
semantics ``M'`` satisfies the §4 conditions (every input is handled as
before or by the new rule, and the intent is realisable by a single
insertion), then binary search over the overlapping rules finds an
insertion point implementing ``M'``, asking at most
``ceil(log2(overlaps+1))`` questions.

We generate random policies over a probeable scalar domain, pick a
random intended insertion position, drive disambiguation with an oracle
answering from the reference policy, and check that the produced policy
is *behaviourally equivalent* to the reference (the found position may
legitimately differ when several positions are equivalent).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import eval_acl, eval_route_map
from repro.config import parse_config
from repro.config.names import rename_snippet_lists
from repro.core import CountingOracle, IntentOracle, disambiguate_acl_rule, disambiguate_stanza
from repro.core.disambiguator import DisambiguationMode
from repro.route import BgpRoute, Packet

MODES = [DisambiguationMode.FULL, DisambiguationMode.LINEAR]


@st.composite
def scalar_route_map_case(draw):
    """(store, snippet, intended position) over metric-match guards."""
    n = draw(st.integers(1, 6))
    lines = []
    metrics = draw(
        st.lists(st.integers(0, 7), min_size=n, max_size=n, unique=True)
    )
    for idx, metric in enumerate(metrics):
        action = draw(st.sampled_from(["permit", "deny"]))
        lines.append(f"route-map RM {action} {10 * (idx + 1)}")
        lines.append(f" match metric {metric}")
        if action == "permit" and draw(st.booleans()):
            lines.append(f" set tag {idx + 1}")
    store = parse_config("\n".join(lines))
    # The new stanza matches everything (overlaps every stanza).
    snippet_action = draw(st.sampled_from(["permit", "deny"]))
    snippet_lines = [f"route-map NEW {snippet_action} 10"]
    if snippet_action == "permit":
        snippet_lines.append(" set local-preference 777")
    snippet = parse_config("\n".join(snippet_lines))
    position = draw(st.integers(0, n))
    return store, snippet, position


def probe_routes():
    return [BgpRoute.build("1.0.0.0/8", metric=m) for m in range(0, 9)]


class TestRouteMapPlacement:
    @given(scalar_route_map_case(), st.sampled_from(MODES))
    @settings(max_examples=60, deadline=None)
    def test_found_placement_is_behaviourally_correct(self, case, mode):
        store, snippet, position = case
        target = store.route_map("RM")
        renamed = rename_snippet_lists(snippet, store)
        new_stanza = list(renamed.route_maps())[0].stanzas[0]

        reference = target.insert(new_stanza, position)

        def intended(route):
            return eval_route_map(reference, store, route).behaviour_key()

        oracle = CountingOracle(IntentOracle(intended))
        result = disambiguate_stanza(store, "RM", renamed, oracle, mode)
        produced = result.store.route_map("RM")

        for route in probe_routes():
            got = eval_route_map(produced, result.store, route).behaviour_key()
            want = eval_route_map(reference, store, route).behaviour_key()
            assert got == want, (route.metric, result.position, position)

    @given(scalar_route_map_case())
    @settings(max_examples=60, deadline=None)
    def test_question_count_is_logarithmic(self, case):
        store, snippet, position = case
        target = store.route_map("RM")
        renamed = rename_snippet_lists(snippet, store)
        new_stanza = list(renamed.route_maps())[0].stanzas[0]
        reference = target.insert(new_stanza, position)

        def intended(route):
            return eval_route_map(reference, store, route).behaviour_key()

        oracle = CountingOracle(IntentOracle(intended))
        result = disambiguate_stanza(store, "RM", renamed, oracle)
        k = len(result.overlaps)
        assert result.question_count <= math.ceil(math.log2(k + 1)) if k else (
            result.question_count == 0
        )


@st.composite
def acl_case(draw):
    """(store, snippet, intended position) over dst-port guards."""
    n = draw(st.integers(1, 5))
    ports = draw(
        st.lists(st.integers(1, 9), min_size=n, max_size=n, unique=True)
    )
    lines = ["ip access-list extended FW"]
    for idx, port in enumerate(ports):
        action = draw(st.sampled_from(["permit", "deny"]))
        lines.append(f" {10 * (idx + 1)} {action} tcp any any eq {port}")
    store = parse_config("\n".join(lines))
    snippet_action = draw(st.sampled_from(["permit", "deny"]))
    snippet = parse_config(
        f"ip access-list extended NEW\n 10 {snippet_action} tcp any any"
    )
    position = draw(st.integers(0, n))
    return store, snippet, position


def probe_packets():
    return [
        Packet.build("1.1.1.1", "2.2.2.2", dst_port=port) for port in range(0, 11)
    ]


class TestAclPlacement:
    @given(acl_case(), st.sampled_from(MODES))
    @settings(max_examples=50, deadline=None)
    def test_found_placement_is_behaviourally_correct(self, case, mode):
        store, snippet, position = case
        target = store.acl("FW")
        new_rule = list(snippet.acls())[0].rules[0]
        reference = target.insert(new_rule, position)

        def intended(packet):
            return eval_acl(reference, packet).behaviour_key()

        oracle = CountingOracle(IntentOracle(intended))
        result = disambiguate_acl_rule(store, "FW", snippet, oracle, mode)
        produced = result.store.acl("FW")

        for packet in probe_packets():
            assert (
                eval_acl(produced, packet).behaviour_key()
                == eval_acl(reference, packet).behaviour_key()
            ), (packet.dst_port, result.position, position)
