"""Tests for the §7 LLM-augmentation strategies."""

import pytest

from repro.llm import FaultyLLM, PromptDatabase, SimulatedLLM, TaskKind
from repro.llm.prompts import FewShotExample
from repro.llm.strategies import ExampleRetriever, MajorityVoteLLM, build_library

DB = PromptDatabase()

PAPER_PROMPT = (
    "Write a route-map stanza that permits routes containing the prefix "
    "100.0.0.0/16 with mask length less than or equal to 23 and tagged "
    "with the community 300:3. Their MED value should be set to 55."
)


def library():
    return build_library(
        [DB.template(kind) for kind in (TaskKind.ROUTE_MAP_SYNTH, TaskKind.ACL_SYNTH)]
    )


class TestExampleRetriever:
    def test_most_similar_example_ranked_first(self):
        retriever = ExampleRetriever(library(), k=1)
        picked = retriever.select(PAPER_PROMPT)
        assert len(picked) == 1
        assert "100.0.0.0/16" in picked[0].prompt

    def test_acl_query_retrieves_acl_example(self):
        retriever = ExampleRetriever(library(), k=1)
        picked = retriever.select(
            "Add a rule that denies tcp traffic from 10.0.0.0/8 to host "
            "2.2.2.2 on destination port 22."
        )
        assert "tcp traffic" in picked[0].prompt

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            ExampleRetriever(library(), k=0)
        retriever = ExampleRetriever(library(), k=99)
        assert len(retriever.select("anything")) == len(library())

    def test_augmented_template_renders(self):
        retriever = ExampleRetriever(library(), k=1)
        template = retriever.augment(
            DB.template(TaskKind.ROUTE_MAP_SYNTH), PAPER_PROMPT
        )
        rendered = template.render_system()
        assert rendered.startswith("TASK: route-map-synth")
        assert "EXAMPLE 1 PROMPT:" in rendered
        assert "EXAMPLE 2 PROMPT:" not in rendered

    def test_deterministic_tiebreak(self):
        examples = (
            FewShotExample("zebra", "a"),
            FewShotExample("zebra", "b"),
        )
        retriever = ExampleRetriever(examples, k=1)
        assert retriever.select("zebra")[0].completion == "a"

    def test_empty_query_tokens(self):
        retriever = ExampleRetriever(library(), k=1)
        assert len(retriever.select("!!!")) == 1


class TestMajorityVoteLLM:
    def test_recovers_clean_output_under_faults(self):
        # Deterministic seeds: voting strictly beats a single call.
        system = DB.system_prompt(TaskKind.ROUTE_MAP_SYNTH)
        clean = SimulatedLLM().complete(system, PAPER_PROMPT)
        single = sum(
            FaultyLLM(SimulatedLLM(), 0.3, seed=s).complete(system, PAPER_PROMPT)
            == clean
            for s in range(40)
        )
        voted = sum(
            MajorityVoteLLM(
                FaultyLLM(SimulatedLLM(), 0.3, seed=s), k=5
            ).complete(system, PAPER_PROMPT)
            == clean
            for s in range(40)
        )
        assert voted > single
        assert voted >= 32  # ~88% recovery at a 30% fault rate

    def test_inner_call_accounting(self):
        voter = MajorityVoteLLM(SimulatedLLM(), k=3)
        system = DB.system_prompt(TaskKind.CLASSIFY)
        voter.complete(system, PAPER_PROMPT)
        voter.complete(system, PAPER_PROMPT)
        assert voter.inner_calls == 6

    def test_k_one_is_passthrough(self):
        system = DB.system_prompt(TaskKind.ROUTE_MAP_SYNTH)
        voter = MajorityVoteLLM(SimulatedLLM(), k=1)
        assert voter.complete(system, PAPER_PROMPT) == SimulatedLLM().complete(
            system, PAPER_PROMPT
        )

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            MajorityVoteLLM(SimulatedLLM(), k=0)

    def test_composes_with_pipeline(self):
        from repro.core import ClarifySession, ScriptedOracle

        voter = MajorityVoteLLM(
            FaultyLLM(SimulatedLLM(), error_rate=0.4, seed=11), k=5
        )
        session = ClarifySession(
            llm=voter, oracle=ScriptedOracle([1] * 3), max_attempts=5
        )
        report = session.request(PAPER_PROMPT, "ISP_OUT")
        assert report.attempts <= 5
        assert session.store.has_route_map("ISP_OUT")
