"""TranscribingClient: task attribution, running counters, the record cap."""

import pytest

from repro import obs
from repro.llm import (
    DEFAULT_MAX_RECORDS,
    PromptDatabase,
    SimulatedLLM,
    TaskKind,
    TranscribingClient,
)

PROMPTS = PromptDatabase()


def call(client, task, prompt="permit routes with metric 50"):
    return client.complete(PROMPTS.system_prompt(task), prompt)


class TestTaskAttribution:
    def test_task_kind_recovered_from_system_prompt(self):
        client = TranscribingClient(SimulatedLLM())
        call(client, TaskKind.CLASSIFY, "Add a rule to route-map RM")
        (record,) = client.records
        assert record.task is TaskKind.CLASSIFY

    def test_counts_by_task(self):
        client = TranscribingClient(SimulatedLLM())
        call(client, TaskKind.CLASSIFY, "Add a rule to route-map RM")
        call(client, TaskKind.CLASSIFY, "Add a rule to route-map RM")
        call(client, TaskKind.ROUTE_MAP_SPEC)
        counts = client.counts_by_task()
        assert counts[TaskKind.CLASSIFY] == 2
        assert counts[TaskKind.ROUTE_MAP_SPEC] == 1
        assert TaskKind.ACL_SPEC not in counts

    def test_call_count_filters(self):
        client = TranscribingClient(SimulatedLLM())
        call(client, TaskKind.CLASSIFY, "Add a rule to route-map RM")
        call(client, TaskKind.ROUTE_MAP_SPEC)
        assert client.call_count() == 2
        assert client.call_count(TaskKind.CLASSIFY) == 1
        assert client.call_count(TaskKind.ACL_SPEC) == 0


class TestRecordCap:
    def test_default_cap(self):
        assert TranscribingClient(SimulatedLLM()).max_records == DEFAULT_MAX_RECORDS

    def test_cap_evicts_oldest(self):
        client = TranscribingClient(SimulatedLLM(), max_records=2)
        for idx in range(4):
            call(client, TaskKind.CLASSIFY, f"Add a rule to route-map RM{idx}")
        records = client.records
        assert len(records) == 2
        assert client.evicted == 2
        # Oldest were dropped: the retained prompts are the last two.
        assert [r.prompt for r in records] == [
            "Add a rule to route-map RM2",
            "Add a rule to route-map RM3",
        ]

    def test_counters_survive_eviction(self):
        client = TranscribingClient(SimulatedLLM(), max_records=1)
        for idx in range(5):
            call(client, TaskKind.CLASSIFY, f"Add a rule to route-map RM{idx}")
        # The Figure-4 statistics stay exact despite 4 evicted records.
        assert client.call_count() == 5
        assert client.call_count(TaskKind.CLASSIFY) == 5
        assert len(client.records) == 1

    def test_eviction_bumps_obs_counter(self):
        with obs.recording() as rec:
            client = TranscribingClient(SimulatedLLM(), max_records=1)
            call(client, TaskKind.CLASSIFY, "Add a rule to route-map A")
            call(client, TaskKind.CLASSIFY, "Add a rule to route-map B")
        assert rec.counter("llm.transcript.evicted") == 1

    def test_unbounded_with_none(self):
        client = TranscribingClient(SimulatedLLM(), max_records=None)
        for idx in range(DEFAULT_MAX_RECORDS + 10):
            call(client, TaskKind.CLASSIFY, f"Add a rule to route-map R{idx}")
        assert len(client.records) == DEFAULT_MAX_RECORDS + 10
        assert client.evicted == 0

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            TranscribingClient(SimulatedLLM(), max_records=0)
        with pytest.raises(ValueError):
            TranscribingClient(SimulatedLLM(), max_records=-3)

    def test_reset_clears_everything(self):
        client = TranscribingClient(SimulatedLLM(), max_records=1)
        call(client, TaskKind.CLASSIFY, "Add a rule to route-map A")
        call(client, TaskKind.CLASSIFY, "Add a rule to route-map B")
        client.reset()
        assert client.records == []
        assert client.call_count() == 0
        assert client.evicted == 0
        assert client.counts_by_task() == {}


class TestJournalEmission:
    def test_llm_call_event_carries_hash_not_system_prompt(self):
        with obs.journaling() as journal:
            client = TranscribingClient(SimulatedLLM())
            system = PROMPTS.system_prompt(TaskKind.CLASSIFY)
            client.complete(system, "Add a rule to route-map RM")
        calls = [e for e in journal.events if e.type == "llm.call"]
        assert len(calls) == 1
        data = calls[0].data
        assert data["system_sha256"] == obs.sha256_text(system)
        assert "system" not in data  # full system prompt stays out
        assert data["prompt"] == "Add a rule to route-map RM"
        assert data["task"] == TaskKind.CLASSIFY.value
