"""Tests for the simulated LLM, prompt database, transcript, and faults."""

import json

import pytest

from repro.config import parse_config
from repro.llm import (
    FaultyLLM,
    PromptDatabase,
    SimulatedLLM,
    TaskKind,
    TranscribingClient,
)
from repro.llm.prompts import task_kind_of
from repro.route import BgpRoute

PAPER_PROMPT = (
    "Write a route-map stanza that permits routes containing the prefix "
    "100.0.0.0/16 with mask length less than or equal to 23 and tagged "
    "with the community 300:3. Their MED value should be set to 55."
)

DB = PromptDatabase()
LLM = SimulatedLLM()


class TestPromptDatabase:
    def test_all_tasks_present(self):
        assert set(DB.kinds()) == set(TaskKind)

    def test_task_marker_round_trip(self):
        for kind in TaskKind:
            assert task_kind_of(DB.system_prompt(kind)) is kind

    def test_few_shot_examples_included(self):
        system = DB.system_prompt(TaskKind.ROUTE_MAP_SYNTH)
        assert "EXAMPLE 1 PROMPT:" in system
        assert "route-map SET_METRIC permit 10" in system

    def test_marker_required(self):
        with pytest.raises(ValueError):
            task_kind_of("no marker here")


class TestClassification:
    def test_route_map_query(self):
        system = DB.system_prompt(TaskKind.CLASSIFY)
        assert LLM.complete(system, PAPER_PROMPT) == "route-map"

    def test_acl_query(self):
        system = DB.system_prompt(TaskKind.CLASSIFY)
        prompt = (
            "Add a rule that denies tcp traffic from 10.0.0.0/8 to host "
            "2.2.2.2 on destination port 22."
        )
        assert LLM.complete(system, prompt) == "acl"


class TestRouteMapSynthesis:
    def test_paper_prompt_produces_paper_snippet(self):
        system = DB.system_prompt(TaskKind.ROUTE_MAP_SYNTH)
        output = LLM.complete(system, PAPER_PROMPT)
        store = parse_config(output)
        rm = store.route_map("SET_METRIC")
        stanza = rm.stanzas[0]
        assert stanza.action == "permit"
        assert len(stanza.matches) == 2
        # Behavioural check against the intent.
        inside = BgpRoute.build("100.0.0.0/16", communities=["300:3"])
        from repro.analysis import eval_route_map

        result = eval_route_map(rm, store, inside)
        assert result.permitted()
        assert result.output.metric == 55
        outside = BgpRoute.build("100.0.0.0/16", communities=["1:1"])
        assert not eval_route_map(rm, store, outside).permitted()
        too_long = BgpRoute.build("100.0.0.0/24", communities=["300:3"])
        assert not eval_route_map(rm, store, too_long).permitted()

    def test_deny_as_snippet(self):
        system = DB.system_prompt(TaskKind.ROUTE_MAP_SYNTH)
        output = LLM.complete(
            system, "Write a route-map stanza that denies routes originating from AS 32."
        )
        store = parse_config(output)
        rm = store.route_map("DENY_AS")
        assert rm.stanzas[0].action == "deny"
        assert store.as_path_list("AS_LIST").entries[0].regex == "_32$"

    def test_multi_community_uses_standard_list(self):
        system = DB.system_prompt(TaskKind.ROUTE_MAP_SYNTH)
        output = LLM.complete(
            system,
            "Permit routes tagged with the communities 100:1 and 100:2.",
        )
        store = parse_config(output)
        cl = store.community_list("COM_LIST")
        assert not cl.expanded
        assert cl.entries[0].communities == ("100:1", "100:2")


class TestSpecExtraction:
    def test_paper_spec(self):
        system = DB.system_prompt(TaskKind.ROUTE_MAP_SPEC)
        spec = json.loads(LLM.complete(system, PAPER_PROMPT))
        assert spec == {
            "permit": True,
            "prefix": ["100.0.0.0/16:16-23"],
            "community": "/_300:3_/",
            "set": {"metric": 55},
        }

    def test_acl_spec(self):
        system = DB.system_prompt(TaskKind.ACL_SPEC)
        prompt = (
            "Add a rule that denies tcp traffic from 10.0.0.0/8 to host "
            "2.2.2.2 on destination port 22."
        )
        spec = json.loads(LLM.complete(system, prompt))
        assert spec == {
            "permit": False,
            "protocol": "tcp",
            "src": "10.0.0.0/8",
            "dst": "2.2.2.2/32",
            "dst_ports": ["22-22"],
        }


class TestAclSynthesis:
    def test_snippet_parses_and_behaves(self):
        from repro.analysis import eval_acl
        from repro.route import Packet

        system = DB.system_prompt(TaskKind.ACL_SYNTH)
        output = LLM.complete(
            system,
            "Add a rule that denies tcp traffic from 10.0.0.0/8 to host "
            "2.2.2.2 on destination port 22.",
        )
        acl = parse_config(output).acl("NEW_RULE")
        assert len(acl.rules) == 1
        assert not eval_acl(
            acl, Packet.build("10.1.1.1", "2.2.2.2", dst_port=22)
        ).permitted()


class TestTranscribingClient:
    def test_counts_by_task(self):
        client = TranscribingClient(SimulatedLLM())
        client.complete(DB.system_prompt(TaskKind.CLASSIFY), PAPER_PROMPT)
        client.complete(DB.system_prompt(TaskKind.ROUTE_MAP_SYNTH), PAPER_PROMPT)
        client.complete(DB.system_prompt(TaskKind.ROUTE_MAP_SPEC), PAPER_PROMPT)
        assert client.call_count() == 3
        assert client.call_count(TaskKind.ROUTE_MAP_SYNTH) == 1
        assert client.counts_by_task()[TaskKind.CLASSIFY] == 1
        client.reset()
        assert client.call_count() == 0


class TestFaultyLLM:
    def test_zero_rate_is_transparent(self):
        faulty = FaultyLLM(SimulatedLLM(), error_rate=0.0, seed=1)
        system = DB.system_prompt(TaskKind.ROUTE_MAP_SYNTH)
        assert faulty.complete(system, PAPER_PROMPT) == SimulatedLLM().complete(
            system, PAPER_PROMPT
        )
        assert faulty.injected_faults == 0

    def test_full_rate_always_corrupts(self):
        faulty = FaultyLLM(SimulatedLLM(), error_rate=1.0, seed=7)
        system = DB.system_prompt(TaskKind.ROUTE_MAP_SYNTH)
        clean = SimulatedLLM().complete(system, PAPER_PROMPT)
        for _ in range(5):
            assert faulty.complete(system, PAPER_PROMPT) != clean
        assert faulty.injected_faults == 5

    def test_spec_outputs_never_corrupted(self):
        faulty = FaultyLLM(SimulatedLLM(), error_rate=1.0, seed=7)
        system = DB.system_prompt(TaskKind.ROUTE_MAP_SPEC)
        clean = SimulatedLLM().complete(system, PAPER_PROMPT)
        assert faulty.complete(system, PAPER_PROMPT) == clean

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultyLLM(SimulatedLLM(), error_rate=1.5)

    def test_deterministic_given_seed(self):
        system = DB.system_prompt(TaskKind.ROUTE_MAP_SYNTH)
        a = FaultyLLM(SimulatedLLM(), error_rate=0.5, seed=42)
        b = FaultyLLM(SimulatedLLM(), error_rate=0.5, seed=42)
        outs_a = [a.complete(system, PAPER_PROMPT) for _ in range(10)]
        outs_b = [b.complete(system, PAPER_PROMPT) for _ in range(10)]
        assert outs_a == outs_b
