"""Tests for the English intent grammar."""

import pytest

from repro.llm import IntentParseError, parse_acl_intent, parse_route_map_intent

PAPER_PROMPT = (
    "Write a route-map stanza that permits routes containing the prefix "
    "100.0.0.0/16 with mask length less than or equal to 23 and tagged "
    "with the community 300:3. Their MED value should be set to 55."
)


class TestRouteMapIntents:
    def test_paper_prompt(self):
        intent = parse_route_map_intent(PAPER_PROMPT)
        assert intent.action == "permit"
        assert len(intent.prefixes) == 1
        constraint = intent.prefixes[0]
        assert str(constraint.prefix) == "100.0.0.0/16"
        assert constraint.le == 23 and constraint.ge is None
        assert constraint.bounds() == (16, 23)
        assert intent.communities == ("300:3",)
        assert intent.set_metric == 55

    def test_deny_origin_as(self):
        intent = parse_route_map_intent(
            "Write a route-map stanza that denies routes originating from AS 32."
        )
        assert intent.action == "deny"
        assert intent.as_path_regex == "_32$"
        assert intent.name_hint() == "DENY_AS"

    def test_passing_through_as(self):
        intent = parse_route_map_intent(
            "Permit routes passing through AS 174."
        )
        assert intent.as_path_regex == "_174_"

    def test_received_from_neighbor(self):
        intent = parse_route_map_intent(
            "Deny routes received from AS 65500."
        )
        assert intent.as_path_regex == "^65500_"

    def test_local_preference_match(self):
        intent = parse_route_map_intent(
            "Write a stanza that permits routes with local-preference 300."
        )
        assert intent.local_preference == 300

    def test_set_local_preference(self):
        intent = parse_route_map_intent(
            "Permit routes containing the prefix 10.1.0.0/16. Their local "
            "preference should be set to 200."
        )
        assert intent.local_preference is None
        assert intent.set_local_preference == 200

    def test_mask_windows(self):
        cases = [
            ("with mask length at least 24", (24, 32)),
            ("with mask length between 20 and 28", (20, 28)),
            ("with mask length up to 24", (8, 24)),
            ("or longer", (8, 32)),
            ("and all its more-specific prefixes", (8, 32)),
            ("", (8, 8)),
        ]
        for phrase, expected in cases:
            intent = parse_route_map_intent(
                f"Permit routes containing the prefix 10.0.0.0/8 {phrase}."
            )
            assert intent.prefixes[0].bounds() == expected, phrase

    def test_multiple_communities(self):
        intent = parse_route_map_intent(
            "Permit routes tagged with the communities 100:1 and 100:2."
        )
        assert intent.communities == ("100:1", "100:2")

    def test_set_community_additive(self):
        intent = parse_route_map_intent(
            "Permit routes containing the prefix 10.0.0.0/8, adding the "
            "community 65000:99."
        )
        assert intent.set_communities == ("65000:99",)
        assert intent.set_community_additive

    def test_set_community_replace(self):
        intent = parse_route_map_intent(
            "Permit routes containing the prefix 10.0.0.0/8, replacing "
            "their communities with 65000:1."
        )
        assert intent.set_communities == ("65000:1",)
        assert not intent.set_community_additive

    def test_next_hop(self):
        intent = parse_route_map_intent(
            "Permit routes containing the prefix 10.0.0.0/8 with the next "
            "hop set to 192.0.2.1."
        )
        assert intent.set_next_hop == "192.0.2.1"
        # The next-hop address must not be mistaken for a matched prefix.
        assert len(intent.prefixes) == 1

    def test_prepend(self):
        intent = parse_route_map_intent(
            "Permit routes containing the prefix 10.0.0.0/8, prepending "
            "AS 65000 three times."
        )
        assert intent.set_prepend == (65000, 65000, 65000)

    def test_rejects_empty_intent(self):
        with pytest.raises(IntentParseError):
            parse_route_map_intent("Write a route-map stanza that permits routes.")

    def test_rejects_actionless_intent(self):
        with pytest.raises(IntentParseError):
            parse_route_map_intent("Routes with community 1:1 exist.")


class TestAclIntents:
    def test_basic_deny(self):
        intent = parse_acl_intent(
            "Add a rule that denies tcp traffic from 10.0.0.0/8 to host "
            "2.2.2.2 on destination port 22."
        )
        assert intent.action == "deny"
        assert intent.protocol == "tcp"
        assert str(intent.src) == "10.0.0.0/8"
        assert str(intent.dst) == "2.2.2.2/32"
        assert (intent.dst_port_lo, intent.dst_port_hi) == (22, 22)

    def test_any_endpoints(self):
        intent = parse_acl_intent("Permit udp traffic from any to any.")
        assert intent.src is None and intent.dst is None
        assert intent.protocol == "udp"

    def test_port_range(self):
        intent = parse_acl_intent(
            "Permit udp traffic from any to 10.0.0.0/8 on ports 5000-6000."
        )
        assert (intent.dst_port_lo, intent.dst_port_hi) == (5000, 6000)

    def test_source_port(self):
        intent = parse_acl_intent(
            "Deny tcp traffic from 10.0.0.0/8 on source port 79 to any."
        )
        assert (intent.src_port_lo, intent.src_port_hi) == (79, 79)

    def test_established(self):
        intent = parse_acl_intent(
            "Permit tcp traffic from any to any for established connections."
        )
        assert intent.established

    def test_default_protocol_is_ip(self):
        intent = parse_acl_intent("Deny traffic from 10.0.0.0/8 to any.")
        assert intent.protocol == "ip"
