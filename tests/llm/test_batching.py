"""Micro-batching: flush windows, complete_many, per-item error isolation."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.llm.batching import BatchingClient


class Upstream:
    """Per-item upstream, echoing its inputs."""

    cache_safe = True

    def __init__(self):
        self.calls = 0
        self.lock = threading.Lock()

    def complete(self, system, prompt):
        with self.lock:
            self.calls += 1
        if prompt == "explode":
            raise RuntimeError("bad item")
        return f"{system}/{prompt}"


class BatchUpstream(Upstream):
    """An upstream with a complete_many fast path."""

    def __init__(self):
        super().__init__()
        self.batches = []

    def complete_many(self, pairs):
        with self.lock:
            self.batches.append(len(pairs))
        return [f"{system}/{prompt}" for system, prompt in pairs]


def fan_out(client, pairs, workers=8):
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(client.complete, system, prompt)
            for system, prompt in pairs
        ]
        return [f.result() for f in futures]


class TestSemantics:
    def test_single_call_passes_through(self):
        client = BatchingClient(Upstream(), flush_window_s=0.0)
        assert client.complete("s", "p") == "s/p"
        assert client.stats() == {"flushes": 1, "batched": 0}

    def test_every_caller_gets_its_own_response(self):
        client = BatchingClient(Upstream(), flush_window_s=0.02)
        pairs = [(f"s{i}", f"p{i}") for i in range(12)]
        results = fan_out(client, pairs)
        assert results == [f"s{i}/p{i}" for i in range(12)]

    def test_concurrent_burst_shares_flushes(self):
        client = BatchingClient(Upstream(), flush_window_s=0.2)
        fan_out(client, [(f"s{i}", f"p{i}") for i in range(8)])
        assert client.flushes < 8  # at least one batch formed
        assert client.batched >= 2

    def test_complete_many_fast_path(self):
        upstream = BatchUpstream()
        client = BatchingClient(upstream, flush_window_s=0.05)
        results = fan_out(client, [(f"s{i}", f"p{i}") for i in range(6)])
        assert sorted(results) == sorted(f"s{i}/p{i}" for i in range(6))
        assert upstream.batches  # the fast path was taken at least once
        # complete_many served whole batches: per-item calls only for
        # singleton flushes.
        assert sum(upstream.batches) + upstream.calls == 6

    def test_full_buffer_flushes_early(self):
        client = BatchingClient(
            Upstream(), flush_window_s=60.0, max_batch=4
        )
        results = fan_out(client, [(f"s{i}", f"p{i}") for i in range(4)], 4)
        assert len(results) == 4  # did not wait out the 60s window


class TestErrorIsolation:
    def test_failed_item_raises_only_to_its_owner(self):
        client = BatchingClient(Upstream(), flush_window_s=0.05)
        with ThreadPoolExecutor(max_workers=4) as pool:
            good = [
                pool.submit(client.complete, "s", f"p{i}") for i in range(3)
            ]
            bad = pool.submit(client.complete, "s", "explode")
            assert [f.result() for f in good] == ["s/p0", "s/p1", "s/p2"]
            with pytest.raises(RuntimeError, match="bad item"):
                bad.result()

    def test_complete_many_failure_reaches_every_owner(self):
        class ExplodingBatch(BatchUpstream):
            def complete_many(self, pairs):
                raise RuntimeError("batch endpoint down")

        client = BatchingClient(ExplodingBatch(), flush_window_s=0.05)
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(client.complete, "s", f"p{i}") for i in range(2)
            ]
            failures = 0
            for future in futures:
                try:
                    future.result()
                except RuntimeError:
                    failures += 1
            # Singleton flushes take the per-item path and succeed; any
            # true batch fails both owners.
            assert failures in (0, 2)


class TestValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            BatchingClient(Upstream(), flush_window_s=-0.1)

    def test_zero_max_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchingClient(Upstream(), max_batch=0)

    def test_cache_safe_delegates(self):
        assert BatchingClient(Upstream()).cache_safe is True

        class Impure(Upstream):
            cache_safe = False

        assert BatchingClient(Impure()).cache_safe is False
