"""The backend router: fallback order, health counters, build_backend."""

import pytest

from repro.core.budget import TimeBudget, budget_scope
from repro.core.errors import DeadlineExceeded
from repro.llm.errors import (
    RetryableBackendError,
    TerminalBackendError,
)
from repro.llm.remote import RemoteLLMClient, RetryPolicy, TransportReply
from repro.llm.router import (
    KNOWN_BACKENDS,
    BackendRouter,
    build_backend,
)
from repro.llm.simulated import SimulatedLLM


class Good:
    cache_safe = True

    def __init__(self, response="ok"):
        self.calls = 0
        self.response = response

    def complete(self, system, prompt):
        self.calls += 1
        return self.response


class Failing:
    cache_safe = True

    def __init__(self, error):
        self.calls = 0
        self.error = error

    def complete(self, system, prompt):
        self.calls += 1
        raise self.error


class TestRouting:
    def test_first_backend_serves(self):
        first, second = Good("a"), Good("b")
        router = BackendRouter([("one", first), ("two", second)])
        assert router.complete("s", "p") == "a"
        assert second.calls == 0
        assert router.fallbacks == 0

    def test_terminal_error_falls_through(self):
        broken = Failing(TerminalBackendError("bad key", backend="one"))
        healthy = Good("served")
        router = BackendRouter([("one", broken), ("two", healthy)])
        assert router.complete("s", "p") == "served"
        assert router.fallbacks == 1
        assert router.health["one"].failures == 1
        assert router.health["two"].successes == 1

    def test_retryable_error_also_falls_through(self):
        """A backend's exhausted retry budget surfaces as retryable."""
        broken = Failing(RetryableBackendError("still 503", backend="one"))
        router = BackendRouter([("one", broken), ("two", Good())])
        assert router.complete("s", "p") == "ok"

    def test_all_backends_failing_raises_terminal(self):
        router = BackendRouter(
            [
                ("one", Failing(TerminalBackendError("a", backend="one"))),
                ("two", Failing(RetryableBackendError("b", backend="two"))),
            ]
        )
        with pytest.raises(TerminalBackendError, match="all backends failed"):
            router.complete("s", "p")
        assert router.fallbacks == 1  # the *last* failure is not a fallback

    def test_deadline_aborts_the_whole_chain(self):
        """DeadlineExceeded is not a BackendError: no fallback happens."""
        now = [0.0]
        budget = TimeBudget(1.0, clock=lambda: now[0])

        class Expiring:
            cache_safe = True

            def complete(self, system, prompt):
                now[0] = 2.0
                budget.check("test")
                return "never"

        fallback = Good()
        router = BackendRouter([("one", Expiring()), ("two", fallback)])
        with budget_scope(budget):
            with pytest.raises(DeadlineExceeded):
                router.complete("s", "p")
        assert fallback.calls == 0
        assert router.fallbacks == 0

    def test_non_backend_errors_propagate(self):
        """Intent-grammar errors keep their meaning for the pipeline."""
        router = BackendRouter(
            [("one", Failing(ValueError("no TASK marker"))), ("two", Good())]
        )
        with pytest.raises(ValueError):
            router.complete("s", "p")

    def test_recovery_resets_consecutive_failures(self):
        flaky = Failing(TerminalBackendError("x", backend="one"))
        router = BackendRouter([("one", flaky), ("two", Good())])
        router.complete("s", "p")
        assert router.health["one"].consecutive_failures == 1
        flaky.error = None
        flaky.complete = lambda system, prompt: "healed"
        router.complete("s", "p")
        assert router.health["one"].consecutive_failures == 0

    def test_stats_snapshot(self):
        router = BackendRouter(
            [
                ("one", Failing(TerminalBackendError("x", backend="one"))),
                ("two", Good()),
            ]
        )
        router.complete("s", "p")
        stats = router.stats()
        assert stats["one"]["failures"] == 1
        assert stats["two"]["successes"] == 1
        assert stats["_router"]["fallbacks"] == 1.0


class TestValidation:
    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            BackendRouter([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            BackendRouter([("x", Good()), ("x", Good())])

    def test_backend_names_in_order(self):
        router = BackendRouter([("b", Good()), ("a", Good())])
        assert router.backend_names == ("b", "a")


class TestCacheSafety:
    def test_all_pure_chain_is_safe(self):
        assert BackendRouter([("a", Good()), ("b", Good())]).cache_safe

    def test_one_impure_link_poisons_the_chain(self):
        class Impure:
            cache_safe = False

            def complete(self, system, prompt):
                return "x"

        router = BackendRouter([("a", Good()), ("b", Impure())])
        assert router.cache_safe is False


class TestBuildBackend:
    def test_single_simulated_is_bare(self):
        assert isinstance(build_backend("simulated"), SimulatedLLM)

    def test_single_remote_is_bare(self):
        client = build_backend("remote", api_key="k")
        assert isinstance(client, RemoteLLMClient)

    def test_chain_builds_a_router(self):
        router = build_backend("remote,simulated", api_key="k")
        assert isinstance(router, BackendRouter)
        assert router.backend_names == ("remote", "simulated")

    def test_whitespace_tolerated(self):
        router = build_backend(" remote , simulated ", api_key="k")
        assert router.backend_names == ("remote", "simulated")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            build_backend("gpt4")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty backend spec"):
            build_backend(" , ")

    def test_known_backends_constant(self):
        assert set(KNOWN_BACKENDS) == {"simulated", "remote"}

    def test_misconfigured_remote_fails_at_build_time(self, monkeypatch):
        for var in ("CLARIFY_LLM_API_KEY", "ANTHROPIC_API_KEY"):
            monkeypatch.delenv(var, raising=False)
        with pytest.raises(TerminalBackendError, match="no API key"):
            build_backend("remote,simulated")


class TestEndToEnd:
    def test_remote_falls_back_to_simulated(self):
        """A dead remote endpoint degrades to the simulator transparently."""

        class DeadTransport:
            def post(self, url, headers, body, timeout_s):
                raise RetryableBackendError("refused", backend="remote")

        remote = RemoteLLMClient(
            api_key="k",
            transport=DeadTransport(),
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0),
            sleep=lambda s: None,
        )
        router = BackendRouter(
            [("remote", remote), ("simulated", SimulatedLLM())]
        )
        system = "TASK: route-map-synth\nWrite one stanza."
        response = router.complete(
            system,
            "Write a route-map stanza that permits routes with "
            "local-preference 300.",
        )
        assert "local-preference 300" in response
        assert router.fallbacks == 1
        assert remote.attempts == 2
