"""Regression tests: the LLM wrappers must survive a thread hammer.

The serving layer shares one wrapper stack across a worker pool, so
``TranscribingClient`` and ``FaultyLLM`` are exercised from 8 threads
at once and their bookkeeping must come out exact.
"""

import threading

from repro.llm import (
    FaultyLLM,
    PromptDatabase,
    SimulatedLLM,
    TaskKind,
    TranscribingClient,
)
from repro.llm.client import LLMClient

THREADS = 8
CALLS_PER_THREAD = 50

DB = PromptDatabase()
SYNTH_SYSTEM = DB.system_prompt(TaskKind.ROUTE_MAP_SYNTH)
SPEC_SYSTEM = DB.system_prompt(TaskKind.ROUTE_MAP_SPEC)

PAPER_PROMPT = (
    "Write a route-map stanza that permits routes containing the prefix "
    "100.0.0.0/16 with mask length less than or equal to 23 and tagged "
    "with the community 300:3. Their MED value should be set to 55."
)


class EchoLLM(LLMClient):
    def complete(self, system: str, prompt: str) -> str:
        return f"echo|{prompt}"


def _hammer(worker, threads=THREADS):
    errors = []

    def run(idx):
        try:
            worker(idx)
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    pool = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert errors == []


class TestTranscribingClientThreadSafety:
    def test_counts_exact_under_hammer(self):
        client = TranscribingClient(EchoLLM())

        def worker(idx):
            for call in range(CALLS_PER_THREAD):
                system = SYNTH_SYSTEM if call % 2 else SPEC_SYSTEM
                client.complete(system, f"prompt-{idx}-{call}")

        _hammer(worker)
        assert client.call_count() == THREADS * CALLS_PER_THREAD
        by_task = client.counts_by_task()
        assert sum(by_task.values()) == THREADS * CALLS_PER_THREAD
        assert by_task[TaskKind.ROUTE_MAP_SYNTH] == THREADS * (
            CALLS_PER_THREAD // 2
        )

    def test_eviction_under_hammer_keeps_invariants(self):
        client = TranscribingClient(EchoLLM(), max_records=64)

        def worker(idx):
            for call in range(CALLS_PER_THREAD):
                client.complete(SYNTH_SYSTEM, f"prompt-{idx}-{call}")

        _hammer(worker)
        total = THREADS * CALLS_PER_THREAD
        assert client.call_count() == total
        assert len(client.records) == 64
        assert client.evicted == total - 64

    def test_concurrent_reset_never_corrupts(self):
        client = TranscribingClient(EchoLLM())
        stop = threading.Event()

        def caller(idx):
            while not stop.is_set():
                client.complete(SYNTH_SYSTEM, f"p{idx}")

        def resetter(_):
            for _ in range(20):
                client.reset()

        pool = [threading.Thread(target=caller, args=(i,)) for i in range(4)]
        for thread in pool:
            thread.start()
        _hammer(resetter, threads=2)
        stop.set()
        for thread in pool:
            thread.join()
        # After a final reset the counters are coherent again.
        client.reset()
        assert client.call_count() == 0
        assert client.records == []


class TestFaultyLLMThreadSafety:
    def test_certain_faults_counted_exactly(self):
        faulty = FaultyLLM(SimulatedLLM(), error_rate=1.0, seed=3)
        clean = SimulatedLLM().complete(SYNTH_SYSTEM, PAPER_PROMPT)
        corrupted = []
        lock = threading.Lock()

        def worker(idx):
            local = []
            for _ in range(CALLS_PER_THREAD):
                local.append(faulty.complete(SYNTH_SYSTEM, PAPER_PROMPT))
            with lock:
                corrupted.extend(local)

        _hammer(worker)
        total = THREADS * CALLS_PER_THREAD
        assert faulty.injected_faults == total
        assert all(response != clean for response in corrupted)

    def test_spec_calls_never_faulted_under_hammer(self):
        faulty = FaultyLLM(SimulatedLLM(), error_rate=1.0, seed=3)
        clean = SimulatedLLM().complete(SPEC_SYSTEM, PAPER_PROMPT)

        def worker(idx):
            for _ in range(CALLS_PER_THREAD):
                assert faulty.complete(SPEC_SYSTEM, PAPER_PROMPT) == clean

        _hammer(worker)
        assert faulty.injected_faults == 0

    def test_partial_rate_bookkeeping_consistent(self):
        faulty = FaultyLLM(SimulatedLLM(), error_rate=0.5, seed=11)
        clean = SimulatedLLM().complete(SYNTH_SYSTEM, PAPER_PROMPT)
        responses = []
        lock = threading.Lock()

        def worker(idx):
            local = []
            for _ in range(CALLS_PER_THREAD):
                local.append(faulty.complete(SYNTH_SYSTEM, PAPER_PROMPT))
            with lock:
                responses.extend(local)

        _hammer(worker)
        # Every injected fault corresponds to a response that differs
        # from the clean completion — the counter and the observable
        # corruptions must agree exactly.
        differing = sum(1 for response in responses if response != clean)
        assert differing == faulty.injected_faults
        assert 0 < faulty.injected_faults < THREADS * CALLS_PER_THREAD
