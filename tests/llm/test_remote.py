"""The remote HTTP client: retry schedule, deadlines, error taxonomy."""

import json

import pytest

from repro.core.budget import TimeBudget, budget_scope
from repro.core.errors import DeadlineExceeded
from repro.llm.errors import (
    BackendError,
    RetryableBackendError,
    TerminalBackendError,
    error_for_status,
)
from repro.llm.remote import (
    DEFAULT_BASE_URL,
    DEFAULT_MODEL,
    ENV_API_KEY,
    ENV_API_KEY_FALLBACK,
    ENV_BASE_URL,
    ENV_MODEL,
    RemoteLLMClient,
    RetryPolicy,
    TransportReply,
)


def ok_body(text):
    return json.dumps(
        {"content": [{"type": "text", "text": text}]}
    ).encode()


class FakeTransport:
    """Replays a script of TransportReply objects (or exceptions)."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = []

    def post(self, url, headers, body, timeout_s):
        self.calls.append(
            {
                "url": url,
                "headers": dict(headers),
                "body": json.loads(body.decode()),
                "timeout_s": timeout_s,
            }
        )
        reply = self.script.pop(0)
        if isinstance(reply, Exception):
            raise reply
        return reply


@pytest.fixture
def no_env(monkeypatch):
    for var in (ENV_API_KEY, ENV_API_KEY_FALLBACK, ENV_BASE_URL, ENV_MODEL):
        monkeypatch.delenv(var, raising=False)


def make_client(script, **kwargs):
    sleeps = []
    client = RemoteLLMClient(
        api_key="test-key",
        transport=FakeTransport(script),
        sleep=sleeps.append,
        **kwargs,
    )
    return client, sleeps


class TestRetryPolicy:
    def test_default_schedule_is_deterministic(self):
        assert RetryPolicy().delays() == (0.2, 0.4, 0.8)

    def test_delays_are_capped(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=1.0, multiplier=3.0, max_delay_s=5.0
        )
        assert policy.delays() == (1.0, 3.0, 5.0, 5.0, 5.0)

    def test_single_attempt_has_no_delays(self):
        assert RetryPolicy(max_attempts=1).delays() == ()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"max_delay_s": -0.1},
            {"multiplier": 0.5},
        ],
    )
    def test_invalid_policies_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestConfiguration:
    def test_no_key_anywhere_is_terminal_at_construction(self, no_env):
        with pytest.raises(TerminalBackendError, match="no API key"):
            RemoteLLMClient()

    def test_key_falls_back_to_anthropic_convention(self, no_env, monkeypatch):
        monkeypatch.setenv(ENV_API_KEY_FALLBACK, "fallback-key")
        transport = FakeTransport([TransportReply(200, ok_body("hi"))])
        client = RemoteLLMClient(transport=transport)
        client.complete("s", "p")
        assert transport.calls[0]["headers"]["x-api-key"] == "fallback-key"

    def test_preferred_key_wins_over_fallback(self, no_env, monkeypatch):
        monkeypatch.setenv(ENV_API_KEY, "preferred")
        monkeypatch.setenv(ENV_API_KEY_FALLBACK, "fallback")
        transport = FakeTransport([TransportReply(200, ok_body("hi"))])
        RemoteLLMClient(transport=transport).complete("s", "p")
        assert transport.calls[0]["headers"]["x-api-key"] == "preferred"

    def test_env_model_and_base_url(self, no_env, monkeypatch):
        monkeypatch.setenv(ENV_API_KEY, "k")
        monkeypatch.setenv(ENV_BASE_URL, "https://proxy.example/")
        monkeypatch.setenv(ENV_MODEL, "my-model")
        transport = FakeTransport([TransportReply(200, ok_body("hi"))])
        RemoteLLMClient(transport=transport).complete("s", "p")
        call = transport.calls[0]
        assert call["url"] == "https://proxy.example/v1/messages"
        assert call["body"]["model"] == "my-model"

    def test_defaults(self, no_env, monkeypatch):
        monkeypatch.setenv(ENV_API_KEY, "k")
        client = RemoteLLMClient()
        assert client.base_url == DEFAULT_BASE_URL
        assert client.model == DEFAULT_MODEL

    def test_request_shape(self):
        client, _ = make_client([TransportReply(200, ok_body("out"))])
        assert client.complete("SYSTEM", "PROMPT") == "out"
        call = client._transport.calls[0]
        assert call["body"]["system"] == "SYSTEM"
        assert call["body"]["messages"] == [
            {"role": "user", "content": "PROMPT"}
        ]
        assert call["headers"]["anthropic-version"]

    def test_cache_safe(self):
        client, _ = make_client([])
        assert client.cache_safe is True


class TestRetries:
    def test_retryable_statuses_retry_with_exact_backoff(self):
        client, sleeps = make_client(
            [
                TransportReply(429, b"rate limited"),
                TransportReply(503, b"overloaded"),
                TransportReply(200, ok_body("done")),
            ]
        )
        assert client.complete("s", "p") == "done"
        assert sleeps == [0.2, 0.4]
        assert client.attempts == 3
        assert client.retries == 2

    def test_connection_errors_retry(self):
        client, sleeps = make_client(
            [
                RetryableBackendError("connection refused", backend="remote"),
                TransportReply(200, ok_body("done")),
            ]
        )
        assert client.complete("s", "p") == "done"
        assert sleeps == [0.2]

    def test_exhausted_budget_raises_last_retryable(self):
        client, sleeps = make_client(
            [TransportReply(500, b"boom")] * 4
        )
        with pytest.raises(RetryableBackendError, match="HTTP 500"):
            client.complete("s", "p")
        assert client.attempts == 4
        assert sleeps == [0.2, 0.4, 0.8]

    def test_terminal_status_never_retries(self):
        client, sleeps = make_client(
            [TransportReply(401, b"bad key")]
        )
        with pytest.raises(TerminalBackendError, match="HTTP 401"):
            client.complete("s", "p")
        assert client.attempts == 1
        assert sleeps == []

    def test_unparseable_success_is_terminal(self):
        client, _ = make_client([TransportReply(200, b"not json")])
        with pytest.raises(TerminalBackendError, match="unparseable"):
            client.complete("s", "p")

    def test_no_text_blocks_is_terminal(self):
        body = json.dumps({"content": []}).encode()
        client, _ = make_client([TransportReply(200, body)])
        with pytest.raises(TerminalBackendError, match="no text blocks"):
            client.complete("s", "p")

    def test_multiple_text_blocks_concatenate(self):
        body = json.dumps(
            {
                "content": [
                    {"type": "text", "text": "a"},
                    {"type": "tool_use", "id": "x"},
                    {"type": "text", "text": "b"},
                ]
            }
        ).encode()
        client, _ = make_client([TransportReply(200, body)])
        assert client.complete("s", "p") == "ab"


class TestDeadlines:
    def test_attempt_timeout_is_capped_by_budget(self):
        client, _ = make_client(
            [TransportReply(200, ok_body("hi"))], attempt_timeout_s=30.0
        )
        with budget_scope(TimeBudget(seconds=5.0)):
            client.complete("s", "p")
        assert client._transport.calls[0]["timeout_s"] <= 5.0

    def test_no_budget_uses_attempt_timeout(self):
        client, _ = make_client(
            [TransportReply(200, ok_body("hi"))], attempt_timeout_s=7.5
        )
        client.complete("s", "p")
        assert client._transport.calls[0]["timeout_s"] == 7.5

    def test_expired_budget_aborts_before_first_attempt(self):
        now = [0.0]
        budget = TimeBudget(1.0, clock=lambda: now[0])
        now[0] = 2.0  # already expired
        client, _ = make_client([TransportReply(200, ok_body("hi"))])
        with budget_scope(budget):
            with pytest.raises(DeadlineExceeded):
                client.complete("s", "p")
        assert client.attempts == 0

    def test_expired_budget_aborts_instead_of_sleeping(self):
        now = [0.0]
        budget = TimeBudget(1.0, clock=lambda: now[0])
        client, sleeps = make_client([])

        def expire_then_fail(url, headers, body, timeout_s):
            now[0] = 2.0  # the attempt itself eats the whole budget
            return TransportReply(503, b"busy")

        client._transport = type(
            "T", (), {"post": staticmethod(expire_then_fail)}
        )()
        with budget_scope(budget):
            with pytest.raises(DeadlineExceeded):
                client.complete("s", "p")
        assert sleeps == []  # aborted before the backoff sleep


class TestErrorTaxonomy:
    @pytest.mark.parametrize("status", [408, 429, 500, 502, 503, 504, 529])
    def test_retryable_statuses(self, status):
        error = error_for_status(status, "m", backend="b")
        assert isinstance(error, RetryableBackendError)
        assert error.status == status

    @pytest.mark.parametrize("status", [400, 401, 403, 404, 422])
    def test_terminal_statuses(self, status):
        assert isinstance(
            error_for_status(status, "m", backend="b"), TerminalBackendError
        )

    def test_backend_prefix_in_message(self):
        assert str(
            RetryableBackendError("boom", backend="remote")
        ).startswith("[remote]")

    def test_hierarchy(self):
        assert issubclass(RetryableBackendError, BackendError)
        assert issubclass(TerminalBackendError, BackendError)
        assert not issubclass(DeadlineExceeded, BackendError)
