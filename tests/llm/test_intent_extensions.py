"""Tests for the metric/tag match phrasings and their pipeline support."""

import pytest

from repro.core import RouteMapSpec, SpecError
from repro.core.synthesis import SynthesisPipeline
from repro.llm import SimulatedLLM, parse_route_map_intent
from repro.route import BgpRoute


class TestScalarMatchIntents:
    def test_metric_match(self):
        intent = parse_route_map_intent(
            "Write a route-map stanza that denies routes with metric 100."
        )
        assert intent.metric == 100
        assert intent.set_metric is None

    def test_med_synonym(self):
        intent = parse_route_map_intent(
            "Permit routes with a MED of 55."
        )
        assert intent.metric == 55

    def test_tag_match(self):
        intent = parse_route_map_intent("Permit routes with tag 7.")
        assert intent.tag == 7
        assert intent.set_tag is None

    def test_match_vs_set_disambiguated(self):
        intent = parse_route_map_intent(
            "Permit routes with metric 10, setting the tag to 3."
        )
        assert intent.metric == 10
        assert intent.set_tag == 3
        assert intent.tag is None

    def test_paper_set_phrasing_still_a_set(self):
        intent = parse_route_map_intent(
            "Permit routes containing the prefix 10.0.0.0/8. Their MED "
            "value should be set to 55."
        )
        assert intent.metric is None
        assert intent.set_metric == 55


class TestScalarSpecFields:
    def test_spec_round_trip(self):
        spec = RouteMapSpec.from_json(
            '{"permit": false, "metric": 100, "tag": 7}'
        )
        assert spec.metric == 100
        assert spec.tag == 7
        space = spec.match_space()
        assert space.contains(BgpRoute.build("1.0.0.0/8", metric=100, tag=7))
        assert not space.contains(BgpRoute.build("1.0.0.0/8", metric=101, tag=7))
        assert not space.contains(BgpRoute.build("1.0.0.0/8", metric=100, tag=8))

    def test_non_integer_rejected(self):
        with pytest.raises(SpecError):
            RouteMapSpec.from_json('{"permit": true, "metric": "low"}')
        with pytest.raises(SpecError):
            RouteMapSpec.from_json('{"permit": true, "tag": [7]}')

    def test_pipeline_end_to_end(self):
        pipeline = SynthesisPipeline(SimulatedLLM())
        result = pipeline.synthesize(
            "Write a route-map stanza that denies routes with metric 100."
        )
        assert result.attempts == 1
        stanza = list(result.snippet.route_maps())[0].stanzas[0]
        assert stanza.action == "deny"
        assert result.spec.metric == 100
