"""The durable response cache: hits, purity gating, corruption refusal."""

import json
import os

import pytest

from repro.core.budget import TimeBudget, budget_scope
from repro.core.errors import DeadlineExceeded
from repro.llm.dedup import DedupClient
from repro.llm.faulty import FaultyLLM
from repro.llm.respcache import (
    CachedClient,
    ResponseCache,
    cache_safe_of,
    canonical_key,
)
from repro.llm.simulated import SimulatedLLM
from repro.llm.transcript import TranscribingClient


class CountingLLM:
    """A pure counting upstream."""

    cache_safe = True

    def __init__(self, response="RESPONSE"):
        self.calls = 0
        self.response = response

    def complete(self, system, prompt):
        self.calls += 1
        return self.response


class ImpureLLM(CountingLLM):
    cache_safe = False


@pytest.fixture
def cache(tmp_path):
    return ResponseCache(str(tmp_path / "cache"))


class TestCanonicalKey:
    def test_stable(self):
        assert canonical_key("s", "p") == canonical_key("s", "p")

    def test_distinguishes_system_from_prompt(self):
        assert canonical_key("a", "b") != canonical_key("b", "a")

    def test_is_a_sha256_hex(self):
        key = canonical_key("s", "p")
        assert len(key) == 64
        int(key, 16)


class TestResponseCache:
    def test_miss_then_hit(self, cache):
        assert cache.get("s", "p") is None
        cache.put("s", "p", "r")
        assert cache.get("s", "p") == "r"
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "writes": 1,
            "corrupt": 0,
            "entries": 1,
        }

    def test_entries_survive_a_new_instance(self, cache):
        cache.put("s", "p", "r")
        again = ResponseCache(cache.directory)
        assert again.get("s", "p") == "r"

    def test_unparseable_entry_is_corrupt_miss(self, cache):
        cache.put("s", "p", "r")
        path = os.path.join(
            cache.directory, f"{canonical_key('s', 'p')}.json"
        )
        with open(path, "w") as handle:
            handle.write("{torn")
        assert cache.get("s", "p") is None
        assert cache.corrupt == 1

    def test_mismatched_entry_is_refused(self, cache):
        """A stored pair that does not match the request never serves."""
        cache.put("s", "p", "r")
        path = os.path.join(
            cache.directory, f"{canonical_key('s', 'p')}.json"
        )
        entry = json.load(open(path))
        entry["prompt"] = "something else"
        json.dump(entry, open(path, "w"))
        assert cache.get("s", "p") is None
        assert cache.corrupt == 1

    def test_non_string_response_is_refused(self, cache):
        path = os.path.join(
            cache.directory, f"{canonical_key('s', 'p')}.json"
        )
        json.dump(
            {"schema": 1, "system": "s", "prompt": "p", "response": 7},
            open(path, "w"),
        )
        assert cache.get("s", "p") is None
        assert cache.corrupt == 1

    def test_overwrite_heals_a_corrupt_entry(self, cache):
        path = os.path.join(
            cache.directory, f"{canonical_key('s', 'p')}.json"
        )
        with open(path, "w") as handle:
            handle.write("garbage")
        assert cache.get("s", "p") is None
        cache.put("s", "p", "good")
        assert cache.get("s", "p") == "good"

    def test_no_temp_files_left_behind(self, cache):
        cache.put("s", "p", "r")
        assert not [
            name
            for name in os.listdir(cache.directory)
            if name.endswith(".tmp")
        ]


class TestPurityGating:
    def test_opt_in_default_is_unsafe(self):
        class Unknown:
            def complete(self, system, prompt):
                return "x"

        assert cache_safe_of(Unknown()) is False

    def test_simulated_is_safe_faulty_is_not(self):
        simulated = SimulatedLLM()
        assert cache_safe_of(simulated) is True
        assert cache_safe_of(FaultyLLM(simulated, error_rate=0.5)) is False

    def test_wrappers_delegate(self):
        pure = DedupClient(TranscribingClient(SimulatedLLM()))
        impure = DedupClient(
            TranscribingClient(FaultyLLM(SimulatedLLM(), error_rate=0.5))
        )
        assert cache_safe_of(pure) is True
        assert cache_safe_of(impure) is False

    def test_cached_client_delegates(self, cache):
        assert cache_safe_of(CachedClient(CountingLLM(), cache)) is True
        assert cache_safe_of(CachedClient(ImpureLLM(), cache)) is False


class TestCachedClient:
    def test_second_call_is_served_from_disk(self, cache):
        upstream = CountingLLM()
        client = CachedClient(upstream, cache)
        assert client.complete("s", "p") == "RESPONSE"
        assert client.complete("s", "p") == "RESPONSE"
        assert upstream.calls == 1
        assert cache.hits == 1

    def test_cache_shared_across_processes_via_directory(self, cache):
        CachedClient(CountingLLM(), cache).complete("s", "p")
        upstream = CountingLLM("OTHER")
        fresh = CachedClient(upstream, ResponseCache(cache.directory))
        assert fresh.complete("s", "p") == "RESPONSE"
        assert upstream.calls == 0

    def test_impure_chain_bypasses_entirely(self, cache):
        upstream = ImpureLLM()
        client = CachedClient(upstream, cache)
        client.complete("s", "p")
        client.complete("s", "p")
        assert upstream.calls == 2
        assert client.bypassed == 2
        assert len(cache) == 0

    def test_faulty_output_is_never_memoized(self, cache):
        """The ISSUE's corruption-refusal invariant, end to end."""
        client = CachedClient(
            FaultyLLM(SimulatedLLM(), error_rate=1.0, seed=7), cache
        )
        system = "TASK: route-map-synth\nWrite one stanza."
        client.complete(
            system,
            "Write a route-map stanza that permits routes with "
            "local-preference 300.",
        )
        assert len(cache) == 0
        assert client.stats()["bypassed"] == 1

    def test_upstream_error_leaves_cache_untouched(self, cache):
        class Exploding:
            cache_safe = True

            def complete(self, system, prompt):
                raise RuntimeError("boom")

        client = CachedClient(Exploding(), cache)
        with pytest.raises(RuntimeError):
            client.complete("s", "p")
        assert len(cache) == 0
        assert cache.writes == 0

    def test_deadline_abort_leaves_cache_untouched(self, cache):
        """A deadline-aborted attempt must not write a partial entry."""
        now = [0.0]
        budget = TimeBudget(1.0, clock=lambda: now[0])

        class DeadlineBound:
            cache_safe = True

            def complete(self, system, prompt):
                now[0] = 2.0
                budget.check("test")
                return "never"

        client = CachedClient(DeadlineBound(), cache)
        with budget_scope(budget):
            with pytest.raises(DeadlineExceeded):
                client.complete("s", "p")
        assert len(cache) == 0
        assert cache.writes == 0
        # A later successful call still populates the cache normally.
        assert CachedClient(CountingLLM(), cache).complete("s", "p") == (
            "RESPONSE"
        )
        assert len(cache) == 1

    def test_corrupt_entry_falls_through_to_upstream(self, cache):
        upstream = CountingLLM()
        client = CachedClient(upstream, cache)
        client.complete("s", "p")
        path = os.path.join(
            cache.directory, f"{canonical_key('s', 'p')}.json"
        )
        with open(path, "w") as handle:
            handle.write("garbage")
        assert client.complete("s", "p") == "RESPONSE"
        assert upstream.calls == 2
        assert cache.corrupt == 1
        # ... and the retry healed the entry.
        assert cache.get("s", "p") == "RESPONSE"

    def test_layering_under_dedup(self, cache):
        """DedupClient(CachedClient(...)) — the serving stack's order."""
        upstream = CountingLLM()
        stack = DedupClient(CachedClient(upstream, cache))
        stack.complete("s", "p")
        stack.complete("s", "p")
        assert upstream.calls == 1
        assert stack.upstream_calls == 2  # dedup forwarded both; disk served one
