"""Replay: re-driving journals with zero LLM calls, divergence detection."""

import dataclasses

import pytest

from repro import obs
from repro.cli import WALKTHROUGH_CONFIG, WALKTHROUGH_INTENT, WALKTHROUGH_TARGET
from repro.config import parse_config
from repro.core import ClarifySession
from repro.obs.journal import JournalEvent
from repro.obs.replay import (
    ReplayDivergence,
    ReplayError,
    ReplayLLM,
    ReplayOracle,
    replay_journal,
)


@pytest.fixture(autouse=True)
def _no_active_journal():
    obs.uninstall_journal()
    yield
    obs.uninstall_journal()


def record_walkthrough():
    journal = obs.JournalRecorder()
    with obs.journaling(journal):
        session = ClarifySession(store=parse_config(WALKTHROUGH_CONFIG))
        report = session.request(WALKTHROUGH_INTENT, WALKTHROUGH_TARGET)
    return journal.events, report


class CountingLLM:
    """Fails the test if the replay path ever calls a live LLM."""

    def __init__(self):
        self.calls = 0

    def complete(self, system, prompt):
        self.calls += 1
        raise AssertionError("replay must not call a live LLM")


class TestReplayRoundTrip:
    def test_walkthrough_replays_exactly(self):
        events, report = record_walkthrough()
        result = replay_journal(events)
        assert result.ok
        assert result.divergence is None
        assert result.cycles == 1
        assert result.llm_calls_served == 3
        assert result.answers_served == 2
        (replayed,) = result.reports
        assert replayed.position == report.position
        assert replayed.diff == report.diff
        assert replayed.overlaps == report.overlaps

    def test_replay_makes_zero_llm_calls(self, monkeypatch):
        events, _ = record_walkthrough()
        from repro.llm import simulated

        def explode(self, system, prompt):
            raise AssertionError("live LLM called during replay")

        monkeypatch.setattr(simulated.SimulatedLLM, "complete", explode)
        result = replay_journal(events)
        assert result.ok

    def test_replayed_event_stream_matches_byte_for_byte(self):
        events, _ = record_walkthrough()
        result = replay_journal(events)
        # Modulo the process-global session counter, the streams are
        # literally identical JSONL.
        recorded = obs.dumps_journal(result.recorded_events)
        replayed = obs.dumps_journal(result.replayed_events)
        for rec, rep in zip(
            result.recorded_events, result.replayed_events
        ):
            if rec.type == "cycle.start":
                assert rec.data["config_sha256"] == rep.data["config_sha256"]
        assert len(recorded.splitlines()) == len(replayed.splitlines())


class TestDivergence:
    def _tamper(self, events, idx, **changes):
        data = dict(events[idx].data)
        data.update(changes)
        tampered = list(events)
        tampered[idx] = JournalEvent(
            seq=events[idx].seq, type=events[idx].type, data=data
        )
        return tampered

    def test_tampered_llm_response_diverges(self):
        events, _ = record_walkthrough()
        idx = next(
            i for i, e in enumerate(events) if e.type == "llm.call"
        )
        # A different recorded response changes what the pipeline builds,
        # so the replayed stream departs from the recorded one.
        tampered = self._tamper(
            events, idx, response='{"permit": true, "prefix": []}'
        )
        result = replay_journal(tampered)
        assert not result.ok
        assert result.divergence is not None

    def test_tampered_answer_flips_position_and_diverges(self):
        events, _ = record_walkthrough()
        idx = next(
            i
            for i, e in enumerate(events)
            if e.type == "disambiguation.question"
        )
        old = events[idx].data["answer"]
        tampered = self._tamper(events, idx, answer=3 - old)
        result = replay_journal(tampered)
        assert not result.ok
        assert result.divergence is not None
        assert result.divergence.seq is not None

    def test_tampered_config_hash_is_caught(self):
        events, _ = record_walkthrough()
        idx = next(
            i for i, e in enumerate(events) if e.type == "cycle.end"
        )
        tampered = self._tamper(events, idx, config_sha256="0" * 64)
        result = replay_journal(tampered)
        assert not result.ok
        assert result.divergence.kind == "event-mismatch"
        assert result.divergence.seq == events[idx].seq

    def test_truncated_journal_reports_missing_events(self):
        events, _ = record_walkthrough()
        result = replay_journal(events[:-1])
        assert not result.ok
        assert result.divergence.kind == "extra-event"

    def test_divergence_render_names_the_seq(self):
        events, _ = record_walkthrough()
        idx = next(
            i for i, e in enumerate(events) if e.type == "cycle.end"
        )
        tampered = self._tamper(events, idx, config_sha256="0" * 64)
        result = replay_journal(tampered)
        text = result.divergence.render()
        assert f"event {events[idx].seq}" in text
        assert "expected" in text and "actual" in text


class TestReplayStubs:
    def _call_event(self, seq, system, prompt, response):
        return JournalEvent(
            seq=seq,
            type="llm.call",
            data={
                "task": "classify",
                "system_sha256": obs.sha256_text(system),
                "prompt": prompt,
                "response": response,
            },
        )

    def test_replay_llm_serves_in_order(self):
        llm = ReplayLLM(
            [
                self._call_event(1, "sys", "p1", "r1"),
                self._call_event(2, "sys", "p2", "r2"),
            ]
        )
        assert llm.complete("sys", "p1") == "r1"
        assert llm.complete("sys", "p2") == "r2"
        assert llm.served == 2 and llm.remaining == 0

    def test_replay_llm_rejects_wrong_prompt(self):
        llm = ReplayLLM([self._call_event(1, "sys", "p1", "r1")])
        with pytest.raises(ReplayDivergence) as err:
            llm.complete("sys", "WRONG")
        assert err.value.divergence.kind == "llm-call"
        assert err.value.divergence.seq == 1

    def test_replay_llm_rejects_wrong_system_prompt(self):
        llm = ReplayLLM([self._call_event(1, "sys", "p1", "r1")])
        with pytest.raises(ReplayDivergence):
            llm.complete("DIFFERENT SYSTEM", "p1")

    def test_replay_llm_exhaustion(self):
        llm = ReplayLLM([])
        with pytest.raises(ReplayDivergence) as err:
            llm.complete("sys", "p")
        assert "more LLM calls" in err.value.divergence.detail

    def test_replay_oracle_verifies_question_text(self):
        @dataclasses.dataclass
        class FakeQuestion:
            text: str

            def render(self):
                return self.text

        oracle = ReplayOracle(
            [
                JournalEvent(
                    seq=1,
                    type="disambiguation.question",
                    data={"question": "before or after?", "answer": 2},
                )
            ]
        )
        assert oracle.choose(FakeQuestion("before or after?")) == 2
        with pytest.raises(Exception):
            oracle.choose(FakeQuestion("unexpected question"))


class TestMalformedJournals:
    def test_event_before_first_cycle_rejected(self):
        header = JournalEvent(
            seq=0, type="journal.open", data={"version": obs.JOURNAL_VERSION}
        )
        stray = JournalEvent(seq=1, type="llm.call", data={})
        with pytest.raises(ReplayError, match="precedes"):
            replay_journal([header, stray])

    def test_headerless_journal_rejected(self):
        stray = JournalEvent(seq=0, type="cycle.start", data={})
        with pytest.raises(obs.JournalError):
            replay_journal([stray])
