"""The perf-regression gate: snapshot diffing, tolerances, rendering."""

import json

import pytest

from repro import obs
from repro.obs import regress


def make_snapshot(counters=None, histograms=None):
    return {
        "version": obs.SNAPSHOT_VERSION,
        "counters": counters or {},
        "histograms": histograms or {},
        "spans": [],
    }


def timing_hist(values):
    hist = obs.Histogram()
    for value in values:
        hist.observe(value)
    return hist.to_dict()


class TestCounters:
    def test_identical_counters_pass(self):
        snap = make_snapshot({"llm.calls": 45, "clarify.cycles": 15})
        report = regress.compare_snapshots(snap, snap)
        assert report.ok
        assert all(r.status == regress.STATUS_OK for r in report.rows)

    def test_doubled_counter_regresses(self):
        base = make_snapshot({"llm.calls": 45})
        cur = make_snapshot({"llm.calls": 90})
        report = regress.compare_snapshots(base, cur)
        assert not report.ok
        (row,) = report.regressions
        assert row.name == "llm.calls"
        assert row.baseline == 45 and row.current == 90

    def test_decreased_counter_also_flags(self):
        # Fewer LLM calls is still a behaviour change the gate surfaces:
        # a silently shrinking workload usually means lost coverage.
        base = make_snapshot({"llm.calls": 45})
        cur = make_snapshot({"llm.calls": 20})
        assert not regress.compare_snapshots(base, cur).ok

    def test_relative_tolerance(self):
        base = make_snapshot({"headerspace.intersections": 1000})
        cur = make_snapshot({"headerspace.intersections": 1040})
        tol = regress.Tolerances(counter_rel=0.05)
        assert regress.compare_snapshots(base, cur, tol).ok
        assert not regress.compare_snapshots(base, cur).ok

    def test_added_and_removed_counters_warn_not_fail(self):
        base = make_snapshot({"old.counter": 1})
        cur = make_snapshot({"new.counter": 2})
        report = regress.compare_snapshots(base, cur)
        statuses = {row.name: row.status for row in report.rows}
        assert statuses["old.counter"] == regress.STATUS_REMOVED
        assert statuses["new.counter"] == regress.STATUS_ADDED
        assert report.ok  # presence changes are visible but non-blocking


class TestHistograms:
    def test_behavioural_histogram_count_is_exact(self):
        base = make_snapshot(histograms={"overlaps": timing_hist([1, 2, 3])})
        cur = make_snapshot(histograms={"overlaps": timing_hist([1, 2])})
        report = regress.compare_snapshots(base, cur)
        assert not report.ok
        (row,) = report.regressions
        assert row.name == "overlaps"

    def test_timing_histogram_ratio_bounded(self):
        base = make_snapshot(
            histograms={"span.clarify.request": timing_hist([0.10, 0.12])}
        )
        # 1.2x slower: inside the default 1.5x bound.
        ok_run = make_snapshot(
            histograms={"span.clarify.request": timing_hist([0.12, 0.14])}
        )
        assert regress.compare_snapshots(base, ok_run).ok
        # 2x slower: regression.
        slow = make_snapshot(
            histograms={"span.clarify.request": timing_hist([0.20, 0.24])}
        )
        report = regress.compare_snapshots(base, slow)
        assert not report.ok
        assert any("slower" in row.detail for row in report.regressions)

    def test_timing_speedup_never_regresses(self):
        base = make_snapshot(
            histograms={"span.clarify.request": timing_hist([0.2])}
        )
        fast = make_snapshot(
            histograms={"span.clarify.request": timing_hist([0.01])}
        )
        assert regress.compare_snapshots(base, fast).ok

    def test_timing_warn_only_downgrades(self):
        base = make_snapshot(
            histograms={"span.clarify.request": timing_hist([0.1])}
        )
        slow = make_snapshot(
            histograms={"span.clarify.request": timing_hist([1.0])}
        )
        tol = regress.Tolerances(timing_warn_only=True)
        report = regress.compare_snapshots(base, slow, tol)
        assert report.ok
        assert report.warnings

    def test_sampleless_legacy_timing_is_skipped(self):
        legacy = {"count": 2, "total": 0.2, "min": 0.1, "max": 0.1}
        base = make_snapshot(histograms={"span.x": legacy})
        cur = make_snapshot(histograms={"span.x": timing_hist([10.0])})
        # mean still compares (10/0.1 > 1.5 → regression); p95 is skipped.
        report = regress.compare_snapshots(base, cur)
        p95_rows = [r for r in report.rows if r.name == "span.x.p95"]
        assert p95_rows[0].status == regress.STATUS_OK
        assert "skipped" in p95_rows[0].detail


class TestLoadingAndRendering:
    def test_load_snapshot_roundtrip(self, tmp_path):
        path = tmp_path / "snap.json"
        snap = make_snapshot({"llm.calls": 3})
        path.write_text(json.dumps(snap))
        assert regress.load_snapshot(str(path)) == snap

    def test_load_snapshot_missing_file(self, tmp_path):
        with pytest.raises(regress.SnapshotError, match="cannot read"):
            regress.load_snapshot(str(tmp_path / "missing.json"))

    def test_load_snapshot_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(regress.SnapshotError, match="not valid JSON"):
            regress.load_snapshot(str(path))

    def test_load_snapshot_wrong_shape(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(regress.SnapshotError, match="counters"):
            regress.load_snapshot(str(path))

    def test_render_text_summarises(self):
        base = make_snapshot({"llm.calls": 45})
        cur = make_snapshot({"llm.calls": 90})
        report = regress.compare_snapshots(base, cur)
        text = regress.render_text(report)
        assert "regression" in text
        assert "45 -> 90" in text
        assert "1 regression" in text

    def test_render_text_verbose_shows_ok_rows(self):
        snap = make_snapshot({"llm.calls": 45})
        report = regress.compare_snapshots(snap, snap)
        assert "llm.calls" not in regress.render_text(report)
        assert "llm.calls" in regress.render_text(report, verbose=True)

    def test_render_json_is_valid(self):
        base = make_snapshot({"llm.calls": 45})
        cur = make_snapshot({"llm.calls": 90})
        data = json.loads(
            regress.render_json(regress.compare_snapshots(base, cur))
        )
        assert data["ok"] is False
        assert data["regressions"] == 1
        assert data["rows"][0]["name"] == "llm.calls"


class TestEdgeCases:
    def test_zero_valued_baseline_counter_exact(self):
        base = make_snapshot({"serve.rejected": 0})
        cur = make_snapshot({"serve.rejected": 0})
        assert regress.compare_snapshots(base, cur).ok

    def test_zero_valued_baseline_counter_growth_regresses(self):
        base = make_snapshot({"serve.rejected": 0})
        cur = make_snapshot({"serve.rejected": 3})
        report = regress.compare_snapshots(base, cur)
        assert not report.ok
        (row,) = report.regressions
        assert row.baseline == 0.0 and row.current == 3.0

    def test_zero_baseline_with_relative_tolerance_still_regresses(self):
        # rel tolerance scales by max(|b|, |c|): 0 -> 3 is a 100% change.
        base = make_snapshot({"serve.rejected": 0})
        cur = make_snapshot({"serve.rejected": 3})
        tol = regress.Tolerances(counter_rel=0.5)
        assert not regress.compare_snapshots(base, cur, tol).ok

    def test_counter_only_in_current_is_added_not_regression(self):
        base = make_snapshot()
        cur = make_snapshot({"telemetry.new": 7})
        report = regress.compare_snapshots(base, cur)
        assert report.ok
        (row,) = report.rows
        assert row.status == regress.STATUS_ADDED
        assert row.baseline is None and row.current == 7.0

    def test_malformed_histogram_not_a_dict(self):
        base = make_snapshot(histograms={"overlaps": [1, 2, 3]})
        cur = make_snapshot(histograms={"overlaps": timing_hist([1.0])})
        with pytest.raises(regress.SnapshotError, match="malformed"):
            regress.compare_snapshots(base, cur)

    def test_malformed_histogram_in_current_side(self):
        base = make_snapshot(histograms={"overlaps": timing_hist([1.0])})
        cur = make_snapshot(histograms={"overlaps": "oops"})
        with pytest.raises(regress.SnapshotError, match="malformed"):
            regress.compare_snapshots(base, cur)

    def test_malformed_timing_histogram_dict_contents(self):
        bad = {"count": "three", "total": None}
        base = make_snapshot(histograms={"span.x": bad})
        cur = make_snapshot(histograms={"span.x": timing_hist([1.0])})
        with pytest.raises(regress.SnapshotError, match="span.x"):
            regress.compare_snapshots(base, cur)

    def test_schema_version_mismatch_raises(self):
        base = make_snapshot({"llm.calls": 1})
        cur = dict(make_snapshot({"llm.calls": 1}), version=1)
        with pytest.raises(
            regress.SnapshotError, match="schema_version mismatch"
        ):
            regress.compare_snapshots(base, cur)

    def test_schema_version_key_preferred_over_legacy_version(self):
        base = dict(make_snapshot({"llm.calls": 1}), schema_version=3)
        cur = dict(
            make_snapshot({"llm.calls": 1}), schema_version=3, version=2
        )
        # Same schema_version wins even though the legacy keys differ.
        assert regress.compare_snapshots(base, cur).ok

    def test_versionless_snapshots_compare(self):
        base = {"counters": {"llm.calls": 1}, "histograms": {}}
        cur = {"counters": {"llm.calls": 1}, "histograms": {}}
        assert regress.compare_snapshots(base, cur).ok

    def test_versionless_vs_versioned_mismatch(self):
        base = {"counters": {"llm.calls": 1}, "histograms": {}}
        cur = make_snapshot({"llm.calls": 1})
        with pytest.raises(
            regress.SnapshotError, match="schema_version mismatch"
        ):
            regress.compare_snapshots(base, cur)


class TestAgainstRealBaseline:
    def test_committed_baseline_is_self_consistent(self):
        import pathlib

        baseline = (
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "BASELINE_obs.json"
        )
        snap = regress.load_snapshot(str(baseline))
        report = regress.compare_snapshots(snap, snap)
        assert report.ok
        assert not report.warnings
