"""The obs core: span nesting, timing, counters, thread safety, no-op path."""

import threading
import time

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_registry():
    # Every test starts and ends with the no-op default recorder.
    obs.uninstall()
    yield
    obs.uninstall()


class TestSpans:
    def test_nesting_builds_a_tree(self):
        with obs.recording() as rec:
            with obs.span("outer"):
                with obs.span("middle"):
                    with obs.span("leaf.a"):
                        pass
                    with obs.span("leaf.b"):
                        pass
        assert len(rec.roots) == 1
        outer = rec.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["middle"]
        assert [c.name for c in outer.children[0].children] == ["leaf.a", "leaf.b"]

    def test_sibling_roots(self):
        with obs.recording() as rec:
            with obs.span("first"):
                pass
            with obs.span("second"):
                pass
        assert [root.name for root in rec.roots] == ["first", "second"]

    def test_timing_is_positive_and_parent_covers_child(self):
        with obs.recording() as rec:
            with obs.span("parent"):
                with obs.span("child"):
                    time.sleep(0.002)
        parent = rec.roots[0]
        child = parent.children[0]
        assert child.duration_s >= 0.002
        assert parent.duration_s >= child.duration_s

    def test_attrs_and_annotate(self):
        with obs.recording() as rec:
            with obs.span("op", target="ISP_OUT") as sp:
                sp.annotate(position=3)
        span = rec.roots[0]
        assert span.attrs == {"target": "ISP_OUT", "position": 3}

    def test_name_is_a_legal_attr_key(self):
        with obs.recording() as rec:
            with obs.span("op", name="shadow"):
                pass
        assert rec.roots[0].attrs == {"name": "shadow"}

    def test_exception_annotates_and_propagates(self):
        with obs.recording() as rec:
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("no")
        span = rec.roots[0]
        assert span.attrs["error"] == "ValueError"
        assert span.duration_s is not None  # closed despite the raise

    def test_find_walks_depth_first(self):
        with obs.recording() as rec:
            with obs.span("a"):
                with obs.span("x"):
                    pass
                with obs.span("a"):
                    pass
        assert len(rec.find("a")) == 2
        assert len(rec.find("x")) == 1
        assert rec.find("missing") == []

    def test_capture_spans_false_keeps_metrics_only(self):
        rec = obs.Recorder(capture_spans=False)
        with obs.recording(rec):
            with obs.span("ignored"):
                obs.count("kept")
        assert rec.roots == []
        assert rec.counter("kept") == 1


class TestMetrics:
    def test_counter_aggregation(self):
        with obs.recording() as rec:
            obs.count("llm.calls")
            obs.count("llm.calls")
            obs.count("llm.calls", 3)
        assert rec.counter("llm.calls") == 5
        assert rec.counter("never") == 0

    def test_histogram_summary(self):
        with obs.recording() as rec:
            for value in (4, 1, 7):
                obs.observe("depth", value)
        hist = rec.histogram("depth")
        assert hist.count == 3
        assert hist.min == 1
        assert hist.max == 7
        assert hist.total == 12
        assert hist.mean == 4.0

    def test_empty_histogram(self):
        rec = obs.Recorder()
        hist = rec.histogram("nothing")
        assert hist.count == 0
        assert hist.mean == 0.0

    def test_histogram_merge(self):
        a = obs.Histogram()
        b = obs.Histogram()
        for value in (1, 5):
            a.observe(value)
        b.observe(10)
        a.merge(b)
        assert a.to_dict() == {
            "count": 3,
            "total": 16,
            "min": 1,
            "max": 10,
            "samples": [1, 5, 10],
            "stride": 1,
        }

    def test_quantile_empty_histogram_is_none(self):
        hist = obs.Histogram()
        assert hist.quantile(0.5) is None
        assert hist.quantile(0.0) is None

    def test_quantile_single_sample(self):
        hist = obs.Histogram()
        hist.observe(7)
        assert hist.quantile(0.0) == 7.0
        assert hist.quantile(0.5) == 7.0
        assert hist.quantile(1.0) == 7.0

    def test_quantile_interpolates(self):
        hist = obs.Histogram()
        for value in (10, 20, 30, 40):
            hist.observe(value)
        assert hist.quantile(0.0) == 10.0
        assert hist.quantile(0.5) == 25.0
        assert hist.quantile(1.0) == 40.0

    def test_quantile_rejects_out_of_range(self):
        hist = obs.Histogram()
        hist.observe(1)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_reservoir_is_bounded_and_deterministic(self):
        from repro.obs.metrics import MAX_SAMPLES

        a = obs.Histogram()
        b = obs.Histogram()
        for value in range(5 * MAX_SAMPLES):
            a.observe(value)
            b.observe(value)
        assert len(a.samples) <= MAX_SAMPLES
        # Same observation sequence, same retained samples.
        assert a.samples == b.samples
        assert a.count == 5 * MAX_SAMPLES
        # The decimated quantiles still track the true distribution.
        assert a.quantile(0.5) == pytest.approx(
            2.5 * MAX_SAMPLES, rel=0.05
        )

    def test_time_spans_records_duration_histograms(self):
        rec = obs.Recorder(capture_spans=False, time_spans=True)
        with obs.recording(rec):
            with obs.span("phase.one"):
                time.sleep(0.002)
        assert rec.roots == []  # still no span forest
        hist = rec.histogram("span.phase.one")
        assert hist.count == 1
        assert hist.min >= 0.002

    def test_time_spans_with_captured_spans_too(self):
        rec = obs.Recorder(capture_spans=True, time_spans=True)
        with obs.recording(rec):
            with obs.span("phase.two"):
                pass
        assert len(rec.roots) == 1
        assert rec.histogram("span.phase.two").count == 1

    def test_reset(self):
        with obs.recording() as rec:
            with obs.span("s"):
                obs.count("c")
                obs.observe("h", 1)
        rec.reset()
        assert rec.roots == []
        assert rec.counters == {}
        assert rec.histograms == {}


class TestThreadSafety:
    def test_concurrent_counts_do_not_lose_updates(self):
        rec = obs.Recorder()
        n, threads = 2000, 8

        def bump():
            for _ in range(n):
                rec.count("shared")

        workers = [threading.Thread(target=bump) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert rec.counter("shared") == n * threads

    def test_span_stacks_are_per_thread(self):
        rec = obs.Recorder()

        def trace(tag):
            with rec.span(f"root.{tag}"):
                with rec.span(f"child.{tag}"):
                    time.sleep(0.001)

        workers = [
            threading.Thread(target=trace, args=(idx,)) for idx in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        # Each thread produced its own root with exactly one child.
        assert len(rec.roots) == 4
        for root in rec.roots:
            assert len(root.children) == 1
            assert root.children[0].name == f"child.{root.name.split('.')[1]}"


class TestRegistry:
    def test_default_is_null_recorder(self):
        assert isinstance(obs.get_recorder(), obs.NullRecorder)
        assert not obs.enabled()

    def test_null_recorder_hooks_are_inert(self):
        obs.count("anything", 5)
        obs.observe("anything", 5)
        with obs.span("anything") as sp:
            sp.annotate(ignored=True)
        rec = obs.get_recorder()
        assert rec.counter("anything") == 0
        assert rec.find("anything") == []

    def test_install_and_uninstall(self):
        rec = obs.install()
        assert obs.get_recorder() is rec
        assert obs.enabled()
        obs.count("x")
        assert rec.counter("x") == 1
        obs.uninstall()
        assert isinstance(obs.get_recorder(), obs.NullRecorder)

    def test_recording_restores_previous(self):
        outer = obs.install()
        with obs.recording() as inner:
            assert obs.get_recorder() is inner
            obs.count("inner.only")
        assert obs.get_recorder() is outer
        assert outer.counter("inner.only") == 0

    def test_recording_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.recording():
                raise RuntimeError
        assert isinstance(obs.get_recorder(), obs.NullRecorder)

    def test_disabled_overhead_is_negligible(self):
        # 100k no-op counts + 10k no-op spans in well under a second:
        # the hooks must stay cheap enough to leave in hot loops.
        start = time.perf_counter()
        for _ in range(100_000):
            obs.count("hot.loop")
        for _ in range(10_000):
            with obs.span("hot.span"):
                pass
        assert time.perf_counter() - start < 1.0
