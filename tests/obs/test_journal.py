"""The session journal: event recording, JSONL round-trip, validation."""

import json
import threading

import pytest

from repro import obs
from repro.obs.journal import EVENT_TYPES, validate_journal


@pytest.fixture(autouse=True)
def _no_active_journal():
    obs.uninstall_journal()
    yield
    obs.uninstall_journal()


class TestJournalRecorder:
    def test_header_is_emitted_on_construction(self):
        journal = obs.JournalRecorder()
        assert len(journal) == 1
        header = journal.events[0]
        assert header.seq == 0
        assert header.type == "journal.open"
        assert header.data == {"version": obs.JOURNAL_VERSION}

    def test_events_get_consecutive_seq(self):
        journal = obs.JournalRecorder()
        journal.event("cycle.start", target="ISP_OUT")
        journal.event("cycle.end", position=0)
        assert [e.seq for e in journal.events] == [0, 1, 2]
        assert journal.events[1].data == {"target": "ISP_OUT"}

    def test_streams_jsonl_to_file(self, tmp_path):
        path = tmp_path / "session.jsonl"
        with obs.JournalRecorder(str(path)) as journal:
            journal.event("cycle.start", target="ISP_OUT")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["type"] == "journal.open"
        assert json.loads(lines[1])["data"] == {"target": "ISP_OUT"}

    def test_each_event_is_flushed_immediately(self, tmp_path):
        # An aborted process must still leave completed events on disk.
        path = tmp_path / "session.jsonl"
        journal = obs.JournalRecorder(str(path))
        journal.event("cycle.start", target="X")
        assert len(path.read_text().splitlines()) == 2
        journal.close()

    def test_thread_safe_seq_assignment(self):
        journal = obs.JournalRecorder()
        n, threads = 500, 8

        def emit():
            for _ in range(n):
                journal.event("llm.call", prompt="p")

        workers = [threading.Thread(target=emit) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert len(journal) == 1 + n * threads
        assert [e.seq for e in journal.events] == list(range(len(journal)))

    def test_no_timestamps_anywhere(self, tmp_path):
        # Determinism contract: two identical runs → byte-identical files.
        path = tmp_path / "session.jsonl"
        with obs.JournalRecorder(str(path)) as journal:
            journal.event("cycle.start", target="T")
        text = path.read_text()
        assert "time" not in text and "stamp" not in text


class TestRoundTrip:
    def test_dumps_loads_round_trip(self):
        journal = obs.JournalRecorder()
        journal.event("cycle.start", target="ISP_OUT", session=1)
        journal.event("cycle.end", config_sha256=obs.sha256_text("x"))
        text = obs.dumps_journal(journal.events)
        assert obs.loads_journal(text) == journal.events

    def test_read_journal_from_disk(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with obs.JournalRecorder(str(path)) as journal:
            journal.event("lint.gate", warnings=[])
        assert obs.read_journal(str(path)) == journal.events

    def test_identical_runs_are_byte_identical(self):
        def run():
            journal = obs.JournalRecorder()
            journal.event("cycle.start", target="T", intent="same intent")
            journal.event("cycle.end", position=0)
            return obs.dumps_journal(journal.events)

        assert run() == run()


class TestValidation:
    def test_empty_journal_rejected(self):
        with pytest.raises(obs.JournalError, match="empty"):
            obs.loads_journal("")

    def test_missing_header_rejected(self):
        bad = json.dumps({"seq": 0, "type": "cycle.start", "data": {}})
        with pytest.raises(obs.JournalError, match="journal.open"):
            obs.loads_journal(bad + "\n")

    def test_future_version_rejected(self):
        bad = json.dumps(
            {
                "seq": 0,
                "type": "journal.open",
                "data": {"version": obs.JOURNAL_VERSION + 1},
            }
        )
        with pytest.raises(obs.JournalError, match="newer"):
            obs.loads_journal(bad + "\n")

    def test_broken_seq_rejected(self):
        journal = obs.JournalRecorder()
        journal.event("cycle.start", target="T")
        events = [journal.events[0], journal.events[1]]
        tampered = [events[0], type(events[1])(seq=7, type=events[1].type, data=events[1].data)]
        with pytest.raises(obs.JournalError, match="sequence"):
            validate_journal(tampered)

    def test_invalid_json_line_rejected(self):
        with pytest.raises(obs.JournalError, match="line 1"):
            obs.loads_journal("not json\n")

    def test_emitted_types_are_catalogued(self):
        # Keep EVENT_TYPES in sync with what the pipeline can emit.
        for required in (
            "llm.call",
            "spec.extracted",
            "verify.verdict",
            "synthesis.retry",
            "disambiguation.question",
            "insertion.decision",
            "lint.gate",
            "cycle.end",
            "cycle.error",
        ):
            assert required in EVENT_TYPES


class TestActiveJournal:
    def test_event_hook_is_noop_without_journal(self):
        assert not obs.journal_enabled()
        obs.event("cycle.start", target="ignored")  # must not raise
        assert obs.get_journal() is None

    def test_journaling_scope(self):
        with obs.journaling() as journal:
            assert obs.journal_enabled()
            obs.event("cycle.start", target="T")
        assert not obs.journal_enabled()
        assert [e.type for e in journal.events] == [
            "journal.open",
            "cycle.start",
        ]

    def test_journaling_restores_previous(self):
        outer = obs.install_journal()
        with obs.journaling() as inner:
            assert obs.get_journal() is inner
        assert obs.get_journal() is outer
        obs.uninstall_journal()

    def test_install_and_uninstall(self):
        journal = obs.install_journal()
        obs.event("cycle.start", target="T")
        assert len(journal) == 2
        obs.uninstall_journal()
        obs.event("cycle.start", target="dropped")
        assert len(journal) == 2
