"""Serving telemetry: trace context, the hub, export, and tailing."""

import io
import json
import threading
import urllib.request

import pytest

from repro import obs
from repro.obs import telemetry as tele


@pytest.fixture(autouse=True)
def no_leftover_hub():
    yield
    tele.uninstall_hub()


class TestTraceContext:
    def test_mint_trace_unique_ids(self):
        a, b = tele.mint_trace(), tele.mint_trace()
        assert a.trace_id != b.trace_id
        assert a.request_id.startswith("req-")
        assert a.request_id != b.request_id

    def test_mint_trace_client_supplied_request_id(self):
        trace = tele.mint_trace(session_id="s1", request_id="mine-42")
        assert trace.request_id == "mine-42"
        assert trace.session_id == "s1"

    def test_to_dict_round_trip_keys(self):
        trace = tele.mint_trace(session_id="s1")
        assert set(trace.to_dict()) == {
            "trace_id",
            "request_id",
            "session_id",
        }

    def test_tracing_sets_and_restores(self):
        assert tele.current_trace() is None
        trace = tele.mint_trace()
        with tele.tracing(trace):
            assert tele.current_trace() is trace
            inner = tele.mint_trace()
            with tele.tracing(inner):
                assert tele.current_trace() is inner
            assert tele.current_trace() is trace
        assert tele.current_trace() is None

    def test_tracing_none_deactivates(self):
        with tele.tracing(tele.mint_trace()):
            with tele.tracing(None):
                assert tele.current_trace() is None

    def test_trace_is_per_thread(self):
        seen = {}
        with tele.tracing(tele.mint_trace()):
            thread = threading.Thread(
                target=lambda: seen.update(other=tele.current_trace())
            )
            thread.start()
            thread.join()
        assert seen["other"] is None

    def test_phase_of(self):
        assert tele.phase_of("synthesis.synthesize") == "synthesis"
        assert tele.phase_of("verify.differential") == "verify"
        assert tele.phase_of("llm.complete") == "llm"
        assert tele.phase_of("lint.netwide_gate") == "gates"
        assert tele.phase_of("serve.request") is None


class TestTelemetryHub:
    def test_finish_without_begin_still_emits(self):
        hub = tele.TelemetryHub()
        trace = tele.mint_trace()
        event = hub.finish(trace, outcome="rejected", latency_s=0.01)
        assert event["outcome"] == "rejected"
        assert event["trace_id"] == trace.trace_id
        assert hub.finished == 1

    def test_wide_event_shape(self):
        hub = tele.TelemetryHub()
        trace = tele.mint_trace(session_id="s1")
        hub.begin(trace, seq=7)
        event = hub.finish(
            trace, outcome="applied", latency_s=0.5, queue_wait_s=0.1
        )
        assert event["schema_version"] == tele.WIDE_EVENT_VERSION
        assert event["session_id"] == "s1"
        assert event["seq"] == 7
        assert event["timings"]["latency_s"] == 0.5
        assert event["timings"]["queue_wait_s"] == 0.1
        for phase in tele.PHASES:
            assert f"{phase}_s" in event["timings"]
        assert event["retries"] == 0
        assert event["cache"] == "" and event["dedup"] == ""

    def test_no_wall_clock_timestamps(self):
        hub = tele.TelemetryHub()
        event = hub.finish(tele.mint_trace(), outcome="applied", latency_s=0.1)
        for key in event:
            assert "time" not in key and "stamp" not in key

    def test_counter_attribution_requires_active_trace(self):
        with tele.hub_active() as hub:
            trace = tele.mint_trace()
            hub.begin(trace)
            with obs.recording(), tele.tracing(trace):
                obs.count("serve.requests")
                obs.count("llm.calls", 3)
                obs.count("untracked.thing")
            with obs.recording():
                obs.count("serve.requests")  # no trace active: dropped
            event = hub.finish(trace, outcome="applied", latency_s=0.0)
        assert event["counters"] == {"serve.requests": 1, "llm.calls": 3}

    def test_span_durations_bucket_into_phases(self):
        with tele.hub_active() as hub:
            trace = tele.mint_trace()
            hub.begin(trace)
            with obs.recording(), tele.tracing(trace):
                with obs.span("verify.differential"):
                    pass
                with obs.span("llm.complete"):
                    pass
            event = hub.finish(trace, outcome="applied", latency_s=0.0)
        assert event["timings"]["verify_s"] > 0.0
        assert event["timings"]["llm_s"] > 0.0
        assert event["timings"]["synthesis_s"] == 0.0

    def test_span_annotated_with_trace(self):
        with tele.hub_active():
            trace = tele.mint_trace()
            with obs.recording() as rec, tele.tracing(trace):
                with obs.span("verify.differential"):
                    pass
            (root,) = rec.roots
        assert root.attrs["trace_id"] == trace.trace_id
        assert root.attrs["request_id"] == trace.request_id

    def test_span_exception_suppression_preserved(self):
        # The tap wrapper must not change context-manager semantics.
        with tele.hub_active():
            with obs.recording():
                with pytest.raises(ValueError):
                    with obs.span("verify.x"):
                        raise ValueError("boom")

    def test_dispositions(self):
        assert tele._dispositions({"llm.cache.hits": 1})["cache"] == "hit"
        assert tele._dispositions({"llm.cache.misses": 1})["cache"] == "miss"
        assert tele._dispositions({"llm.cache.bypass": 1})["cache"] == "bypass"
        assert (
            tele._dispositions({"llm.dedup.upstream": 1})["dedup"] == "leader"
        )
        assert (
            tele._dispositions({"llm.dedup.requests": 2})["dedup"]
            == "follower"
        )

    def test_note_and_annotate(self):
        with tele.hub_active() as hub:
            trace = tele.mint_trace()
            hub.begin(trace)
            with tele.tracing(trace):
                tele.annotate(backend="simulated")
            event = hub.finish(trace, outcome="applied", latency_s=0.0)
        assert event["backend"] == "simulated"

    def test_events_ring_is_bounded(self):
        hub = tele.TelemetryHub(max_events=3)
        for _ in range(5):
            hub.finish(tele.mint_trace(), outcome="applied", latency_s=0.0)
        assert len(hub.events) == 3
        assert hub.finished == 5

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "sub" / "events.jsonl"
        hub = tele.TelemetryHub(sink=str(path))
        hub.finish(tele.mint_trace(), outcome="applied", latency_s=0.0)
        hub.close()
        (line,) = path.read_text().strip().splitlines()
        assert json.loads(line)["outcome"] == "applied"

    def test_text_handle_sink_not_closed(self):
        handle = io.StringIO()
        hub = tele.TelemetryHub(sink=handle)
        hub.finish(tele.mint_trace(), outcome="applied", latency_s=0.0)
        hub.close()
        assert not handle.closed
        assert handle.getvalue().count("\n") == 1

    def test_module_helpers_no_op_without_hub(self):
        trace = tele.mint_trace()
        tele.begin_request(trace)
        tele.annotate(backend="x")
        assert tele.finish_request(trace, "applied", 0.0) is None
        assert tele.get_hub() is None


class TestPrometheusExport:
    def test_render_counters_and_histograms(self):
        with obs.recording() as rec:
            obs.count("serve.requests", 2)
            for value in (0.1, 0.2, 0.3):
                obs.observe("serve.latency", value)
        text = tele.render_prometheus(rec)
        assert "# TYPE clarify_serve_requests counter" in text
        assert "clarify_serve_requests 2" in text
        assert "# TYPE clarify_serve_latency summary" in text
        assert 'clarify_serve_latency{quantile="0.5"}' in text
        assert "clarify_serve_latency_count 3" in text
        assert "clarify_serve_latency_sum" in text
        assert text.endswith("\n")

    def test_metric_name_sanitised(self):
        assert tele._metric_name("serve.outcome.applied") == (
            "clarify_serve_outcome_applied"
        )
        assert tele._metric_name("9lives") == "clarify__9lives"

    def test_metrics_server_serves_and_stops(self):
        recorder = obs.Recorder(capture_spans=False)
        recorder.count("serve.requests", 4)
        with tele.MetricsServer(port=0, recorder_fn=lambda: recorder) as srv:
            base = f"http://127.0.0.1:{srv.port}"
            with urllib.request.urlopen(base + "/healthz", timeout=5) as r:
                assert r.read() == b"ok\n"
            with urllib.request.urlopen(base + "/metrics", timeout=5) as r:
                body = r.read().decode()
                assert "version=0.0.4" in r.headers["Content-Type"]
            assert "clarify_serve_requests 4" in body
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(base + "/nope", timeout=5)


class TestTailing:
    def test_iter_events_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"outcome": "applied"}\n'
            "not json\n"
            "\n"
            "[1, 2]\n"
            '{"outcome": "error"}\n'
        )
        events = list(tele.iter_events(str(path)))
        assert [e["outcome"] for e in events] == ["applied", "error"]

    def test_follow_events_stops_on_idle(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"outcome": "applied"}\n')
        events = list(
            tele.follow_events(str(path), idle_timeout_s=0.2, poll_s=0.01)
        )
        assert len(events) == 1

    def test_follow_events_sees_appended_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("")
        collected = []

        def writer():
            with open(path, "a") as handle:
                handle.write('{"outcome": "applied"}\n')
                handle.flush()

        thread = threading.Timer(0.05, writer)
        thread.start()
        try:
            for event in tele.follow_events(
                str(path), idle_timeout_s=0.5, poll_s=0.01
            ):
                collected.append(event)
        finally:
            thread.join()
        assert [e["outcome"] for e in collected] == ["applied"]

    def test_rolling_stats(self):
        stats = tele.RollingStats(window=4)
        for latency, outcome in (
            (0.1, "applied"),
            (0.2, "applied"),
            (0.3, "error"),
            (0.4, "applied"),
        ):
            stats.add(
                {"timings": {"latency_s": latency}, "outcome": outcome}
            )
        summary = stats.summary()
        assert summary["window"] == 4
        assert summary["error_rate"] == 0.25
        assert summary["outcomes"] == {"applied": 3, "error": 1}
        assert 0.1 <= summary["p50_s"] <= 0.4

    def test_rolling_stats_window_evicts(self):
        stats = tele.RollingStats(window=2)
        for outcome in ("error", "applied", "applied"):
            stats.add({"timings": {}, "outcome": outcome})
        summary = stats.summary()
        assert summary["events"] == 3
        assert summary["window"] == 2
        assert summary["error_rate"] == 0.0

    def test_rolling_stats_rejects_bad_window(self):
        with pytest.raises(ValueError):
            tele.RollingStats(window=0)
