"""SLO declarations and multi-window burn-rate evaluation."""

import json

import pytest

from repro.obs import slo


def event(latency_s=0.1, outcome="applied"):
    return {"timings": {"latency_s": latency_s}, "outcome": outcome}


class TestObjective:
    def test_latency_good_bad(self):
        obj = slo.Objective(
            name="lat", kind="latency", objective=0.9, threshold_s=1.0
        )
        assert obj.is_good(event(latency_s=0.5))
        assert obj.is_good(event(latency_s=1.0))
        assert not obj.is_good(event(latency_s=1.5))

    def test_availability_good_bad(self):
        obj = slo.Objective(name="avail", kind="availability", objective=0.99)
        assert obj.is_good(event(outcome="applied"))
        assert obj.is_good(event(outcome="rejected"))
        assert not obj.is_good(event(outcome="error"))
        assert not obj.is_good(event(outcome="internal-error"))

    def test_custom_error_outcomes(self):
        obj = slo.Objective(
            name="strict",
            kind="availability",
            objective=0.5,
            error_outcomes=("rejected",),
        )
        assert not obj.is_good(event(outcome="rejected"))
        assert obj.is_good(event(outcome="error"))

    def test_validation(self):
        with pytest.raises(slo.SLOConfigError, match="unknown kind"):
            slo.Objective(name="x", kind="throughput", objective=0.9)
        with pytest.raises(slo.SLOConfigError, match="in \\(0, 1\\)"):
            slo.Objective(name="x", kind="availability", objective=1.0)
        with pytest.raises(slo.SLOConfigError, match="threshold_s"):
            slo.Objective(name="x", kind="latency", objective=0.9)

    def test_window_validation(self):
        with pytest.raises(slo.SLOConfigError, match="events"):
            slo.Window(name="w", events=0, max_burn_rate=1.0)
        with pytest.raises(slo.SLOConfigError, match="max_burn_rate"):
            slo.Window(name="w", events=8, max_burn_rate=0.0)

    def test_config_requires_objectives_and_windows(self):
        win = slo.Window(name="w", events=8, max_burn_rate=1.0)
        obj = slo.Objective(name="a", kind="availability", objective=0.9)
        with pytest.raises(slo.SLOConfigError, match="no objectives"):
            slo.SLOConfig(objectives=(), windows=(win,))
        with pytest.raises(slo.SLOConfigError, match="no windows"):
            slo.SLOConfig(objectives=(obj,), windows=())


class TestConfigLoading:
    def test_default_config_shape(self):
        cfg = slo.default_config()
        assert [o.name for o in cfg.objectives] == [
            "latency-p90-2s",
            "availability-99",
        ]
        assert [w.name for w in cfg.windows] == ["short", "long"]

    def test_config_from_dict_round_trip(self):
        cfg = slo.config_from_dict(
            {
                "schema_version": 1,
                "objectives": [
                    {
                        "name": "lat",
                        "kind": "latency",
                        "objective": 0.9,
                        "threshold_s": 2.0,
                    }
                ],
                "windows": [
                    {"name": "w", "events": 16, "max_burn_rate": 4.0}
                ],
            }
        )
        assert cfg.objectives[0].threshold_s == 2.0
        assert cfg.windows[0].events == 16

    def test_config_from_dict_rejects_bad_schema_version(self):
        with pytest.raises(slo.SLOConfigError, match="schema_version"):
            slo.config_from_dict({"schema_version": 99})

    def test_config_from_dict_wraps_missing_keys(self):
        with pytest.raises(slo.SLOConfigError, match="malformed"):
            slo.config_from_dict(
                {"objectives": [{"kind": "availability"}], "windows": []}
            )

    def test_config_from_dict_preserves_validation_errors(self):
        with pytest.raises(slo.SLOConfigError, match="unknown kind"):
            slo.config_from_dict(
                {
                    "objectives": [
                        {"name": "x", "kind": "nope", "objective": 0.9}
                    ],
                    "windows": [
                        {"name": "w", "events": 1, "max_burn_rate": 1.0}
                    ],
                }
            )

    def test_load_config(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(
            json.dumps(
                {
                    "objectives": [
                        {"name": "a", "kind": "availability", "objective": 0.9}
                    ],
                    "windows": [
                        {"name": "w", "events": 8, "max_burn_rate": 2.0}
                    ],
                }
            )
        )
        cfg = slo.load_config(str(path))
        assert cfg.objectives[0].name == "a"

    def test_load_config_errors(self, tmp_path):
        with pytest.raises(slo.SLOConfigError, match="cannot read"):
            slo.load_config(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(slo.SLOConfigError, match="not valid JSON"):
            slo.load_config(str(bad))
        arr = tmp_path / "arr.json"
        arr.write_text("[1]")
        with pytest.raises(slo.SLOConfigError, match="JSON object"):
            slo.load_config(str(arr))


class TestEvaluation:
    def config(self, max_burn_short=2.0, max_burn_long=2.0):
        return slo.SLOConfig(
            objectives=(
                slo.Objective(
                    name="avail", kind="availability", objective=0.5
                ),
            ),
            windows=(
                slo.Window(
                    name="short", events=4, max_burn_rate=max_burn_short
                ),
                slo.Window(
                    name="long", events=8, max_burn_rate=max_burn_long
                ),
            ),
        )

    def test_no_events_is_trivially_ok(self):
        report = slo.evaluate([], self.config())
        assert report.ok
        assert report.events == 0
        for window in report.objectives[0].windows:
            assert window.burn_rate == 0.0

    def test_burn_rate_math(self):
        # budget = 0.5; 2 bad out of 4 -> bad_fraction 0.5 -> burn 1.0
        events = [event(), event(outcome="error"), event(),
                  event(outcome="error")]
        report = slo.evaluate(events, self.config())
        short = report.objectives[0].windows[0]
        assert short.bad == 2
        assert short.bad_fraction == 0.5
        assert short.burn_rate == 1.0
        assert not short.breaching

    def test_alerts_only_when_every_window_breaches(self):
        # Window "short" sees the trailing 4 (all errors -> burn 2.0 > 1.0);
        # window "long" sees all 8 (half errors -> burn 1.0, not > 2.0).
        events = [event()] * 4 + [event(outcome="error")] * 4
        cfg = self.config(max_burn_short=1.0, max_burn_long=2.0)
        report = slo.evaluate(events, cfg)
        short, long_ = report.objectives[0].windows
        assert short.breaching
        assert not long_.breaching
        assert not report.objectives[0].alerting
        assert report.ok

        cfg = self.config(max_burn_short=1.0, max_burn_long=0.5)
        report = slo.evaluate(events, cfg)
        assert report.objectives[0].alerting
        assert not report.ok
        assert report.alerting == ["avail"]

    def test_trailing_window_slice(self):
        # Only the last 4 events count for the short window.
        events = [event(outcome="error")] * 8 + [event()] * 4
        report = slo.evaluate(events, self.config())
        short = report.objectives[0].windows[0]
        assert short.bad == 0

    def test_report_to_dict_round_trips_through_json(self):
        events = [event(), event(outcome="error")]
        report = slo.evaluate(events, self.config())
        data = json.loads(json.dumps(report.to_dict()))
        assert data["schema_version"] == slo.SLO_SCHEMA_VERSION
        assert data["events"] == 2
        assert data["ok"] is True
        assert data["objectives"][0]["windows"][0]["window"] == "short"
        assert "breaching" in data["objectives"][0]["windows"][0]

    def test_default_config_evaluation_on_healthy_stream(self):
        report = slo.evaluate([event() for _ in range(64)])
        assert report.ok
        assert report.alerting == []
