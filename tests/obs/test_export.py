"""Exporter round-trips and text renderings."""

import json

import pytest

from repro import obs


@pytest.fixture
def populated():
    obs.uninstall()
    with obs.recording() as rec:
        with obs.span("cycle", target="ISP_OUT") as sp:
            with obs.span("verify"):
                pass
            sp.annotate(position=0)
        obs.count("llm.calls", 3)
        obs.count("verify.checks")
        obs.observe("overlaps", 2)
        obs.observe("overlaps", 4)
    return rec


class TestJsonRoundTrip:
    def test_to_json_matches_snapshot(self, populated):
        assert json.loads(obs.to_json(populated)) == obs.snapshot(populated)

    def test_snapshot_shape(self, populated):
        snap = obs.snapshot(populated)
        assert snap["version"] == obs.SNAPSHOT_VERSION
        assert snap["counters"] == {"llm.calls": 3, "verify.checks": 1}
        assert snap["histograms"]["overlaps"] == {
            "count": 2,
            "total": 6,
            "min": 2,
            "max": 4,
            "samples": [2, 4],
            "stride": 1,
        }
        (root,) = snap["spans"]
        assert root["name"] == "cycle"
        assert root["attrs"] == {"target": "ISP_OUT", "position": 0}
        assert [child["name"] for child in root["children"]] == ["verify"]

    def test_span_dict_round_trip_is_exact(self, populated):
        original = obs.span_to_dict(populated.roots[0])
        rebuilt = obs.span_from_dict(original)
        assert obs.span_to_dict(rebuilt) == original

    def test_snapshot_to_recorder_round_trip(self, populated):
        snap = obs.snapshot(populated)
        rebuilt = obs.snapshot_to_recorder(snap)
        assert obs.snapshot(rebuilt) == snap

    def test_open_span_serialises_with_null_duration(self):
        span = obs.Span("in-flight")
        data = obs.span_to_dict(span)
        assert data["duration_s"] is None
        assert obs.span_from_dict(data).duration_s is None


class TestTextRendering:
    def test_span_tree_layout(self, populated):
        text = obs.render_span_tree(populated.roots)
        lines = text.splitlines()
        assert lines[0].startswith("cycle [")
        assert "target=ISP_OUT" in lines[0]
        assert lines[1].startswith("`- verify [")
        assert "ms]" in lines[0]

    def test_metrics_lists_counters_sorted_then_histograms(self, populated):
        text = obs.render_metrics(populated)
        lines = text.splitlines()
        assert lines[0].split()[0] == "llm.calls"
        assert lines[1].split()[0] == "verify.checks"
        assert lines[2].startswith("overlaps")
        assert "count=2" in lines[2]
        assert "mean=3.00" in lines[2]
        assert "p50=3" in lines[2]
        assert "p95=" in lines[2] and "p99=" in lines[2]

    def test_version1_snapshot_still_loads(self, populated):
        # A pre-reservoir snapshot has no samples/stride keys.
        legacy = {"count": 2, "total": 6, "min": 2, "max": 4}
        hist = obs.Histogram.from_dict(legacy)
        assert hist.count == 2
        assert hist.quantile(0.5) is None

    def test_report_combines_sections(self, populated):
        text = obs.render_report(populated)
        assert "== spans ==" in text
        assert "== metrics ==" in text

    def test_report_on_empty_recorder(self):
        assert obs.render_report(obs.Recorder()) == "(nothing recorded)"
        assert obs.render_report(obs.NullRecorder()) == "(nothing recorded)"
