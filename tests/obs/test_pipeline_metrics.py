"""End-to-end instrumentation: a traced Clarify cycle's metrics must
agree with the :class:`~repro.core.UpdateReport` bookkeeping, and every
layer must emit its spans."""

import pytest

from repro import ClarifySession, DisambiguationMode, ScriptedOracle, obs, parse_config
from repro.bgp import Network, simulate
from repro.core.errors import SynthesisPunt
from repro.core.listinsert import disambiguate_prefix_list_entry
from repro.config.lists import PrefixListEntry
from repro.llm.faulty import FaultyLLM
from repro.llm.simulated import SimulatedLLM
from repro.netaddr import Ipv4Prefix

ISP_OUT = """
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
"""

INTENT = (
    "Write a route-map stanza that permits routes containing the prefix "
    "100.0.0.0/16 with mask length less than or equal to 23 and tagged "
    "with the community 300:3. Their MED value should be set to 55."
)


@pytest.fixture(autouse=True)
def _clean_registry():
    obs.uninstall()
    yield
    obs.uninstall()


def traced_cycle(mode=DisambiguationMode.TOP_BOTTOM):
    with obs.recording() as rec:
        session = ClarifySession(
            store=parse_config(ISP_OUT),
            oracle=ScriptedOracle([1, 1, 1]),
            mode=mode,
        )
        report = session.request(INTENT, "ISP_OUT")
    return rec, session, report


class TestReportAgreement:
    """The acceptance check: metrics == UpdateReport for the same cycle."""

    def test_llm_calls_match(self):
        rec, session, report = traced_cycle()
        assert rec.counter("llm.calls") == report.llm_calls == 3

    def test_questions_match(self):
        rec, session, report = traced_cycle()
        assert rec.counter("disambiguation.questions") == report.questions == 1

    def test_attempts_match(self):
        rec, session, report = traced_cycle()
        assert rec.counter("synthesis.attempts") == report.attempts == 1

    def test_session_totals_match(self):
        rec, session, report = traced_cycle()
        assert rec.counter("llm.calls") == session.total_llm_calls
        assert rec.counter("disambiguation.questions") == session.total_questions
        assert rec.counter("clarify.spec_reviews") == session.spec_reviews

    def test_full_mode_question_count_still_matches(self):
        rec, session, report = traced_cycle(mode=DisambiguationMode.FULL)
        assert rec.counter("disambiguation.questions") == report.questions

    def test_per_task_call_breakdown_sums_to_total(self):
        rec, _, report = traced_cycle()
        per_task = sum(
            value
            for name, value in rec.counters.items()
            if name.startswith("llm.calls.")
        )
        assert per_task == rec.counter("llm.calls") == report.llm_calls


class TestSpanTree:
    def test_root_span_is_the_request(self):
        rec, _, _ = traced_cycle()
        assert [root.name for root in rec.roots] == ["clarify.request"]

    def test_cycle_stages_appear_in_order(self):
        rec, _, _ = traced_cycle()
        root = rec.roots[0]
        child_names = [child.name for child in root.children]
        assert child_names == [
            "synthesis.synthesize",
            "clarify.rename",
            "disambiguate.stanza",
            "clarify.diff",
            "lint.gate",
        ]

    def test_llm_calls_nest_under_synthesis(self):
        rec, _, _ = traced_cycle()
        synth = rec.find("synthesis.synthesize")[0]
        assert len(synth.find("llm.complete")) == 3
        assert len(rec.find("verify.route_map")) == 1

    def test_every_span_is_closed_with_a_duration(self):
        rec, _, _ = traced_cycle()
        for root in rec.roots:
            for span in root.walk():
                assert span.duration_s is not None and span.duration_s >= 0

    def test_request_annotations_mirror_the_report(self):
        rec, _, report = traced_cycle()
        attrs = rec.roots[0].attrs
        assert attrs["llm_calls"] == report.llm_calls
        assert attrs["questions"] == report.questions
        assert attrs["position"] == report.position


class TestLayerCounters:
    def test_analysis_layer_counts_space_operations(self):
        rec, _, _ = traced_cycle()
        assert rec.counter("routespace.guards") > 0
        assert rec.counter("routespace.intersections") > 0
        assert rec.counter("analysis.compares") > 0

    def test_verify_counts_one_passing_check(self):
        rec, _, _ = traced_cycle()
        assert rec.counter("verify.checks") == 1
        assert rec.counter("verify.failures") == 0
        assert rec.counter("synthesis.retries") == 0

    def test_disambiguation_histograms(self):
        rec, _, report = traced_cycle()
        overlaps = rec.histogram("disambiguation.overlaps")
        assert overlaps.count == 1
        assert overlaps.max == len(report.overlaps)
        depth = rec.histogram("disambiguation.search_depth")
        assert depth.total == report.questions


class TestFaultInjection:
    def test_punt_records_retries_and_faults(self):
        faulty = FaultyLLM(SimulatedLLM(), error_rate=1.0, seed=0)
        with obs.recording() as rec:
            session = ClarifySession(
                store=parse_config(ISP_OUT),
                llm=faulty,
                oracle=ScriptedOracle([1]),
            )
            with pytest.raises(SynthesisPunt):
                session.request(INTENT, "ISP_OUT")
        assert rec.counter("synthesis.attempts") == 3
        assert rec.counter("synthesis.retries") == 3
        assert rec.counter("synthesis.punts") == 1
        assert rec.counter("llm.faults_injected") == faulty.injected_faults >= 1
        # Failed attempts are visible in the span tree with their outcome.
        outcomes = {
            span.attrs.get("outcome") for span in rec.find("synthesis.attempt")
        }
        assert outcomes <= {"parse-error", "rejected"}


class TestReuseAndLists:
    def test_reuse_costs_no_llm_calls(self):
        with obs.recording() as rec:
            session = ClarifySession(
                store=parse_config(ISP_OUT),
                oracle=ScriptedOracle([1, 1, 1]),
                mode=DisambiguationMode.TOP_BOTTOM,
            )
            report = session.request(INTENT, "ISP_OUT")
            calls_before = rec.counter("llm.calls")
            reuse = session.reuse(report.snippet, "OTHER_MAP")
        assert rec.counter("llm.calls") == calls_before
        assert rec.counter("clarify.reuses") == 1
        assert rec.find("clarify.reuse")[0].attrs["position"] == reuse.position

    def test_list_insertion_emits_its_own_namespace(self):
        store = parse_config(ISP_OUT)
        entry = PrefixListEntry(
            seq=0, action="permit", prefix=Ipv4Prefix.parse("10.1.0.0/16")
        )
        with obs.recording() as rec:
            result = disambiguate_prefix_list_entry(
                store, "D1", entry, ScriptedOracle([1, 1, 1])
            )
        assert rec.counter("listinsert.runs") == 1
        assert rec.counter("listinsert.questions") == result.question_count
        assert rec.histogram("listinsert.overlaps").count == 1


class TestBgpSimulation:
    def test_simulate_records_iterations(self):
        net = Network()
        net.add_router("A", 65001)
        net.add_router("B", 65002)
        net.connect("A", "B")
        net.router("A").originate("10.1.0.0/16")
        with obs.recording() as rec:
            simulate(net)
        assert rec.counter("bgp.simulations") == 1
        hist = rec.histogram("bgp.iterations")
        assert hist.count == 1 and hist.min >= 1
        span = rec.find("bgp.simulate")[0]
        assert span.attrs["routers"] == 2
        assert span.attrs["iterations"] == hist.max
