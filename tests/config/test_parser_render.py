"""Parser and renderer tests, including the paper's exact listings."""

import pytest

from repro.config import (
    ConfigParseError,
    MatchAsPath,
    MatchCommunity,
    MatchLocalPreference,
    MatchPrefixList,
    SetMetric,
    parse_config,
    render_config,
)
from repro.config.render import render_route_map
from repro.route import BgpRoute, Packet

ISP_OUT_TEXT = """
ip as-path access-list D0 permit _32$

ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24

route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
"""

SNIPPET_TEXT = """
ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
"""


class TestPaperListings:
    def test_parse_isp_out(self):
        store = parse_config(ISP_OUT_TEXT)
        rm = store.route_map("ISP_OUT")
        assert [s.seq for s in rm.stanzas] == [10, 20, 30]
        assert [s.action for s in rm.stanzas] == ["deny", "deny", "permit"]
        assert rm.stanzas[0].matches == (MatchAsPath(("D0",)),)
        assert rm.stanzas[1].matches == (MatchPrefixList(("D1",)),)
        assert rm.stanzas[2].matches == (MatchLocalPreference(300),)
        d1 = store.prefix_list("D1")
        assert len(d1.entries) == 3
        assert d1.entries[2].ge == 24

    def test_parse_snippet(self):
        store = parse_config(SNIPPET_TEXT)
        rm = store.route_map("SET_METRIC")
        stanza = rm.stanzas[0]
        assert stanza.action == "permit"
        assert MatchCommunity(("COM_LIST",)) in stanza.matches
        assert stanza.sets == (SetMetric(55),)
        pl = store.prefix_list("PREFIX_100")
        assert pl.entries[0].le == 23
        assert pl.entries[0].seq == 5  # auto-assigned

    def test_round_trip(self):
        store = parse_config(ISP_OUT_TEXT)
        rendered = render_config(store)
        reparsed = parse_config(rendered)
        assert render_config(reparsed) == rendered
        # Semantics preserved: same behaviour on a probe route.
        probe = BgpRoute.build("10.5.0.0/24", as_path=[7, 32])
        rm1 = store.route_map("ISP_OUT")
        rm2 = reparsed.route_map("ISP_OUT")
        assert rm1 == rm2


class TestAclParsing:
    ACL_TEXT = """
ip access-list extended EDGE_IN
 10 deny ip 10.0.0.0 0.255.255.255 any
 20 permit tcp any host 192.0.2.1 eq 443
 30 permit udp 172.16.0.0 0.15.255.255 range 1000 2000 any
 40 permit tcp any any established
"""

    def test_parse_acl(self):
        store = parse_config(self.ACL_TEXT)
        acl = store.acl("EDGE_IN")
        assert len(acl.rules) == 4
        assert acl.rules[0].action == "deny"
        assert acl.rules[1].dst_ports.op == "eq"
        assert acl.rules[1].dst_ports.values == (443,)
        assert acl.rules[2].src_ports.op == "range"
        assert acl.rules[3].established

    def test_acl_semantics(self):
        acl = parse_config(self.ACL_TEXT).acl("EDGE_IN")
        assert not acl.permits(Packet.build("10.1.1.1", "192.0.2.1", dst_port=443))
        assert acl.permits(Packet.build("11.1.1.1", "192.0.2.1", dst_port=443))
        assert not acl.permits(Packet.build("11.1.1.1", "192.0.2.2", dst_port=443))
        assert acl.permits(
            Packet.build("11.1.1.1", "192.0.2.2", tcp_established=True)
        )
        assert acl.permits(
            Packet.build("172.16.9.9", "8.8.8.8", protocol=17, src_port=1500)
        )
        assert not acl.permits(
            Packet.build("172.16.9.9", "8.8.8.8", protocol=17, src_port=999)
        )

    def test_acl_round_trip(self):
        store = parse_config(self.ACL_TEXT)
        rendered = render_config(store)
        assert parse_config(rendered).acl("EDGE_IN") == store.acl("EDGE_IN")

    def test_auto_sequence_numbers(self):
        text = """
ip access-list extended A
 permit tcp any any
 deny ip any any
"""
        acl = parse_config(text).acl("A")
        assert [r.seq for r in acl.rules] == [10, 20]


class TestParserErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "frobnicate",
            "ip wibble FOO",
            "route-map X permit",
            "route-map X allow 10",
            "ip prefix-list L permit 10.0.0.1/8",
            "ip prefix-list L permit 10.0.0.0/8 ge",
            "ip community-list sideways C permit x",
            "ip access-list extended A\n permit banana any any",
            "ip access-list extended A\n permit tcp any any eq",
            "route-map X permit 10\n match ip address D1",
            "route-map X permit 10\n set flavor vanilla",
            "route-map X permit 10\n match colour blue",
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ConfigParseError):
            parse_config(text)

    def test_rejects_duplicate_stanza_seq(self):
        text = """
route-map X permit 10
route-map X deny 10
"""
        with pytest.raises(ConfigParseError):
            parse_config(text)

    def test_established_on_udp_rejected(self):
        with pytest.raises(ConfigParseError):
            parse_config("ip access-list extended A\n permit udp any any established")

    def test_ports_on_icmp_rejected(self):
        with pytest.raises(ConfigParseError):
            parse_config("ip access-list extended A\n permit icmp any any eq 80")


class TestRenderDetails:
    def test_route_map_render_matches_paper_shape(self):
        store = parse_config(ISP_OUT_TEXT)
        text = render_route_map(store.route_map("ISP_OUT"))
        assert "route-map ISP_OUT deny 10" in text
        assert " match as-path D0" in text
        assert " match local-preference 300" in text

    def test_set_clauses_render(self):
        text = """
route-map RM permit 10
 set metric 55
 set local-preference 200
 set community 300:3 65000:1 additive
 set ip next-hop 10.0.0.1
 set as-path prepend 65000 65000
 set tag 7
 set weight 100
"""
        store = parse_config(text)
        rendered = render_route_map(store.route_map("RM"))
        for needle in [
            "set metric 55",
            "set local-preference 200",
            "set community 300:3 65000:1 additive",
            "set ip next-hop 10.0.0.1",
            "set as-path prepend 65000 65000",
            "set tag 7",
            "set weight 100",
        ]:
            assert needle in rendered
        assert store.route_map("RM") == parse_config(rendered).route_map("RM")
