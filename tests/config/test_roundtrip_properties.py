"""Property tests: render -> parse round-trips for every config object."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    Acl,
    AclRule,
    AsPathAccessList,
    AsPathEntry,
    CommunityList,
    CommunityListEntry,
    PortSpec,
    PrefixList,
    PrefixListEntry,
    ProtocolSpec,
    RouteMap,
    RouteMapStanza,
    parse_config,
)
from repro.config.matches import (
    MatchAsPath,
    MatchCommunity,
    MatchLocalPreference,
    MatchMetric,
    MatchPrefixList,
    MatchTag,
)
from repro.config.render import render_object
from repro.config.sets import (
    SetAsPathPrepend,
    SetCommunity,
    SetLocalPreference,
    SetMetric,
    SetNextHop,
    SetTag,
    SetWeight,
)
from repro.netaddr import Ipv4Address, Ipv4Prefix, Ipv4Wildcard

names = st.from_regex(r"[A-Z][A-Z0-9_]{0,8}", fullmatch=True)
actions = st.sampled_from(["permit", "deny"])
communities = st.tuples(st.integers(0, 65535), st.integers(0, 65535)).map(
    lambda t: f"{t[0]}:{t[1]}"
)


@st.composite
def prefixes(draw):
    length = draw(st.integers(0, 32))
    raw = draw(st.integers(0, 0xFFFFFFFF))
    return Ipv4Prefix.canonical(Ipv4Address(raw), length)


@st.composite
def prefix_list_entries(draw, seq):
    prefix = draw(prefixes())
    ge = le = None
    kind = draw(st.integers(0, 3))
    if kind == 1:
        ge = draw(st.integers(prefix.length, 32))
    elif kind == 2:
        le = draw(st.integers(prefix.length, 32))
    elif kind == 3:
        ge = draw(st.integers(prefix.length, 32))
        le = draw(st.integers(ge, 32))
    return PrefixListEntry(seq, draw(actions), prefix, ge=ge, le=le)


@st.composite
def prefix_lists(draw):
    count = draw(st.integers(1, 4))
    entries = tuple(
        draw(prefix_list_entries(seq=10 * (i + 1))) for i in range(count)
    )
    return PrefixList(draw(names), entries)


@st.composite
def community_lists(draw):
    expanded = draw(st.booleans())
    count = draw(st.integers(1, 3))
    entries = []
    for _ in range(count):
        if expanded:
            body = draw(communities)
            entries.append(CommunityListEntry(draw(actions), regex=f"_{body}_"))
        else:
            members = tuple(
                draw(st.lists(communities, min_size=1, max_size=3, unique=True))
            )
            entries.append(CommunityListEntry(draw(actions), communities=members))
    return CommunityList(draw(names), tuple(entries), expanded=expanded)


@st.composite
def as_path_lists(draw):
    count = draw(st.integers(1, 3))
    entries = tuple(
        AsPathEntry(draw(actions), f"_{draw(st.integers(1, 65535))}$")
        for _ in range(count)
    )
    return AsPathAccessList(draw(names), entries)


@st.composite
def match_clauses(draw):
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return MatchPrefixList(tuple(draw(st.lists(names, min_size=1, max_size=2))))
    if kind == 1:
        return MatchCommunity(tuple(draw(st.lists(names, min_size=1, max_size=2))))
    if kind == 2:
        return MatchAsPath(tuple(draw(st.lists(names, min_size=1, max_size=2))))
    if kind == 3:
        return MatchLocalPreference(draw(st.integers(0, 4294967295)))
    if kind == 4:
        return MatchMetric(draw(st.integers(0, 4294967295)))
    return MatchTag(draw(st.integers(0, 4294967295)))


@st.composite
def set_clauses(draw):
    kind = draw(st.integers(0, 6))
    if kind == 0:
        return SetMetric(draw(st.integers(0, 4294967295)))
    if kind == 1:
        return SetLocalPreference(draw(st.integers(0, 4294967295)))
    if kind == 2:
        return SetCommunity(
            tuple(draw(st.lists(communities, min_size=1, max_size=3))),
            additive=draw(st.booleans()),
        )
    if kind == 3:
        return SetNextHop(Ipv4Address(draw(st.integers(0, 0xFFFFFFFF))))
    if kind == 4:
        return SetTag(draw(st.integers(0, 4294967295)))
    if kind == 5:
        return SetWeight(draw(st.integers(0, 65535)))
    return SetAsPathPrepend(
        tuple(draw(st.lists(st.integers(1, 65535), min_size=1, max_size=3)))
    )


@st.composite
def route_map_objects(draw):
    count = draw(st.integers(1, 4))
    stanzas = []
    for idx in range(count):
        action = draw(actions)
        matches = tuple(draw(st.lists(match_clauses(), max_size=2)))
        sets = (
            tuple(draw(st.lists(set_clauses(), max_size=2, unique_by=type)))
            if action == "permit"
            else ()
        )
        stanzas.append(
            RouteMapStanza(10 * (idx + 1), action, matches=matches, sets=sets)
        )
    return RouteMap(draw(names), tuple(stanzas))


@st.composite
def port_specs(draw):
    op = draw(st.sampled_from(["any", "eq", "neq", "lt", "gt", "range"]))
    if op == "any":
        return PortSpec()
    if op in ("lt", "gt"):
        return PortSpec(op, (draw(st.integers(0, 65535)),))
    if op == "range":
        lo = draw(st.integers(0, 65535))
        hi = draw(st.integers(lo, 65535))
        return PortSpec("range", (lo, hi))
    values = tuple(draw(st.lists(st.integers(0, 65535), min_size=1, max_size=3)))
    return PortSpec(op, values)


@st.composite
def endpoints(draw):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return Ipv4Wildcard.any()
    if kind == 1:
        return Ipv4Wildcard.host(Ipv4Address(draw(st.integers(0, 0xFFFFFFFF))))
    return Ipv4Wildcard.from_prefix(draw(prefixes()))


@st.composite
def acl_objects(draw):
    count = draw(st.integers(1, 4))
    rules = []
    for idx in range(count):
        protocol = ProtocolSpec(draw(st.sampled_from(["ip", "tcp", "udp", "icmp"])))
        ports = protocol.carries_ports()
        rules.append(
            AclRule(
                seq=10 * (idx + 1),
                action=draw(actions),
                protocol=protocol,
                src=draw(endpoints()),
                dst=draw(endpoints()),
                src_ports=draw(port_specs()) if ports else PortSpec(),
                dst_ports=draw(port_specs()) if ports else PortSpec(),
                established=(
                    draw(st.booleans()) if protocol.name == "tcp" else False
                ),
            )
        )
    return Acl(draw(names), tuple(rules))


class TestRoundTrips:
    @given(prefix_lists())
    @settings(max_examples=80, deadline=None)
    def test_prefix_list_round_trip(self, pl):
        store = parse_config(render_object(pl))
        assert store.prefix_list(pl.name) == pl

    @given(community_lists())
    @settings(max_examples=80, deadline=None)
    def test_community_list_round_trip(self, cl):
        store = parse_config(render_object(cl))
        assert store.community_list(cl.name) == cl

    @given(as_path_lists())
    @settings(max_examples=50, deadline=None)
    def test_as_path_list_round_trip(self, al):
        store = parse_config(render_object(al))
        assert store.as_path_list(al.name) == al

    @given(route_map_objects())
    @settings(max_examples=80, deadline=None)
    def test_route_map_round_trip(self, rm):
        store = parse_config(render_object(rm))
        assert store.route_map(rm.name) == rm

    @given(acl_objects())
    @settings(max_examples=80, deadline=None)
    def test_acl_round_trip(self, acl):
        store = parse_config(render_object(acl))
        assert store.acl(acl.name) == acl
