"""Edge-case validation tests across the configuration model."""

import pytest

from repro.config import (
    Acl,
    AclRule,
    PortSpec,
    ProtocolSpec,
    RouteMap,
    RouteMapStanza,
)
from repro.config.render import render_object
from repro.netaddr import Ipv4Wildcard


class TestPortSpec:
    def test_any_matches_everything(self):
        spec = PortSpec()
        assert spec.matches(0) and spec.matches(65535)
        assert spec.render() == ""

    def test_eq_multiple_values(self):
        spec = PortSpec("eq", (80, 443))
        assert spec.matches(80) and spec.matches(443)
        assert not spec.matches(8080)
        assert spec.render() == "eq 80 443"

    def test_neq(self):
        spec = PortSpec("neq", (80,))
        assert not spec.matches(80)
        assert spec.matches(81)
        assert spec.to_intervals().size() == 65535

    def test_lt_gt_boundaries(self):
        assert PortSpec("lt", (1,)).matches(0)
        assert not PortSpec("lt", (1,)).matches(1)
        assert PortSpec("lt", (0,)).to_intervals().is_empty()
        assert PortSpec("gt", (65534,)).matches(65535)
        assert PortSpec("gt", (65535,)).to_intervals().is_empty()

    @pytest.mark.parametrize(
        "op,values",
        [
            ("wibble", (1,)),
            ("eq", ()),
            ("range", (1,)),
            ("range", (5, 3)),
            ("lt", (1, 2)),
            ("eq", (70000,)),
        ],
    )
    def test_rejects_malformed(self, op, values):
        with pytest.raises(ValueError):
            PortSpec(op, values)


class TestProtocolSpec:
    def test_named(self):
        spec = ProtocolSpec("tcp")
        assert spec.number() == 6
        assert spec.carries_ports()
        assert spec.matches(6) and not spec.matches(17)

    def test_numeric(self):
        spec = ProtocolSpec("89")
        assert spec.number() == 89
        assert not spec.carries_ports()

    def test_ip_matches_all(self):
        spec = ProtocolSpec("ip")
        assert spec.number() is None
        assert spec.matches(0) and spec.matches(255)
        assert spec.to_intervals().size() == 256

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            ProtocolSpec("carrier-pigeon")
        with pytest.raises(ValueError):
            ProtocolSpec("300")


class TestSequencingValidation:
    def test_acl_rejects_unsorted_rules(self):
        rule = AclRule(
            seq=20,
            action="permit",
            protocol=ProtocolSpec("ip"),
            src=Ipv4Wildcard.any(),
            dst=Ipv4Wildcard.any(),
        )
        with pytest.raises(ValueError):
            Acl("A", (rule, rule.with_seq(10)))
        with pytest.raises(ValueError):
            Acl("A", (rule, rule))

    def test_route_map_rejects_unsorted_stanzas(self):
        with pytest.raises(ValueError):
            RouteMap("R", (RouteMapStanza(20, "permit"), RouteMapStanza(10, "deny")))

    def test_route_map_lookup_helpers(self):
        rm = RouteMap("R", (RouteMapStanza(10, "permit"), RouteMapStanza(20, "deny")))
        assert rm.stanza_at(20).action == "deny"
        assert rm.index_of(10) == 0
        with pytest.raises(KeyError):
            rm.stanza_at(99)
        with pytest.raises(KeyError):
            rm.index_of(99)
        assert len(rm) == 2

    def test_insert_bounds(self):
        rm = RouteMap("R", (RouteMapStanza(10, "permit"),))
        with pytest.raises(ValueError):
            rm.insert(RouteMapStanza(10, "deny"), 5)
        with pytest.raises(ValueError):
            rm.insert(RouteMapStanza(10, "deny"), -1)


class TestRenderObjectErrors:
    def test_unknown_object_rejected(self):
        with pytest.raises(TypeError):
            render_object(42)
