"""Tests for the config store and insertion-time list renaming."""

import pytest

from repro.config import ConfigStore, parse_config
from repro.config.names import (
    _family_counter,
    numbered_family,
    plan_renames,
    rename_snippet_lists,
)
from repro.config.routemap import RouteMap
from repro.route import BgpRoute


class TestConfigStore:
    def test_duplicate_definitions_rejected(self):
        store = parse_config("route-map RM permit 10")
        with pytest.raises(ValueError):
            store.add_route_map(RouteMap("RM", ()))
        store.add_route_map(RouteMap("RM", ()), replace=True)
        assert len(store.route_map("RM")) == 0

    def test_dangling_lookups_raise_with_name(self):
        store = ConfigStore()
        for lookup in (
            lambda: store.prefix_list("NOPE"),
            lambda: store.community_list("NOPE"),
            lambda: store.as_path_list("NOPE"),
            lambda: store.route_map("NOPE"),
            lambda: store.acl("NOPE"),
        ):
            with pytest.raises(KeyError, match="NOPE"):
                lookup()

    def test_copy_is_independent(self):
        store = parse_config("route-map RM permit 10")
        clone = store.copy()
        clone.add_route_map(RouteMap("OTHER", ()))
        assert not store.has_route_map("OTHER")
        assert clone.has_route_map("RM")

    def test_merged_with(self):
        a = parse_config("route-map A permit 10")
        b = parse_config("ip prefix-list P seq 5 permit 10.0.0.0/8")
        merged = a.merged_with(b)
        assert merged.has_route_map("A")
        assert merged.has_prefix_list("P")

    def test_merged_with_collision_raises(self):
        a = parse_config("route-map A permit 10")
        b = parse_config("route-map A deny 10")
        with pytest.raises(ValueError):
            a.merged_with(b)

    def test_list_names(self):
        store = parse_config(
            "ip prefix-list P seq 5 permit 10.0.0.0/8\n"
            "ip community-list expanded C permit _1:1_\n"
            "ip as-path access-list A permit _1_\n"
        )
        assert set(store.list_names()) == {"P", "C", "A"}


SNIPPET = """
ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
"""


class TestRenaming:
    def test_numbered_family_continued(self):
        target = parse_config(
            "ip as-path access-list D0 permit _32$\n"
            "ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24\n"
        )
        renames = plan_renames(parse_config(SNIPPET), target)
        assert renames == {"COM_LIST": "D2", "PREFIX_100": "D3"}

    def test_no_family_keeps_names(self):
        target = parse_config(
            "ip prefix-list CORP_NETS seq 10 permit 10.0.0.0/8 le 24"
        )
        renames = plan_renames(parse_config(SNIPPET), target)
        assert renames == {"COM_LIST": "COM_LIST", "PREFIX_100": "PREFIX_100"}

    def test_single_numbered_name_treated_as_family(self):
        # "PREFIX_100" is itself a numbered family; snippet lists continue
        # it (the Fig. 2 behaviour generalised).
        target = parse_config(
            "ip prefix-list PREFIX_100 seq 10 permit 99.0.0.0/8"
        )
        renames = plan_renames(parse_config(SNIPPET), target)
        assert renames == {"COM_LIST": "PREFIX_101", "PREFIX_100": "PREFIX_102"}

    def test_collisions_suffixed_without_family(self):
        target = parse_config(
            "ip prefix-list PREFIX_100 seq 10 permit 99.0.0.0/8\n"
            "ip prefix-list EDGE seq 10 permit 98.0.0.0/8\n"
        )
        renames = plan_renames(parse_config(SNIPPET), target)
        assert renames["PREFIX_100"] == "PREFIX_100_2"
        assert renames["COM_LIST"] == "COM_LIST"

    def test_empty_target_keeps_names(self):
        renames = plan_renames(parse_config(SNIPPET), ConfigStore())
        assert renames["COM_LIST"] == "COM_LIST"

    def test_references_rewritten_consistently(self):
        target = parse_config(
            "ip as-path access-list D0 permit _32$\n"
            "ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24\n"
        )
        renamed = rename_snippet_lists(parse_config(SNIPPET), target)
        rm = list(renamed.route_maps())[0]
        referenced = set()
        for clause in rm.stanzas[0].matches:
            referenced.update(clause.names)
        assert referenced == {"D2", "D3"}
        # Semantics preserved after rename + merge.
        merged = target.merged_with(renamed)
        from repro.analysis import eval_route_map

        route = BgpRoute.build("100.0.0.0/16", communities=["300:3"])
        result = eval_route_map(rm, merged, route)
        assert result.permitted()
        assert result.output.metric == 55

    def test_mixed_family_not_continued(self):
        target = parse_config(
            "ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24\n"
            "ip prefix-list OTHER seq 10 permit 99.0.0.0/8\n"
        )
        renames = plan_renames(parse_config(SNIPPET), target)
        # Two different stems -> no single family -> keep names.
        assert renames["COM_LIST"] == "COM_LIST"

    def test_dominant_family_survives_deviant_names(self):
        # D0/D1 clearly dominate; a stray DENY_EXT2 (which merely shares
        # the "D" prefix textually) no longer vetoes the family.
        target = parse_config(
            "ip prefix-list D0 seq 10 permit 10.0.0.0/8 le 24\n"
            "ip prefix-list D1 seq 10 permit 20.0.0.0/8 le 24\n"
            "ip prefix-list DENY_EXT2 seq 10 permit 99.0.0.0/8\n"
        )
        renames = plan_renames(parse_config(SNIPPET), target)
        assert renames == {"COM_LIST": "D2", "PREFIX_100": "D3"}

    def test_family_continuation_skips_taken_names(self):
        # The next free number (D2) is already defined: skip past it.
        target = parse_config(
            "ip prefix-list D0 seq 10 permit 10.0.0.0/8 le 24\n"
            "ip prefix-list D1 seq 10 permit 20.0.0.0/8 le 24\n"
            "ip community-list standard D2 permit 65000:1\n"
        )
        renames = plan_renames(parse_config(SNIPPET), target)
        assert renames == {"COM_LIST": "D3", "PREFIX_100": "D4"}


class TestNumberedFamily:
    def test_split(self):
        assert numbered_family("D2") == ("D", 2)
        assert numbered_family("PREFIX_100") == ("PREFIX_", 100)

    def test_non_family_names(self):
        assert numbered_family("CORP_NETS") is None
        assert numbered_family("D2X") is None
        # A digit mid-name breaks the pattern.
        assert numbered_family("CAMPUS_RM_0_PL") is None
        assert numbered_family("100") is None


class TestFamilyCounter:
    def test_empty_iterable(self):
        assert _family_counter([]) is None
        assert _family_counter(iter([])) is None

    def test_accepts_generator(self):
        assert _family_counter(name for name in ["D0", "D1"]) == ("D", 2)

    def test_uniform_family(self):
        assert _family_counter(["D0", "D1"]) == ("D", 2)
        assert _family_counter(["PREFIX_100"]) == ("PREFIX_", 101)

    def test_no_numbered_names(self):
        assert _family_counter(["CORP_NETS", "EDGE"]) is None

    def test_deviants_do_not_veto_dominant_family(self):
        assert _family_counter(["D0", "D1", "DENY_EXT2"]) == ("D", 2)
        assert _family_counter(["D0", "D1", "CORP_NETS"]) == ("D", 2)

    def test_singleton_next_to_descriptive_name_is_ambiguous(self):
        # One numbered name among descriptive ones is too weak a signal.
        assert _family_counter(["PREFIX_100", "EDGE"]) is None
        assert _family_counter(["D1", "OTHER"]) is None

    def test_tied_families_are_ambiguous(self):
        assert _family_counter(["D0", "D1", "E0", "E1"]) is None

    def test_majority_family_wins(self):
        assert _family_counter(["D0", "D1", "D2", "E0", "E1"]) == ("D", 3)

    def test_next_number_follows_highest(self):
        assert _family_counter(["D0", "D7"]) == ("D", 8)
