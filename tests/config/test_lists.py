"""Tests for prefix-lists, community-lists, and AS-path lists."""

import pytest

from repro.config import (
    AsPathAccessList,
    AsPathEntry,
    CommunityList,
    CommunityListEntry,
    PrefixList,
    PrefixListEntry,
)
from repro.netaddr import Ipv4Prefix
from repro.route import BgpRoute


def entry(seq, action, prefix, ge=None, le=None):
    return PrefixListEntry(seq, action, Ipv4Prefix.parse(prefix), ge=ge, le=le)


class TestPrefixListEntry:
    def test_exact_match_without_ge_le(self):
        e = entry(10, "permit", "10.0.0.0/8")
        assert e.matches(Ipv4Prefix.parse("10.0.0.0/8"))
        assert not e.matches(Ipv4Prefix.parse("10.1.0.0/16"))
        assert not e.matches(Ipv4Prefix.parse("11.0.0.0/8"))

    def test_le_allows_longer(self):
        e = entry(10, "permit", "10.0.0.0/8", le=24)
        assert e.matches(Ipv4Prefix.parse("10.0.0.0/8"))
        assert e.matches(Ipv4Prefix.parse("10.1.0.0/16"))
        assert e.matches(Ipv4Prefix.parse("10.1.2.0/24"))
        assert not e.matches(Ipv4Prefix.parse("10.1.2.128/25"))

    def test_ge_requires_longer(self):
        e = entry(30, "permit", "1.0.0.0/20", ge=24)
        assert not e.matches(Ipv4Prefix.parse("1.0.0.0/20"))
        assert e.matches(Ipv4Prefix.parse("1.0.0.0/24"))
        assert e.matches(Ipv4Prefix.parse("1.0.1.128/32"))
        assert not e.matches(Ipv4Prefix.parse("2.0.0.0/24"))

    def test_ge_and_le_window(self):
        e = entry(10, "permit", "10.0.0.0/8", ge=16, le=24)
        assert not e.matches(Ipv4Prefix.parse("10.0.0.0/8"))
        assert e.matches(Ipv4Prefix.parse("10.1.0.0/16"))
        assert e.matches(Ipv4Prefix.parse("10.1.2.0/24"))
        assert not e.matches(Ipv4Prefix.parse("10.1.2.192/26"))

    def test_rejects_ge_below_prefix_length(self):
        with pytest.raises(ValueError):
            entry(10, "permit", "10.0.0.0/16", ge=8)

    def test_rejects_ge_above_le(self):
        with pytest.raises(ValueError):
            entry(10, "permit", "10.0.0.0/8", ge=24, le=16)

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError):
            entry(10, "allow", "10.0.0.0/8")

    def test_length_bounds(self):
        assert entry(1, "permit", "10.0.0.0/8").length_bounds() == (8, 8)
        assert entry(1, "permit", "10.0.0.0/8", le=24).length_bounds() == (8, 24)
        assert entry(1, "permit", "10.0.0.0/8", ge=16).length_bounds() == (16, 32)
        assert entry(1, "permit", "10.0.0.0/8", ge=9, le=10).length_bounds() == (9, 10)


class TestPrefixList:
    def test_first_match_wins(self):
        pl = PrefixList(
            "L",
            (
                entry(10, "deny", "10.1.0.0/16", le=32),
                entry(20, "permit", "10.0.0.0/8", le=32),
            ),
        )
        assert not pl.permits(Ipv4Prefix.parse("10.1.0.0/24"))
        assert pl.permits(Ipv4Prefix.parse("10.2.0.0/24"))

    def test_implicit_deny(self):
        pl = PrefixList("L", (entry(10, "permit", "10.0.0.0/8"),))
        assert not pl.permits(Ipv4Prefix.parse("11.0.0.0/8"))

    def test_paper_d1_list(self):
        # The D1 list from the paper's Section 2.1.
        pl = PrefixList(
            "D1",
            (
                entry(10, "permit", "10.0.0.0/8", le=24),
                entry(20, "permit", "20.0.0.0/16", le=32),
                entry(30, "permit", "1.0.0.0/20", ge=24),
            ),
        )
        assert pl.permits(Ipv4Prefix.parse("10.5.0.0/24"))
        assert not pl.permits(Ipv4Prefix.parse("10.5.0.0/25"))
        assert pl.permits(Ipv4Prefix.parse("20.0.5.0/30"))
        assert pl.permits(Ipv4Prefix.parse("1.0.8.0/26"))
        assert not pl.permits(Ipv4Prefix.parse("1.0.0.0/20"))


class TestCommunityList:
    def test_expanded_matches_any_community(self):
        cl = CommunityList(
            "C", (CommunityListEntry("permit", regex="_300:3_"),), expanded=True
        )
        assert cl.permits(BgpRoute.build("10.0.0.0/8", communities=["300:3"]))
        assert cl.permits(
            BgpRoute.build("10.0.0.0/8", communities=["1:1", "300:3"])
        )
        assert not cl.permits(BgpRoute.build("10.0.0.0/8", communities=["1300:3"]))
        assert not cl.permits(BgpRoute.build("10.0.0.0/8"))

    def test_expanded_deny_shadows_later_permit(self):
        cl = CommunityList(
            "C",
            (
                CommunityListEntry("deny", regex="^300:1$"),
                CommunityListEntry("permit", regex="^300:"),
            ),
            expanded=True,
        )
        assert not cl.permits(BgpRoute.build("10.0.0.0/8", communities=["300:1"]))
        assert cl.permits(BgpRoute.build("10.0.0.0/8", communities=["300:2"]))

    def test_standard_requires_all_listed(self):
        cl = CommunityList(
            "C",
            (CommunityListEntry("permit", communities=("100:1", "100:2")),),
            expanded=False,
        )
        assert cl.permits(
            BgpRoute.build("10.0.0.0/8", communities=["100:1", "100:2", "9:9"])
        )
        assert not cl.permits(BgpRoute.build("10.0.0.0/8", communities=["100:1"]))

    def test_entry_requires_exactly_one_body(self):
        with pytest.raises(ValueError):
            CommunityListEntry("permit")
        with pytest.raises(ValueError):
            CommunityListEntry("permit", regex="x", communities=("1:1",))


class TestAsPathAccessList:
    def test_paper_d0_list(self):
        al = AsPathAccessList("D0", (AsPathEntry("permit", "_32$"),))
        assert al.permits(BgpRoute.build("5.0.0.0/8", as_path=[100, 32]))
        assert al.permits(BgpRoute.build("5.0.0.0/8", as_path=[32]))
        assert not al.permits(BgpRoute.build("5.0.0.0/8", as_path=[32, 100]))
        assert not al.permits(BgpRoute.build("5.0.0.0/8"))

    def test_first_match_wins(self):
        al = AsPathAccessList(
            "A",
            (AsPathEntry("deny", "_100_"), AsPathEntry("permit", ".*")),
        )
        assert not al.permits(BgpRoute.build("5.0.0.0/8", as_path=[100]))
        assert al.permits(BgpRoute.build("5.0.0.0/8", as_path=[200]))
