"""Tests for device-level configuration parsing and rendering."""

import pytest

from repro.config.device import (
    BgpConfig,
    BgpNeighbor,
    DeviceConfig,
    Interface,
    NetworkStatement,
    parse_device,
    render_device,
)
from repro.config.parser import ConfigParseError
from repro.netaddr import Ipv4Address, Ipv4Prefix

DEVICE_TEXT = """\
hostname R1
!
interface GigabitEthernet0/0
 ip address 10.10.0.1 255.255.255.0
 ip access-group EDGE_IN in
!
interface GigabitEthernet0/1
 ip address 10.20.0.1 255.255.255.252
!
ip access-list extended EDGE_IN
 10 permit tcp any any
!
ip prefix-list NETS seq 5 permit 200.0.0.0/16
!
route-map TO_ISP permit 10
 match ip address prefix-list NETS
route-map TAG_LOCAL permit 10
 set community 65010:1 additive
!
router bgp 65010
 bgp router-id 1.1.1.1
 network 200.0.0.0 mask 255.255.0.0 route-map TAG_LOCAL
 neighbor 10.10.0.2 remote-as 100
 neighbor 10.10.0.2 route-map TO_ISP out
 neighbor 10.20.0.2 remote-as 65020
"""


class TestParseDevice:
    def test_full_device(self):
        device = parse_device(DEVICE_TEXT)
        assert device.hostname == "R1"
        assert len(device.interfaces) == 2
        gi0 = device.interfaces[0]
        assert gi0.name == "GigabitEthernet0/0"
        assert str(gi0.address) == "10.10.0.1"
        assert gi0.prefix_length == 24
        assert gi0.acl_in == "EDGE_IN"
        assert gi0.acl_out is None
        assert device.interfaces[1].prefix_length == 30

        bgp = device.bgp
        assert bgp.asn == 65010
        assert str(bgp.router_id) == "1.1.1.1"
        assert bgp.networks == (
            NetworkStatement(Ipv4Prefix.parse("200.0.0.0/16"), "TAG_LOCAL"),
        )
        assert len(bgp.neighbors) == 2
        isp = next(n for n in bgp.neighbors if n.remote_as == 100)
        assert isp.export_chain == ("TO_ISP",)
        assert isp.import_chain == ()

        assert device.store.has_acl("EDGE_IN")
        assert device.store.has_route_map("TO_ISP")

    def test_round_trip(self):
        device = parse_device(DEVICE_TEXT)
        rendered = render_device(device)
        reparsed = parse_device(rendered)
        assert reparsed.hostname == device.hostname
        assert reparsed.interfaces == device.interfaces
        assert reparsed.bgp == device.bgp
        assert render_device(reparsed) == rendered

    def test_interface_network(self):
        device = parse_device(DEVICE_TEXT)
        assert str(device.interfaces[0].network()) == "10.10.0.0/24"

    @pytest.mark.parametrize(
        "text",
        [
            "interface X\n ip address 1.2.3.4 255.255.255.0",  # no hostname
            "hostname R\ninterface X\n ip address 1.2.3.4 255.0.255.0",
            "hostname R\ninterface X\n ip wibble",
            "hostname R\nrouter bgp banana",
            "hostname R\nrouter bgp 1\n network 10.0.0.0",
            "hostname R\nrouter bgp 1\n neighbor 1.1.1.1 colour blue",
            "hostname R\nrouter bgp 1\n neighbor 1.1.1.1 route-map X sideways",
            "hostname R\nrouter bgp 1\n neighbor 1.1.1.1 route-map NOPE in",
            "hostname R\ninterface X\n ip access-group A sideways",
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises((ConfigParseError, KeyError)):
            parse_device(text)

    def test_neighbor_without_remote_as_rejected(self):
        text = (
            "hostname R\n"
            "route-map X permit 10\n"
            "router bgp 1\n"
            " neighbor 1.1.1.1 route-map X in\n"
        )
        with pytest.raises(ConfigParseError):
            parse_device(text)

    def test_dangling_acl_attachment_rejected(self):
        text = (
            "hostname R\n"
            "interface X\n"
            " ip access-group NOPE in\n"
        )
        with pytest.raises(KeyError):
            parse_device(text)


class TestRenderDevice:
    def test_render_minimal(self):
        device = DeviceConfig(hostname="LEAF")
        device.interfaces.append(
            Interface("Gi0", Ipv4Address.parse("10.0.0.1"), 24)
        )
        device.bgp = BgpConfig(
            asn=65001,
            neighbors=(
                BgpNeighbor(Ipv4Address.parse("10.0.0.2"), 65002),
            ),
        )
        text = render_device(device)
        assert "hostname LEAF" in text
        assert "ip address 10.0.0.1 255.255.255.0" in text
        assert "neighbor 10.0.0.2 remote-as 65002" in text
        reparsed = parse_device(text)
        assert reparsed.bgp == device.bgp
