"""Property tests: random device configurations round-trip exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.device import (
    BgpConfig,
    BgpNeighbor,
    DeviceConfig,
    Interface,
    NetworkStatement,
    parse_device,
    render_device,
)
from repro.config.routemap import RouteMap, RouteMapStanza
from repro.config.store import ConfigStore
from repro.netaddr import Ipv4Address, Ipv4Prefix

hostnames = st.from_regex(r"[a-z][a-z0-9-]{0,12}", fullmatch=True)
map_names = st.sampled_from(["RM_A", "RM_B", "RM_C"])


@st.composite
def addresses(draw):
    return Ipv4Address(draw(st.integers(0, 0xFFFFFFFF)))


@st.composite
def interfaces(draw, index):
    has_address = draw(st.booleans())
    if not has_address:
        # The prefix length is only expressible alongside an address.
        return Interface(name=f"Gi0/{index}")
    return Interface(
        name=f"Gi0/{index}",
        address=draw(addresses()),
        prefix_length=draw(st.integers(0, 32)),
    )


@st.composite
def devices(draw):
    store = ConfigStore()
    for name in ("RM_A", "RM_B", "RM_C"):
        store.add_route_map(
            RouteMap(name, (RouteMapStanza(10, draw(st.sampled_from(["permit", "deny"]))),))
        )
    device = DeviceConfig(hostname=draw(hostnames), store=store)
    for index in range(draw(st.integers(0, 3))):
        device.interfaces.append(draw(interfaces(index)))
    neighbor_count = draw(st.integers(0, 3))
    neighbors = []
    seen = set()
    for _ in range(neighbor_count):
        address = draw(addresses())
        if address in seen:
            continue
        seen.add(address)
        neighbors.append(
            BgpNeighbor(
                address=address,
                remote_as=draw(st.integers(1, 4294967295)),
                import_chain=tuple(draw(st.lists(map_names, max_size=2))),
                export_chain=tuple(draw(st.lists(map_names, max_size=2))),
            )
        )
    statements = []
    for _ in range(draw(st.integers(0, 2))):
        length = draw(st.integers(0, 32))
        prefix = Ipv4Prefix.canonical(draw(addresses()), length)
        statements.append(
            NetworkStatement(prefix, draw(st.one_of(st.none(), map_names)))
        )
    device.bgp = BgpConfig(
        asn=draw(st.integers(1, 4294967295)),
        router_id=draw(st.one_of(st.none(), addresses())),
        networks=tuple(statements),
        neighbors=tuple(sorted(neighbors, key=lambda n: n.address)),
    )
    return device


class TestDeviceRoundTrip:
    @given(devices())
    @settings(max_examples=80, deadline=None)
    def test_render_parse_round_trip(self, device):
        text = render_device(device)
        reparsed = parse_device(text)
        assert reparsed.hostname == device.hostname
        assert reparsed.interfaces == device.interfaces
        assert reparsed.bgp == device.bgp
        assert render_device(reparsed) == text
