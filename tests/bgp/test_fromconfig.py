"""Tests for assembling networks from device configuration files."""

import pytest

from repro.bgp import simulate
from repro.bgp.checks import has_route, learned_from
from repro.bgp.fromconfig import TopologyError, network_from_devices
from repro.config.device import parse_device

A_TEXT = """\
hostname A
interface Link0
 ip address 10.99.0.1 255.255.255.252
ip prefix-list MINE seq 5 permit 10.1.0.0/16
route-map TAG permit 10
 set community 65001:7 additive
router bgp 65001
 network 10.1.0.0 mask 255.255.0.0 route-map TAG
 neighbor 10.99.0.2 remote-as 65002
"""

B_TEXT = """\
hostname B
interface Link0
 ip address 10.99.0.2 255.255.255.252
router bgp 65002
 neighbor 10.99.0.1 remote-as 65001
"""


class TestNetworkFromDevices:
    def test_two_device_network(self):
        devices = [parse_device(A_TEXT), parse_device(B_TEXT)]
        net = network_from_devices(devices)
        ribs = simulate(net)
        assert has_route(ribs, "B", "10.1.0.0/16")
        assert learned_from(ribs, "B", "10.1.0.0/16") == "A"
        entry = ribs["B"][list(ribs["B"])[0]]
        # The origination route-map tagged the route.
        assert "65001:7" in entry.route.communities
        assert entry.route.asns() == [65001]

    def test_denied_origination_map_suppresses_network(self):
        text = A_TEXT.replace(
            "route-map TAG permit 10\n set community 65001:7 additive",
            "route-map TAG deny 10",
        )
        devices = [parse_device(text), parse_device(B_TEXT)]
        ribs = simulate(network_from_devices(devices))
        assert not has_route(ribs, "B", "10.1.0.0/16")
        assert not has_route(ribs, "A", "10.1.0.0/16")

    def test_unknown_neighbor_address(self):
        bad = B_TEXT.replace("10.99.0.1", "10.99.9.9")
        with pytest.raises(TopologyError):
            network_from_devices([parse_device(A_TEXT), parse_device(bad)])

    def test_remote_as_mismatch(self):
        bad = B_TEXT.replace("remote-as 65001", "remote-as 65999")
        with pytest.raises(TopologyError, match="remote-as"):
            network_from_devices([parse_device(A_TEXT), parse_device(bad)])

    def test_one_sided_session(self):
        silent = "hostname B\ninterface Link0\n ip address 10.99.0.2 255.255.255.252\nrouter bgp 65002\n neighbor 10.99.0.5 remote-as 65003\n"
        c_text = "hostname C\ninterface Link1\n ip address 10.99.0.5 255.255.255.252\nrouter bgp 65003\n"
        with pytest.raises(TopologyError, match="no neighbor statement back"):
            network_from_devices(
                [
                    parse_device(A_TEXT),
                    parse_device(silent),
                    parse_device(c_text),
                ]
            )

    def test_duplicate_interface_address(self):
        dup = B_TEXT.replace("10.99.0.2", "10.99.0.1")
        with pytest.raises(TopologyError, match="assigned to both"):
            network_from_devices([parse_device(A_TEXT), parse_device(dup)])

    def test_device_without_bgp_rejected(self):
        lonely = parse_device("hostname L\ninterface X\n ip address 1.1.1.1 255.255.255.0\n")
        with pytest.raises(TopologyError, match="no BGP config"):
            network_from_devices([lonely])


class TestFigure3EndToEnd:
    def test_policies_survive_config_round_trip(self):
        from repro.evalcase.devices import build_figure3_from_files

        result = build_figure3_from_files()
        assert all(result.policy_results.values()), result.policy_results

    def test_device_files_parse_standalone(self):
        from repro.evalcase.devices import figure3_device_files

        files = figure3_device_files()
        assert set(files) == {"M", "R1", "R2", "DC", "MGMT", "ISP1", "ISP2"}
        for name, text in files.items():
            device = parse_device(text)
            assert device.hostname == name
            assert device.bgp is not None
