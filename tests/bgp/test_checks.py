"""Tests for the RIB query helpers."""

from repro.bgp import Network, simulate
from repro.bgp.checks import (
    as_path_at,
    best_entry,
    has_route,
    learned_from,
    visible_prefixes,
)


def simple_ribs():
    net = Network()
    net.add_router("A", 65001)
    net.add_router("B", 65002)
    net.connect("A", "B")
    net.router("A").originate("10.0.0.0/8")
    net.router("A").originate("20.0.0.0/8")
    return simulate(net)


class TestChecks:
    def test_has_route(self):
        ribs = simple_ribs()
        assert has_route(ribs, "B", "10.0.0.0/8")
        assert not has_route(ribs, "B", "30.0.0.0/8")

    def test_best_entry_and_learned_from(self):
        ribs = simple_ribs()
        entry = best_entry(ribs, "B", "10.0.0.0/8")
        assert entry is not None
        assert entry.learned_from == "A"
        assert learned_from(ribs, "B", "10.0.0.0/8") == "A"
        assert learned_from(ribs, "B", "30.0.0.0/8") is None
        assert best_entry(ribs, "B", "30.0.0.0/8") is None

    def test_visible_prefixes_sorted(self):
        ribs = simple_ribs()
        assert visible_prefixes(ribs, "B") == ["10.0.0.0/8", "20.0.0.0/8"]

    def test_as_path_at(self):
        ribs = simple_ribs()
        assert as_path_at(ribs, "B", "10.0.0.0/8") == [65001]
        assert as_path_at(ribs, "A", "10.0.0.0/8") == []
        assert as_path_at(ribs, "A", "30.0.0.0/8") is None
