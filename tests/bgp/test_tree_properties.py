"""Property tests: BGP propagation on random trees.

On a tree with no policies, every router must learn every origination,
via the unique tree path, with the AS path mirroring that path — an
exhaustive sanity net for the propagation/selection machinery.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp import Network, simulate
from repro.bgp.checks import as_path_at, has_route, learned_from


@st.composite
def random_trees(draw):
    """A random tree: each node's parent is a lower-numbered node."""
    size = draw(st.integers(2, 9))
    parents = [draw(st.integers(0, i - 1)) for i in range(1, size)]
    origin = draw(st.integers(0, size - 1))
    return size, parents, origin


def build_tree(size, parents):
    net = Network()
    for idx in range(size):
        net.add_router(f"N{idx}", 65001 + idx)
    for child, parent in enumerate(parents, start=1):
        net.connect(f"N{child}", f"N{parent}")
    return net


def tree_paths(size, parents, origin):
    """Hop count and first-hop toward ``origin`` for every node."""
    adjacency = {i: [] for i in range(size)}
    for child, parent in enumerate(parents, start=1):
        adjacency[child].append(parent)
        adjacency[parent].append(child)
    depth = {origin: 0}
    next_hop = {}
    frontier = [origin]
    while frontier:
        node = frontier.pop(0)
        for neighbor in adjacency[node]:
            if neighbor not in depth:
                depth[neighbor] = depth[node] + 1
                next_hop[neighbor] = node
                frontier.append(neighbor)
    return depth, next_hop


class TestTreePropagation:
    @given(random_trees())
    @settings(max_examples=50, deadline=None)
    def test_everyone_learns_via_the_tree_path(self, case):
        size, parents, origin = case
        net = build_tree(size, parents)
        net.router(f"N{origin}").originate("10.0.0.0/8")
        ribs = simulate(net)
        depth, next_hop = tree_paths(size, parents, origin)
        for idx in range(size):
            name = f"N{idx}"
            assert has_route(ribs, name, "10.0.0.0/8")
            path = as_path_at(ribs, name, "10.0.0.0/8")
            assert len(path) == depth[idx]
            if idx == origin:
                assert learned_from(ribs, name, "10.0.0.0/8") is None
            else:
                assert learned_from(ribs, name, "10.0.0.0/8") == f"N{next_hop[idx]}"
                # The path ends at the origin's ASN.
                assert path[-1] == 65001 + origin

    @given(random_trees())
    @settings(max_examples=25, deadline=None)
    def test_simulation_is_deterministic(self, case):
        size, parents, origin = case
        ribs = []
        for _ in range(2):
            net = build_tree(size, parents)
            net.router(f"N{origin}").originate("10.0.0.0/8")
            ribs.append(simulate(net))
        assert ribs[0] == ribs[1]
