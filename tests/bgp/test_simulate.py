"""Tests for the BGP propagation simulator."""

import pytest

from repro.bgp import Network, simulate
from repro.bgp.checks import as_path_at, has_route, learned_from
from repro.config import parse_config


def line_network():
    """A - B - C, no policies."""
    net = Network()
    net.add_router("A", 65001)
    net.add_router("B", 65002)
    net.add_router("C", 65003)
    net.connect("A", "B")
    net.connect("B", "C")
    net.router("A").originate("10.1.0.0/16")
    return net


class TestBasicPropagation:
    def test_route_propagates_with_as_path(self):
        ribs = simulate(line_network())
        assert has_route(ribs, "A", "10.1.0.0/16")
        assert has_route(ribs, "B", "10.1.0.0/16")
        assert has_route(ribs, "C", "10.1.0.0/16")
        assert as_path_at(ribs, "C", "10.1.0.0/16") == [65002, 65001]
        assert learned_from(ribs, "C", "10.1.0.0/16") == "B"
        assert learned_from(ribs, "A", "10.1.0.0/16") is None

    def test_loop_prevention_in_cycle(self):
        net = Network()
        for name, asn in (("A", 65001), ("B", 65002), ("C", 65003)):
            net.add_router(name, asn)
        net.connect("A", "B")
        net.connect("B", "C")
        net.connect("A", "C")
        net.router("A").originate("10.1.0.0/16")
        ribs = simulate(net)
        # C hears the route both directly (path [A]) and via B; prefers
        # the shorter path.
        assert as_path_at(ribs, "C", "10.1.0.0/16") == [65001]

    def test_unknown_router_rejected(self):
        net = Network()
        net.add_router("A", 65001)
        with pytest.raises(KeyError):
            net.router("B")
        with pytest.raises(KeyError):
            net.connect("A", "B")
        with pytest.raises(ValueError):
            net.connect("A", "A")


class TestPolicies:
    def test_export_filter_blocks_prefix(self):
        net = line_network()
        b = net.router("B")
        b.store = parse_config(
            """
ip prefix-list BLOCK seq 5 deny 10.1.0.0/16
ip prefix-list BLOCK seq 10 permit 0.0.0.0/0 le 32
route-map TO_C permit 10
 match ip address prefix-list BLOCK
"""
        )
        net.set_export_policy("B", "C", ("TO_C",))
        ribs = simulate(net)
        assert has_route(ribs, "B", "10.1.0.0/16")
        assert not has_route(ribs, "C", "10.1.0.0/16")

    def test_import_policy_sets_local_preference(self):
        # Diamond: D learns A's prefix via B and via C; import policy
        # prefers the longer-AS-path side via local-preference.
        net = Network()
        for name, asn in (
            ("A", 65001),
            ("B", 65002),
            ("C", 65003),
            ("X", 65004),
            ("D", 65005),
        ):
            net.add_router(name, asn)
        net.connect("A", "B")
        net.connect("A", "C")
        net.connect("C", "X")
        net.connect("B", "D")
        net.connect("X", "D")
        net.router("A").originate("10.1.0.0/16")
        d = net.router("D")
        d.store = parse_config(
            """
route-map FROM_X permit 10
 set local-preference 200
"""
        )
        net.set_import_policy("D", "X", ("FROM_X",))
        ribs = simulate(net)
        # Without policy D would pick B (shorter path); local-pref wins.
        assert learned_from(ribs, "D", "10.1.0.0/16") == "X"
        entry = ribs["D"][list(ribs["D"])[0]]
        assert entry.route.local_preference == 200

    def test_local_preference_does_not_cross_ebgp(self):
        net = line_network()
        b = net.router("B")
        b.store = parse_config(
            "route-map FROM_A permit 10\n set local-preference 400"
        )
        net.set_import_policy("B", "A", ("FROM_A",))
        ribs = simulate(net)
        assert ribs["B"][list(ribs["B"])[0]].route.local_preference == 400
        c_entry = ribs["C"][list(ribs["C"])[0]]
        assert c_entry.route.local_preference == 100

    def test_community_tag_and_filter_chain(self):
        # B tags on import from A and filters on export to C: the chain
        # of two maps on export is applied in order.
        net = line_network()
        b = net.router("B")
        b.store = parse_config(
            """
ip community-list expanded TAGGED permit _65001:1_
route-map FROM_A permit 10
 set community 65001:1 additive
route-map STRIP permit 10
route-map TO_C deny 10
 match community TAGGED
route-map TO_C permit 20
"""
        )
        net.set_import_policy("B", "A", ("FROM_A",))
        net.set_export_policy("B", "C", ("STRIP", "TO_C"))
        ribs = simulate(net)
        assert has_route(ribs, "B", "10.1.0.0/16")
        assert not has_route(ribs, "C", "10.1.0.0/16")

    def test_shorter_as_path_wins_by_default(self):
        net = Network()
        for name, asn in (
            ("A", 65001),
            ("B", 65002),
            ("C", 65003),
            ("X", 65004),
            ("D", 65005),
        ):
            net.add_router(name, asn)
        net.connect("A", "B")
        net.connect("A", "C")
        net.connect("C", "X")
        net.connect("B", "D")
        net.connect("X", "D")
        net.router("A").originate("10.1.0.0/16")
        ribs = simulate(net)
        assert learned_from(ribs, "D", "10.1.0.0/16") == "B"

    def test_withdrawal_on_policy_is_stable(self):
        # A route denied at import simply never appears; simulation
        # converges without oscillation.
        net = line_network()
        c = net.router("C")
        c.store = parse_config("route-map NOTHING deny 10")
        net.set_import_policy("C", "B", ("NOTHING",))
        ribs = simulate(net)
        assert not has_route(ribs, "C", "10.1.0.0/16")

    def test_metric_breaks_ties(self):
        # Equal AS-path lengths: lower MED wins.
        net = Network()
        for name, asn in (("A", 65001), ("B", 65002), ("C", 65003), ("D", 65005)):
            net.add_router(name, asn)
        net.connect("A", "B")
        net.connect("A", "C")
        net.connect("B", "D")
        net.connect("C", "D")
        net.router("A").originate("10.1.0.0/16")
        d = net.router("D")
        d.store = parse_config(
            "route-map FROM_B permit 10\n set metric 50\n"
            "route-map FROM_C permit 10\n set metric 10\n"
        )
        net.set_import_policy("D", "B", ("FROM_B",))
        net.set_import_policy("D", "C", ("FROM_C",))
        ribs = simulate(net)
        assert learned_from(ribs, "D", "10.1.0.0/16") == "C"
