"""Convergence behaviour of the BGP simulator, including oscillation."""

import pytest

from repro.bgp import ConvergenceError, Network, simulate
from repro.bgp.checks import has_route, learned_from
from repro.config import parse_config


def test_bad_gadget_raises_convergence_error():
    """The classic BAD GADGET dispute wheel oscillates forever.

    Three routers around an origin each prefer the route through their
    clockwise neighbour (via local-preference) over their direct route;
    no stable assignment exists and the simulator must say so rather
    than loop.
    """
    net = Network()
    net.add_router("O", 65000)
    spokes = ["A", "B", "C"]
    for idx, name in enumerate(spokes):
        net.add_router(name, 65001 + idx)
        net.connect("O", name)
    for idx, name in enumerate(spokes):
        net.connect(name, spokes[(idx + 1) % 3])
    net.router("O").originate("10.0.0.0/8")

    for idx, name in enumerate(spokes):
        clockwise = spokes[(idx + 1) % 3]
        router = net.router(name)
        router.store = parse_config(
            "route-map PREFER permit 10\n set local-preference 200"
        )
        net.set_import_policy(name, clockwise, ("PREFER",))

    with pytest.raises(ConvergenceError):
        simulate(net, max_iterations=32)


def test_good_gadget_converges():
    """Same wheel without the perverse preferences converges fine."""
    net = Network()
    net.add_router("O", 65000)
    spokes = ["A", "B", "C"]
    for idx, name in enumerate(spokes):
        net.add_router(name, 65001 + idx)
        net.connect("O", name)
    for idx, name in enumerate(spokes):
        net.connect(name, spokes[(idx + 1) % 3])
    net.router("O").originate("10.0.0.0/8")

    ribs = simulate(net)
    for name in spokes:
        assert learned_from(ribs, name, "10.0.0.0/8") == "O"


def test_deep_chain_converges_within_bound():
    net = Network()
    hops = [f"R{i}" for i in range(12)]
    for idx, name in enumerate(hops):
        net.add_router(name, 65001 + idx)
        if idx:
            net.connect(hops[idx - 1], name)
    net.router("R0").originate("10.0.0.0/8")
    ribs = simulate(net)
    assert has_route(ribs, "R11", "10.0.0.0/8")
    entry = ribs["R11"][list(ribs["R11"])[0]]
    assert len(entry.route.asns()) == 11


def test_multiple_prefixes_propagate_independently():
    net = Network()
    net.add_router("A", 65001)
    net.add_router("B", 65002)
    net.connect("A", "B")
    for prefix in ("10.0.0.0/8", "20.0.0.0/8", "30.0.0.0/8"):
        net.router("A").originate(prefix)
    ribs = simulate(net)
    for prefix in ("10.0.0.0/8", "20.0.0.0/8", "30.0.0.0/8"):
        assert has_route(ribs, "B", prefix)


def test_prepend_makes_path_less_preferred():
    net = Network()
    for name, asn in (
        ("A", 65001),
        ("B", 65002),
        ("C", 65003),
        ("D", 65005),
    ):
        net.add_router(name, asn)
    net.connect("A", "B")
    net.connect("A", "C")
    net.connect("B", "D")
    net.connect("C", "D")
    net.router("A").originate("10.0.0.0/8")
    # A prepends twice toward B; D then prefers the C side.
    a = net.router("A")
    a.store = parse_config(
        "route-map TO_B permit 10\n set as-path prepend 65001 65001"
    )
    net.set_export_policy("A", "B", ("TO_B",))
    ribs = simulate(net)
    assert learned_from(ribs, "D", "10.0.0.0/8") == "C"


def test_originated_route_preferred_over_learned():
    net = Network()
    net.add_router("A", 65001)
    net.add_router("B", 65002)
    net.connect("A", "B")
    net.router("A").originate("10.0.0.0/8")
    net.router("B").originate("10.0.0.0/8")
    ribs = simulate(net)
    assert learned_from(ribs, "B", "10.0.0.0/8") is None
    assert learned_from(ribs, "A", "10.0.0.0/8") is None
