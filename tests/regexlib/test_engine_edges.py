"""Edge-case tests for the regex engine internals."""

from repro.regexlib import compile_regex, find_word
from repro.regexlib.nfa import NFA, _joint_alphabet
from repro.regexlib.parser import parse_regex


class TestFindWordBounds:
    def test_max_length_limits_search(self):
        # The only words matching require 5 characters; a bound of 3 must
        # report unsatisfiable without hanging.
        r = compile_regex("^aaaaa$")
        assert find_word([r], [], max_length=3) is None
        assert find_word([r], [], max_length=8) == "aaaaa"

    def test_empty_positive_list(self):
        # With no positive patterns the shortest unforbidden word wins.
        assert find_word([], []) == ""
        assert find_word([], [compile_regex("^$")]) not in (None, "")

    def test_multiple_positives_share_one_word(self):
        word = find_word(
            [compile_regex("^a"), compile_regex("b$"), compile_regex("ab|aab")],
            [],
        )
        assert word is not None
        assert word.startswith("a") and word.endswith("b")

    def test_compile_cache_returns_same_object(self):
        assert compile_regex("_300:3_") is compile_regex("_300:3_")


class TestAlphabetSelection:
    def test_mentioned_chars_collected(self):
        nfa = NFA.from_ast(parse_regex("[ab]c|d"))
        assert {"a", "b", "c", "d"} <= set(nfa.mentioned_chars())

    def test_joint_alphabet_has_representative_for_dot(self):
        nfa = NFA.from_ast(parse_regex("."))
        alphabet = _joint_alphabet([nfa])
        assert alphabet  # at least the representative char
        # The representative is outside the (empty) mentioned set.
        assert all(ch not in nfa.mentioned_chars() for ch in alphabet)

    def test_witness_prefers_digits(self):
        # For numeric patterns the witness should look numeric.
        example = compile_regex("^[0-9]+$").example()
        assert example.isdigit()


class TestSearchEdges:
    def test_empty_subject(self):
        assert compile_regex("^$").search("")
        assert not compile_regex("a").search("")
        assert compile_regex("a*").search("")

    def test_anchors_inside_alternation(self):
        r = compile_regex("^start|end$")
        assert r.search("start of line")
        assert r.search("at the end")
        assert not r.search("middle startish...")

    def test_str_is_pattern(self):
        assert str(compile_regex("_65000:1_")) == "_65000:1_"

    def test_long_subject(self):
        r = compile_regex("needle")
        haystack = "hay" * 500 + "needle" + "hay" * 500
        assert r.search(haystack)
        assert not r.search("hay" * 1000)
