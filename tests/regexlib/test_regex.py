"""Tests for the Cisco-flavoured regex engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.regexlib import RegexSyntaxError, compile_regex, find_word, parse_regex
from repro.regexlib.cisco import (
    as_path_matches,
    community_matches,
    find_as_path,
    find_community,
    literal_community_pattern,
    render_as_path,
)


class TestParser:
    def test_rejects_unbalanced_paren(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("(ab")

    def test_rejects_leading_star(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("*a")

    def test_rejects_unterminated_class(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("[abc")

    def test_rejects_reversed_range(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("[9-0]")

    def test_rejects_bad_repeat(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("a{5,2}")

    def test_rejects_huge_repeat(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("a{1,1000}")

    def test_rejects_bare_brace(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("a{x}")


class TestSearchSemantics:
    def test_unanchored_substring_match(self):
        assert compile_regex("300").search("1300:35")

    def test_anchored_match(self):
        r = compile_regex("^300:3$")
        assert r.search("300:3")
        assert not r.search("1300:3")
        assert not r.search("300:35")

    def test_empty_pattern_matches_everything(self):
        assert compile_regex("").search("anything")
        assert compile_regex("").search("")

    def test_dot_does_not_cross_boundaries(self):
        # ".3" requires a real character before '3'.
        assert not compile_regex("^.3").search("3")
        assert compile_regex("^.3").search("13")

    def test_alternation(self):
        r = compile_regex("cat|dog")
        assert r.search("hotdog")
        assert r.search("catalog")
        assert not r.search("bird")

    def test_star_plus_opt(self):
        assert compile_regex("^ab*c$").search("ac")
        assert compile_regex("^ab*c$").search("abbbc")
        assert not compile_regex("^ab+c$").search("ac")
        assert compile_regex("^ab?c$").search("abc")
        assert not compile_regex("^ab?c$").search("abbc")

    def test_char_class(self):
        r = compile_regex("^[0-9]+$")
        assert r.search("12345")
        assert not r.search("12a45")

    def test_negated_class(self):
        r = compile_regex("^[^0-9]$")
        assert r.search("x")
        assert not r.search("7")

    def test_bounded_repeat(self):
        r = compile_regex("^a{2,3}$")
        assert not r.search("a")
        assert r.search("aa")
        assert r.search("aaa")
        assert not r.search("aaaa")

    def test_escape(self):
        r = compile_regex("^1\\.2$")
        assert r.search("1.2")
        assert not r.search("1x2")


class TestCiscoUnderscore:
    def test_underscore_matches_boundaries(self):
        assert as_path_matches("_32$", [174, 32])
        assert not as_path_matches("_32$", [32, 174])
        assert as_path_matches("_32$", [32])

    def test_underscore_does_not_match_inside_number(self):
        assert not as_path_matches("_32_", [132])
        assert not as_path_matches("_32_", [321])
        assert as_path_matches("_32_", [1, 32, 4])

    def test_origin_asn_pattern(self):
        # Routes originating from ASN 65001: path ends with 65001.
        assert as_path_matches("_65001$", [7018, 65001])
        assert not as_path_matches("_65001$", [65001, 7018])

    def test_empty_path(self):
        assert as_path_matches("^$", [])
        assert not as_path_matches("^$", [1])

    def test_community_underscore(self):
        assert community_matches("_300:3_", "300:3")
        assert not community_matches("_300:3_", "1300:3")
        assert not community_matches("_300:3_", "300:35")


class TestWitnessGeneration:
    def test_example_satisfies_pattern(self):
        for pattern in ["^300:3$", "_32$", "^[0-9]+:[0-9]+$", "ab+c"]:
            r = compile_regex(pattern)
            example = r.example()
            assert example is not None
            assert r.search(example)

    def test_unsatisfiable_conjunction(self):
        assert find_word([compile_regex("^a$"), compile_regex("^b$")], []) is None

    def test_positive_and_negative(self):
        word = find_word([compile_regex("^[0-9]+$")], [compile_regex("7")])
        assert word is not None
        assert word.isdigit()
        assert "7" not in word

    def test_forbidden_matches_everything(self):
        assert find_word([compile_regex("^a$")], [compile_regex("")]) is None

    def test_find_community(self):
        c = find_community(["_300:3_"], [])
        assert c is not None
        assert community_matches("_300:3_", c)

    def test_find_community_with_forbidden(self):
        c = find_community(["^300:"], ["^300:3$"])
        assert c is not None
        assert community_matches("^300:", c)
        assert not community_matches("^300:3$", c)

    def test_find_as_path(self):
        path = find_as_path(["_32$"], [])
        assert path is not None
        assert path[-1] == 32

    def test_find_as_path_with_forbidden(self):
        path = find_as_path(["_32$"], ["_174_"])
        assert path is not None
        assert path[-1] == 32
        assert 174 not in path

    def test_find_as_path_unsat(self):
        assert find_as_path(["^$"], ["^$"]) is None


class TestLiteralCommunityPattern:
    def test_escapes_metacharacters(self):
        pattern = literal_community_pattern("300:3")
        assert community_matches(pattern, "300:3")
        assert not community_matches(pattern, "1300:3")
        assert not community_matches(pattern, "300:33")

    @given(
        st.tuples(st.integers(0, 65535), st.integers(0, 65535)).map(
            lambda t: f"{t[0]}:{t[1]}"
        )
    )
    def test_literal_pattern_matches_only_itself(self, community):
        pattern = literal_community_pattern(community)
        assert community_matches(pattern, community)
        assert not community_matches(pattern, community + "0")
        assert not community_matches(pattern, "1" + community)


class TestRenderAsPath:
    def test_render(self):
        assert render_as_path([1, 2, 3]) == "1 2 3"
        assert render_as_path([]) == ""


@given(st.lists(st.integers(0, 4294967295), max_size=6))
def test_rendered_path_round_trips_through_matching(asns):
    # A literal anchored pattern built from the rendered path matches it.
    rendered = render_as_path(asns)
    pattern = "^" + rendered.replace(" ", " ") + "$" if rendered else "^$"
    assert as_path_matches(pattern, asns)
