"""Differential testing: our regex engine vs Python's ``re``.

For patterns in the shared fragment (no Cisco ``_``), our search
semantics must agree exactly with ``re.search``.  Patterns are generated
structurally (so they are always syntactically valid) and rendered to
pattern text; subjects are short random strings over the same alphabet.
"""

import re as python_re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regexlib import compile_regex

ALPHABET = "ab01:"


@st.composite
def patterns(draw, depth=3):
    """A random pattern string in the fragment both engines support."""
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return draw(st.sampled_from(ALPHABET))
        if choice == 1:
            return "."
        chars = draw(st.lists(st.sampled_from(ALPHABET), min_size=1, max_size=3))
        negated = draw(st.booleans())
        return "[" + ("^" if negated else "") + "".join(sorted(set(chars))) + "]"
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return draw(patterns(depth=0))
    if choice == 1:
        left = draw(patterns(depth=depth - 1))
        right = draw(patterns(depth=depth - 1))
        return left + right
    if choice == 2:
        left = draw(patterns(depth=depth - 1))
        right = draw(patterns(depth=depth - 1))
        return f"({left}|{right})"
    if choice == 3:
        inner = draw(patterns(depth=depth - 1))
        op = draw(st.sampled_from("*+?"))
        return f"({inner}){op}"
    inner = draw(patterns(depth=depth - 1))
    lo = draw(st.integers(0, 2))
    hi = draw(st.integers(lo, 3))
    return f"({inner}){{{lo},{hi}}}"


@st.composite
def anchored_patterns(draw):
    core = draw(patterns())
    anchor = draw(st.integers(0, 3))
    if anchor == 1:
        return "^" + core
    if anchor == 2:
        return core + "$"
    if anchor == 3:
        return "^" + core + "$"
    return core


subjects = st.text(alphabet=ALPHABET, max_size=8)


class TestAgainstPythonRe:
    @given(anchored_patterns(), subjects)
    @settings(max_examples=300, deadline=None)
    def test_search_agrees_with_re(self, pattern, subject):
        ours = compile_regex(pattern).search(subject)
        theirs = python_re.search(pattern, subject) is not None
        assert ours == theirs, (pattern, subject)

    @given(anchored_patterns())
    @settings(max_examples=150, deadline=None)
    def test_generated_example_accepted_by_re(self, pattern):
        example = compile_regex(pattern).example()
        if example is None:
            return  # unsatisfiable within the length bound
        assert python_re.search(pattern, example) is not None, (
            pattern,
            example,
        )

    @given(anchored_patterns(), anchored_patterns())
    @settings(max_examples=100, deadline=None)
    def test_joint_witness_respects_both_engines(self, positive, negative):
        from repro.regexlib import find_word

        word = find_word(
            [compile_regex(positive)], [compile_regex(negative)], max_length=12
        )
        if word is None:
            return
        assert python_re.search(positive, word) is not None
        assert python_re.search(negative, word) is None
