"""End-to-end tests for the §5 evaluation (Figure 3 + Figure 4)."""

import pytest

from repro.bgp.checks import learned_from, visible_prefixes
from repro.evalcase import build_figure3, figure4_rows
from repro.evalcase.figure3 import build_edge, build_m

#: Figure 4 of the paper: router -> (#route-maps, #LLM calls, #disambiguation).
PAPER_FIGURE_4 = {
    "M": (4, 9, 5),
    "R1": (5, 12, 6),
    "R2": (5, 12, 6),
}


@pytest.fixture(scope="module")
def result():
    return build_figure3()


class TestFigure4:
    def test_table_matches_paper(self, result):
        rows = {name: tuple(rest) for name, *rest in figure4_rows(result.stats)}
        assert rows == PAPER_FIGURE_4

    def test_single_pass_synthesis(self, result):
        # §5: "GPT-4 was able to synthesize the correct stanza every time
        # in a single pass and no errors were detected" — LLM calls are
        # exactly 3 per stanza, i.e. no retries happened.
        for stats in result.stats:
            assert stats.llm_calls == 3 * stats.stanzas


class TestGlobalPolicies:
    def test_all_policies_hold(self, result):
        assert all(result.policy_results.values()), result.policy_results

    def test_m_sees_only_the_service_prefix(self, result):
        assert visible_prefixes(result.ribs, "M") == ["10.1.0.0/16"]

    def test_m_prefers_r1_with_local_preference(self, result):
        assert learned_from(result.ribs, "M", "10.1.0.0/16") == "R1"
        entry = result.ribs["M"][list(result.ribs["M"])[0]]
        assert entry.route.local_preference == 200

    def test_isps_see_only_the_public_block(self, result):
        for isp, own in (("ISP1", "8.8.0.0/16"), ("ISP2", "9.9.0.0/16")):
            assert visible_prefixes(result.ribs, isp) == sorted(
                [own, "200.0.0.0/16"]
            )

    def test_sites_exchange_only_non_reused_prefixes(self, result):
        dc = visible_prefixes(result.ribs, "DC")
        assert "10.2.0.0/16" in dc  # management's unique prefix arrives
        assert "8.8.0.0/16" in dc  # internet access works
        mgmt = visible_prefixes(result.ribs, "MGMT")
        assert "10.1.0.0/16" in mgmt
        # The reused prefix is known only via local origination.
        assert learned_from(result.ribs, "DC", "10.0.0.0/16") is None
        assert learned_from(result.ribs, "MGMT", "10.0.0.0/16") is None


class TestFaultyBuild:
    def test_policies_hold_despite_llm_faults(self):
        # With a fault-injected LLM the pipeline needs retries (so the
        # Figure 4 call counts change), but the verified outcome — and
        # therefore every global policy — is unchanged.
        from repro.llm import FaultyLLM, SimulatedLLM

        result = build_figure3(FaultyLLM(SimulatedLLM(), 0.3, seed=5))
        assert all(result.policy_results.values())
        total_calls = sum(s.llm_calls for s in result.stats)
        clean_calls = 9 + 12 + 12
        assert total_calls >= clean_calls


class TestRouterBuilders:
    def test_m_route_maps_shape(self):
        session, stats = build_m()
        from_r1 = session.store.route_map("FROM_R1")
        assert [s.action for s in from_r1.stanzas] == ["deny", "permit"]
        assert stats.questions == 2

    def test_edge_route_maps_shape(self):
        session, stats = build_edge("R1")
        from_edge = session.store.route_map("FROM_EDGE")
        assert [s.action for s in from_edge.stanzas] == ["deny", "permit"]
        from_isp = session.store.route_map("FROM_ISP")
        assert [s.action for s in from_isp.stanzas] == ["deny", "permit"]
        to_isp = session.store.route_map("TO_ISP")
        assert [s.action for s in to_isp.stanzas] == ["permit"]
        assert stats.questions == 2
