"""Unit tests for the route and packet value models."""

import pytest

from repro.route import AsPathSegment, BgpRoute, Packet
from repro.route.packet import PROTOCOL_NUMBERS


class TestBgpRoute:
    def test_build_defaults_match_batfish_counterexample_defaults(self):
        route = BgpRoute.build("10.0.0.0/8")
        assert route.local_preference == 100
        assert route.metric == 0
        assert str(route.next_hop) == "0.0.0.1"
        assert route.tag == 0
        assert route.weight == 0
        assert route.communities == frozenset()
        assert route.asns() == []

    def test_as_path_segments_flatten(self):
        route = BgpRoute(
            network=BgpRoute.build("10.0.0.0/8").network,
            as_path=(
                AsPathSegment((65000, 65001)),
                AsPathSegment((7018,), confederation=True),
            ),
        )
        assert route.asns() == [65000, 65001, 7018]

    def test_segment_rejects_bad_asn(self):
        with pytest.raises(ValueError):
            AsPathSegment((2**32,))

    def test_prepend_adds_leading_segment(self):
        route = BgpRoute.build("10.0.0.0/8", as_path=[7])
        prepended = route.prepend([65000, 65000])
        assert prepended.asns() == [65000, 65000, 7]
        assert route.asns() == [7]  # original untouched

    def test_prepend_empty_is_noop(self):
        route = BgpRoute.build("10.0.0.0/8", as_path=[7])
        assert route.prepend([]) is route

    def test_with_updates(self):
        route = BgpRoute.build("10.0.0.0/8")
        updated = route.with_updates(metric=99, tag=5)
        assert updated.metric == 99 and updated.tag == 5
        assert route.metric == 0

    def test_render_matches_paper_format(self):
        route = BgpRoute.build(
            "100.0.0.0/16",
            as_path=[32],
            communities=["300:3"],
        )
        text = route.render()
        assert text.splitlines() == [
            "Network: 100.0.0.0/16",
            'AS Path: [{ "asns": [32], "confederation": false }]',
            'Communities: ["300:3"]',
            "Local Preference: 100",
            "Metric: 0",
            "Next Hop IP: 0.0.0.1",
            "Tag: 0",
            "Weight: 0",
        ]

    def test_render_confederation_true(self):
        route = BgpRoute(
            network=BgpRoute.build("10.0.0.0/8").network,
            as_path=(AsPathSegment((1,), confederation=True),),
        )
        assert '"confederation": true' in route.render()

    def test_hashable_and_equal(self):
        a = BgpRoute.build("10.0.0.0/8", communities=["1:1"])
        b = BgpRoute.build("10.0.0.0/8", communities=["1:1"])
        assert a == b
        assert hash(a) == hash(b)


class TestPacket:
    def test_build_and_defaults(self):
        packet = Packet.build("1.2.3.4", "5.6.7.8")
        assert packet.protocol == PROTOCOL_NUMBERS["tcp"]
        assert packet.has_ports()

    def test_validation(self):
        with pytest.raises(ValueError):
            Packet.build("1.2.3.4", "5.6.7.8", protocol=300)
        with pytest.raises(ValueError):
            Packet.build("1.2.3.4", "5.6.7.8", src_port=70000)
        with pytest.raises(ValueError):
            Packet.build("1.2.3.4", "5.6.7.8", dscp=70)

    def test_established_requires_tcp(self):
        with pytest.raises(ValueError):
            Packet.build("1.2.3.4", "5.6.7.8", protocol=17, tcp_established=True)
        packet = Packet.build("1.2.3.4", "5.6.7.8", tcp_established=True)
        assert packet.tcp_established

    def test_protocol_names(self):
        assert Packet.build("1.1.1.1", "2.2.2.2", protocol=17).protocol_name() == "udp"
        assert Packet.build("1.1.1.1", "2.2.2.2", protocol=142).protocol_name() == "142"

    def test_render_tcp_includes_ports_and_flag(self):
        packet = Packet.build(
            "1.1.1.1", "2.2.2.2", dst_port=443, tcp_established=True
        )
        text = packet.render()
        assert "Destination Port: 443" in text
        assert "TCP Established: true" in text

    def test_render_icmp_omits_ports(self):
        packet = Packet.build("1.1.1.1", "2.2.2.2", protocol=1)
        text = packet.render()
        assert "Port" not in text

    def test_render_dscp_when_set(self):
        packet = Packet.build("1.1.1.1", "2.2.2.2", dscp=46)
        assert "DSCP: 46" in packet.render()
