"""Tests for admission control and the service lifecycle."""

import threading

import pytest

from repro.llm.client import LLMClient
from repro.llm.simulated import SimulatedLLM
from repro.serve import (
    AdmissionError,
    ClarifyService,
    ServeRequest,
    SessionManager,
)

INTENT = (
    "Write a route-map stanza that permits routes with local-preference 300."
)


class GatedLLM(LLMClient):
    """Delegates to the simulated LLM, but only once ``gate`` is set.

    ``entered`` fires on the first upstream call, letting a test wait
    until a worker is genuinely busy before probing the queue.
    """

    def __init__(self) -> None:
        self._inner = SimulatedLLM()
        self.gate = threading.Event()
        self.entered = threading.Event()

    def complete(self, system: str, prompt: str) -> str:
        self.entered.set()
        assert self.gate.wait(timeout=60), "test never opened the gate"
        return self._inner.complete(system, prompt)


def _open_sessions(manager, count):
    for idx in range(count):
        manager.open(f"s{idx}")


class TestAdmissionControl:
    def test_queue_full_rejects_with_retry_after(self):
        llm = GatedLLM()
        manager = SessionManager(llm=llm)
        _open_sessions(manager, 3)
        with ClarifyService(
            manager, workers=1, queue_limit=8, high_water=2
        ) as service:
            first = service.submit(
                ServeRequest(session="s0", intent=INTENT, target="OUT")
            )
            assert llm.entered.wait(timeout=60)
            second = service.submit(
                ServeRequest(session="s1", intent=INTENT, target="OUT")
            )
            # Backlog is now at the high-water mark: reject.
            with pytest.raises(AdmissionError) as excinfo:
                service.submit(
                    ServeRequest(session="s2", intent=INTENT, target="OUT")
                )
            assert excinfo.value.retry_after_s > 0
            assert excinfo.value.high_water == 2
            assert service.rejected == 1
            llm.gate.set()
            assert first.wait(60).outcome == "applied"
            assert second.wait(60).outcome == "applied"
        # Once drained the backlog is empty again.
        assert service.depth() == 0

    def test_call_maps_rejection_to_outcome(self):
        llm = GatedLLM()
        manager = SessionManager(llm=llm)
        _open_sessions(manager, 2)
        with ClarifyService(
            manager, workers=1, queue_limit=4, high_water=1
        ) as service:
            ticket = service.submit(
                ServeRequest(session="s0", intent=INTENT, target="OUT")
            )
            assert llm.entered.wait(timeout=60)
            response = service.call(
                ServeRequest(session="s1", intent=INTENT, target="OUT")
            )
            assert response.outcome == "rejected"
            assert response.retry_after_s > 0
            assert not response.ok
            llm.gate.set()
            assert ticket.wait(60) is not None

    def test_unknown_session_raises_key_error(self):
        manager = SessionManager()
        with ClarifyService(manager, workers=1) as service:
            with pytest.raises(KeyError):
                service.submit(
                    ServeRequest(session="ghost", intent=INTENT, target="OUT")
                )

    def test_submit_after_stop_raises(self):
        manager = SessionManager()
        manager.open("s0")
        service = ClarifyService(manager, workers=1)
        service.start()
        service.stop()
        with pytest.raises(RuntimeError):
            service.submit(
                ServeRequest(session="s0", intent=INTENT, target="OUT")
            )

    def test_stop_drains_pending_work(self):
        manager = SessionManager()
        _open_sessions(manager, 4)
        service = ClarifyService(manager, workers=2)
        service.start()
        tickets = [
            service.submit(
                ServeRequest(session=f"s{i}", intent=INTENT, target="OUT")
            )
            for i in range(4)
        ]
        service.stop()
        for ticket in tickets:
            response = ticket.wait(0)
            assert response is not None and response.outcome == "applied"

    def test_constructor_validation(self):
        manager = SessionManager()
        with pytest.raises(ValueError):
            ClarifyService(manager, workers=0)
        with pytest.raises(ValueError):
            ClarifyService(manager, queue_limit=0)
        with pytest.raises(ValueError):
            ClarifyService(manager, queue_limit=4, high_water=5)

    def test_per_session_fifo_under_pool(self):
        """Requests to one session run in submission order even with
        many workers racing."""
        manager = SessionManager()
        manager.open("s0", config_text="")
        with ClarifyService(manager, workers=4) as service:
            tickets = [
                service.submit(
                    ServeRequest(
                        session="s0",
                        intent=(
                            "Write a route-map stanza that denies routes "
                            f"originating from AS {asn}."
                        ),
                        target="OUT",
                    )
                )
                for asn in (11, 22, 33)
            ]
            responses = [t.wait(60) for t in tickets]
        assert [r.seq for r in responses] == [0, 1, 2]
        assert all(r.outcome == "applied" for r in responses)
        # Three stanzas landed; the store saw them in submission order.
        rm = manager.get("s0").session.store.route_map("OUT")
        assert len(rm.stanzas) == 3
