"""Deadline behaviour at the serving layer.

The fine-grained budget mechanics (fake clocks, mid-binary-search
expiry, retry-loop punts) are covered in ``tests/core/test_budget.py``;
these tests check the service's outcome mapping: a deadline is a
*graceful outcome*, never an unhandled exception, and never a mutated
configuration.
"""

from repro.serve import ClarifyService, ServeRequest, SessionManager
from repro.serve.loadgen import CAMPUS_CONFIG

INTENT = (
    "Write a route-map stanza that permits routes with local-preference 300."
)


class TestServeDeadlines:
    def test_microscopic_deadline_resolves_to_deadline_outcome(self):
        manager = SessionManager()
        managed = manager.open("alice", config_text=CAMPUS_CONFIG)
        before = managed.config_sha256()
        with ClarifyService(manager, workers=1) as service:
            response = service.call(
                ServeRequest(
                    session="alice",
                    intent=INTENT,
                    target="ISP_OUT",
                    deadline_s=1e-9,
                )
            )
        assert response.outcome == "deadline"
        assert response.detail
        # Degraded gracefully: the configuration is untouched and its
        # hash is reported so the client can see nothing was applied.
        assert managed.config_sha256() == before
        assert response.config_sha256 == before

    def test_deadline_session_remains_usable(self):
        manager = SessionManager()
        manager.open("alice", config_text=CAMPUS_CONFIG)
        with ClarifyService(manager, workers=1) as service:
            expired = service.call(
                ServeRequest(
                    session="alice",
                    intent=INTENT,
                    target="ISP_OUT",
                    deadline_s=1e-9,
                )
            )
            retried = service.call(
                ServeRequest(session="alice", intent=INTENT, target="ISP_OUT")
            )
        assert expired.outcome == "deadline"
        assert retried.outcome == "applied"
        assert retried.seq == expired.seq + 1

    def test_generous_deadline_applies_normally(self):
        manager = SessionManager()
        manager.open("alice", config_text=CAMPUS_CONFIG)
        with ClarifyService(manager, workers=1) as service:
            response = service.call(
                ServeRequest(
                    session="alice",
                    intent=INTENT,
                    target="ISP_OUT",
                    deadline_s=300.0,
                )
            )
        assert response.outcome == "applied"
        assert response.position is not None
