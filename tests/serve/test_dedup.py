"""Tests for in-flight LLM deduplication (SingleFlight + DedupClient)."""

import threading

import pytest

from repro.llm.client import LLMClient
from repro.llm.dedup import DedupClient
from repro.perf.cache import SingleFlight


class CountingBlockingLLM(LLMClient):
    """Counts upstream calls; optionally blocks them on a gate."""

    def __init__(self, gated: bool = False) -> None:
        self.calls = 0
        self._lock = threading.Lock()
        self.gate = threading.Event()
        if not gated:
            self.gate.set()
        self.entered = threading.Event()

    def complete(self, system: str, prompt: str) -> str:
        with self._lock:
            self.calls += 1
        self.entered.set()
        assert self.gate.wait(timeout=60), "test never opened the gate"
        return f"echo:{system}:{prompt}"


class TestSingleFlight:
    def test_sequential_calls_each_compute(self):
        flight = SingleFlight("t")
        seen = []
        assert flight.do("k", lambda: seen.append(1) or "a") == "a"
        assert flight.do("k", lambda: seen.append(2) or "b") == "b"
        assert len(seen) == 2
        assert flight.leaders == 2
        assert flight.followers == 0

    def test_leader_exception_propagates_to_followers(self):
        flight = SingleFlight("t")
        entered = threading.Event()
        release = threading.Event()

        def boom():
            entered.set()
            assert release.wait(timeout=60)
            raise RuntimeError("upstream exploded")

        results = []

        def leader():
            with pytest.raises(RuntimeError):
                flight.do("k", boom)

        def follower():
            try:
                flight.do("k", lambda: "never")
            except RuntimeError as exc:
                results.append(str(exc))

        t1 = threading.Thread(target=leader)
        t1.start()
        assert entered.wait(timeout=60)
        t2 = threading.Thread(target=follower)
        t2.start()
        while flight.in_flight() and flight.followers == 0:
            pass  # wait for the follower to attach
        release.set()
        t1.join()
        t2.join()
        assert results == ["upstream exploded"]


class TestDedupClient:
    def test_identical_in_flight_requests_fan_out_one_call(self):
        upstream = CountingBlockingLLM(gated=True)
        client = DedupClient(upstream)
        fanout = 6
        results = []
        results_lock = threading.Lock()

        def call():
            response = client.complete("sys", "same prompt")
            with results_lock:
                results.append(response)

        threads = [threading.Thread(target=call) for _ in range(fanout)]
        for thread in threads:
            thread.start()
        assert upstream.entered.wait(timeout=60)
        # Wait until every non-leader has attached to the in-flight call;
        # only then may the leader finish (otherwise a late arrival would
        # find the flight already landed and lead its own).
        while client.coalesced < fanout - 1:
            pass
        upstream.gate.set()
        for thread in threads:
            thread.join()
        assert upstream.calls == 1
        assert client.upstream_calls == 1
        assert client.coalesced == fanout - 1
        assert results == ["echo:sys:same prompt"] * fanout

    def test_distinct_prompts_do_not_coalesce(self):
        upstream = CountingBlockingLLM()
        client = DedupClient(upstream)
        assert client.complete("sys", "a") == "echo:sys:a"
        assert client.complete("sys", "b") == "echo:sys:b"
        assert upstream.calls == 2
        assert client.coalesced == 0

    def test_no_memo_by_default(self):
        upstream = CountingBlockingLLM()
        client = DedupClient(upstream)
        client.complete("sys", "p")
        client.complete("sys", "p")
        # Sequential identical calls both hit upstream: dedup is
        # in-flight-only so chaos-corrupted responses are never pinned.
        assert upstream.calls == 2
        assert client.memo_hits == 0

    def test_memoize_opt_in(self):
        upstream = CountingBlockingLLM()
        client = DedupClient(upstream, memoize=True)
        first = client.complete("sys", "p")
        second = client.complete("sys", "p")
        assert first == second
        assert upstream.calls == 1
        assert client.memo_hits == 1

    def test_stats_snapshot(self):
        upstream = CountingBlockingLLM()
        client = DedupClient(upstream)
        client.complete("sys", "p")
        stats = client.stats()
        assert stats == {
            "requests": 1,
            "upstream_calls": 1,
            "coalesced": 0,
            "memo_hits": 0,
        }
