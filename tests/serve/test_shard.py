"""Tests for the consistent-hash shard router and crash recovery."""

import json
import os
import subprocess
import sys

import pytest

from repro.serve.loadgen import generate_workload, run_loadgen
from repro.serve.shard import (
    HashRing,
    ShardedCluster,
    _wire_outcome_key,
    run_sharded_loadgen,
)


class TestHashRing:
    def test_deterministic_across_instances(self):
        ids = [s.session_id for s in generate_workload(16, 1, 2025)]
        first = HashRing(4).assignments(ids)
        second = HashRing(4).assignments(ids)
        assert first == second

    def test_spreads_the_loadgen_workload(self):
        ids = [s.session_id for s in generate_workload(16, 1, 2025)]
        placement = HashRing(2).assignments(ids)
        assert set(placement.values()) == {0, 1}

    def test_resize_moves_only_some_sessions(self):
        ids = [s.session_id for s in generate_workload(32, 1, 2025)]
        two = HashRing(2).assignments(ids)
        three = HashRing(3).assignments(ids)
        moved = sum(1 for sid in ids if two[sid] != three[sid])
        # Consistent hashing: growing the ring must not reshuffle
        # everything (a modulo placement would move ~2/3 of them).
        assert 0 < moved < len(ids)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)


class TestShardedCampaign:
    def test_sharded_matches_serial(self):
        sharded = run_sharded_loadgen(
            sessions=4, requests_per_session=2, shards=2,
            workers_per_shard=2, seed=2025,
        )
        serial = run_loadgen(4, 2, workers=1, seed=2025, telemetry=False)
        assert sharded.unresolved == 0
        assert sharded.outcomes.get("internal-error", 0) == 0
        assert sharded.fingerprint == serial.fingerprint
        assert sum(sharded.placement.values()) == 4

    def test_kill_and_restore_matches_serial(self):
        chaos = run_sharded_loadgen(
            sessions=4, requests_per_session=2, shards=2,
            workers_per_shard=2, seed=2025, kill_and_restart=True,
        )
        serial = run_loadgen(4, 2, workers=1, seed=2025, telemetry=False)
        assert chaos.kills == 1
        assert chaos.restarts == 1
        assert chaos.restored_sessions >= 1
        assert chaos.unresolved == 0
        assert chaos.fingerprint == serial.fingerprint


class TestCrashRecoveryProtocol:
    def test_resent_seq_is_answered_from_the_journal(self, tmp_path):
        workload = generate_workload(4, 1, 2025)
        cluster = ShardedCluster(
            shards=2, workers_per_shard=2,
            store_root=str(tmp_path / "cluster"),
        )
        with cluster:
            calls = {}
            for spec in workload:
                cluster.open(spec.session_id, spec.config_text)
            for spec in workload:
                calls[spec.session_id] = cluster.submit(
                    spec.session_id, spec.intents[0], spec.target
                )
            originals = {
                sid: call.wait(60.0) for sid, call in calls.items()
            }
            assert all(p is not None for p in originals.values())

            victim_sid = workload[0].session_id
            shard = cluster.shard_of(victim_sid)
            cluster.kill_shard(shard)
            restored = cluster.restart_shard(shard)
            assert restored >= 1

            # Re-send an already-resolved seq directly: the shard must
            # answer from its journal, not run the cycle again.
            resent = cluster.procs[shard].send(
                {
                    "op": "request",
                    "session": victim_sid,
                    "intent": workload[0].intents[0],
                    "target": workload[0].target,
                    "deadline_s": None,
                    "seq": 0,
                }
            ).wait(60.0)
            assert resent is not None
            assert resent.get("recovered") is True
            assert _wire_outcome_key(resent) == _wire_outcome_key(
                originals[victim_sid]
            )

    def test_idempotent_open_after_restore(self, tmp_path):
        workload = generate_workload(2, 1, 2025)
        cluster = ShardedCluster(
            shards=1, workers_per_shard=2,
            store_root=str(tmp_path / "cluster"),
        )
        with cluster:
            for spec in workload:
                cluster.open(spec.session_id, spec.config_text)
            cluster.kill_shard(0)
            cluster.restart_shard(0)
            # The router's resend already re-opened nothing (opens were
            # answered pre-kill); a fresh idempotent open must succeed
            # against the restored session instead of failing duplicate.
            payload = cluster.open(workload[0].session_id)
            assert payload.get("recovered") is True


class TestRouterSurface:
    """Drive ``clarify serve --shards N`` over a real stdin/stdout pipe.

    The library tests above talk to :class:`ShardedCluster` directly;
    this one exercises the CLI router itself — the tag swap between
    client tags and shard wire tags happens only there.
    """

    def test_jsonl_round_trip_with_chaos_ops(self, tmp_path):
        spec = generate_workload(1, 1, 2025)[0]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [env.get("PYTHONPATH"), "src"])
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--shards", "2", "--workers", "2",
                "--store-dir", str(tmp_path / "router"),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        try:

            def send(**cmd):
                proc.stdin.write(json.dumps(cmd) + "\n")
                proc.stdin.flush()
                return json.loads(proc.stdout.readline())

            opened = send(
                op="open", tag="t-open",
                session=spec.session_id, config=spec.config_text,
            )
            assert opened["ok"] is True
            assert opened["tag"] == "t-open"

            first = send(
                op="request", tag="t-req",
                session=spec.session_id,
                intent=spec.intents[0], target=spec.target,
            )
            assert first["ok"] is True
            assert first["tag"] == "t-req"
            assert first["outcome"] == "applied"

            killed = send(op="kill-shard", tag="t-kill", shard=0)
            assert killed["ok"] is True
            restarted = send(op="restart-shard", tag="t-up", shard=0)
            assert restarted["ok"] is True

            stats = send(op="stats", tag="t-stats")
            assert stats["ok"] is True
            assert stats["kills"] == 1

            assert send(op="quit", tag="t-quit")["ok"] is True
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
