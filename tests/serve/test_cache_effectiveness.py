"""The durable-cache serving differential: same outcomes, fewer calls."""

import io
import json

import pytest

from repro.cli import main
from repro.llm import BackendRouter, SimulatedLLM
from repro.serve import (
    build_llm_stack,
    check_cache_effectiveness,
    run_loadgen,
)


class TestBuildLlmStack:
    def test_default_stack_is_simulated_dedup(self):
        stack = build_llm_stack()
        assert stack.backend == "simulated"
        assert stack.cached is None
        assert stack.batcher is None
        assert stack.faulty is None
        assert stack.router is None
        assert stack.upstream_calls == 0

    def test_cache_layer_counts_upstream(self, tmp_path):
        stack = build_llm_stack(cache_dir=str(tmp_path))
        system = "TASK: route-map-synth\nWrite one stanza."
        prompt = (
            "Write a route-map stanza that permits routes with "
            "local-preference 300."
        )
        first = stack.client.complete(system, prompt)
        second = stack.client.complete(system, prompt)
        assert first == second
        assert stack.upstream_calls == 1  # second call served from disk
        assert stack.cached.stats()["hits"] == 1

    def test_chaos_poisons_purity_and_bypasses_cache(self, tmp_path):
        stack = build_llm_stack(cache_dir=str(tmp_path), fault_rate=0.5)
        assert stack.faulty is not None
        assert stack.cached is not None
        assert stack.client.cache_safe is False

    def test_router_chain_is_exposed(self):
        stack = build_llm_stack(backend="remote,simulated", api_key="k")
        assert isinstance(stack.router, BackendRouter)
        assert stack.backend == "remote,simulated"

    def test_custom_factory_wins(self):
        stack = build_llm_stack(llm_factory=SimulatedLLM)
        assert stack.backend == "custom"


class TestCachedCampaigns:
    def test_warm_cache_serves_the_whole_campaign(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_loadgen(
            sessions=4, requests_per_session=2, workers=2, seed=2025,
            cache_dir=cache_dir,
        )
        warm = run_loadgen(
            sessions=4, requests_per_session=2, workers=2, seed=2025,
            cache_dir=cache_dir,
        )
        assert cold.fingerprint == warm.fingerprint
        assert cold.upstream_llm_calls > 0
        assert warm.upstream_llm_calls == 0
        assert warm.cache["misses"] == 0
        assert warm.cache["writes"] == 0

    def test_uncached_report_has_no_cache_section(self):
        report = run_loadgen(
            sessions=2, requests_per_session=1, workers=1, seed=1
        )
        assert report.cache == {}
        assert report.backend == "simulated"

    def test_chaos_campaign_never_writes_the_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        report = run_loadgen(
            sessions=4,
            requests_per_session=2,
            workers=2,
            seed=2025,
            fault_rate=0.4,
            cache_dir=str(cache_dir),
        )
        assert report.cache["writes"] == 0
        assert report.cache["hits"] == 0
        assert report.cache["bypassed"] > 0
        assert not list(cache_dir.glob("*.json"))

    def test_check_cache_effectiveness_passes(self, tmp_path):
        result = check_cache_effectiveness(
            4, 2, workers=2, seed=2025, cache_dir=str(tmp_path / "cache")
        )
        assert result.identical
        assert result.warm.upstream_llm_calls < result.cold.upstream_llm_calls
        assert result.warm.upstream_llm_calls == 0
        payload = result.to_dict()
        assert payload["identical_outcomes"] is True
        assert payload["warm_upstream_calls"] == 0

    def test_check_refuses_chaos_and_deadlines(self, tmp_path):
        with pytest.raises(ValueError, match="fault-free"):
            check_cache_effectiveness(
                2, 1, workers=1, seed=1,
                cache_dir=str(tmp_path), fault_rate=0.2,
            )
        with pytest.raises(ValueError, match="deadline-free"):
            check_cache_effectiveness(
                2, 1, workers=1, seed=1,
                cache_dir=str(tmp_path), deadline_s=5.0,
            )


class TestCli:
    def test_check_cache_effectiveness_exit_zero(self, capsys, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        code = main(
            [
                "loadgen",
                "--sessions", "4",
                "--workers", "2",
                "--seed", "2025",
                "--cache-dir", str(tmp_path / "cache"),
                "--check-cache-effectiveness",
                "--output", str(out),
            ]
        )
        assert code == 0
        assert "cache effectiveness OK" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        section = payload["cache_effectiveness"]
        assert section["identical_outcomes"] is True
        assert section["warm_upstream_calls"] < section["cold_upstream_calls"]

    def test_effectiveness_with_faults_is_refused(self, capsys):
        code = main(
            [
                "loadgen",
                "--sessions", "2",
                "--check-cache-effectiveness",
                "--fault-rate", "0.2",
            ]
        )
        assert code == 1
        assert "fault-free" in capsys.readouterr().err

    def test_both_gates_compose(self, capsys, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        code = main(
            [
                "loadgen",
                "--sessions", "4",
                "--workers", "2",
                "--seed", "2025",
                "--cache-dir", str(tmp_path / "cache"),
                "--check-serial-identity",
                "--check-cache-effectiveness",
                "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "serial identity OK" in captured
        assert "cache effectiveness OK" in captured
        payload = json.loads(out.read_text())
        assert payload["identity"] is True
        assert "cache_effectiveness" in payload

    def test_serve_cache_dir_flag(self, monkeypatch, capsys, tmp_path):
        lines = [
            {"op": "open", "session": "s1", "config": ""},
            {
                "op": "request",
                "session": "s1",
                "intent": (
                    "Write a route-map stanza that permits routes with "
                    "local-preference 300."
                ),
                "target": "OUT",
            },
            {"op": "stats"},
            {"op": "quit"},
        ]
        stdin = io.StringIO(
            "".join(json.dumps(line) + "\n" for line in lines)
        )
        monkeypatch.setattr("sys.stdin", stdin)
        code = main(
            ["serve", "--workers", "2", "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        replies = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        stats = next(r for r in replies if r.get("op") == "stats")
        assert stats["backend"] == "simulated"
        assert stats["cache"]["writes"] > 0
        assert list(tmp_path.glob("*.json"))  # entries persisted to disk
