"""Tests for the serving layer's per-session state owner."""

import os

import pytest

from repro.obs.journal import read_journal
from repro.serve import ClarifyService, ServeRequest, SessionManager
from repro.serve.loadgen import CAMPUS_CONFIG

INTENT = (
    "Write a route-map stanza that permits routes with local-preference 300."
)


class TestSessionManager:
    def test_open_get_close(self):
        manager = SessionManager()
        managed = manager.open("alice", config_text=CAMPUS_CONFIG)
        assert manager.get("alice") is managed
        assert "alice" in manager
        assert len(manager) == 1
        assert manager.ids() == ["alice"]
        assert manager.close("alice")
        assert manager.get("alice") is None
        assert not manager.close("alice")

    def test_duplicate_open_rejected(self):
        manager = SessionManager()
        manager.open("alice")
        with pytest.raises(ValueError, match="already open"):
            manager.open("alice")

    def test_sessions_are_isolated(self):
        manager = SessionManager()
        alice = manager.open("alice", config_text=CAMPUS_CONFIG)
        bob = manager.open("bob", config_text="")
        assert alice.session.store is not bob.session.store
        assert alice.config_sha256() != bob.config_sha256()

    def test_numeric_session_ids_follow_insertion_order(self):
        manager = SessionManager()
        first = manager.open("a")
        second = manager.open("b")
        assert second.session.session_id == first.session.session_id + 1

    def test_config_hash_changes_after_request(self):
        manager = SessionManager()
        managed = manager.open("alice", config_text=CAMPUS_CONFIG)
        before = managed.config_sha256()
        with ClarifyService(manager, workers=1) as service:
            response = service.call(
                ServeRequest(session="alice", intent=INTENT, target="ISP_OUT")
            )
        assert response.outcome == "applied"
        assert managed.config_sha256() != before
        assert response.config_sha256 == managed.config_sha256()

    def test_memory_journals_capture_per_session_events(self):
        manager = SessionManager(memory_journals=True)
        alice = manager.open("alice", config_text=CAMPUS_CONFIG)
        bob = manager.open("bob", config_text=CAMPUS_CONFIG)
        with ClarifyService(manager, workers=2) as service:
            a = service.submit(
                ServeRequest(session="alice", intent=INTENT, target="ISP_OUT")
            )
            b = service.submit(
                ServeRequest(session="bob", intent=INTENT, target="ISP_OUT")
            )
            assert a.wait(60) is not None
            assert b.wait(60) is not None
        # Each journal holds exactly one session's cycle, not an interleaving.
        for managed in (alice, bob):
            types = [e.type for e in managed.journal.events]
            assert types.count("cycle.start") == 1
            assert types.count("cycle.end") == 1

    def test_journal_dir_writes_one_file_per_session(self, tmp_path):
        manager = SessionManager(journal_dir=str(tmp_path))
        manager.open("net/alice", config_text=CAMPUS_CONFIG)
        with ClarifyService(manager, workers=1) as service:
            service.call(
                ServeRequest(
                    session="net/alice", intent=INTENT, target="ISP_OUT"
                )
            )
        manager.close_all()
        files = os.listdir(tmp_path)
        assert files == ["net_alice.journal.jsonl"]
        events = read_journal(str(tmp_path / files[0]))
        assert events[0].type == "journal.open"
        assert any(e.type == "cycle.end" for e in events)
