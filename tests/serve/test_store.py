"""Tests for durable session stores and journal-replay restore."""

import dataclasses
import os

import pytest

from repro.obs.journal import loads_journal, read_journal
from repro.serve import ClarifyService, ServeRequest, SessionManager
from repro.serve.loadgen import CAMPUS_CONFIG, generate_workload
from repro.serve.store import (
    DurableSessionStore,
    InMemorySessionStore,
    RestoreError,
    SessionRecord,
    SessionSnapshot,
    complete_prefix,
    rebuild_session,
    responses_from_events,
)


def drive_campaign(manager, workload, rounds=None):
    """Run each workload session's intents through a 1-worker service."""
    responses = []
    with ClarifyService(manager, workers=1) as service:
        for spec in workload:
            if spec.session_id not in manager:
                manager.open(spec.session_id, spec.config_text)
            intents = spec.intents if rounds is None else spec.intents[:rounds]
            for intent in intents:
                responses.append(
                    service.call(
                        ServeRequest(
                            session=spec.session_id,
                            intent=intent,
                            target=spec.target,
                        )
                    )
                )
    return responses


class TestInMemoryStore:
    def test_snapshot_restore_round_trip(self):
        store = InMemorySessionStore()
        manager = SessionManager(session_store=store)
        workload = generate_workload(3, 2, 2025)
        live = drive_campaign(manager, workload)
        assert all(r.outcome == "applied" for r in live)

        fresh = SessionManager(session_store=store)
        restored_ids = fresh.restore_all()
        assert restored_ids == [spec.session_id for spec in workload]
        for spec in workload:
            original = manager.get(spec.session_id)
            rebuilt = fresh.get(spec.session_id)
            assert rebuilt.config_sha256() == original.config_sha256()
            assert rebuilt.submitted_seq == original.submitted_seq
            assert rebuilt.completed == original.completed

    def test_replayed_responses_match_live_outcome_keys(self):
        store = InMemorySessionStore()
        manager = SessionManager(session_store=store)
        workload = generate_workload(2, 2, 7)
        live = drive_campaign(manager, workload)

        fresh = SessionManager(session_store=store)
        fresh.restore_all()
        by_key = {(r.session, r.seq): r for r in live}
        for (session_id, seq), response in by_key.items():
            replayed = fresh.get(session_id).replayed_response(seq)
            assert replayed is not None
            assert replayed.outcome_key() == response.outcome_key()

    def test_restored_session_serves_identical_future_requests(self):
        store = InMemorySessionStore()
        manager = SessionManager(session_store=store)
        workload = generate_workload(2, 3, 11)
        drive_campaign(manager, workload, rounds=2)

        fresh = SessionManager(session_store=store)
        fresh.restore_all()
        continued = drive_campaign(fresh, workload)  # opens skipped
        uncrashed = drive_campaign(manager, workload)
        assert [r.outcome_key() for r in continued] == [
            r.outcome_key() for r in uncrashed
        ]

    def test_restore_before_any_cycle_uses_the_record(self):
        store = InMemorySessionStore()
        manager = SessionManager(session_store=store)
        manager.open("alice", CAMPUS_CONFIG)

        fresh = SessionManager(session_store=store)
        assert fresh.restore_all() == ["alice"]
        assert (
            fresh.get("alice").config_sha256()
            == manager.get("alice").config_sha256()
        )
        assert fresh.get("alice").submitted_seq == 0

    def test_close_tombstones_the_session(self):
        store = InMemorySessionStore()
        manager = SessionManager(session_store=store)
        manager.open("alice", CAMPUS_CONFIG)
        manager.open("bob", CAMPUS_CONFIG)
        manager.close("alice")
        assert [r.session_id for r in store.records()] == ["bob"]


class TestCompletePrefix:
    def test_truncates_a_half_recorded_cycle(self):
        store = InMemorySessionStore()
        manager = SessionManager(session_store=store)
        workload = generate_workload(1, 1, 2025)
        drive_campaign(manager, workload)
        session_id = workload[0].session_id
        events = list(store._journals[session_id].events)
        # Orphan a cycle: a start (and an llm call) with no end.
        torn = events + [
            dataclasses.replace(events[1], seq=len(events)),
        ]
        prefix, dropped = complete_prefix(torn)
        assert dropped == 1
        assert prefix == events
        assert prefix[-1].type in ("cycle.end", "cycle.error")

    def test_empty_and_header_only(self):
        assert complete_prefix([]) == ([], 0)
        store = InMemorySessionStore()
        journal = store.open(SessionRecord(session_id="a"))
        prefix, dropped = complete_prefix(list(journal.events))
        assert [e.type for e in prefix] == ["journal.open"]
        assert dropped == 0


class TestRebuildSession:
    def _snapshot(self, store, session_id):
        return store.snapshot(session_id)

    def test_rebuild_verifies_config_hash(self):
        store = InMemorySessionStore()
        manager = SessionManager(session_store=store)
        workload = generate_workload(1, 2, 2025)
        drive_campaign(manager, workload)
        session_id = workload[0].session_id
        snapshot = self._snapshot(store, session_id)
        rebuilt = rebuild_session(snapshot)
        live = manager.get(session_id)
        assert rebuilt.completed == 2
        assert (
            rebuilt.session.store is not live.session.store
        )  # a fresh store, not a shared reference
        from repro.config import render_config

        assert render_config(rebuilt.session.store) == render_config(
            live.session.store
        )

    def test_tampered_journal_raises_restore_error(self):
        store = InMemorySessionStore()
        manager = SessionManager(session_store=store)
        workload = generate_workload(1, 1, 2025)
        drive_campaign(manager, workload)
        session_id = workload[0].session_id
        snapshot = self._snapshot(store, session_id)
        tampered = []
        for event in snapshot.events:
            if event.type == "cycle.end":
                data = dict(event.data)
                data["config_sha256"] = "0" * 64
                event = dataclasses.replace(event, data=data)
            tampered.append(event)
        with pytest.raises(RestoreError):
            rebuild_session(
                SessionSnapshot(record=snapshot.record, events=tampered)
            )

    def test_responses_from_events_reconstructs_failure_cycles(self):
        from repro.obs.journal import JournalRecorder

        recorder = JournalRecorder()
        recorder.event(
            "cycle.start",
            op="request",
            intent="x",
            target="ISP_OUT",
            config_sha256="abc123",
        )
        recorder.event(
            "cycle.error",
            error="SynthesisPunt",
            message="could not synthesize",
            attempts=2,
        )
        recorder.event(
            "cycle.start",
            op="request",
            intent="y",
            target="ISP_OUT",
            config_sha256="abc123",
        )
        recorder.event(
            "cycle.error",
            error="DeadlineExceeded",
            message="budget spent",
            questions=3,
        )
        rebuilt = responses_from_events("alice", recorder.events)
        assert [r.outcome for r in rebuilt] == [
            "needs-clarification",
            "deadline",
        ]
        assert rebuilt[0].attempts == 2
        assert rebuilt[0].seq == 0
        # Failed cycles never mutate the store: the response carries the
        # *start* hash.
        assert rebuilt[0].config_sha256 == "abc123"
        assert rebuilt[1].questions == 3
        assert rebuilt[1].seq == 1


class TestDurableStore:
    def test_round_trip_on_disk(self, tmp_path):
        root = str(tmp_path / "store")
        store = DurableSessionStore(root)
        manager = SessionManager(session_store=store)
        workload = generate_workload(2, 2, 2025)
        live = drive_campaign(manager, workload)

        # A brand-new store object: nothing shared with the writer.
        fresh = SessionManager(session_store=DurableSessionStore(root))
        assert fresh.restore_all() == [s.session_id for s in workload]
        for spec in workload:
            assert (
                fresh.get(spec.session_id).config_sha256()
                == manager.get(spec.session_id).config_sha256()
            )
        by_key = {(r.session, r.seq): r for r in live}
        for (session_id, seq), response in by_key.items():
            replayed = fresh.get(session_id).replayed_response(seq)
            assert replayed.outcome_key() == response.outcome_key()

    def test_torn_journal_tail_is_dropped(self, tmp_path):
        root = str(tmp_path / "store")
        store = DurableSessionStore(root)
        manager = SessionManager(session_store=store)
        workload = generate_workload(1, 1, 2025)
        drive_campaign(manager, workload)
        session_id = workload[0].session_id
        path = store.journal_path(session_id)
        with open(path, "a") as handle:
            handle.write('{"seq": 999, "type": "cycle.st')  # torn mid-write
        snapshot = DurableSessionStore(root).snapshot(session_id)
        assert snapshot.events[-1].type == "cycle.end"
        rebuilt = rebuild_session(snapshot)
        assert rebuilt.completed == 1

    def test_resume_rewrites_a_clean_journal(self, tmp_path):
        root = str(tmp_path / "store")
        store = DurableSessionStore(root)
        manager = SessionManager(session_store=store)
        workload = generate_workload(1, 1, 2025)
        drive_campaign(manager, workload)
        session_id = workload[0].session_id
        with open(store.journal_path(session_id), "a") as handle:
            handle.write("garbage that a crash left behind")

        fresh_store = DurableSessionStore(root)
        fresh = SessionManager(session_store=fresh_store)
        fresh.restore_all()
        events = read_journal(store.journal_path(session_id))
        assert [e.seq for e in events] == list(range(len(events)))
        assert events[-1].type == "cycle.end"

    def test_manifest_tombstone_survives_reopen(self, tmp_path):
        root = str(tmp_path / "store")
        store = DurableSessionStore(root)
        store.open(SessionRecord(session_id="alice"))
        store.open(SessionRecord(session_id="bob"))
        store.close("alice")
        reopened = DurableSessionStore(root)
        assert [r.session_id for r in reopened.records()] == ["bob"]

    def test_journal_files_are_valid_jsonl(self, tmp_path):
        root = str(tmp_path / "store")
        store = DurableSessionStore(root)
        manager = SessionManager(session_store=store)
        workload = generate_workload(1, 2, 3)
        drive_campaign(manager, workload)
        path = store.journal_path(workload[0].session_id)
        assert os.path.exists(path)
        with open(path) as handle:
            events = loads_journal(handle.read())
        assert events[0].type == "journal.open"
        assert sum(1 for e in events if e.type == "cycle.end") == 2
