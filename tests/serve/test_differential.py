"""The serial-vs-pooled differential suite.

The serving layer's core invariant: a pooled run of a seeded campaign
produces exactly the per-session outcomes of a serial run — concurrency
changes latency, never results.
"""

import pytest

from repro.llm.intents import parse_acl_intent, parse_route_map_intent
from repro.serve import check_serial_identity, generate_workload, run_loadgen


class TestWorkloadGeneration:
    def test_pure_function_of_seed(self):
        first = generate_workload(12, 3, seed=7)
        second = generate_workload(12, 3, seed=7)
        assert first == second

    def test_different_seeds_differ(self):
        assert generate_workload(12, 3, seed=7) != generate_workload(
            12, 3, seed=8
        )

    def test_mixes_campus_and_cloud(self):
        archetypes = {s.archetype for s in generate_workload(16, 2, seed=2025)}
        assert archetypes == {"campus", "cloud"}

    def test_every_intent_parses_under_the_grammar(self):
        for spec in generate_workload(24, 3, seed=2025):
            for intent in spec.intents:
                if spec.archetype == "campus":
                    parsed = parse_route_map_intent(intent)
                    assert parsed.action in ("permit", "deny")
                else:
                    parsed = parse_acl_intent(intent)
                    assert parsed.protocol == "tcp"

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_workload(0)
        with pytest.raises(ValueError):
            generate_workload(4, 0)


class TestSerialPooledIdentity:
    def test_identity_holds(self):
        serial, pooled = check_serial_identity(8, 2, workers=4, seed=2025)
        assert serial.fingerprint == pooled.fingerprint
        assert serial.outcomes == pooled.outcomes
        assert serial.workers == 1
        assert pooled.workers == 4

    def test_identity_holds_for_another_seed(self):
        serial, pooled = check_serial_identity(6, 2, workers=3, seed=99)
        assert serial.fingerprint == pooled.fingerprint

    def test_fingerprint_reproducible_across_runs(self):
        first = run_loadgen(sessions=6, requests_per_session=2, workers=2, seed=5)
        second = run_loadgen(sessions=6, requests_per_session=2, workers=2, seed=5)
        assert first.fingerprint == second.fingerprint

    def test_fingerprint_sensitive_to_seed(self):
        a = run_loadgen(sessions=6, requests_per_session=2, workers=2, seed=5)
        b = run_loadgen(sessions=6, requests_per_session=2, workers=2, seed=6)
        assert a.fingerprint != b.fingerprint
