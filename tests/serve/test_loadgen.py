"""Tests for the load generator, chaos mode, and the serve/loadgen CLI."""

import io
import json

from repro.cli import main
from repro.serve import run_loadgen

INTENT = (
    "Write a route-map stanza that permits routes with local-preference 300."
)


class TestRunLoadgen:
    def test_clean_campaign_applies_everything(self):
        report = run_loadgen(sessions=6, requests_per_session=2, workers=3, seed=2025)
        assert report.requests == 12
        assert report.outcomes == {"applied": 12}
        assert report.unresolved == 0
        assert report.throughput_rps > 0
        assert report.latency_quantiles["p50"] > 0
        assert report.counters["serve.requests"] == 12
        assert report.dedup["requests"] == report.counters["llm.dedup.requests"]

    def test_chaos_campaign_terminates_cleanly(self):
        report = run_loadgen(
            sessions=8,
            requests_per_session=2,
            workers=4,
            seed=2025,
            fault_rate=0.3,
        )
        # Liveness and containment: every ticket resolved, faults were
        # really injected, and nothing escaped as an internal error.
        assert report.unresolved == 0
        assert report.injected_faults > 0
        assert "internal-error" not in report.outcomes
        assert sum(report.outcomes.values()) == report.requests

    def test_tight_high_water_forces_retries_but_everything_lands(self):
        report = run_loadgen(
            sessions=6,
            requests_per_session=2,
            workers=2,
            seed=2025,
            queue_limit=2,
            high_water=2,
        )
        assert report.rejected_submissions > 0
        assert report.outcomes == {"applied": 12}

    def test_report_round_trips_through_json(self):
        report = run_loadgen(sessions=2, requests_per_session=1, workers=1, seed=1)
        decoded = json.loads(json.dumps(report.to_dict()))
        assert decoded["fingerprint"] == report.fingerprint

    def test_netwide_quality_axis(self):
        report = run_loadgen(
            sessions=3, requests_per_session=2, workers=2, seed=2025,
            netwide=True,
        )
        # Every request still lands; the gate ran once per insertion and
        # the analyzer's incremental cache was exercised.
        assert report.unresolved == 0
        assert report.netwide["lint.netwide_gate_checks"] == report.requests
        assert report.netwide["netwide.paths"] > 0
        assert report.netwide["netwide.paths.cached"] > 0

    def test_netwide_off_by_default(self):
        report = run_loadgen(sessions=2, requests_per_session=1, workers=1, seed=1)
        assert report.netwide == {}


class TestLoadgenCli:
    def test_check_serial_identity_exit_zero(self, capsys, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        code = main(
            [
                "loadgen",
                "--sessions", "6",
                "--workers", "3",
                "--seed", "2025",
                "--check-serial-identity",
                "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "serial identity OK" in captured.out
        payload = json.loads(out.read_text())
        assert payload["identity"] is True
        assert payload["loadgen"]["outcomes"]["applied"] == 12
        assert payload["serial"]["fingerprint"] == payload["loadgen"]["fingerprint"]

    def test_identity_with_faults_is_refused(self, capsys):
        code = main(
            [
                "loadgen",
                "--sessions", "2",
                "--check-serial-identity",
                "--fault-rate", "0.2",
            ]
        )
        assert code == 1
        assert "schedule-dependent" in capsys.readouterr().err

    def test_chaos_run_exit_zero(self, capsys):
        code = main(
            [
                "loadgen",
                "--sessions", "4",
                "--workers", "4",
                "--seed", "2025",
                "--fault-rate", "0.2",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["loadgen"]["fault_rate"] == 0.2
        assert "internal-error" not in payload["loadgen"]["outcomes"]


class TestServeCli:
    def _drive(self, monkeypatch, capsys, lines):
        stdin = io.StringIO("".join(json.dumps(line) + "\n" for line in lines))
        monkeypatch.setattr("sys.stdin", stdin)
        code = main(["serve", "--workers", "2"])
        out = capsys.readouterr().out
        return code, [json.loads(line) for line in out.splitlines()]

    def test_open_request_close_loop(self, monkeypatch, capsys):
        code, replies = self._drive(
            monkeypatch,
            capsys,
            [
                {"op": "open", "session": "s1", "config": ""},
                {
                    "op": "request",
                    "session": "s1",
                    "intent": INTENT,
                    "target": "OUT",
                },
                {"op": "stats"},
                {"op": "close", "session": "s1"},
                {"op": "quit"},
            ],
        )
        assert code == 0
        opened, applied, stats, closed, quit_ = replies
        assert opened["ok"] and opened["session"] == "s1"
        assert applied["outcome"] == "applied"
        assert applied["config_sha256"]
        assert stats["sessions"] == 1
        assert closed["ok"]
        assert quit_["op"] == "quit"

    def test_errors_are_replies_not_crashes(self, monkeypatch, capsys):
        code, replies = self._drive(
            monkeypatch,
            capsys,
            [
                {"op": "request", "session": "ghost", "intent": "x", "target": "y"},
                {"op": "nonsense"},
                {"op": "open", "session": "s1"},
                {"op": "open", "session": "s1"},
                {"op": "quit"},
            ],
        )
        assert code == 0
        unknown, bad_op, opened, duplicate, _ = replies
        assert not unknown["ok"] and "ghost" in unknown["error"]
        assert not bad_op["ok"]
        assert opened["ok"]
        assert not duplicate["ok"] and "already open" in duplicate["error"]
