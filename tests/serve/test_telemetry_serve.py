"""Serving-tier telemetry end to end: trace propagation through the
service, no survivorship bias, identity invariance, counter coverage."""

import threading

import pytest

from repro import obs
from repro.llm.client import LLMClient
from repro.llm.simulated import SimulatedLLM
from repro.obs import telemetry as tele
from repro.serve import (
    AdmissionError,
    ClarifyService,
    ServeRequest,
    SessionManager,
    run_loadgen,
)

INTENT = (
    "Write a route-map stanza that permits routes with local-preference 300."
)


@pytest.fixture(autouse=True)
def no_leftover_hub():
    yield
    tele.uninstall_hub()


class GatedLLM(LLMClient):
    """Delegates to the simulated LLM once ``gate`` opens."""

    def __init__(self) -> None:
        self._inner = SimulatedLLM()
        self.gate = threading.Event()
        self.entered = threading.Event()

    def complete(self, system: str, prompt: str) -> str:
        self.entered.set()
        assert self.gate.wait(timeout=60), "test never opened the gate"
        return self._inner.complete(system, prompt)


def serve_one(request, **service_kwargs):
    manager = SessionManager(llm=SimulatedLLM())
    manager.open(request.session)
    with ClarifyService(manager, workers=1, **service_kwargs) as service:
        return service.call(request, timeout=60)


class TestTracePropagation:
    def test_response_carries_fresh_trace_ids(self):
        response = serve_one(
            ServeRequest(session="s0", intent=INTENT, target="OUT")
        )
        assert response.outcome == "applied"
        assert response.trace_id
        assert response.request_id.startswith("req-")
        assert response.to_dict()["trace_id"] == response.trace_id

    def test_client_supplied_request_id_round_trips(self):
        response = serve_one(
            ServeRequest(
                session="s0",
                intent=INTENT,
                target="OUT",
                request_id="client-7",
            )
        )
        assert response.request_id == "client-7"
        assert response.to_dict()["request_id"] == "client-7"

    def test_trace_ids_never_enter_outcome_key(self):
        response = serve_one(
            ServeRequest(session="s0", intent=INTENT, target="OUT")
        )
        key = response.outcome_key()
        assert "trace_id" not in key and "request_id" not in key
        assert "latency_s" not in key and "queue_wait_s" not in key

    def test_wide_event_matches_response(self):
        with tele.hub_active() as hub:
            response = serve_one(
                ServeRequest(
                    session="s0",
                    intent=INTENT,
                    target="OUT",
                    request_id="wide-1",
                )
            )
        (event,) = hub.events
        assert event["trace_id"] == response.trace_id
        assert event["request_id"] == "wide-1"
        assert event["session_id"] == "s0"
        assert event["outcome"] == response.outcome
        assert event["seq"] == response.seq
        assert event["timings"]["latency_s"] > 0.0
        # Worker-side phases bucket under the propagated trace.
        assert event["timings"]["llm_s"] > 0.0

    def test_worker_counters_attributed_to_trace(self):
        with tele.hub_active() as hub:
            with obs.recording():
                serve_one(
                    ServeRequest(session="s0", intent=INTENT, target="OUT")
                )
        (event,) = hub.events
        assert event["counters"].get("serve.requests") == 1
        assert event["counters"].get("llm.calls", 0) >= 1


class TestNoSurvivorshipBias:
    def rejected_run(self):
        """Drive one rejection while a worker is pinned busy."""
        llm = GatedLLM()
        manager = SessionManager(llm=llm)
        manager.open("s0")
        manager.open("s1")
        with obs.recording() as rec, tele.hub_active() as hub:
            with ClarifyService(
                manager, workers=1, queue_limit=4, high_water=1
            ) as service:
                ticket = service.submit(
                    ServeRequest(session="s0", intent=INTENT, target="OUT")
                )
                assert llm.entered.wait(timeout=60)
                with pytest.raises(AdmissionError) as excinfo:
                    service.submit(
                        ServeRequest(
                            session="s1", intent=INTENT, target="OUT"
                        )
                    )
                llm.gate.set()
                assert ticket.wait(60).outcome == "applied"
        return rec, hub, excinfo.value

    def test_rejection_lands_in_histograms_and_wide_events(self):
        rec, hub, rejection = self.rejected_run()
        # Both the applied and the rejected request hit the shared
        # latency histogram plus their per-outcome breakouts.
        assert rec.histograms["serve.latency"].count == 2
        assert rec.histograms["serve.latency.rejected"].count == 1
        assert rec.histograms["serve.latency.applied"].count == 1
        assert rec.counters["serve.outcome.rejected"] == 1
        outcomes = sorted(e["outcome"] for e in hub.events)
        assert outcomes == ["applied", "rejected"]

    def test_rejection_error_still_carries_a_trace(self):
        _, hub, rejection = self.rejected_run()
        assert rejection.trace is not None
        rejected = next(
            e for e in hub.events if e["outcome"] == "rejected"
        )
        assert rejected["trace_id"] == rejection.trace.trace_id
        assert rejected["retry_after_s"] > 0
        assert rejected["seq"] == -1

    def test_deadline_expiry_recorded(self):
        with obs.recording() as rec, tele.hub_active() as hub:
            response = serve_one(
                ServeRequest(
                    session="s0",
                    intent=INTENT,
                    target="OUT",
                    deadline_s=1e-9,
                )
            )
        assert response.outcome == "deadline"
        assert response.trace_id
        assert rec.histograms["serve.latency.deadline"].count == 1
        (event,) = hub.events
        assert event["outcome"] == "deadline"
        assert event["trace_id"] == response.trace_id


class TestCampaignTelemetry:
    KWARGS = dict(sessions=4, requests_per_session=1, workers=2, seed=11)

    def test_identity_fingerprint_is_telemetry_invariant(self):
        on = run_loadgen(telemetry=True, **self.KWARGS)
        off = run_loadgen(telemetry=False, **self.KWARGS)
        assert on.fingerprint == off.fingerprint
        assert on.telemetry["enabled"] is True
        assert off.telemetry["enabled"] is False

    def test_every_llm_counter_resolves_to_a_wide_event(self):
        report = run_loadgen(telemetry=True, **self.KWARGS)
        assert report.telemetry["wide_events"] == 4
        coverage = report.telemetry["trace_coverage"]
        assert coverage["complete"], coverage["missing"]

    def test_campaign_slo_block_evaluates(self):
        report = run_loadgen(telemetry=True, **self.KWARGS)
        slo = report.telemetry["slo"]
        assert slo["events"] == 4
        assert slo["ok"] is True

    def test_rejected_requests_counted_in_wide_events(self):
        # high_water=1 with several workers forces admission rejections;
        # loadgen retries them, and every attempt leaves a wide event.
        report = run_loadgen(
            sessions=4,
            requests_per_session=1,
            workers=2,
            seed=11,
            high_water=1,
            telemetry=True,
        )
        assert report.rejected_submissions > 0
        assert (
            report.telemetry["wide_events"]
            == 4 + report.rejected_submissions
        )

    def test_event_log_written(self, tmp_path):
        path = tmp_path / "events.jsonl"
        report = run_loadgen(
            telemetry=True, event_log=str(path), **self.KWARGS
        )
        events = list(tele.iter_events(str(path)))
        assert len(events) == report.telemetry["wide_events"]
        assert all(e["trace_id"] for e in events)
