"""Cross-module consistency: wildcard matching vs interval expansion."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.headerspace import wildcard_to_intervals
from repro.netaddr import Ipv4Address, Ipv4Wildcard


@st.composite
def wildcards(draw):
    # Keep don't-care bits in the low byte plus at most a few scattered
    # bits so exact expansion stays feasible.
    low = draw(st.integers(0, 255))
    scattered_bits = draw(
        st.lists(st.integers(8, 31), max_size=3, unique=True)
    )
    mask = low
    for bit in scattered_bits:
        mask |= 1 << bit
    address = draw(st.integers(0, 0xFFFFFFFF))
    return Ipv4Wildcard(Ipv4Address(address), Ipv4Address(mask))


@st.composite
def probe_addresses(draw, wc):
    """Addresses biased toward the wildcard's boundary region."""
    base = wc.address.value
    tweak = draw(st.integers(0, 0xFFFFFFFF))
    mode = draw(st.integers(0, 2))
    if mode == 0:
        return Ipv4Address(tweak)
    if mode == 1:
        return Ipv4Address(base | (tweak & wc.wildcard.value))
    return Ipv4Address((base ^ (1 << draw(st.integers(0, 31)))) & 0xFFFFFFFF)


class TestWildcardIntervalConsistency:
    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_matches_agrees_with_interval_membership(self, data):
        wc = data.draw(wildcards())
        intervals = wildcard_to_intervals(wc)
        for _ in range(4):
            address = data.draw(probe_addresses(wc))
            assert wc.matches(address) == intervals.contains(address.value), (
                wc,
                address,
            )

    @given(wildcards())
    @settings(max_examples=100, deadline=None)
    def test_interval_size_is_power_of_two(self, wc):
        intervals = wildcard_to_intervals(wc)
        size = intervals.size()
        dont_care = bin(wc.wildcard.value).count("1")
        assert size == 1 << dont_care

    @given(wildcards())
    @settings(max_examples=60, deadline=None)
    def test_canonical_address_is_member(self, wc):
        intervals = wildcard_to_intervals(wc)
        assert intervals.contains(wc.address.value)
