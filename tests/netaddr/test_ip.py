"""Unit tests for IPv4 addresses, prefixes, and wildcard masks."""

import pytest

from repro.netaddr import Ipv4Address, Ipv4Prefix, Ipv4Wildcard


class TestIpv4Address:
    def test_parse_round_trip(self):
        for text in ["0.0.0.0", "10.0.0.1", "255.255.255.255", "192.168.1.7"]:
            assert str(Ipv4Address.parse(text)) == text

    def test_parse_rejects_bad_octet(self):
        with pytest.raises(ValueError):
            Ipv4Address.parse("10.0.0.256")

    def test_parse_rejects_short_form(self):
        with pytest.raises(ValueError):
            Ipv4Address.parse("10.0.0")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Ipv4Address.parse("ten.zero.zero.one")

    def test_value_bounds_checked(self):
        with pytest.raises(ValueError):
            Ipv4Address(-1)
        with pytest.raises(ValueError):
            Ipv4Address(2**32)

    def test_ordering_follows_numeric_value(self):
        assert Ipv4Address.parse("10.0.0.1") < Ipv4Address.parse("10.0.0.2")

    def test_bit_extraction(self):
        addr = Ipv4Address.parse("128.0.0.1")
        assert addr.bit(0) == 1
        assert addr.bit(1) == 0
        assert addr.bit(31) == 1

    def test_bit_index_out_of_range(self):
        with pytest.raises(ValueError):
            Ipv4Address(0).bit(32)


class TestIpv4Prefix:
    def test_parse_round_trip(self):
        assert str(Ipv4Prefix.parse("10.0.0.0/8")) == "10.0.0.0/8"

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            Ipv4Prefix.parse("10.0.0.1/8")

    def test_canonical_zeroes_host_bits(self):
        prefix = Ipv4Prefix.canonical(Ipv4Address.parse("10.1.2.3"), 8)
        assert str(prefix) == "10.0.0.0/8"

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Ipv4Prefix.parse("10.0.0.0/33")

    def test_contains_address(self):
        prefix = Ipv4Prefix.parse("10.0.0.0/8")
        assert prefix.contains_address(Ipv4Address.parse("10.255.0.1"))
        assert not prefix.contains_address(Ipv4Address.parse("11.0.0.0"))

    def test_contains_prefix(self):
        outer = Ipv4Prefix.parse("10.0.0.0/8")
        inner = Ipv4Prefix.parse("10.1.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_overlaps(self):
        a = Ipv4Prefix.parse("10.0.0.0/8")
        b = Ipv4Prefix.parse("10.1.0.0/16")
        c = Ipv4Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_address_range(self):
        prefix = Ipv4Prefix.parse("10.0.0.0/24")
        assert str(prefix.first_address()) == "10.0.0.0"
        assert str(prefix.last_address()) == "10.0.0.255"

    def test_default_route_range(self):
        prefix = Ipv4Prefix.parse("0.0.0.0/0")
        assert str(prefix.last_address()) == "255.255.255.255"

    def test_truncate(self):
        prefix = Ipv4Prefix.parse("10.1.0.0/16")
        assert str(prefix.truncate(8)) == "10.0.0.0/8"
        with pytest.raises(ValueError):
            prefix.truncate(24)

    def test_child_and_sibling(self):
        prefix = Ipv4Prefix.parse("10.0.0.0/8")
        assert str(prefix.child(0)) == "10.0.0.0/9"
        assert str(prefix.child(1)) == "10.128.0.0/9"
        assert str(prefix.child(1).sibling()) == "10.0.0.0/9"

    def test_sibling_of_root_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Prefix.parse("0.0.0.0/0").sibling()

    def test_ancestors(self):
        prefix = Ipv4Prefix.parse("192.0.0.0/3")
        ancestors = list(prefix.ancestors())
        assert [str(p) for p in ancestors] == [
            "0.0.0.0/0",
            "128.0.0.0/1",
            "192.0.0.0/2",
        ]

    def test_host_prefix(self):
        host = Ipv4Prefix.host(Ipv4Address.parse("1.2.3.4"))
        assert str(host) == "1.2.3.4/32"


class TestIpv4Wildcard:
    def test_prefix_round_trip(self):
        prefix = Ipv4Prefix.parse("10.0.0.0/8")
        wc = Ipv4Wildcard.from_prefix(prefix)
        assert str(wc) == "10.0.0.0 0.255.255.255"
        assert wc.is_prefix_like()
        assert wc.to_prefix() == prefix

    def test_any(self):
        wc = Ipv4Wildcard.any()
        assert wc.matches(Ipv4Address.parse("1.2.3.4"))
        assert wc.to_prefix() == Ipv4Prefix.parse("0.0.0.0/0")

    def test_host(self):
        wc = Ipv4Wildcard.host(Ipv4Address.parse("1.1.1.1"))
        assert wc.matches(Ipv4Address.parse("1.1.1.1"))
        assert not wc.matches(Ipv4Address.parse("1.1.1.2"))
        assert wc.to_prefix() == Ipv4Prefix.parse("1.1.1.1/32")

    def test_matching_respects_wildcard_bits(self):
        wc = Ipv4Wildcard(
            Ipv4Address.parse("10.0.0.0"), Ipv4Address.parse("0.255.255.255")
        )
        assert wc.matches(Ipv4Address.parse("10.9.8.7"))
        assert not wc.matches(Ipv4Address.parse("11.0.0.0"))

    def test_non_contiguous_mask_detected(self):
        wc = Ipv4Wildcard(
            Ipv4Address.parse("10.0.0.0"), Ipv4Address.parse("0.255.0.255")
        )
        assert not wc.is_prefix_like()
        with pytest.raises(ValueError):
            wc.to_prefix()

    def test_address_canonicalised_against_mask(self):
        wc = Ipv4Wildcard(
            Ipv4Address.parse("10.0.0.42"), Ipv4Address.parse("0.0.0.255")
        )
        assert str(wc.address) == "10.0.0.0"
