"""Unit and property tests for interval sets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netaddr import Interval, IntervalSet

UNIVERSE = IntervalSet.closed(0, 100)


def members(s: IntervalSet) -> set:
    return set(s)


@st.composite
def interval_sets(draw, lo=0, hi=100, max_intervals=5):
    pairs = draw(
        st.lists(
            st.tuples(st.integers(lo, hi), st.integers(lo, hi)),
            max_size=max_intervals,
        )
    )
    return IntervalSet.from_pairs([(min(a, b), max(a, b)) for a, b in pairs])


class TestInterval:
    def test_empty_when_reversed(self):
        assert Interval(5, 3).is_empty()
        assert not Interval(3, 5).is_empty()

    def test_contains(self):
        iv = Interval(3, 5)
        assert iv.contains(3) and iv.contains(5)
        assert not iv.contains(2) and not iv.contains(6)

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)
        assert Interval(0, 4).intersect(Interval(5, 9)).is_empty()

    def test_str(self):
        assert str(Interval(3, 3)) == "[3]"
        assert str(Interval(3, 5)) == "[3, 5]"
        assert str(Interval(5, 3)) == "[]"


class TestIntervalSetConstruction:
    def test_normalisation_merges_overlaps(self):
        s = IntervalSet((Interval(0, 5), Interval(3, 9)))
        assert s.intervals == (Interval(0, 9),)

    def test_normalisation_merges_adjacent(self):
        s = IntervalSet((Interval(0, 4), Interval(5, 9)))
        assert s.intervals == (Interval(0, 9),)

    def test_normalisation_keeps_gaps(self):
        s = IntervalSet((Interval(0, 4), Interval(6, 9)))
        assert s.intervals == (Interval(0, 4), Interval(6, 9))

    def test_empties_dropped(self):
        s = IntervalSet((Interval(5, 3),))
        assert s.is_empty()

    def test_of_and_single(self):
        assert members(IntervalSet.of(1, 3, 5)) == {1, 3, 5}
        assert members(IntervalSet.single(7)) == {7}

    def test_canonical_equality(self):
        a = IntervalSet((Interval(0, 2), Interval(3, 5)))
        b = IntervalSet.closed(0, 5)
        assert a == b


class TestIntervalSetQueries:
    def test_contains_binary_search(self):
        s = IntervalSet.from_pairs([(0, 10), (20, 30), (40, 50)])
        for v in [0, 10, 25, 50]:
            assert s.contains(v)
        for v in [-1, 11, 19, 31, 39, 51]:
            assert not s.contains(v)

    def test_min_max_size(self):
        s = IntervalSet.from_pairs([(5, 10), (20, 21)])
        assert s.min() == 5
        assert s.max() == 21
        assert s.size() == 8

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            IntervalSet.empty().min()
        with pytest.raises(ValueError):
            IntervalSet.empty().max()

    def test_witness(self):
        assert IntervalSet.empty().witness() is None
        assert IntervalSet.closed(9, 12).witness() == 9

    def test_bool(self):
        assert IntervalSet.single(1)
        assert not IntervalSet.empty()


class TestIntervalSetAlgebra:
    def test_intersect(self):
        a = IntervalSet.from_pairs([(0, 10), (20, 30)])
        b = IntervalSet.from_pairs([(5, 25)])
        assert members(a.intersect(b)) == set(range(5, 11)) | set(range(20, 26))

    def test_union(self):
        a = IntervalSet.closed(0, 3)
        b = IntervalSet.closed(10, 12)
        assert members(a.union(b)) == set(range(0, 4)) | set(range(10, 13))

    def test_complement(self):
        s = IntervalSet.from_pairs([(10, 20), (40, 60)])
        c = s.complement(UNIVERSE)
        assert members(c) == members(UNIVERSE) - members(s)

    def test_complement_of_empty_is_universe(self):
        assert IntervalSet.empty().complement(UNIVERSE) == UNIVERSE

    def test_complement_of_universe_is_empty(self):
        assert UNIVERSE.complement(UNIVERSE).is_empty()

    def test_subtract(self):
        a = IntervalSet.closed(0, 10)
        b = IntervalSet.closed(3, 5)
        assert members(a.subtract(b)) == {0, 1, 2, 6, 7, 8, 9, 10}

    def test_is_subset_of(self):
        assert IntervalSet.closed(3, 5).is_subset_of(IntervalSet.closed(0, 10))
        assert not IntervalSet.closed(3, 15).is_subset_of(IntervalSet.closed(0, 10))

    def test_str(self):
        assert str(IntervalSet.empty()) == "{}"
        assert str(IntervalSet.from_pairs([(1, 2), (4, 4)])) == "[1, 2] u [4]"


class TestIntervalSetProperties:
    @given(interval_sets(), interval_sets())
    def test_intersection_matches_set_semantics(self, a, b):
        assert members(a.intersect(b)) == members(a) & members(b)

    @given(interval_sets(), interval_sets())
    def test_union_matches_set_semantics(self, a, b):
        assert members(a.union(b)) == members(a) | members(b)

    @given(interval_sets())
    def test_complement_matches_set_semantics(self, a):
        assert members(a.complement(UNIVERSE)) == members(UNIVERSE) - members(a)

    @given(interval_sets())
    def test_double_complement_is_identity(self, a):
        clipped = a.intersect(UNIVERSE)
        assert clipped.complement(UNIVERSE).complement(UNIVERSE) == clipped

    @given(interval_sets(), interval_sets())
    def test_intersection_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(interval_sets(), interval_sets(), interval_sets())
    def test_distributivity(self, a, b, c):
        left = a.intersect(b.union(c))
        right = a.intersect(b).union(a.intersect(c))
        assert left == right

    @given(interval_sets())
    def test_size_matches_member_count(self, a):
        assert a.size() == len(members(a))

    @given(interval_sets())
    def test_witness_is_member(self, a):
        w = a.witness()
        if w is None:
            assert a.is_empty()
        else:
            assert a.contains(w)
