"""Spec-conformance search (``searchRoutePolicies`` / ``searchFilters``).

These mirror the Batfish questions the paper uses to verify that an
LLM-synthesised stanza meets its JSON specification: given an input-space
constraint and an expected action, find a concrete input the policy
handles with that action — or, for verification, a counterexample
violating the spec.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.analysis.evaluate import eval_acl, eval_route_map
from repro.analysis.headerspace import PacketSpace, acl_reachable_spaces
from repro.analysis.routespace import RouteSpace, route_map_reachable_spaces
from repro.config.acl import Acl
from repro.config.routemap import RouteMap
from repro.config.store import ConfigStore
from repro.route import BgpRoute, Packet

PERMIT = "permit"
DENY = "deny"


@dataclasses.dataclass(frozen=True)
class RoutePolicySearchResult:
    """Outcome of one route-policy search."""

    route: Optional[BgpRoute]

    def found(self) -> bool:
        return self.route is not None


@dataclasses.dataclass(frozen=True)
class FilterSearchResult:
    """Outcome of one ACL search."""

    packet: Optional[Packet]

    def found(self) -> bool:
        return self.packet is not None


def search_route_policies(
    route_map: RouteMap,
    store: ConfigStore,
    input_space: Optional[RouteSpace] = None,
    action: str = PERMIT,
) -> RoutePolicySearchResult:
    """Find a route in ``input_space`` the policy handles with ``action``.

    ``input_space`` defaults to the full route universe.  The returned
    witness is validated against the concrete evaluator before being
    reported, so a returned route is guaranteed real.
    """
    if action not in (PERMIT, DENY):
        raise ValueError(f"action must be permit or deny, got {action!r}")
    space = input_space if input_space is not None else RouteSpace.universe()
    for stanza, reach in route_map_reachable_spaces(
        route_map, store, include_implicit_deny=True
    ):
        stanza_action = stanza.action if stanza is not None else DENY
        if stanza_action != action:
            continue
        witness = reach.intersect(space).witness()
        if witness is None:
            continue
        result = eval_route_map(route_map, store, witness)
        if result.action == action:
            return RoutePolicySearchResult(witness)
    return RoutePolicySearchResult(None)


def search_filters(
    acl: Acl,
    input_space: Optional[PacketSpace] = None,
    action: str = PERMIT,
) -> FilterSearchResult:
    """Find a packet in ``input_space`` the ACL handles with ``action``."""
    if action not in (PERMIT, DENY):
        raise ValueError(f"action must be permit or deny, got {action!r}")
    space = input_space if input_space is not None else PacketSpace.universe()
    for rule, reach in acl_reachable_spaces(acl, include_implicit_deny=True):
        rule_action = rule.action if rule is not None else DENY
        if rule_action != action:
            continue
        witness = reach.intersect(space).witness()
        if witness is None:
            continue
        result = eval_acl(acl, witness)
        if result.action == action:
            return FilterSearchResult(witness)
    return FilterSearchResult(None)


__all__ = [
    "FilterSearchResult",
    "RoutePolicySearchResult",
    "search_filters",
    "search_route_policies",
]
