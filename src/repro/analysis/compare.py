"""Differential comparison of two policies (``compareRoutePolicies``).

Given two route-maps (or two ACLs) this module finds concrete inputs on
which they behave differently, together with both outcomes — exactly the
differential examples Clarify shows the user (§2.2 of the paper).

The search intersects the per-stanza *reachable* spaces of the two
policies: within one intersection cell, each policy's action and
transform are fixed, so a behavioural difference is decidable per cell.
When both stanzas permit, the observable difference lives in the
transforms; a cell witness whose outputs coincide by accident (e.g. the
input metric already equals the ``set metric`` value) is *de-coincided*
by nudging unconstrained fields while staying inside the cell.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro import obs
from repro.analysis.evaluate import (
    AclResult,
    RouteMapResult,
    eval_acl,
    eval_route_map,
)
from repro.analysis.headerspace import acl_reachable_spaces
from repro.analysis.routespace import RouteRegion, route_map_reachable_spaces
from repro.config.acl import Acl
from repro.config.routemap import RouteMap, RouteMapStanza
from repro.config.sets import (
    SetAsPathPrepend,
    SetCommunity,
    SetLocalPreference,
    SetMetric,
    SetNextHop,
    SetTag,
    SetWeight,
)
from repro.config.store import ConfigStore
from repro.netaddr import IntervalSet, Ipv4Address
from repro.regexlib.cisco import community_matches, find_community
from repro.route import BgpRoute, Packet


@dataclasses.dataclass(frozen=True)
class BehaviorDifference:
    """One route on which two route-maps disagree, with both outcomes."""

    route: BgpRoute
    result_a: RouteMapResult
    result_b: RouteMapResult

    @property
    def subject(self) -> BgpRoute:
        """The differential input (uniform across difference kinds)."""
        return self.route

    def render(self) -> str:
        """The paper's §2.2 display: the input route and both options."""
        return (
            self.route.render()
            + "\n\nOPTION 1:\n\n"
            + self.result_a.render()
            + "\n\nOPTION 2:\n\n"
            + self.result_b.render()
        )


@dataclasses.dataclass(frozen=True)
class PacketDifference:
    """One packet on which two ACLs disagree, with both outcomes."""

    packet: Packet
    result_a: AclResult
    result_b: AclResult

    @property
    def subject(self) -> Packet:
        """The differential input (uniform across difference kinds)."""
        return self.packet

    def render(self) -> str:
        return (
            self.packet.render()
            + "\n\nOPTION 1:\n\n"
            + self.result_a.render()
            + "\n\nOPTION 2:\n\n"
            + self.result_b.render()
        )


# --------------------------------------------------- transform summaries


def transform_summary(stanza: RouteMapStanza) -> Dict[str, object]:
    """A canonical description of a permit stanza's output function.

    Two permit stanzas with equal summaries produce identical outputs on
    every input; the verifier also uses this to compare a stanza's set
    clauses against a specification's ``set`` object.
    """
    summary: Dict[str, object] = {}
    for clause in stanza.sets:
        if isinstance(clause, SetMetric):
            summary["metric"] = clause.value
        elif isinstance(clause, SetLocalPreference):
            summary["local_preference"] = clause.value
        elif isinstance(clause, SetTag):
            summary["tag"] = clause.value
        elif isinstance(clause, SetWeight):
            summary["weight"] = clause.value
        elif isinstance(clause, SetNextHop):
            summary["next_hop"] = str(clause.address)
        elif isinstance(clause, SetCommunity):
            summary["community"] = (
                tuple(sorted(clause.communities)),
                clause.additive,
            )
        elif isinstance(clause, SetAsPathPrepend):
            summary["prepend"] = clause.asns
    return summary


_SCALAR_REGION_FIELDS = {"metric", "local_preference", "tag"}


def _decoincide(
    route: BgpRoute,
    cell: RouteRegion,
    summary_a: Dict[str, object],
    summary_b: Dict[str, object],
) -> Optional[BgpRoute]:
    """Nudge ``route`` inside ``cell`` so differing transforms become visible.

    Returns a replacement route, or None if no nudge can expose a
    difference (meaning the two stanzas genuinely coincide on the cell).
    """
    for field in sorted(set(summary_a) | set(summary_b)):
        in_a, in_b = field in summary_a, field in summary_b
        if in_a and in_b:
            # Both set the field; outputs are input-independent, so if they
            # coincided on the witness they coincide everywhere.
            continue
        present = summary_a.get(field, summary_b.get(field))
        if field in _SCALAR_REGION_FIELDS:
            allowed: IntervalSet = getattr(cell, field)
            candidates = allowed.subtract(IntervalSet.single(int(present)))
            if candidates.is_empty():
                continue
            return route.with_updates(**{field: candidates.min()})
        if field == "weight":
            new_weight = 0 if int(present) != 0 else 1
            return route.with_updates(weight=new_weight)
        if field == "next_hop":
            current = str(route.next_hop)
            fresh = "0.0.0.2" if current == str(present) else current
            if fresh == current:
                continue
            return route.with_updates(next_hop=Ipv4Address.parse(fresh))
        if field == "community":
            nudged = _decoincide_communities(route, cell, present)
            if nudged is not None:
                return nudged
        if field == "prepend":
            # Prepending always changes the AS path; a coincident witness is
            # impossible, so nothing to do here.
            continue
    return None


def _decoincide_communities(
    route: BgpRoute, cell: RouteRegion, present: object
) -> Optional[BgpRoute]:
    """Add a community that stays in-cell but distinguishes replace/none."""
    communities, additive = present  # type: ignore[misc]
    forbidden = list(cell.communities_forbidden)
    # The fresh community must avoid the cell's forbidden patterns and not
    # already be produced by the transform.
    taken = set(communities) | set(route.communities)
    for candidate_seed in range(64000, 64050):
        candidate = f"{candidate_seed}:99"
        if candidate in taken:
            continue
        if any(community_matches(p, candidate) for p in forbidden):
            continue
        nudged = route.with_updates(
            communities=frozenset(route.communities) | {candidate}
        )
        if cell.contains(nudged):
            return nudged
    found = find_community([], forbidden)
    if found is not None and found not in taken:
        nudged = route.with_updates(
            communities=frozenset(route.communities) | {found}
        )
        if cell.contains(nudged):
            return nudged
    return None


# ------------------------------------------------------------ route maps


def compare_route_policies(
    map_a: RouteMap,
    map_b: RouteMap,
    store: ConfigStore,
    store_b: Optional[ConfigStore] = None,
    max_differences: Optional[int] = None,
) -> List[BehaviorDifference]:
    """Find routes on which the two route-maps behave differently.

    Mirrors Batfish's ``compareRoutePolicies``: the result is a list of
    concrete differential examples (possibly empty when the policies are
    behaviourally equivalent).  ``max_differences`` stops the search early
    — the disambiguator only needs one example per question.
    """
    with obs.span("analysis.compare_route_policies", policy=map_a.name) as sp:
        obs.count("analysis.compares")
        store_b = store_b if store_b is not None else store
        reaches_a = route_map_reachable_spaces(
            map_a, store, include_implicit_deny=True
        )
        reaches_b = route_map_reachable_spaces(
            map_b, store_b, include_implicit_deny=True
        )

        differences: List[BehaviorDifference] = []
        seen_routes = set()
        for stanza_a, space_a in reaches_a:
            for stanza_b, space_b in reaches_b:
                if _same_outcome(stanza_a, stanza_b):
                    continue
                overlap = space_a.intersect(space_b)
                for cell in overlap.regions:
                    difference = _cell_difference(
                        cell, map_a, map_b, store, store_b, stanza_a, stanza_b
                    )
                    if difference is None:
                        continue
                    if difference.route in seen_routes:
                        continue
                    seen_routes.add(difference.route)
                    differences.append(difference)
                    if (
                        max_differences is not None
                        and len(differences) >= max_differences
                    ):
                        sp.annotate(differences=len(differences))
                        return differences
                    break  # one example per stanza pair is enough
        sp.annotate(differences=len(differences))
        return differences


def _same_outcome(
    stanza_a: Optional[RouteMapStanza], stanza_b: Optional[RouteMapStanza]
) -> bool:
    """True when the outcome is identical for every route, skip the cell."""
    action_a = stanza_a.action if stanza_a is not None else "deny"
    action_b = stanza_b.action if stanza_b is not None else "deny"
    if action_a != action_b:
        return False
    if action_a == "deny":
        return True
    return transform_summary(stanza_a) == transform_summary(stanza_b)


def _cell_difference(
    cell: RouteRegion,
    map_a: RouteMap,
    map_b: RouteMap,
    store: ConfigStore,
    store_b: ConfigStore,
    stanza_a: Optional[RouteMapStanza],
    stanza_b: Optional[RouteMapStanza],
) -> Optional[BehaviorDifference]:
    route = cell.witness()
    if route is None:
        return None
    result_a = eval_route_map(map_a, store, route)
    result_b = eval_route_map(map_b, store_b, route)
    if result_a.behaviour_key() != result_b.behaviour_key():
        return BehaviorDifference(route, result_a, result_b)
    # Both permitted with coincidentally equal outputs: nudge the witness.
    if stanza_a is not None and stanza_b is not None:
        nudged = _decoincide(
            route, cell, transform_summary(stanza_a), transform_summary(stanza_b)
        )
        if nudged is not None:
            result_a = eval_route_map(map_a, store, nudged)
            result_b = eval_route_map(map_b, store_b, nudged)
            if result_a.behaviour_key() != result_b.behaviour_key():
                return BehaviorDifference(nudged, result_a, result_b)
    return None


# ------------------------------------------------------------------ ACLs


def compare_filters(
    acl_a: Acl,
    acl_b: Acl,
    max_differences: Optional[int] = None,
) -> List[PacketDifference]:
    """Find packets on which the two ACLs disagree (permit vs deny)."""
    with obs.span("analysis.compare_filters", acl=acl_a.name) as sp:
        obs.count("analysis.compares")
        reaches_a = acl_reachable_spaces(acl_a, include_implicit_deny=True)
        reaches_b = acl_reachable_spaces(acl_b, include_implicit_deny=True)
        differences: List[PacketDifference] = []
        seen = set()
        for rule_a, space_a in reaches_a:
            action_a = rule_a.action if rule_a is not None else "deny"
            for rule_b, space_b in reaches_b:
                action_b = rule_b.action if rule_b is not None else "deny"
                if action_a == action_b:
                    continue
                overlap = space_a.intersect(space_b)
                packet = overlap.witness()
                if packet is None or packet in seen:
                    continue
                result_a = eval_acl(acl_a, packet)
                result_b = eval_acl(acl_b, packet)
                if result_a.behaviour_key() == result_b.behaviour_key():
                    continue
                seen.add(packet)
                differences.append(PacketDifference(packet, result_a, result_b))
                if (
                    max_differences is not None
                    and len(differences) >= max_differences
                ):
                    sp.annotate(differences=len(differences))
                    return differences
        sp.annotate(differences=len(differences))
        return differences


__all__ = [
    "BehaviorDifference",
    "PacketDifference",
    "compare_filters",
    "compare_route_policies",
]
