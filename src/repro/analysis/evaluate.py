"""Concrete first-match evaluation of route-maps and ACLs.

This is the executable semantics the paper's Section 4 formalises: a
policy is a list of rules, the leftmost matching rule handles the input
(the function ``M``), and a missing match falls through to the implicit
deny.  The symbolic engine and the BGP simulator both defer to these
definitions; differential examples are validated against them before
being shown to the user.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.config.acl import Acl, AclRule
from repro.config.routemap import RouteMap, RouteMapStanza
from repro.config.store import ConfigStore
from repro.route import BgpRoute, Packet

PERMIT = "permit"
DENY = "deny"


@dataclasses.dataclass(frozen=True)
class RouteMapResult:
    """The outcome of running one route through a route-map."""

    action: str
    #: The transformed route when permitted; None when denied.
    output: Optional[BgpRoute]
    #: Sequence number of the stanza that handled the route; None when the
    #: route fell through to the implicit deny.
    stanza_seq: Optional[int]

    def permitted(self) -> bool:
        return self.action == PERMIT

    def render(self, indent: str = "") -> str:
        """The paper's OPTION display format (§2.2)."""
        lines = [f"ACTION: {self.action}"]
        text = "\n".join(indent + line for line in lines)
        if self.output is not None:
            text += "\n" + self.output.render(indent)
        return text

    def behaviour_key(self) -> tuple:
        """Everything observable about the outcome except which stanza fired."""
        return (self.action, self.output)


def stanza_matches(
    stanza: RouteMapStanza, route: BgpRoute, store: ConfigStore
) -> bool:
    """All of the stanza's match clauses succeed (empty clauses match all)."""
    return all(clause.matches(route, store) for clause in stanza.matches)


def apply_sets(stanza: RouteMapStanza, route: BgpRoute) -> BgpRoute:
    for clause in stanza.sets:
        route = clause.apply(route)
    return route


def eval_route_map(
    route_map: RouteMap, store: ConfigStore, route: BgpRoute
) -> RouteMapResult:
    """Run ``route`` through ``route_map`` (first match wins, implicit deny)."""
    for stanza in route_map.stanzas:
        if stanza_matches(stanza, route, store):
            if stanza.action == PERMIT:
                return RouteMapResult(PERMIT, apply_sets(stanza, route), stanza.seq)
            return RouteMapResult(DENY, None, stanza.seq)
    return RouteMapResult(DENY, None, None)


@dataclasses.dataclass(frozen=True)
class AclResult:
    """The outcome of running one packet through an ACL."""

    action: str
    #: Sequence number of the matching rule; None for the implicit deny.
    rule_seq: Optional[int]

    def permitted(self) -> bool:
        return self.action == PERMIT

    def render(self, indent: str = "") -> str:
        return f"{indent}ACTION: {self.action}"

    def behaviour_key(self) -> tuple:
        return (self.action,)


def eval_acl(acl: Acl, packet: Packet) -> AclResult:
    """Run ``packet`` through ``acl`` (first match wins, implicit deny)."""
    rule: Optional[AclRule] = acl.first_match(packet)
    if rule is None:
        return AclResult(DENY, None)
    return AclResult(rule.action, rule.seq)


__all__ = [
    "AclResult",
    "RouteMapResult",
    "apply_sets",
    "eval_acl",
    "eval_route_map",
    "stanza_matches",
]
