"""The symbolic analysis engine (our Batfish equivalent).

This package provides the behavioural analyses the paper obtains from
Batfish:

* :mod:`repro.analysis.evaluate` — concrete first-match evaluation of
  route-maps on routes and ACLs on packets;
* :mod:`repro.analysis.prefixspace` — the prefix+length-range region
  algebra underlying symbolic prefix-list reasoning;
* :mod:`repro.analysis.routespace` / :mod:`repro.analysis.headerspace` —
  symbolic route and packet spaces (unions of per-field product regions)
  with guard translation and per-stanza reachable-space computation;
* :mod:`repro.analysis.search` — ``search_route_policies`` /
  ``search_filters``: spec-conformance checks with counterexamples;
* :mod:`repro.analysis.compare` — ``compare_route_policies`` /
  ``compare_filters``: differential witnesses between two policies, the
  primitive the disambiguator is built on.
"""

from repro.analysis.compare import (
    BehaviorDifference,
    PacketDifference,
    compare_filters,
    compare_route_policies,
)
from repro.analysis.evaluate import (
    AclResult,
    RouteMapResult,
    eval_acl,
    eval_route_map,
)
from repro.analysis.headerspace import (
    PacketRegion,
    PacketSpace,
    acl_guard_space,
    acl_reachable_spaces,
)
from repro.analysis.prefixspace import PrefixAtom, PrefixSpace
from repro.analysis.routespace import (
    RouteRegion,
    RouteSpace,
    stanza_guard_space,
    route_map_reachable_spaces,
)
from repro.analysis.search import (
    FilterSearchResult,
    RoutePolicySearchResult,
    search_filters,
    search_route_policies,
)

__all__ = [
    "AclResult",
    "BehaviorDifference",
    "FilterSearchResult",
    "PacketDifference",
    "PacketRegion",
    "PacketSpace",
    "PrefixAtom",
    "PrefixSpace",
    "RouteMapResult",
    "RoutePolicySearchResult",
    "RouteRegion",
    "RouteSpace",
    "acl_guard_space",
    "acl_reachable_spaces",
    "compare_filters",
    "compare_route_policies",
    "eval_acl",
    "eval_route_map",
    "search_filters",
    "search_route_policies",
    "stanza_guard_space",
    "route_map_reachable_spaces",
]
