"""Symbolic packet (header) spaces for ACL analysis.

Packets are simpler than routes: every field is a finite integer domain,
so a :class:`PacketRegion` is a product of interval sets plus a tri-state
TCP-established constraint, and all operations are exact — no automaton
search needed.

The region algebra runs on top of the :mod:`repro.perf.cache` layer:
regions are hash-consed (one canonical object per distinct constraint,
with a cached hash and an identity-first equality), and the expensive
operations — ``intersect``, ``subtract_region``, ``negation_regions``,
``is_empty``, ``witness`` — are memoized in bounded LRU tables.  On top
of that, :func:`regions_disjoint` gives a cheap disjointness pre-check
(field-wise interval bounding tests) that lets first-match reachability
and the overlap detector skip the full algebra for regions that cannot
overlap.  ``docs/PERFORMANCE.md`` describes the caching model; the
differential tests in ``tests/perf/`` pin the memoized engine to the
uncached semantics.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro import obs
from repro.perf import cache as _perf
from repro.perf import kernels as _kernels
from repro.config.acl import (
    FULL_PORT_RANGE,
    FULL_PROTOCOL_RANGE,
    Acl,
    AclRule,
)
from repro.netaddr import IntervalSet, Ipv4Address, Ipv4Wildcard
from repro.route.packet import PROTOCOL_NUMBERS, Packet

U32 = IntervalSet.closed(0, 0xFFFFFFFF)
BOTH = frozenset((True, False))
_TCP = PROTOCOL_NUMBERS["tcp"]
_UDP = PROTOCOL_NUMBERS["udp"]

#: Refuse to expand wildcard masks with more scattered don't-care bits
#: than this (2^10 intervals); real configurations use prefix-like masks.
_MAX_SCATTERED_BITS = 10


class HeaderSpaceError(RuntimeError):
    """Raised for wildcard masks too pathological to expand exactly."""


#: Hash-cons table for regions and LRU memos for the region algebra
#: (stats surface as ``cache.hits`` / ``cache.misses`` obs counters).
_REGION_INTERNER = _perf.Interner("headerspace.regions")
_R_INTERSECT = _perf.Memo("headerspace.intersect")
_R_SUBTRACT = _perf.Memo("headerspace.subtract_region")
_R_NEGATE = _perf.Memo("headerspace.negation")
_R_EMPTY = _perf.Memo("headerspace.is_empty")
_R_WITNESS = _perf.Memo("headerspace.witness")


def intern_region(region: "PacketRegion") -> "PacketRegion":
    """The canonical shared object for this region's constraint."""
    return _REGION_INTERNER.intern(region)


#: Below this many region pairs, the batched kernel screens cost more
#: (field encoding, and numpy call overhead on tiny matrices) than
#: per-pair ``regions_disjoint`` calls save.
_MATRIX_MIN_PAIRS = 128

#: The interval-bearing PacketRegion fields, in canonical order.
_REGION_FIELDS = ("src", "dst", "protocol", "src_ports", "dst_ports")


def _established_mask(region: "PacketRegion") -> int:
    # bit 0: True in established, bit 1: False in established.
    return (1 if True in region.established else 0) | (
        2 if False in region.established else 0
    )


def regions_disjoint_matrix(
    a_regions: Sequence["PacketRegion"],
    b_regions: Sequence["PacketRegion"],
) -> List[bytearray]:
    """Exact batched :func:`regions_disjoint` over the cross product.

    ``out[i][j]`` is 1 iff ``regions_disjoint(a_regions[i],
    b_regions[j])``.  Each field is flattened once per side
    (:func:`repro.perf.kernels.encode`) and swept with the batch
    disjointness kernel, replacing ``len(a) * len(b)`` memo-keyed
    ``IntervalSet.intersect`` calls with array sweeps; the
    established/TCP coupling is combined per pair exactly as
    :func:`regions_disjoint` does.
    """
    enc_a = [
        _kernels.encode([getattr(r, field) for r in a_regions])
        for field in _REGION_FIELDS
    ]
    if b_regions is a_regions:
        enc_b = enc_a
    else:
        enc_b = [
            _kernels.encode([getattr(r, field) for r in b_regions])
            for field in _REGION_FIELDS
        ]
    field_disjoint = [
        _kernels.disjoint_matrix(ea, eb) for ea, eb in zip(enc_a, enc_b)
    ]
    tcp_a = _kernels.contains_vector(enc_a[2], _TCP)
    tcp_b = tcp_a if enc_b is enc_a else _kernels.contains_vector(enc_b[2], _TCP)
    est_a = [_established_mask(r) for r in a_regions]
    est_b = est_a if b_regions is a_regions else [
        _established_mask(r) for r in b_regions
    ]
    out: List[bytearray] = []
    n_b = len(b_regions)
    for i in range(len(a_regions)):
        row = bytearray(n_b)
        rows = [matrix[i] for matrix in field_disjoint]
        mask_i = est_a[i]
        tcp_i = tcp_a[i]
        for j in range(n_b):
            pair_est = mask_i & est_b[j]
            if (
                pair_est == 0
                or rows[0][j]
                or rows[1][j]
                or rows[2][j]
                or rows[3][j]
                or rows[4][j]
                or (pair_est == 1 and not (tcp_i and tcp_b[j]))
            ):
                row[j] = 1
        out.append(row)
    return out


def regions_subsume_matrix(
    a_regions: Sequence["PacketRegion"],
    b_regions: Sequence["PacketRegion"],
) -> List[bytearray]:
    """Exact batched containment: ``out[i][j]`` is 1 iff
    ``b_regions[j].subsumes(a_regions[i])`` (every packet of ``a_i`` is
    in ``b_j``).

    The field-wise interval containments run as batch kernels over the
    flattened encodings; the established/TCP coupling mirrors
    :meth:`PacketRegion.subsumes` exactly, case for case.
    """
    enc_a = [
        _kernels.encode([getattr(r, field) for r in a_regions])
        for field in _REGION_FIELDS
    ]
    if b_regions is a_regions:
        enc_b = enc_a
    else:
        enc_b = [
            _kernels.encode([getattr(r, field) for r in b_regions])
            for field in _REGION_FIELDS
        ]
    field_subset = [
        _kernels.subset_matrix(ea, eb) for ea, eb in zip(enc_a, enc_b)
    ]
    tcp_a = _kernels.contains_vector(enc_a[2], _TCP)
    tcp_b = tcp_a if enc_b is enc_a else _kernels.contains_vector(enc_b[2], _TCP)
    est_a = [_established_mask(r) for r in a_regions]
    est_b = est_a if b_regions is a_regions else [
        _established_mask(r) for r in b_regions
    ]
    empty_a = [r.is_empty() for r in a_regions]
    empty_b = empty_a if b_regions is a_regions else [
        r.is_empty() for r in b_regions
    ]
    sub_src, sub_dst, sub_pr, sub_sp, sub_dp = field_subset
    out: List[bytearray] = []
    n_b = len(b_regions)
    for i in range(len(a_regions)):
        row = bytearray(n_b)
        mask_i = est_a[i]
        tcp_i = tcp_a[i]
        for j in range(n_b):
            if empty_a[i]:
                row[j] = 1
                continue
            if empty_b[j]:
                continue
            if not (
                sub_src[i][j]
                and sub_dst[i][j]
                and sub_sp[i][j]
                and sub_dp[i][j]
            ):
                continue
            # The non-established part spans a_i's whole protocol set.
            if (mask_i & 2) and (not (est_b[j] & 2) or not sub_pr[i][j]):
                continue
            # The established part is TCP-only.
            if (mask_i & 1) and tcp_i and not ((est_b[j] & 1) and tcp_b[j]):
                continue
            row[j] = 1
        out.append(row)
    return out


def regions_disjoint(a: "PacketRegion", b: "PacketRegion") -> bool:
    """Exactly ``a.intersect(b).is_empty()``, without building the region.

    The field-wise interval intersections bail out at the first empty
    one (each with a bounding-box fast path underneath), so provably
    disjoint regions cost a handful of comparisons.  This is the cheap
    pre-check first-match reachability and the overlap detector use to
    skip the full subtraction/intersection algebra.
    """
    established = a.established & b.established
    if not established:
        return True
    protocol = a.protocol.intersect(b.protocol)
    if not protocol.intervals:
        return True
    if not a.src.intersect(b.src).intervals:
        return True
    if not a.dst.intersect(b.dst).intervals:
        return True
    if not a.src_ports.intersect(b.src_ports).intervals:
        return True
    if not a.dst_ports.intersect(b.dst_ports).intervals:
        return True
    return established == _ESTABLISHED_ONLY and not protocol.contains(_TCP)


_ESTABLISHED_ONLY = frozenset((True,))


def wildcard_to_intervals(wc: Ipv4Wildcard) -> IntervalSet:
    """The exact set of addresses a wildcard matcher accepts."""
    if wc.is_prefix_like():
        prefix = wc.to_prefix()
        return IntervalSet.closed(
            prefix.first_address().value, prefix.last_address().value
        )
    wildcard = wc.wildcard.value
    trailing = 0
    while wildcard & (1 << trailing):
        trailing += 1
    run = (1 << trailing) - 1
    scattered = [
        bit
        for bit in range(trailing, 32)
        if wildcard & (1 << bit)
    ]
    if len(scattered) > _MAX_SCATTERED_BITS:
        raise HeaderSpaceError(
            f"wildcard {wc} has {len(scattered)} scattered don't-care bits; "
            "exact expansion refused"
        )
    base = wc.address.value
    pairs = []
    for combo in range(1 << len(scattered)):
        value = base
        for idx, bit in enumerate(scattered):
            if combo & (1 << idx):
                value |= 1 << bit
        pairs.append((value, value | run))
    return IntervalSet.from_pairs(pairs)


@dataclasses.dataclass(frozen=True)
class PacketRegion:
    """A conjunctive constraint over every ACL-matchable packet field."""

    src: IntervalSet = U32
    dst: IntervalSet = U32
    protocol: IntervalSet = FULL_PROTOCOL_RANGE
    src_ports: IntervalSet = FULL_PORT_RANGE
    dst_ports: IntervalSet = FULL_PORT_RANGE
    established: FrozenSet[bool] = BOTH

    # Hash-consed: equality hits the identity fast path for interned
    # regions, and the (expensive, six-field) hash is computed once.

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is PacketRegion:
            return (
                self.src == other.src
                and self.dst == other.dst
                and self.protocol == other.protocol
                and self.src_ports == other.src_ports
                and self.dst_ports == other.dst_ports
                and self.established == other.established
            )
        return NotImplemented

    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash(
                (
                    self.src,
                    self.dst,
                    self.protocol,
                    self.src_ports,
                    self.dst_ports,
                    self.established,
                )
            )
            object.__setattr__(self, "_hash", value)
            return value

    def intersect(self, other: "PacketRegion") -> "PacketRegion":
        if self is other:
            return self
        return _R_INTERSECT.lookup((self, other), lambda: self._intersect(other))

    def _intersect(self, other: "PacketRegion") -> "PacketRegion":
        return intern_region(
            PacketRegion(
                src=self.src.intersect(other.src),
                dst=self.dst.intersect(other.dst),
                protocol=self.protocol.intersect(other.protocol),
                src_ports=self.src_ports.intersect(other.src_ports),
                dst_ports=self.dst_ports.intersect(other.dst_ports),
                established=self.established & other.established,
            )
        )

    def is_empty(self) -> bool:
        return _R_EMPTY.lookup(self, self._is_empty)

    def _is_empty(self) -> bool:
        if (
            self.src.is_empty()
            or self.dst.is_empty()
            or self.protocol.is_empty()
            or self.src_ports.is_empty()
            or self.dst_ports.is_empty()
            or not self.established
        ):
            return True
        # "Established" packets are TCP by definition (the packet model
        # enforces this), so an established-only region needs TCP.
        if self.established == frozenset((True,)) and not self.protocol.contains(
            _TCP
        ):
            return True
        return False

    def subsumes(self, other: "PacketRegion") -> bool:
        """Exact containment: every packet of ``other`` is in this region.

        Field-wise interval containment plus the established/TCP
        coupling: a region's packets split into an ``established=False``
        part (constrained by the full protocol set) and an
        ``established=True`` part (necessarily TCP), and each nonempty
        part must fit.  This decides subset questions between single
        regions without any subtraction; the property tests check it
        against the carving-based definition.
        """
        if other.is_empty():
            return True
        if self.is_empty():
            return False
        if not (
            other.src.is_subset_of(self.src)
            and other.dst.is_subset_of(self.dst)
            and other.src_ports.is_subset_of(self.src_ports)
            and other.dst_ports.is_subset_of(self.dst_ports)
        ):
            return False
        if False in other.established:
            # The non-established part spans other's whole protocol set.
            if False not in self.established:
                return False
            if not other.protocol.is_subset_of(self.protocol):
                return False
        if True in other.established and other.protocol.contains(_TCP):
            # The established part is TCP-only.
            if True not in self.established:
                return False
            if not self.protocol.contains(_TCP):
                return False
        return True

    def negation_regions(self) -> Tuple["PacketRegion", ...]:
        return _R_NEGATE.lookup(self, self._negation_regions)

    def _negation_regions(self) -> Tuple["PacketRegion", ...]:
        out: List[PacketRegion] = []
        for field, universe in (
            ("src", U32),
            ("dst", U32),
            ("protocol", FULL_PROTOCOL_RANGE),
            ("src_ports", FULL_PORT_RANGE),
            ("dst_ports", FULL_PORT_RANGE),
        ):
            value: IntervalSet = getattr(self, field)
            if value != universe:
                out.append(
                    intern_region(
                        PacketRegion(**{field: value.complement(universe)})
                    )
                )
        if self.established != BOTH:
            missing = BOTH - self.established
            out.append(intern_region(PacketRegion(established=missing)))
        return tuple(out)

    def subtract_region(self, other: "PacketRegion") -> Tuple["PacketRegion", ...]:
        """Exact difference as *disjoint* pieces (hyper-rectangle carving).

        Returns ``(self,)`` untouched when the regions are disjoint
        (decided by the cheap :func:`regions_disjoint` pre-check), and
        at most one piece per field otherwise — the key to keeping
        first-match reachability linear on real ACLs instead of the
        exponential growth DNF complements would cause.
        """
        if regions_disjoint(self, other):
            return (self,)
        return _R_SUBTRACT.lookup(
            (self, other), lambda: self._subtract_region(other)
        )

    def _subtract_region(self, other: "PacketRegion") -> Tuple["PacketRegion", ...]:
        pieces: List[PacketRegion] = []
        current = self
        for field, _universe in (
            ("src", U32),
            ("dst", U32),
            ("protocol", FULL_PROTOCOL_RANGE),
            ("src_ports", FULL_PORT_RANGE),
            ("dst_ports", FULL_PORT_RANGE),
        ):
            mine: IntervalSet = getattr(current, field)
            theirs: IntervalSet = getattr(other, field)
            outside = mine.subtract(theirs)
            if not outside.is_empty():
                pieces.append(
                    intern_region(
                        dataclasses.replace(current, **{field: outside})
                    )
                )
            current = dataclasses.replace(
                current, **{field: mine.intersect(theirs)}
            )
        missing = current.established - other.established
        if missing:
            pieces.append(
                intern_region(
                    dataclasses.replace(current, established=missing)
                )
            )
        return tuple(pieces)

    def contains(self, packet: Packet) -> bool:
        """Field-wise membership.

        Port fields are treated as formal fields present on every packet
        (rule regions for portless protocols leave them unconstrained, so
        this agrees with concrete ACL evaluation on every rule region, and
        the boolean algebra stays exact).
        """
        return (
            self.src.contains(packet.src_ip.value)
            and self.dst.contains(packet.dst_ip.value)
            and self.protocol.contains(packet.protocol)
            and self.src_ports.contains(packet.src_port)
            and self.dst_ports.contains(packet.dst_port)
            and packet.tcp_established in self.established
        )

    def witness(self) -> Optional[Packet]:
        return _R_WITNESS.lookup(self, self._witness)

    def _witness(self) -> Optional[Packet]:
        if self.is_empty():
            return None
        must_be_established = self.established == frozenset((True,))
        if must_be_established or self.protocol.contains(_TCP):
            protocol = _TCP
        elif self.protocol.contains(_UDP):
            protocol = _UDP
        else:
            protocol = self.protocol.min()
        return Packet(
            src_ip=Ipv4Address(self.src.min()),
            dst_ip=Ipv4Address(self.dst.min()),
            protocol=protocol,
            src_port=self.src_ports.min(),
            dst_port=self.dst_ports.min(),
            tcp_established=must_be_established,
        )

    def __str__(self) -> str:
        parts = []
        for field, universe in (
            ("src", U32),
            ("dst", U32),
            ("protocol", FULL_PROTOCOL_RANGE),
            ("src_ports", FULL_PORT_RANGE),
            ("dst_ports", FULL_PORT_RANGE),
        ):
            value = getattr(self, field)
            if value != universe:
                parts.append(f"{field} in {value}")
        if self.established != BOTH:
            parts.append(f"established in {sorted(self.established)}")
        return " & ".join(parts) if parts else "true"


def _dedupe(regions: Sequence[PacketRegion]) -> Tuple[PacketRegion, ...]:
    # Hash-based, order-preserving dedupe: canonical region hashing makes
    # this linear where the old list scan was quadratic in region count.
    kept: List[PacketRegion] = []
    seen = set()
    for region in regions:
        if region in seen or region.is_empty():
            continue
        seen.add(region)
        kept.append(region)
    return tuple(kept)


@dataclasses.dataclass(frozen=True)
class PacketSpace:
    """A finite union of :class:`PacketRegion`."""

    regions: Tuple[PacketRegion, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "regions", _dedupe(self.regions))

    @classmethod
    def empty(cls) -> "PacketSpace":
        return cls(())

    @classmethod
    def universe(cls) -> "PacketSpace":
        return cls((PacketRegion(),))

    @classmethod
    def of(cls, region: PacketRegion) -> "PacketSpace":
        return cls((region,))

    def union(self, other: "PacketSpace") -> "PacketSpace":
        return PacketSpace(self.regions + other.regions)

    def intersect(self, other: "PacketSpace") -> "PacketSpace":
        obs.count("headerspace.intersections")
        mine, theirs = self.regions, other.regions
        if len(mine) * len(theirs) >= _MATRIX_MIN_PAIRS:
            # Batch-screen the cross product: products the kernel proves
            # empty would be dropped by _dedupe anyway, so skipping them
            # changes nothing but the work done.
            disjoint = regions_disjoint_matrix(mine, theirs)
            out = [
                a.intersect(b)
                for i, a in enumerate(mine)
                for j, b in enumerate(theirs)
                if not disjoint[i][j]
            ]
        else:
            out = [a.intersect(b) for a in mine for b in theirs]
        return PacketSpace(tuple(out))

    def complement(self) -> "PacketSpace":
        return PacketSpace.universe().subtract(self)

    def subtract(self, other: "PacketSpace") -> "PacketSpace":
        """Exact difference via disjoint rectangle carving (stays small)."""
        obs.count("headerspace.subtractions")
        remaining = list(self.regions)
        for taken in other.regions:
            if len(remaining) >= _MATRIX_MIN_PAIRS:
                # Batch-screen the column: regions provably disjoint from
                # ``taken`` pass through untouched — exactly the
                # ``(self,)`` fast path of subtract_region.
                disjoint = regions_disjoint_matrix(remaining, (taken,))
                carved: List[PacketRegion] = []
                for index, region in enumerate(remaining):
                    if disjoint[index][0]:
                        carved.append(region)
                    else:
                        carved.extend(region.subtract_region(taken))
                remaining = carved
            else:
                remaining = [
                    piece
                    for region in remaining
                    for piece in region.subtract_region(taken)
                ]
            if not remaining:
                break
        return PacketSpace(tuple(remaining))

    def is_empty(self) -> bool:
        return not self.regions

    def is_subset_of(self, other: "PacketSpace") -> bool:
        if not self.regions:
            return True
        if len(other.regions) == 1:
            # Exact: a union is inside a single region iff every piece is.
            target = other.regions[0]
            return all(target.subsumes(region) for region in self.regions)
        if all(
            any(target.subsumes(region) for target in other.regions)
            for region in self.regions
        ):
            # Sufficient only (a piece may straddle several targets), so
            # a failure still falls through to the exact subtraction.
            return True
        return self.subtract(other).is_empty()

    def contains(self, packet: Packet) -> bool:
        return any(region.contains(packet) for region in self.regions)

    def witness(self) -> Optional[Packet]:
        for region in self.regions:
            packet = region.witness()
            if packet is not None:
                return packet
        return None

    def __len__(self) -> int:
        return len(self.regions)


def acl_rule_region(rule: AclRule) -> PacketRegion:
    """The packets one ACL rule matches."""
    carries_ports = rule.protocol.carries_ports()
    return intern_region(
        PacketRegion(
            src=wildcard_to_intervals(rule.src),
            dst=wildcard_to_intervals(rule.dst),
            protocol=rule.protocol.to_intervals(),
            src_ports=(
                rule.src_ports.to_intervals() if carries_ports else FULL_PORT_RANGE
            ),
            dst_ports=(
                rule.dst_ports.to_intervals() if carries_ports else FULL_PORT_RANGE
            ),
            established=frozenset((True,)) if rule.established else BOTH,
        )
    )


def acl_guard_space(rule: AclRule) -> PacketSpace:
    obs.count("headerspace.guards")
    return PacketSpace.of(acl_rule_region(rule))


def acl_reachable_spaces(
    acl: Acl, include_implicit_deny: bool = False
) -> List[Tuple[Optional[AclRule], PacketSpace]]:
    """Per-rule spaces of packets that reach and match each rule.

    Incremental first-match semantics: one residual space is threaded
    through the rule list and each rule's guard is subtracted from it
    exactly once.  Residual regions provably disjoint from a guard
    (:func:`regions_disjoint`, interval bounding tests) pass through the
    subtraction untouched, and repeated guard/residual pairs hit the
    memoized region algebra — together these keep the walk near-linear
    on real ACLs.
    """
    remaining = PacketSpace.universe()
    out: List[Tuple[Optional[AclRule], PacketSpace]] = []
    for rule in acl.rules:
        guard = acl_guard_space(rule)
        out.append((rule, guard.intersect(remaining)))
        remaining = remaining.subtract(guard)
        if remaining.is_empty():
            remaining = PacketSpace.empty()
    if include_implicit_deny:
        out.append((None, remaining))
    return out


__all__ = [
    "HeaderSpaceError",
    "PacketRegion",
    "PacketSpace",
    "acl_guard_space",
    "acl_reachable_spaces",
    "acl_rule_region",
    "intern_region",
    "regions_disjoint",
    "regions_disjoint_matrix",
    "regions_subsume_matrix",
    "wildcard_to_intervals",
]
