"""Symbolic route spaces: unions of per-field product regions.

A :class:`RouteRegion` constrains every matchable field of a BGP route:

* the network prefix, as a :class:`~repro.analysis.prefixspace.PrefixSpace`;
* the community set, as *required* regexes (at least one community must
  match each) and *forbidden* regexes (no community may match any);
* the AS path, as required/forbidden regexes over the rendered path;
* local preference, metric, and tag as integer interval sets.

A :class:`RouteSpace` is a finite union of regions.  Stanza guards
translate into spaces; first-match semantics is captured by subtracting
earlier guards (:func:`route_map_reachable_spaces`).  Emptiness of the
regex constraints is decided with the automaton product search in
:mod:`repro.regexlib`, memoised because guards repeat the same small
pattern sets.

Like the header-space engine, regions are hash-consed through
:mod:`repro.perf.cache`: regions are interned (equality usually decides
by identity), ``intersect`` / ``is_empty`` / ``negation_regions`` /
``witness`` are memoized in bounded LRU tables, and subtraction skips
regions that a cheap field-wise pre-check
(:func:`regions_cheaply_disjoint`) proves untouched before any product
construction or automaton search runs.  See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.prefixspace import PrefixAtom, PrefixSpace
from repro.config.lists import (
    PERMIT,
    AsPathAccessList,
    CommunityList,
    CommunityListEntry,
    PrefixList,
)
from repro.config.matches import (
    MatchAsPath,
    MatchClause,
    MatchCommunity,
    MatchLocalPreference,
    MatchMetric,
    MatchPrefixList,
    MatchTag,
)
from repro.config.routemap import RouteMap, RouteMapStanza
from repro.config.store import ConfigStore
from repro.netaddr import IntervalSet
from repro.perf import cache as _perf
from repro.regexlib.cisco import (
    as_path_matches,
    community_matches,
    find_community,
    literal_community_pattern,
)
from repro.regexlib.nfa import compile_regex, find_word
from repro.route import BgpRoute
from repro.route.bgproute import DEFAULT_LOCAL_PREFERENCE, DEFAULT_METRIC

U32 = IntervalSet.closed(0, 0xFFFFFFFF)

#: Fields whose symbolic domain is an interval set, with their universes.
SCALAR_UNIVERSES: Dict[str, IntervalSet] = {
    "local_preference": U32,
    "metric": U32,
    "tag": U32,
}


class AnalysisError(RuntimeError):
    """Raised when a constraint is outside the engine's decidable fragment."""


# ----------------------------------------------------------- regex caching


@functools.lru_cache(maxsize=None)
def _community_witness(
    required: Tuple[str, ...], forbidden: Tuple[str, ...]
) -> Optional[Tuple[str, ...]]:
    """One community per required pattern, each avoiding all forbidden.

    Returns None when some required pattern is unsatisfiable against the
    forbidden set.  The union of the returned communities satisfies the
    whole constraint (each witness individually avoids every forbidden
    pattern).
    """
    witnesses = []
    for pattern in required:
        witness = find_community([pattern], list(forbidden))
        if witness is None:
            return None
        witnesses.append(witness)
    return tuple(witnesses)


@functools.lru_cache(maxsize=None)
def _as_path_word(
    required: Tuple[str, ...], forbidden: Tuple[str, ...]
) -> Optional[str]:
    pos = [compile_regex(p) for p in required]
    neg = [compile_regex(p) for p in forbidden]
    return find_word(pos, neg)


# ----------------------------------------------------------------- regions


#: Hash-cons table for regions and LRU memos for the region algebra
#: (stats surface as ``cache.*`` counters; see ``docs/PERFORMANCE.md``).
_REGION_INTERNER = _perf.Interner("routespace.regions")
_R_INTERSECT = _perf.Memo("routespace.intersect")
_R_NEGATE = _perf.Memo("routespace.negation")
_R_EMPTY = _perf.Memo("routespace.is_empty")
_R_WITNESS = _perf.Memo("routespace.witness")


def intern_route_region(region: "RouteRegion") -> "RouteRegion":
    """Return the canonical shared object for ``region``."""
    return _REGION_INTERNER.intern(region)


def regions_cheaply_disjoint(a: "RouteRegion", b: "RouteRegion") -> bool:
    """Sound, incomplete disjointness: True proves the intersection empty.

    Used by :meth:`RouteSpace.subtract` to keep regions untouched without
    building the product region or running the automaton search.  The
    checks mirror :meth:`RouteRegion.obviously_empty` on the would-be
    intersection: a pattern required on one side and forbidden on the
    other, an empty scalar interval intersection, or prefix spaces whose
    address bounding boxes cannot overlap.
    """
    if a.communities_required & b.communities_forbidden:
        return True
    if b.communities_required & a.communities_forbidden:
        return True
    if a.as_path_required & b.as_path_forbidden:
        return True
    if b.as_path_required & a.as_path_forbidden:
        return True
    for field in SCALAR_UNIVERSES:
        if getattr(a, field).intersect(getattr(b, field)).is_empty():
            return True
    bounds_a = a.prefix.bounds()
    bounds_b = b.prefix.bounds()
    if bounds_a is None or bounds_b is None:
        return True
    return bounds_a[1] < bounds_b[0] or bounds_b[1] < bounds_a[0]


def spaces_cheaply_disjoint_matrix(
    spaces: Sequence["RouteSpace"],
) -> List[bytearray]:
    """Batched all-pairs :func:`regions_cheaply_disjoint` pre-check.

    ``out[i][j]`` is 1 iff every region product of ``spaces[i]`` and
    ``spaces[j]`` is provably disjoint — exactly
    ``all(regions_cheaply_disjoint(ra, rb) for ra in spaces[i].regions
    for rb in spaces[j].regions)``, which is what the overlap detector's
    stanza pre-check asks per pair.  All regions of all spaces are
    flattened and their scalar fields encoded **once**
    (:func:`repro.perf.kernels.encode`), so the interval part of the
    check runs as array sweeps instead of ``O(pairs * fields)``
    memo-keyed ``IntervalSet.intersect`` calls; the pattern-clash and
    prefix-bounds parts stay per-product (they are set/None tests).
    """
    from repro.perf import kernels as _kernels

    regions: List[RouteRegion] = []
    slices: List[Tuple[int, int]] = []
    for space in spaces:
        start = len(regions)
        regions.extend(space.regions)
        slices.append((start, len(regions)))
    count = len(spaces)
    if not regions:
        return [bytearray([1] * count) for _ in range(count)]
    encoded = [
        _kernels.encode([getattr(r, field) for r in regions])
        for field in SCALAR_UNIVERSES
    ]
    scalar_disjoint = [
        _kernels.disjoint_matrix(enc, enc) for enc in encoded
    ]
    bounds = [region.prefix.bounds() for region in regions]

    def product_disjoint(x: int, y: int) -> bool:
        rx, ry = regions[x], regions[y]
        if rx.communities_required & ry.communities_forbidden:
            return True
        if ry.communities_required & rx.communities_forbidden:
            return True
        if rx.as_path_required & ry.as_path_forbidden:
            return True
        if ry.as_path_required & rx.as_path_forbidden:
            return True
        if any(matrix[x][y] for matrix in scalar_disjoint):
            return True
        bounds_x, bounds_y = bounds[x], bounds[y]
        if bounds_x is None or bounds_y is None:
            return True
        return bounds_x[1] < bounds_y[0] or bounds_y[1] < bounds_x[0]

    out: List[bytearray] = []
    for i in range(count):
        row = bytearray(count)
        lo_i, hi_i = slices[i]
        for j in range(count):
            lo_j, hi_j = slices[j]
            row[j] = (
                1
                if all(
                    product_disjoint(x, y)
                    for x in range(lo_i, hi_i)
                    for y in range(lo_j, hi_j)
                )
                else 0
            )
        out.append(row)
    return out


def spaces_cheaply_disjoint(a: "RouteSpace", b: "RouteSpace") -> bool:
    """Sound, incomplete disjointness of two spaces (kernel-batched).

    Exactly ``all(regions_cheaply_disjoint(ra, rb) for ra in a.regions
    for rb in b.regions)``.
    """
    matrix = spaces_cheaply_disjoint_matrix((a, b))
    return bool(matrix[0][1])


@dataclasses.dataclass(frozen=True)
class RouteRegion:
    """A conjunctive constraint over every matchable route field."""

    prefix: PrefixSpace = dataclasses.field(default_factory=PrefixSpace.universe)
    communities_required: FrozenSet[str] = frozenset()
    communities_forbidden: FrozenSet[str] = frozenset()
    as_path_required: FrozenSet[str] = frozenset()
    as_path_forbidden: FrozenSet[str] = frozenset()
    local_preference: IntervalSet = U32
    metric: IntervalSet = U32
    tag: IntervalSet = U32

    # Equality is structural with an identity fast path (regions flowing
    # through the algebra are interned, so ``is`` usually decides), and
    # the hash is computed once per object — the fields cascade into
    # prefix atoms, frozensets, and interval tuples, so a recomputed
    # hash per memo lookup would dominate the lookup itself.

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is RouteRegion:
            return (
                self.prefix == other.prefix
                and self.communities_required == other.communities_required
                and self.communities_forbidden == other.communities_forbidden
                and self.as_path_required == other.as_path_required
                and self.as_path_forbidden == other.as_path_forbidden
                and self.local_preference == other.local_preference
                and self.metric == other.metric
                and self.tag == other.tag
            )
        return NotImplemented

    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash(
                (
                    self.prefix,
                    self.communities_required,
                    self.communities_forbidden,
                    self.as_path_required,
                    self.as_path_forbidden,
                    self.local_preference,
                    self.metric,
                    self.tag,
                )
            )
            object.__setattr__(self, "_hash", value)
            return value

    # ------------------------------------------------------------ algebra

    def intersect(self, other: "RouteRegion") -> "RouteRegion":
        if self is other:
            return self
        return _R_INTERSECT.lookup(
            (self, other), lambda: self._intersect(other)
        )

    def _intersect(self, other: "RouteRegion") -> "RouteRegion":
        return intern_route_region(RouteRegion(
            prefix=self.prefix.intersect(other.prefix),
            communities_required=self.communities_required
            | other.communities_required,
            communities_forbidden=self.communities_forbidden
            | other.communities_forbidden,
            as_path_required=self.as_path_required | other.as_path_required,
            as_path_forbidden=self.as_path_forbidden | other.as_path_forbidden,
            local_preference=self.local_preference.intersect(
                other.local_preference
            ),
            metric=self.metric.intersect(other.metric),
            tag=self.tag.intersect(other.tag),
        ))

    def negation_regions(self) -> Tuple["RouteRegion", ...]:
        """Regions whose union is the complement of this region."""
        return _R_NEGATE.lookup(self, self._negation_regions)

    def _negation_regions(self) -> Tuple["RouteRegion", ...]:
        out: List[RouteRegion] = []
        if not self.prefix.is_universe():
            out.append(RouteRegion(prefix=self.prefix.complement()))
        for pattern in sorted(self.communities_required):
            out.append(RouteRegion(communities_forbidden=frozenset((pattern,))))
        for pattern in sorted(self.communities_forbidden):
            out.append(RouteRegion(communities_required=frozenset((pattern,))))
        for pattern in sorted(self.as_path_required):
            out.append(RouteRegion(as_path_forbidden=frozenset((pattern,))))
        for pattern in sorted(self.as_path_forbidden):
            out.append(RouteRegion(as_path_required=frozenset((pattern,))))
        for field, universe in SCALAR_UNIVERSES.items():
            value: IntervalSet = getattr(self, field)
            if value != universe:
                out.append(
                    RouteRegion(**{field: value.complement(universe)})
                )
        return tuple(intern_route_region(region) for region in out)

    def obviously_empty(self) -> bool:
        """Cheap emptiness checks, no automaton search."""
        if self.prefix.is_empty():
            return True
        for field in SCALAR_UNIVERSES:
            if getattr(self, field).is_empty():
                return True
        if self.communities_required & self.communities_forbidden:
            return True
        if self.as_path_required & self.as_path_forbidden:
            return True
        return False

    def is_empty(self) -> bool:
        return _R_EMPTY.lookup(self, self._is_empty)

    def _is_empty(self) -> bool:
        if self.obviously_empty():
            return True
        if (
            _community_witness(
                tuple(sorted(self.communities_required)),
                tuple(sorted(self.communities_forbidden)),
            )
            is None
        ):
            return True
        word = _as_path_word(
            tuple(sorted(self.as_path_required)),
            tuple(sorted(self.as_path_forbidden)),
        )
        return word is None

    def subsumes(self, other: "RouteRegion") -> bool:
        """Sound but incomplete: True implies ``other`` is inside this region."""
        return (
            self.communities_required <= other.communities_required
            and self.communities_forbidden <= other.communities_forbidden
            and self.as_path_required <= other.as_path_required
            and self.as_path_forbidden <= other.as_path_forbidden
            and other.prefix.is_subset_of(self.prefix)
            and all(
                getattr(other, f).is_subset_of(getattr(self, f))
                for f in SCALAR_UNIVERSES
            )
        )

    # ----------------------------------------------------------- concrete

    def contains(self, route: BgpRoute) -> bool:
        if not self.prefix.contains(route.network):
            return False
        for pattern in self.communities_required:
            if not any(community_matches(pattern, c) for c in route.communities):
                return False
        for pattern in self.communities_forbidden:
            if any(community_matches(pattern, c) for c in route.communities):
                return False
        asns = route.asns()
        for pattern in self.as_path_required:
            if not as_path_matches(pattern, asns):
                return False
        for pattern in self.as_path_forbidden:
            if as_path_matches(pattern, asns):
                return False
        return (
            self.local_preference.contains(route.local_preference)
            and self.metric.contains(route.metric)
            and self.tag.contains(route.tag)
        )

    def witness(self) -> Optional[BgpRoute]:
        """A concrete route in this region, or None when empty.

        Prefers Batfish-style defaults (local preference 100, metric 0)
        when they satisfy the constraint, so differential examples look
        like the ones in the paper.
        """
        return _R_WITNESS.lookup(self, self._witness)

    def _witness(self) -> Optional[BgpRoute]:
        if self.obviously_empty():
            return None
        network = self.prefix.witness()
        communities = _community_witness(
            tuple(sorted(self.communities_required)),
            tuple(sorted(self.communities_forbidden)),
        )
        if communities is None:
            return None
        word = _as_path_word(
            tuple(sorted(self.as_path_required)),
            tuple(sorted(self.as_path_forbidden)),
        )
        if word is None:
            return None
        as_path = _word_to_as_path(
            word,
            tuple(sorted(self.as_path_required)),
            tuple(sorted(self.as_path_forbidden)),
        )

        def pick(field: str, preferred: int) -> int:
            values: IntervalSet = getattr(self, field)
            if values.contains(preferred):
                return preferred
            return values.min()

        return BgpRoute.build(
            network=str(network),
            as_path=as_path,
            communities=communities,
            local_preference=pick("local_preference", DEFAULT_LOCAL_PREFERENCE),
            metric=pick("metric", DEFAULT_METRIC),
            tag=pick("tag", 0),
        )

    def __str__(self) -> str:
        parts = []
        if not self.prefix.is_universe():
            parts.append(f"prefix in {self.prefix}")
        for name, value in (
            ("community", self.communities_required),
            ("!community", self.communities_forbidden),
            ("as-path", self.as_path_required),
            ("!as-path", self.as_path_forbidden),
        ):
            for pattern in sorted(value):
                parts.append(f"{name}~{pattern}")
        for field, universe in SCALAR_UNIVERSES.items():
            value = getattr(self, field)
            if value != universe:
                parts.append(f"{field} in {value}")
        return " & ".join(parts) if parts else "true"


def _word_to_as_path(
    word: str, required: Tuple[str, ...], forbidden: Tuple[str, ...]
) -> List[int]:
    """Turn an automaton witness word into a concrete AS path."""
    from repro.regexlib.cisco import parse_as_path_witness, render_as_path

    path = parse_as_path_witness(word)
    if path is None:
        raise AnalysisError(
            f"AS-path witness {word!r} cannot be read as an ASN sequence; "
            "patterns must constrain digits and delimiters only"
        )
    rendered = render_as_path(path)
    if not all(as_path_matches(p, path) for p in required) or any(
        as_path_matches(p, path) for p in forbidden
    ):
        raise AnalysisError(
            f"AS-path witness {rendered!r} does not satisfy "
            f"required={required} forbidden={forbidden}"
        )
    return path


# ------------------------------------------------------------------ spaces


def _dedupe(regions: Sequence[RouteRegion]) -> Tuple[RouteRegion, ...]:
    # Exact duplicates first: interning makes the membership test a hash
    # probe, and the subsumption loop below is quadratic in what is
    # left.  Dropping a duplicate is output-preserving because subsumes
    # is reflexive — the original loop always skipped later copies.
    seen = set()
    unique: List[RouteRegion] = []
    for region in regions:
        if region.obviously_empty():
            continue
        region = intern_route_region(region)
        if region in seen:
            continue
        seen.add(region)
        unique.append(region)
    kept: List[RouteRegion] = []
    for region in unique:
        if any(other.subsumes(region) for other in kept):
            continue
        kept = [other for other in kept if not region.subsumes(other)]
        kept.append(region)
    return tuple(kept)


@dataclasses.dataclass(frozen=True)
class RouteSpace:
    """A finite union of :class:`RouteRegion`."""

    regions: Tuple[RouteRegion, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "regions", _dedupe(self.regions))

    @classmethod
    def empty(cls) -> "RouteSpace":
        return cls(())

    @classmethod
    def universe(cls) -> "RouteSpace":
        return cls((RouteRegion(),))

    @classmethod
    def of(cls, region: RouteRegion) -> "RouteSpace":
        return cls((region,))

    def union(self, other: "RouteSpace") -> "RouteSpace":
        return RouteSpace(self.regions + other.regions)

    def intersect(self, other: "RouteSpace") -> "RouteSpace":
        obs.count("routespace.intersections")
        out = [
            a.intersect(b) for a in self.regions for b in other.regions
        ]
        return RouteSpace(tuple(out))

    def complement(self) -> "RouteSpace":
        result = RouteSpace.universe()
        for region in self.regions:
            negated = RouteSpace(region.negation_regions())
            result = result.intersect(negated)
            if result.is_trivially_empty():
                break
        return result

    def subtract(self, other: "RouteSpace") -> "RouteSpace":
        """Region-wise difference with a disjointness fast path.

        Regions that do not intersect the subtrahend are kept untouched
        (the common case when stanza guards are disjoint), so first-match
        reachability stays small on wide route-maps.
        """
        obs.count("routespace.subtractions")
        remaining = list(self.regions)
        for taken in other.regions:
            carved: List[RouteRegion] = []
            for region in remaining:
                if regions_cheaply_disjoint(region, taken):
                    carved.append(region)
                    continue
                if region.intersect(taken).is_empty():
                    carved.append(region)
                    continue
                carved.extend(
                    region.intersect(negated)
                    for negated in taken.negation_regions()
                )
            remaining = [r for r in carved if not r.obviously_empty()]
            if not remaining:
                break
        return RouteSpace(tuple(remaining))

    def is_trivially_empty(self) -> bool:
        return not self.regions

    def is_empty(self) -> bool:
        return all(region.is_empty() for region in self.regions)

    def is_subset_of(self, other: "RouteSpace") -> bool:
        return self.subtract(other).is_empty()

    def contains(self, route: BgpRoute) -> bool:
        return any(region.contains(route) for region in self.regions)

    def witness(self) -> Optional[BgpRoute]:
        for region in self.regions:
            route = region.witness()
            if route is not None:
                return route
        return None

    def __len__(self) -> int:
        return len(self.regions)

    def __str__(self) -> str:
        if not self.regions:
            return "false"
        return " | ".join(f"({region})" for region in self.regions)


# ----------------------------------------------- guard translation (lists)


def prefix_list_space(pl: PrefixList) -> PrefixSpace:
    """The set of networks a prefix-list permits (first match wins)."""
    remaining = PrefixSpace.universe()
    permitted = PrefixSpace.empty()
    for entry in pl.entries:
        lo, hi = entry.length_bounds()
        atom_space = PrefixSpace.of_atom(PrefixAtom(entry.prefix, lo, hi))
        if entry.action == PERMIT:
            permitted = permitted.union(atom_space.intersect(remaining))
        remaining = remaining.subtract(atom_space)
        if remaining.is_empty():
            break
    return permitted


#: A DNF community/as-path condition: (required, forbidden) pattern pairs.
_Dnf = List[Tuple[FrozenSet[str], FrozenSet[str]]]


def _entry_condition(entry: CommunityListEntry) -> _Dnf:
    if entry.regex is not None:
        return [(frozenset((entry.regex,)), frozenset())]
    patterns = frozenset(literal_community_pattern(c) for c in entry.communities)
    return [(patterns, frozenset())]


def _entry_negation(entry: CommunityListEntry) -> _Dnf:
    if entry.regex is not None:
        return [(frozenset(), frozenset((entry.regex,)))]
    return [
        (frozenset(), frozenset((literal_community_pattern(c),)))
        for c in entry.communities
    ]


def _dnf_product(left: _Dnf, right: _Dnf) -> _Dnf:
    return [
        (lr | rr, lf | rf) for (lr, lf) in left for (rr, rf) in right
    ]


def community_list_dnf(cl: CommunityList) -> _Dnf:
    """DNF of "this community list permits the route"."""
    permitted: _Dnf = []
    preceding: _Dnf = [(frozenset(), frozenset())]
    for entry in cl.entries:
        if entry.action == PERMIT:
            permitted.extend(_dnf_product(_entry_condition(entry), preceding))
        negation = _entry_negation(entry)
        preceding = _dnf_product(preceding, negation)
    return permitted


def as_path_list_dnf(al: AsPathAccessList) -> _Dnf:
    """DNF of "this as-path access-list permits the route"."""
    permitted: _Dnf = []
    forbidden_so_far: FrozenSet[str] = frozenset()
    for entry in al.entries:
        if entry.action == PERMIT:
            permitted.append((frozenset((entry.regex,)), forbidden_so_far))
        forbidden_so_far = forbidden_so_far | {entry.regex}
    return permitted


# ---------------------------------------------- guard translation (clauses)


def clause_space(clause: MatchClause, store: ConfigStore) -> RouteSpace:
    """The set of routes a single match clause accepts."""
    if isinstance(clause, MatchPrefixList):
        space = PrefixSpace.empty()
        for name in clause.names:
            space = space.union(prefix_list_space(store.prefix_list(name)))
        return RouteSpace.of(RouteRegion(prefix=space))
    if isinstance(clause, MatchCommunity):
        regions = []
        for name in clause.names:
            for required, forbidden in community_list_dnf(
                store.community_list(name)
            ):
                regions.append(
                    RouteRegion(
                        communities_required=required,
                        communities_forbidden=forbidden,
                    )
                )
        return RouteSpace(tuple(regions))
    if isinstance(clause, MatchAsPath):
        regions = []
        for name in clause.names:
            for required, forbidden in as_path_list_dnf(
                store.as_path_list(name)
            ):
                regions.append(
                    RouteRegion(
                        as_path_required=required,
                        as_path_forbidden=forbidden,
                    )
                )
        return RouteSpace(tuple(regions))
    if isinstance(clause, MatchLocalPreference):
        return RouteSpace.of(
            RouteRegion(local_preference=IntervalSet.single(clause.value))
        )
    if isinstance(clause, MatchMetric):
        return RouteSpace.of(RouteRegion(metric=IntervalSet.single(clause.value)))
    if isinstance(clause, MatchTag):
        return RouteSpace.of(RouteRegion(tag=IntervalSet.single(clause.value)))
    raise TypeError(f"unknown match clause: {clause!r}")


def stanza_guard_space(stanza: RouteMapStanza, store: ConfigStore) -> RouteSpace:
    """The set of routes a stanza matches (clauses are conjunctive)."""
    obs.count("routespace.guards")
    space = RouteSpace.universe()
    for clause in stanza.matches:
        space = space.intersect(clause_space(clause, store))
        if space.is_trivially_empty():
            break
    return space


def route_map_reachable_spaces(
    route_map: RouteMap,
    store: ConfigStore,
    include_implicit_deny: bool = False,
) -> List[Tuple[Optional[RouteMapStanza], RouteSpace]]:
    """Per-stanza spaces of routes that *reach and match* each stanza.

    The returned spaces partition the route universe restricted to matched
    routes; with ``include_implicit_deny`` a final ``(None, space)`` entry
    holds the routes falling through to the implicit deny.
    """
    remaining = RouteSpace.universe()
    out: List[Tuple[Optional[RouteMapStanza], RouteSpace]] = []
    for stanza in route_map.stanzas:
        guard = stanza_guard_space(stanza, store)
        out.append((stanza, guard.intersect(remaining)))
        remaining = remaining.subtract(guard)
        if remaining.is_trivially_empty():
            remaining = RouteSpace.empty()
    if include_implicit_deny:
        out.append((None, remaining))
    return out


__all__ = [
    "AnalysisError",
    "RouteRegion",
    "RouteSpace",
    "as_path_list_dnf",
    "clause_space",
    "community_list_dnf",
    "intern_route_region",
    "prefix_list_space",
    "regions_cheaply_disjoint",
    "route_map_reachable_spaces",
    "spaces_cheaply_disjoint",
    "spaces_cheaply_disjoint_matrix",
    "stanza_guard_space",
]
