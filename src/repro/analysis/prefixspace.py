"""The symbolic domain for BGP network prefixes.

A prefix-list entry ``permit P/len ge G le L`` matches the set of route
networks that lie inside ``P/len`` and whose own prefix length falls in a
range.  :class:`PrefixAtom` captures exactly that shape — a covering
prefix plus an inclusive length window — and :class:`PrefixSpace` is a
finite union of atoms closed under intersection and complement, which is
all the guard algebra needs.

The complement of an atom decomposes into at most ``2 * len(P) + 2``
atoms: the *sibling* subtrees that diverge from ``P`` at each bit, the
shorter prefixes along the path to ``P``, and the in-``P`` length windows
outside ``[lo, hi]``.  The property tests in ``tests/analysis`` check
this decomposition against brute-force enumeration on small universes.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.netaddr import Ipv4Prefix


@dataclasses.dataclass(frozen=True)
class PrefixAtom:
    """Networks within ``covering`` whose length lies in ``[lo, hi]``."""

    covering: Ipv4Prefix
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not self.covering.length <= self.lo <= self.hi <= 32:
            raise ValueError(
                f"invalid length window [{self.lo}, {self.hi}] for "
                f"{self.covering}"
            )

    @classmethod
    def universe(cls) -> "PrefixAtom":
        return cls(Ipv4Prefix.parse("0.0.0.0/0"), 0, 32)

    @classmethod
    def exact(cls, prefix: Ipv4Prefix) -> "PrefixAtom":
        return cls(prefix, prefix.length, prefix.length)

    def contains(self, network: Ipv4Prefix) -> bool:
        return (
            self.lo <= network.length <= self.hi
            and self.covering.contains_prefix(network)
        )

    def subsumes(self, other: "PrefixAtom") -> bool:
        """True if every network in ``other`` is in this atom."""
        return (
            self.covering.contains_prefix(other.covering)
            and self.lo <= other.lo
            and other.hi <= self.hi
        )

    def intersect(self, other: "PrefixAtom") -> Optional["PrefixAtom"]:
        if self.covering.contains_prefix(other.covering):
            covering = other.covering
        elif other.covering.contains_prefix(self.covering):
            covering = self.covering
        else:
            return None
        lo = max(self.lo, other.lo, covering.length)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return PrefixAtom(covering, lo, hi)

    def complement_atoms(self) -> Tuple["PrefixAtom", ...]:
        """Atoms whose union is exactly the complement of this atom."""
        out: List[PrefixAtom] = []
        covering = self.covering
        # (a) subtrees diverging from the covering prefix at each bit.
        for depth in range(covering.length):
            sibling = covering.truncate(depth + 1).sibling()
            out.append(PrefixAtom(sibling, depth + 1, 32))
        # (b) strictly shorter prefixes along the path to the covering
        # prefix (they agree on their own bits but are not "within" it).
        for length in range(covering.length):
            out.append(PrefixAtom(covering.truncate(length), length, length))
        # (c) networks inside the covering prefix with lengths outside
        # the [lo, hi] window.
        if self.lo > covering.length:
            out.append(PrefixAtom(covering, covering.length, self.lo - 1))
        if self.hi < 32:
            out.append(PrefixAtom(covering, self.hi + 1, 32))
        return tuple(out)

    def witness(self) -> Ipv4Prefix:
        """An arbitrary network in this atom (the all-zero extension)."""
        return Ipv4Prefix.canonical(self.covering.network, self.lo)

    def __str__(self) -> str:
        if self.lo == self.hi == self.covering.length:
            return str(self.covering)
        return f"{self.covering}:{self.lo}-{self.hi}"


def _absorb(atoms: Sequence[PrefixAtom]) -> Tuple[PrefixAtom, ...]:
    """Drop atoms subsumed by other atoms (keeps the union small)."""
    kept: List[PrefixAtom] = []
    for atom in atoms:
        if any(other.subsumes(atom) for other in kept):
            continue
        kept = [other for other in kept if not atom.subsumes(other)]
        kept.append(atom)
    return tuple(kept)


@dataclasses.dataclass(frozen=True)
class PrefixSpace:
    """A finite union of :class:`PrefixAtom` (not necessarily disjoint)."""

    atoms: Tuple[PrefixAtom, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "atoms", _absorb(self.atoms))

    @classmethod
    def empty(cls) -> "PrefixSpace":
        return cls(())

    @classmethod
    def universe(cls) -> "PrefixSpace":
        return cls((PrefixAtom.universe(),))

    @classmethod
    def of_atom(cls, atom: PrefixAtom) -> "PrefixSpace":
        return cls((atom,))

    @classmethod
    def exact(cls, prefix: Ipv4Prefix) -> "PrefixSpace":
        return cls((PrefixAtom.exact(prefix),))

    def is_empty(self) -> bool:
        return not self.atoms

    def is_universe(self) -> bool:
        return any(atom == PrefixAtom.universe() for atom in self.atoms)

    def bounds(self) -> Optional[Tuple[int, int]]:
        """Inclusive address range covering every network in the space.

        A network in an atom lies inside the atom's covering prefix, so
        two spaces whose bounds do not overlap are certainly disjoint —
        the bounding-box pre-check the route-space subtraction uses to
        skip untouched regions.  Returns ``None`` when empty.
        """
        if not self.atoms:
            return None
        lo = min(atom.covering.first_address().value for atom in self.atoms)
        hi = max(atom.covering.last_address().value for atom in self.atoms)
        return lo, hi

    def contains(self, network: Ipv4Prefix) -> bool:
        return any(atom.contains(network) for atom in self.atoms)

    def union(self, other: "PrefixSpace") -> "PrefixSpace":
        return PrefixSpace(self.atoms + other.atoms)

    def intersect(self, other: "PrefixSpace") -> "PrefixSpace":
        out: List[PrefixAtom] = []
        for a in self.atoms:
            for b in other.atoms:
                got = a.intersect(b)
                if got is not None:
                    out.append(got)
        return PrefixSpace(tuple(out))

    def complement(self) -> "PrefixSpace":
        result = PrefixSpace.universe()
        for atom in self.atoms:
            result = result.intersect(PrefixSpace(atom.complement_atoms()))
            if result.is_empty():
                break
        return result

    def subtract(self, other: "PrefixSpace") -> "PrefixSpace":
        return self.intersect(other.complement())

    def is_subset_of(self, other: "PrefixSpace") -> bool:
        return self.subtract(other).is_empty()

    def witness(self) -> Optional[Ipv4Prefix]:
        if self.is_empty():
            return None
        return self.atoms[0].witness()

    def __str__(self) -> str:
        if self.is_empty():
            return "{}"
        return " u ".join(str(atom) for atom in self.atoms)


__all__ = ["PrefixAtom", "PrefixSpace"]
