"""Clarify: LLM-based incremental network configuration synthesis with
intent disambiguation.

A from-scratch reproduction of Mondal et al., *Tackling Ambiguity in
User Intent for LLM-based Network Configuration Synthesis* (HotNets
'25).  The top-level package re-exports the pieces a typical user needs;
the subpackages are:

* :mod:`repro.core` — the Clarify pipeline and disambiguator;
* :mod:`repro.analysis` — the symbolic route/packet-space engine;
* :mod:`repro.config` — the Cisco IOS configuration model and parser;
* :mod:`repro.llm` — the LLM interface and the simulated model;
* :mod:`repro.overlap` / :mod:`repro.synth` — the §3 measurement study;
* :mod:`repro.bgp` / :mod:`repro.evalcase` — the §5 evaluation;
* :mod:`repro.netaddr`, :mod:`repro.regexlib`, :mod:`repro.route` —
  foundation value types and the regex engine;
* :mod:`repro.obs` — the tracing/metrics layer (no-op unless enabled).
"""

from repro import obs
from repro.config import ConfigStore, parse_config, render_config
from repro.core import (
    ClarifySession,
    DisambiguationMode,
    IntentOracle,
    ScriptedOracle,
    UpdateReport,
)
from repro.llm import LLMClient, SimulatedLLM
from repro.route import BgpRoute, Packet

__version__ = "1.0.0"

__all__ = [
    "BgpRoute",
    "ClarifySession",
    "ConfigStore",
    "DisambiguationMode",
    "IntentOracle",
    "LLMClient",
    "Packet",
    "ScriptedOracle",
    "SimulatedLLM",
    "UpdateReport",
    "obs",
    "parse_config",
    "render_config",
    "__version__",
]
