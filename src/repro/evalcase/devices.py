"""Rendering the Figure 3 scenario as device configuration files.

Clarify's output is configuration text, so the end-to-end fidelity check
is: render every router of the synthesised Figure 3 network as a full
IOS device file, parse the files back, reassemble the network from
nothing but those files, re-simulate, and re-check the five global
policies.  Link addressing uses one /30 per session; originations that
carry site communities are expressed with ``network ... route-map``
origination maps, the way an operator would tag them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bgp import Network, simulate
from repro.bgp.fromconfig import network_from_devices
from repro.config.device import (
    BgpConfig,
    BgpNeighbor,
    DeviceConfig,
    Interface,
    NetworkStatement,
    parse_device,
    render_device,
)
from repro.config.routemap import RouteMap, RouteMapStanza
from repro.config.sets import SetCommunity
from repro.evalcase.figure3 import Figure3Result, build_figure3, check_global_policies
from repro.llm.client import LLMClient
from repro.netaddr import Ipv4Address, Ipv4Prefix

#: Link subnets are carved from this block, one /30 per BGP session.
LINK_BLOCK = Ipv4Prefix.parse("172.16.0.0/16")


def _link_addresses(index: int) -> Tuple[Ipv4Address, Ipv4Address]:
    base = LINK_BLOCK.network.value + 4 * index
    return Ipv4Address(base + 1), Ipv4Address(base + 2)


def devices_from_network(network: Network) -> List[DeviceConfig]:
    """Express a simulator :class:`Network` as device configurations."""
    devices: Dict[str, DeviceConfig] = {}
    for name, router in network.routers.items():
        device = DeviceConfig(hostname=name, store=router.store.copy())
        device.bgp = BgpConfig(
            asn=router.asn,
            router_id=Ipv4Address(router.router_id),
        )
        devices[name] = device

    neighbor_rows: Dict[str, List[BgpNeighbor]] = {n: [] for n in devices}
    for index, (a, b) in enumerate(sorted(network.sessions)):
        addr_a, addr_b = _link_addresses(index)
        for side, addr, peer, peer_addr in (
            (a, addr_a, b, addr_b),
            (b, addr_b, a, addr_a),
        ):
            router = network.router(side)
            devices[side].interfaces.append(
                Interface(name=f"Link{index}", address=addr, prefix_length=30)
            )
            neighbor_rows[side].append(
                BgpNeighbor(
                    address=peer_addr,
                    remote_as=network.router(peer).asn,
                    import_chain=router.import_policies.get(peer, ()),
                    export_chain=router.export_policies.get(peer, ()),
                )
            )

    for name, router in network.routers.items():
        device = devices[name]
        statements = []
        for origin_index, route in enumerate(router.originated):
            route_map_name: Optional[str] = None
            if route.communities:
                route_map_name = f"ORIGINATE_{origin_index}"
                device.store.add_route_map(
                    RouteMap(
                        route_map_name,
                        (
                            RouteMapStanza(
                                10,
                                "permit",
                                sets=(
                                    SetCommunity(
                                        tuple(sorted(route.communities)),
                                        additive=True,
                                    ),
                                ),
                            ),
                        ),
                    ),
                    replace=True,
                )
            statements.append(NetworkStatement(route.network, route_map_name))
        device.bgp = BgpConfig(
            asn=device.bgp.asn,
            router_id=device.bgp.router_id,
            networks=tuple(statements),
            neighbors=tuple(
                sorted(neighbor_rows[name], key=lambda n: n.address)
            ),
        )
        device.validate()
    return list(devices.values())


def figure3_device_files(llm: Optional[LLMClient] = None) -> Dict[str, str]:
    """Synthesise Figure 3 and render every router as a device file."""
    result = build_figure3(llm)
    return {
        device.hostname: render_device(device)
        for device in devices_from_network(result.network)
    }


def build_figure3_from_files(
    llm: Optional[LLMClient] = None,
) -> Figure3Result:
    """The end-to-end fidelity check: synthesise → render → parse →
    reassemble → simulate → recheck the global policies."""
    result = build_figure3(llm)
    files = {
        device.hostname: render_device(device)
        for device in devices_from_network(result.network)
    }
    reparsed = [parse_device(text) for text in files.values()]
    network = network_from_devices(reparsed)
    ribs = simulate(network)
    return Figure3Result(
        network=network,
        ribs=ribs,
        stats=result.stats,
        policy_results=check_global_policies(ribs),
    )


__all__ = [
    "build_figure3_from_files",
    "devices_from_network",
    "figure3_device_files",
]
