"""The §5 evaluation scenario (Figure 3 topology, Figure 4 table)."""

from repro.evalcase.figure3 import (
    Figure3Result,
    RouterBuildStats,
    build_figure3,
    check_global_policies,
    figure4_rows,
)

__all__ = [
    "Figure3Result",
    "RouterBuildStats",
    "build_figure3",
    "check_global_policies",
    "figure4_rows",
]
