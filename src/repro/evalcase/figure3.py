"""The Figure 3 evaluation: incremental synthesis of a small WAN.

The paper implements five global policies on a synthetic topology
inspired by Lightyear's running example:

1. reused prefixes within the datacenter and management should be
   mutually invisible;
2. the special prefix 10.1.0.0/16 (a datacenter service) should be
   visible to M;
3. M should prefer the path through R1 to reach 10.1.0.0/16;
4. no bogon prefixes should be advertised (to the ISPs);
5. ISP1 and ISP2 should be mutually unreachable via our network.

Following Lightyear, the global policies are decomposed into local
per-router policies, and the route-maps of M, R1, and R2 are synthesised
incrementally with Clarify.  The address plan:

* DC (AS 65100) originates 10.0.0.0/16 (a *reused* private prefix, also
  used inside management) and the service prefix 10.1.0.0/16;
* MGMT (AS 65200) originates the same reused 10.0.0.0/16 plus
  10.2.0.0/16; both sites tag their routes with a site community;
* R1/R2 (AS 65010/65020) originate the company's public block
  200.0.0.0/16 and peer with ISP1 (AS 100) / ISP2 (AS 200);
* ISP1 originates 8.8.0.0/16, ISP2 originates 9.9.0.0/16.

Figure 4 accounting (documented in EXPERIMENTS.md): each synthesised
stanza costs 3 LLM calls (classification, spec extraction, synthesis —
single-pass, as the paper observed); the #Disambiguation column counts
*user interactions*: one manual spec confirmation per synthesised stanza
(§2.1) plus every differential question the disambiguator asks.
Route-map and stanza reuse across interfaces reduces LLM calls, exactly
as the paper notes.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.bgp import Network, Ribs, simulate
from repro.bgp.checks import has_route, learned_from, visible_prefixes
from repro.config.routemap import RouteMap, RouteMapStanza
from repro.core.oracle import IntentOracle
from repro.core.workflow import ClarifySession
from repro.llm.client import LLMClient
from repro.netaddr import Ipv4Prefix
from repro.regexlib.cisco import community_matches
from repro.route import BgpRoute

REUSED_PREFIX = Ipv4Prefix.parse("10.0.0.0/16")
SERVICE_PREFIX = Ipv4Prefix.parse("10.1.0.0/16")
PRIVATE_SPACE = Ipv4Prefix.parse("10.0.0.0/8")
PUBLIC_PREFIX = Ipv4Prefix.parse("200.0.0.0/16")

MGMT_TAG = "65200:1"
DC_TAG = "65100:1"

# ------------------------------------------------------ English intents

INTENT_PERMIT_ALL = (
    "Write a route-map stanza that permits routes containing the prefix "
    "0.0.0.0/0 and all its more-specific prefixes."
)
INTENT_DENY_REUSED = (
    "Write a route-map stanza that denies routes containing the prefix "
    "10.0.0.0/16."
)
INTENT_DENY_BOGONS = (
    "Write a route-map stanza that denies routes containing the prefix "
    "10.0.0.0/8 and all its more-specific prefixes."
)
INTENT_PERMIT_PUBLIC = (
    "Write a route-map stanza that permits routes containing the prefix "
    "200.0.0.0/16."
)
INTENT_DENY_MGMT_TAG = (
    "Write a route-map stanza that denies routes tagged with the "
    "community 65200:1."
)
INTENT_PERMIT_SERVICE_PREFERRED = (
    "Write a route-map stanza that permits routes containing the prefix "
    "10.1.0.0/16. Their local preference should be set to 200."
)
INTENT_PERMIT_SERVICE = (
    "Write a route-map stanza that permits routes containing the prefix "
    "10.1.0.0/16."
)


@dataclasses.dataclass(frozen=True)
class RouterBuildStats:
    """One row of Figure 4."""

    name: str
    route_maps: int
    llm_calls: int
    interactions: int
    questions: int
    stanzas: int


@dataclasses.dataclass
class Figure3Result:
    """Everything the §5 evaluation produces."""

    network: Network
    ribs: Ribs
    stats: List[RouterBuildStats]
    policy_results: Dict[str, bool]


# ------------------------------------------------- local-policy oracles


def _m_import_intent(preferred: bool) -> Callable[[BgpRoute], tuple]:
    """M's local policy for an import map: drop management-tagged routes,
    accept the service prefix (preferring R1 via local preference)."""

    def intended(route: BgpRoute) -> tuple:
        if any(community_matches(f"_{MGMT_TAG}_", c) for c in route.communities):
            return ("deny", None)
        if route.network == SERVICE_PREFIX:
            if preferred:
                return ("permit", route.with_updates(local_preference=200))
            return ("permit", route)
        return ("deny", None)

    return intended


def _edge_import_intent(route: BgpRoute) -> tuple:
    """R1/R2's local policy for site imports: drop the reused prefix."""
    if route.network == REUSED_PREFIX:
        return ("deny", None)
    return ("permit", route)


def _isp_import_intent(route: BgpRoute) -> tuple:
    """R1/R2's local policy for ISP imports: drop bogons."""
    if PRIVATE_SPACE.contains_prefix(route.network):
        return ("deny", None)
    return ("permit", route)


# ----------------------------------------------------- router builders


def build_m(llm: Optional[LLMClient] = None) -> Tuple[ClarifySession, RouterBuildStats]:
    """Incrementally synthesise M's route-maps."""
    session = ClarifySession(llm=llm)
    deny_tag = session.request(INTENT_DENY_MGMT_TAG, "FROM_R1")
    session.request(
        INTENT_PERMIT_SERVICE_PREFERRED,
        "FROM_R1",
        oracle=IntentOracle(_m_import_intent(preferred=True)),
    )
    session.reuse(deny_tag.snippet, "FROM_R2")
    session.request(
        INTENT_PERMIT_SERVICE,
        "FROM_R2",
        oracle=IntentOracle(_m_import_intent(preferred=False)),
    )
    # M advertises nothing: deny-all export maps are operator boilerplate,
    # not synthesised stanzas (a match-nothing deny stanza denies all).
    session.store.add_route_map(RouteMap("TO_R1", (RouteMapStanza(10, "deny"),)))
    session.store.add_route_map(RouteMap("TO_R2", (RouteMapStanza(10, "deny"),)))
    stats = RouterBuildStats(
        name="M",
        route_maps=len(list(session.store.route_maps())),
        llm_calls=session.total_llm_calls,
        interactions=session.total_interactions,
        questions=session.total_questions,
        stanzas=session.spec_reviews,
    )
    return session, stats


def build_edge(
    name: str, llm: Optional[LLMClient] = None
) -> Tuple[ClarifySession, RouterBuildStats]:
    """Incrementally synthesise R1's (or R2's) route-maps.

    Five route-maps: FROM_EDGE (imports from DC and MGMT — one map reused
    on both interfaces), FROM_ISP, TO_ISP, TO_EDGE, TO_M.
    """
    session = ClarifySession(llm=llm)
    session.request(INTENT_DENY_REUSED, "FROM_EDGE")
    permit_all = session.request(
        INTENT_PERMIT_ALL,
        "FROM_EDGE",
        oracle=IntentOracle(_edge_import_intent),
    )
    session.reuse(permit_all.snippet, "TO_EDGE")
    session.reuse(permit_all.snippet, "TO_M")
    session.request(INTENT_DENY_BOGONS, "FROM_ISP")
    session.reuse(
        permit_all.snippet, "FROM_ISP", oracle=IntentOracle(_isp_import_intent)
    )
    session.request(INTENT_PERMIT_PUBLIC, "TO_ISP")
    stats = RouterBuildStats(
        name=name,
        route_maps=len(list(session.store.route_maps())),
        llm_calls=session.total_llm_calls,
        interactions=session.total_interactions,
        questions=session.total_questions,
        stanzas=session.spec_reviews,
    )
    return session, stats


# ----------------------------------------------------------- the network


def build_figure3(llm: Optional[LLMClient] = None) -> Figure3Result:
    """Build the whole scenario, simulate it, and check the policies."""
    m_session, m_stats = build_m(llm)
    r1_session, r1_stats = build_edge("R1", llm)
    r2_session, r2_stats = build_edge("R2", llm)

    net = Network()
    net.add_router("M", 65000, store=m_session.store)
    net.add_router("R1", 65010, store=r1_session.store)
    net.add_router("R2", 65020, store=r2_session.store)
    net.add_router("DC", 65100)
    net.add_router("MGMT", 65200)
    net.add_router("ISP1", 100)
    net.add_router("ISP2", 200)

    for a, b in (
        ("M", "R1"),
        ("M", "R2"),
        ("R1", "DC"),
        ("R1", "MGMT"),
        ("R2", "DC"),
        ("R2", "MGMT"),
        ("R1", "ISP1"),
        ("R2", "ISP2"),
    ):
        net.connect(a, b)

    net.router("DC").originate(str(REUSED_PREFIX), communities=(DC_TAG,))
    net.router("DC").originate(str(SERVICE_PREFIX), communities=(DC_TAG,))
    net.router("MGMT").originate(str(REUSED_PREFIX), communities=(MGMT_TAG,))
    net.router("MGMT").originate("10.2.0.0/16", communities=(MGMT_TAG,))
    net.router("R1").originate(str(PUBLIC_PREFIX))
    net.router("R2").originate(str(PUBLIC_PREFIX))
    net.router("ISP1").originate("8.8.0.0/16")
    net.router("ISP2").originate("9.9.0.0/16")

    net.set_import_policy("M", "R1", ("FROM_R1",))
    net.set_import_policy("M", "R2", ("FROM_R2",))
    net.set_export_policy("M", "R1", ("TO_R1",))
    net.set_export_policy("M", "R2", ("TO_R2",))
    for edge, isp in (("R1", "ISP1"), ("R2", "ISP2")):
        net.set_import_policy(edge, "DC", ("FROM_EDGE",))
        net.set_import_policy(edge, "MGMT", ("FROM_EDGE",))
        net.set_export_policy(edge, "DC", ("TO_EDGE",))
        net.set_export_policy(edge, "MGMT", ("TO_EDGE",))
        net.set_export_policy(edge, "M", ("TO_M",))
        net.set_import_policy(edge, isp, ("FROM_ISP",))
        net.set_export_policy(edge, isp, ("TO_ISP",))

    ribs = simulate(net)
    return Figure3Result(
        network=net,
        ribs=ribs,
        stats=[m_stats, r1_stats, r2_stats],
        policy_results=check_global_policies(ribs),
    )


# ------------------------------------------------------- policy checks


def check_global_policies(ribs: Ribs) -> Dict[str, bool]:
    """Evaluate the five §5 global policies on the simulated RIBs."""
    reused = str(REUSED_PREFIX)
    service = str(SERVICE_PREFIX)

    # 1. The reused prefix never travels: the core never carries it, and
    #    each site only knows its own origination.
    invisible = (
        not has_route(ribs, "R1", reused)
        and not has_route(ribs, "R2", reused)
        and not has_route(ribs, "M", reused)
        and learned_from(ribs, "DC", reused) is None
        and learned_from(ribs, "MGMT", reused) is None
    )

    # 2. The service prefix is visible at M.
    service_visible = has_route(ribs, "M", service)

    # 3. M prefers the path through R1.
    prefers_r1 = learned_from(ribs, "M", service) == "R1"

    # 4. No bogons at the ISPs: everything they learn from us is public.
    def no_bogons(isp: str) -> bool:
        return all(
            not PRIVATE_SPACE.contains_prefix(Ipv4Prefix.parse(p))
            for p in visible_prefixes(ribs, isp)
        )

    bogon_free = no_bogons("ISP1") and no_bogons("ISP2")

    # 5. The ISPs cannot reach each other via our network.
    isolated = not has_route(ribs, "ISP1", "9.9.0.0/16") and not has_route(
        ribs, "ISP2", "8.8.0.0/16"
    )

    return {
        "reused-prefixes-invisible": invisible,
        "service-visible-at-m": service_visible,
        "m-prefers-r1": prefers_r1,
        "no-bogons-at-isps": bogon_free,
        "isps-isolated": isolated,
    }


def figure4_rows(stats: List[RouterBuildStats]) -> List[Tuple[str, int, int, int]]:
    """The Figure 4 table: (router, #route-maps, #LLM calls, #disambiguation)."""
    return [(s.name, s.route_maps, s.llm_calls, s.interactions) for s in stats]


__all__ = [
    "Figure3Result",
    "RouterBuildStats",
    "build_edge",
    "build_figure3",
    "build_m",
    "check_global_policies",
    "figure4_rows",
]
