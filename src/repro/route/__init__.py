"""Concrete route advertisements and packets.

These are the values the analysis engine evaluates configurations on and
the values shown to users as differential examples (the paper's §2.2
"Network / AS Path / Communities / ..." display format).
"""

from repro.route.bgproute import AsPathSegment, BgpRoute
from repro.route.packet import Packet

__all__ = ["AsPathSegment", "BgpRoute", "Packet"]
