"""BGP route advertisements.

The field set mirrors what the paper's differential examples print
(§2.2): network, AS path, communities, local preference, metric (MED),
next-hop IP, tag, and weight.  AS paths are stored as segments so that
confederation segments render the way Batfish prints them
(``{"asns": [...], "confederation": false}``).
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.netaddr import Ipv4Address, Ipv4Prefix

#: Default values a fresh route advertisement carries, matching the
#: defaults Batfish uses when materialising counterexample routes.
DEFAULT_LOCAL_PREFERENCE = 100
DEFAULT_METRIC = 0
DEFAULT_NEXT_HOP = "0.0.0.1"
DEFAULT_TAG = 0
DEFAULT_WEIGHT = 0


@dataclasses.dataclass(frozen=True)
class AsPathSegment:
    """One AS-path segment: an ASN sequence, optionally a confederation."""

    asns: Tuple[int, ...]
    confederation: bool = False

    def __post_init__(self) -> None:
        for asn in self.asns:
            if not 0 <= asn <= 0xFFFFFFFF:
                raise ValueError(f"ASN out of range: {asn}")

    def to_dict(self) -> dict:
        return {"asns": list(self.asns), "confederation": self.confederation}


@dataclasses.dataclass(frozen=True)
class BgpRoute:
    """An immutable BGP route advertisement."""

    network: Ipv4Prefix
    as_path: Tuple[AsPathSegment, ...] = ()
    communities: FrozenSet[str] = frozenset()
    local_preference: int = DEFAULT_LOCAL_PREFERENCE
    metric: int = DEFAULT_METRIC
    next_hop: Ipv4Address = dataclasses.field(
        default_factory=lambda: Ipv4Address.parse(DEFAULT_NEXT_HOP)
    )
    tag: int = DEFAULT_TAG
    weight: int = DEFAULT_WEIGHT

    @classmethod
    def build(
        cls,
        network: str,
        as_path: Sequence[int] = (),
        communities: Iterable[str] = (),
        local_preference: int = DEFAULT_LOCAL_PREFERENCE,
        metric: int = DEFAULT_METRIC,
        next_hop: str = DEFAULT_NEXT_HOP,
        tag: int = DEFAULT_TAG,
        weight: int = DEFAULT_WEIGHT,
    ) -> "BgpRoute":
        """Convenience constructor from plain Python values."""
        segments: Tuple[AsPathSegment, ...] = ()
        if as_path:
            segments = (AsPathSegment(tuple(as_path)),)
        return cls(
            network=Ipv4Prefix.parse(network),
            as_path=segments,
            communities=frozenset(communities),
            local_preference=local_preference,
            metric=metric,
            next_hop=Ipv4Address.parse(next_hop),
            tag=tag,
            weight=weight,
        )

    def asns(self) -> List[int]:
        """The flat ASN sequence across all segments (regex-matching view)."""
        flat: List[int] = []
        for segment in self.as_path:
            flat.extend(segment.asns)
        return flat

    def with_updates(self, **changes) -> "BgpRoute":
        """A copy with some fields replaced (used by set-clause application)."""
        return dataclasses.replace(self, **changes)

    def prepend(self, asns: Sequence[int]) -> "BgpRoute":
        """A copy with ``asns`` prepended as a fresh leading segment."""
        if not asns:
            return self
        segment = AsPathSegment(tuple(asns))
        return dataclasses.replace(self, as_path=(segment,) + self.as_path)

    def render(self, indent: str = "") -> str:
        """Render in the paper's differential-example display format."""
        path = ", ".join(
            "{"
            + f' "asns": {list(seg.asns)}, "confederation": '
            + ("true" if seg.confederation else "false")
            + " }"
            for seg in self.as_path
        )
        communities = ", ".join(f'"{c}"' for c in sorted(self.communities))
        lines = [
            f"Network: {self.network}",
            f"AS Path: [{path}]",
            f"Communities: [{communities}]",
            f"Local Preference: {self.local_preference}",
            f"Metric: {self.metric}",
            f"Next Hop IP: {self.next_hop}",
            f"Tag: {self.tag}",
            f"Weight: {self.weight}",
        ]
        return "\n".join(indent + line for line in lines)

    def __str__(self) -> str:
        return self.render()


__all__ = ["AsPathSegment", "BgpRoute"]
