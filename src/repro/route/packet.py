"""IPv4 packet headers, the inputs ACLs filter."""

from __future__ import annotations

import dataclasses

from repro.netaddr import Ipv4Address

#: IP protocol numbers the configuration language names directly.
PROTOCOL_NUMBERS = {
    "icmp": 1,
    "igmp": 2,
    "tcp": 6,
    "udp": 17,
    "gre": 47,
    "esp": 50,
    "ahp": 51,
    "eigrp": 88,
    "ospf": 89,
    "pim": 103,
}
PROTOCOL_NAMES = {number: name for name, number in PROTOCOL_NUMBERS.items()}

#: Protocols that carry port numbers.
PORT_PROTOCOLS = frozenset({PROTOCOL_NUMBERS["tcp"], PROTOCOL_NUMBERS["udp"]})


@dataclasses.dataclass(frozen=True)
class Packet:
    """An immutable IPv4 packet header (the fields extended ACLs inspect)."""

    src_ip: Ipv4Address
    dst_ip: Ipv4Address
    protocol: int = PROTOCOL_NUMBERS["tcp"]
    src_port: int = 0
    dst_port: int = 0
    dscp: int = 0
    tcp_established: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.protocol <= 255:
            raise ValueError(f"protocol out of range: {self.protocol}")
        for port, what in ((self.src_port, "src_port"), (self.dst_port, "dst_port")):
            if not 0 <= port <= 65535:
                raise ValueError(f"{what} out of range: {port}")
        if not 0 <= self.dscp <= 63:
            raise ValueError(f"dscp out of range: {self.dscp}")
        if self.tcp_established and self.protocol != PROTOCOL_NUMBERS["tcp"]:
            raise ValueError("tcp_established requires protocol tcp")

    @classmethod
    def build(
        cls,
        src_ip: str,
        dst_ip: str,
        protocol: int = PROTOCOL_NUMBERS["tcp"],
        src_port: int = 0,
        dst_port: int = 0,
        dscp: int = 0,
        tcp_established: bool = False,
    ) -> "Packet":
        return cls(
            src_ip=Ipv4Address.parse(src_ip),
            dst_ip=Ipv4Address.parse(dst_ip),
            protocol=protocol,
            src_port=src_port,
            dst_port=dst_port,
            dscp=dscp,
            tcp_established=tcp_established,
        )

    def protocol_name(self) -> str:
        return PROTOCOL_NAMES.get(self.protocol, str(self.protocol))

    def has_ports(self) -> bool:
        return self.protocol in PORT_PROTOCOLS

    def render(self, indent: str = "") -> str:
        """Render for differential-example display."""
        lines = [
            f"Source IP: {self.src_ip}",
            f"Destination IP: {self.dst_ip}",
            f"Protocol: {self.protocol_name()}",
        ]
        if self.has_ports():
            lines.append(f"Source Port: {self.src_port}")
            lines.append(f"Destination Port: {self.dst_port}")
            if self.protocol == PROTOCOL_NUMBERS["tcp"]:
                lines.append(
                    "TCP Established: "
                    + ("true" if self.tcp_established else "false")
                )
        if self.dscp:
            lines.append(f"DSCP: {self.dscp}")
        return "\n".join(indent + line for line in lines)

    def __str__(self) -> str:
        return self.render()


__all__ = ["Packet", "PROTOCOL_NUMBERS", "PROTOCOL_NAMES", "PORT_PROTOCOLS"]
