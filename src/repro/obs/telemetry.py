"""Serving-tier telemetry: trace propagation and wide-event request logs.

Three pieces, layered over :mod:`repro.obs.recorder`:

* **trace context** — a :class:`TraceContext` (``trace_id`` /
  ``request_id`` / ``session_id``) carried in a :mod:`contextvars`
  variable.  :meth:`repro.serve.service.ClarifyService.submit` mints one
  per request at admission; the worker thread re-activates it
  (:func:`tracing`) around the cycle, and
  :func:`repro.perf.campaign.run_campaign` forwards it into pool
  workers.  Every span, counter delta, journal event, and remote LLM
  call made while a trace is active correlates back to the originating
  request;
* **wide events** — a :class:`TelemetryHub` accumulates per-trace
  activity (counter deltas via the recorder tap, span durations bucketed
  into pipeline phases, layer annotations like the backend chosen or the
  cache disposition) and, on :meth:`TelemetryHub.finish`, flattens it
  into exactly **one** JSONL event per request: the canonical record a
  single request leaves behind, whatever its outcome;
* **live export** — :func:`render_prometheus` renders the installed
  :class:`~repro.obs.recorder.Recorder` in the Prometheus text
  exposition format, :class:`MetricsServer` serves it on a stdlib-HTTP
  thread (``/metrics`` + ``/healthz``; ``clarify serve
  --metrics-port``), and :func:`follow_events` / :class:`RollingStats`
  power ``clarify tail``'s rolling p50/p95/error-rate view.

Everything stays **byte-invisible to fingerprinted outputs**: trace ids
are excluded from :meth:`~repro.serve.service.ServeResponse.outcome_key`,
journal events carry the trace *outside* the replay-compared payload,
and wide events carry no wall-clock timestamps.  With no hub installed
the per-call cost is one ``None`` check.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import json
import os
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import (
    IO,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.obs import recorder as _recorder
from repro.obs.metrics import Histogram
from repro.obs.recorder import NullRecorder, Recorder

#: Version of the wide-event schema (the per-request JSONL record).
WIDE_EVENT_VERSION = 1

#: Span-name prefixes bucketed into the wide event's timing breakdown.
#: Phases follow span nesting, so buckets may overlap (``synthesis``
#: includes the ``llm`` time spent inside synthesis attempts).
PHASE_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("synthesis.synthesize", "synthesis"),
    ("verify.", "verify"),
    ("disambiguate.", "disambiguation"),
    ("llm.complete", "llm"),
    ("lint.gate", "gates"),
    ("lint.netwide_gate", "gates"),
)

#: Every phase key a wide event's ``timings`` block reports.
PHASES = ("synthesis", "verify", "disambiguation", "llm", "gates")

#: Counter-name prefixes retained in a wide event's ``counters`` block.
TRACKED_COUNTER_PREFIXES = ("serve.", "llm.", "netwide.")


def phase_of(span_name: str) -> Optional[str]:
    """The timing-breakdown phase a span name belongs to, if any."""
    for prefix, phase in PHASE_PREFIXES:
        if span_name.startswith(prefix):
            return phase
    return None


# ---------------------------------------------------------- trace context


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """The identity one request carries through every layer it touches."""

    trace_id: str
    request_id: str
    session_id: str = ""

    def to_dict(self) -> Dict[str, str]:
        """The context as the wire-format dict journals and logs embed."""
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "session_id": self.session_id,
        }


_current: "contextvars.ContextVar[Optional[TraceContext]]" = (
    contextvars.ContextVar("clarify_trace", default=None)
)


def current_trace() -> Optional[TraceContext]:
    """The trace active on this thread, or ``None``."""
    return _current.get()


def mint_trace(
    session_id: str = "", request_id: Optional[str] = None
) -> TraceContext:
    """A fresh trace; ``request_id`` defaults to the new trace id."""
    trace_id = uuid.uuid4().hex
    return TraceContext(
        trace_id=trace_id,
        request_id=request_id if request_id else f"req-{trace_id[:12]}",
        session_id=session_id,
    )


@contextlib.contextmanager
def tracing(trace: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Activate ``trace`` for the dynamic extent of a ``with`` block.

    The activation is per-thread (a :mod:`contextvars` set/reset pair),
    so pool workers each carry their own request's identity.  ``None``
    deactivates any inherited trace, which is what campaign chunk
    workers run under when the caller had no trace.
    """
    token = _current.set(trace)
    try:
        yield trace
    finally:
        _current.reset(token)


# ------------------------------------------------------------ wide events


class _TraceAccumulator:
    """Mutable per-trace scratchpad the hub aggregates into."""

    __slots__ = ("trace", "counters", "phases", "fields")

    def __init__(self, trace: TraceContext) -> None:
        self.trace = trace
        self.counters: Dict[str, float] = {}
        self.phases: Dict[str, float] = {}
        self.fields: Dict[str, Any] = {}


def _dispositions(counters: Dict[str, float]) -> Dict[str, str]:
    """Cache/dedup disposition labels derived from per-trace counters."""
    if counters.get("llm.cache.hits"):
        cache = "hit"
    elif counters.get("llm.cache.misses"):
        cache = "miss"
    elif counters.get("llm.cache.bypass"):
        cache = "bypass"
    else:
        cache = ""
    if counters.get("llm.dedup.upstream"):
        dedup = "leader"
    elif counters.get("llm.dedup.requests"):
        dedup = "follower"
    else:
        dedup = ""
    return {"cache": cache, "dedup": dedup}


class TelemetryHub:
    """Aggregates per-trace activity into one wide event per request.

    Installed via :func:`install_hub`, the hub doubles as the recorder
    tap: module-level :func:`repro.obs.count` / :func:`repro.obs.span`
    calls made while a trace is active are attributed to that trace.
    Events are retained in memory (``.events``, bounded by
    ``max_events``) and, when ``sink`` is a path or text handle,
    streamed as JSONL — one line per finished request.
    """

    def __init__(
        self,
        sink: Union[str, IO[str], None] = None,
        max_events: int = 4096,
    ) -> None:
        self.events: List[Dict[str, Any]] = []
        self.max_events = max_events
        #: Requests finished (monotonic; survives the events ring).
        self.finished = 0
        self._lock = threading.Lock()
        self._active: Dict[str, _TraceAccumulator] = {}
        self._handle: Optional[IO[str]] = None
        self._owns_handle = False
        if isinstance(sink, str):
            directory = os.path.dirname(sink)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(sink, "w")
            self._owns_handle = True
        elif sink is not None:
            self._handle = sink

    # ----------------------------------------------------- trace lifecycle

    def begin(self, trace: TraceContext, **fields: Any) -> None:
        """Open the accumulator for one request (idempotent per trace)."""
        with self._lock:
            acc = self._active.get(trace.trace_id)
            if acc is None:
                acc = self._active[trace.trace_id] = _TraceAccumulator(trace)
            acc.fields.update(fields)

    def note(self, trace: Optional[TraceContext], **fields: Any) -> None:
        """Attach annotation fields (backend chosen, …) to a live trace."""
        if trace is None:
            return
        with self._lock:
            acc = self._active.get(trace.trace_id)
            if acc is not None:
                acc.fields.update(fields)

    def finish(
        self,
        trace: TraceContext,
        outcome: str,
        latency_s: float,
        queue_wait_s: float = 0.0,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Flatten one request's accumulated activity into its wide event."""
        with self._lock:
            acc = self._active.pop(trace.trace_id, None)
            if acc is None:
                acc = _TraceAccumulator(trace)
            acc.fields.update(fields)
            timings: Dict[str, float] = {
                "queue_wait_s": queue_wait_s,
                "latency_s": latency_s,
            }
            for phase in PHASES:
                timings[f"{phase}_s"] = round(acc.phases.get(phase, 0.0), 9)
            event: Dict[str, Any] = {
                "schema_version": WIDE_EVENT_VERSION,
                "trace_id": trace.trace_id,
                "request_id": trace.request_id,
                "session_id": trace.session_id,
                "outcome": outcome,
                "timings": timings,
                "counters": dict(sorted(acc.counters.items())),
                "retries": int(acc.counters.get("llm.remote.retries", 0)),
            }
            event.update(_dispositions(acc.counters))
            event.update(acc.fields)
            self.finished += 1
            self.events.append(event)
            if len(self.events) > self.max_events:
                del self.events[: len(self.events) - self.max_events]
            if self._handle is not None:
                self._handle.write(json.dumps(event, sort_keys=True) + "\n")
                self._handle.flush()
        return event

    def close(self) -> None:
        """Close an owned sink handle (idempotent)."""
        if self._handle is not None and self._owns_handle:
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "TelemetryHub":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------- recorder tap

    def count(self, name: str, value: Union[int, float]) -> None:
        """Recorder tap: attribute a counter delta to the active trace."""
        trace = _current.get()
        if trace is None or not name.startswith(TRACKED_COUNTER_PREFIXES):
            return
        with self._lock:
            acc = self._active.get(trace.trace_id)
            if acc is not None:
                acc.counters[name] = acc.counters.get(name, 0) + value

    def observe(self, name: str, value: Union[int, float]) -> None:
        """Recorder tap: histogram observations need no per-trace state."""

    def span_open(self, span: Any) -> None:
        """Recorder tap: stamp the active trace onto a captured span."""
        trace = _current.get()
        if trace is not None:
            span.annotate(
                trace_id=trace.trace_id, request_id=trace.request_id
            )

    def span_close(self, name: str, duration_s: float) -> None:
        """Recorder tap: bucket a span duration into its pipeline phase."""
        trace = _current.get()
        if trace is None:
            return
        phase = phase_of(name)
        if phase is None:
            return
        with self._lock:
            acc = self._active.get(trace.trace_id)
            if acc is not None:
                acc.phases[phase] = acc.phases.get(phase, 0.0) + duration_s


_hub: Optional[TelemetryHub] = None


def get_hub() -> Optional[TelemetryHub]:
    """The installed hub, or ``None`` (telemetry off)."""
    return _hub


def install_hub(hub: Optional[TelemetryHub] = None) -> TelemetryHub:
    """Make ``hub`` (a fresh in-memory one by default) process-active.

    Installing the hub also registers it as the recorder tap, so counter
    deltas and span durations start flowing to the active trace.
    """
    global _hub
    active = hub if hub is not None else TelemetryHub()
    _hub = active
    _recorder._install_tap(active)
    return active


def uninstall_hub() -> None:
    """Deactivate telemetry: drop the hub and the recorder tap."""
    global _hub
    _hub = None
    _recorder._install_tap(None)


@contextlib.contextmanager
def hub_active(hub: Optional[TelemetryHub] = None) -> Iterator[TelemetryHub]:
    """Install a hub for the dynamic extent of a ``with`` block."""
    active = install_hub(hub)
    try:
        yield active
    finally:
        uninstall_hub()


def begin_request(trace: TraceContext, **fields: Any) -> None:
    """Hub ``begin`` when telemetry is on; free no-op otherwise."""
    if _hub is not None:
        _hub.begin(trace, **fields)


def finish_request(
    trace: TraceContext,
    outcome: str,
    latency_s: float,
    queue_wait_s: float = 0.0,
    **fields: Any,
) -> Optional[Dict[str, Any]]:
    """Hub ``finish`` when telemetry is on; free no-op otherwise."""
    if _hub is None:
        return None
    return _hub.finish(
        trace,
        outcome,
        latency_s,
        queue_wait_s=queue_wait_s,
        **fields,
    )


def annotate(**fields: Any) -> None:
    """Attach fields to the current trace's wide event (no-op without)."""
    if _hub is None:
        return
    _hub.note(_current.get(), **fields)


# ----------------------------------------------------- prometheus export


def _metric_name(name: str) -> str:
    """A recorder metric name as a valid Prometheus metric name."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"clarify_{cleaned}"


def _fmt_value(value: Union[int, float]) -> str:
    return format(float(value), ".10g")


def render_prometheus(recorder: Union[Recorder, NullRecorder]) -> str:
    """The recorder's registry in the Prometheus text exposition format.

    Counters render as ``counter`` samples; histograms render as
    ``summary`` families (``{quantile=...}`` samples plus ``_sum`` and
    ``_count``).  Metric names are sanitised (``.``/``-`` → ``_``) and
    prefixed ``clarify_``.
    """
    counters = dict(getattr(recorder, "counters", {}))
    histograms = dict(getattr(recorder, "histograms", {}))
    lines: List[str] = []
    for name in sorted(counters):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt_value(counters[name])}")
    for name in sorted(histograms):
        hist = histograms[name]
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        for q in (0.5, 0.95, 0.99):
            value = hist.quantile(q)
            if value is not None:
                lines.append(
                    f'{metric}{{quantile="{q:g}"}} {_fmt_value(value)}'
                )
        lines.append(f"{metric}_sum {_fmt_value(hist.total)}")
        lines.append(f"{metric}_count {_fmt_value(hist.count)}")
    return "\n".join(lines) + "\n"


class MetricsServer:
    """A stdlib-HTTP thread serving ``/metrics`` and ``/healthz``.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction for the bound address.  ``recorder_fn`` resolves the
    recorder per scrape (default: the installed one), so the endpoint is
    always live.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        recorder_fn: Optional[
            Callable[[], Union[Recorder, NullRecorder]]
        ] = None,
    ) -> None:
        resolve = recorder_fn if recorder_fn is not None else _recorder.get_recorder

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?")[0] == "/metrics":
                    body = render_prometheus(resolve()).encode("utf-8")
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif self.path.split("?")[0] == "/healthz":
                    body = b"ok\n"
                    ctype = "text/plain; charset=utf-8"
                else:
                    self.send_error(404, "unknown path")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: Any) -> None:
                """Scrapes are routine; keep stderr quiet."""

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self.host = host
        self.port = int(self._server.server_address[1])
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsServer":
        """Begin serving on a daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="clarify-metrics",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


# ------------------------------------------------------------ tailing


def iter_events(path: str) -> Iterator[Dict[str, Any]]:
    """Parse a wide-event JSONL log, skipping blank/corrupt lines."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                yield event


def follow_events(
    path: str,
    idle_timeout_s: float = 5.0,
    poll_s: float = 0.1,
) -> Iterator[Dict[str, Any]]:
    """Yield events as they are appended, stopping after an idle period.

    The ``tail -f`` loop ``clarify tail --follow`` runs: new lines are
    yielded as they land; once no complete new line has appeared for
    ``idle_timeout_s`` the iterator ends (so harnesses terminate).
    """
    deadline = time.monotonic() + idle_timeout_s
    with open(path, "r", encoding="utf-8") as handle:
        buffered = ""
        while True:
            chunk = handle.readline()
            if chunk:
                buffered += chunk
                if not buffered.endswith("\n"):
                    continue
                line = buffered.strip()
                buffered = ""
                deadline = time.monotonic() + idle_timeout_s
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if isinstance(event, dict):
                    yield event
                continue
            if time.monotonic() >= deadline:
                return
            time.sleep(poll_s)


#: Outcomes ``clarify tail`` counts against the rolling error rate.
ERROR_OUTCOMES = ("error", "internal-error")


class RollingStats:
    """Rolling latency/error summary over the last ``window`` events."""

    def __init__(self, window: int = 128) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self.total = 0
        self._events: List[Dict[str, Any]] = []

    def add(self, event: Dict[str, Any]) -> None:
        """Fold one wide event into the window."""
        self.total += 1
        self._events.append(event)
        if len(self._events) > self.window:
            del self._events[: len(self._events) - self.window]

    def summary(self) -> Dict[str, Any]:
        """p50/p95 latency, error rate, and outcome counts in-window."""
        latency = Histogram()
        outcomes: Dict[str, int] = {}
        errors = 0
        for event in self._events:
            timings = event.get("timings", {})
            latency.observe(float(timings.get("latency_s", 0.0)))
            outcome = str(event.get("outcome", ""))
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
            if outcome in ERROR_OUTCOMES:
                errors += 1
        count = len(self._events)
        return {
            "events": self.total,
            "window": count,
            "p50_s": latency.quantile(0.5) or 0.0,
            "p95_s": latency.quantile(0.95) or 0.0,
            "error_rate": errors / count if count else 0.0,
            "outcomes": dict(sorted(outcomes.items())),
        }


__all__ = [
    "ERROR_OUTCOMES",
    "MetricsServer",
    "PHASES",
    "PHASE_PREFIXES",
    "RollingStats",
    "TRACKED_COUNTER_PREFIXES",
    "TelemetryHub",
    "TraceContext",
    "WIDE_EVENT_VERSION",
    "annotate",
    "begin_request",
    "current_trace",
    "finish_request",
    "follow_events",
    "get_hub",
    "hub_active",
    "install_hub",
    "iter_events",
    "mint_trace",
    "phase_of",
    "render_prometheus",
    "tracing",
    "uninstall_hub",
]
