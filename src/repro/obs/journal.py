"""The session journal: a persistent, replayable flight recorder.

Where :mod:`repro.obs.recorder` answers "how much work happened and how
long did it take", the journal answers "*what exactly* happened, in what
order" — one schema-versioned event per decision the Clarify pipeline
makes: every LLM request/response, spec extraction, verifier verdict,
retry, disambiguation question with the oracle's answer, insertion
decision, lint-gate outcome, and the final rendered configuration hash.
A journal is enough to re-drive the whole session with zero LLM or
oracle calls (see :mod:`repro.obs.replay`) and to diff two sessions
event by event.

The wiring mirrors the recorder's: instrumented library code calls the
module-level :func:`event` hook (a no-op unless a journal is installed)
and gates expensive payload construction on :func:`journal_enabled`.
Harness code installs a :class:`JournalRecorder` around the region it
wants captured::

    from repro import obs

    with obs.JournalRecorder("session.jsonl") as journal:
        with obs.journaling(journal):
            session.request(intent, "ISP_OUT")

A journal composes with a metrics recorder — install both and spans,
counters, and events are all captured from the same run.

The on-disk format is JSONL: one ``{"seq": n, "type": t, "data": {...}}``
object per line, first line a ``journal.open`` header carrying
:data:`JOURNAL_VERSION`.  Events carry no timestamps, so two runs of the
same session produce byte-identical journals — that determinism is what
makes journals diffable and replay byte-for-byte checkable.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import threading
from typing import IO, Any, Dict, Iterator, List, Optional, Union

from repro.obs.telemetry import current_trace as _current_trace

#: Version of the journal event schema (the ``journal.open`` header).
#: Version 2 adds ``attempts``/``questions`` to ``cycle.error`` so a
#: failed cycle's serving outcome can be reconstructed from the journal
#: alone (see :mod:`repro.serve.store`).  Version-1 journals still load.
JOURNAL_VERSION = 2

#: The event types the pipeline emits, for reference and validation.
EVENT_TYPES = (
    "journal.open",
    "cycle.start",
    "llm.call",
    "spec.extracted",
    "verify.verdict",
    "synthesis.retry",
    "synthesis.punt",
    "disambiguation.question",
    "insertion.decision",
    "lint.gate",
    "cycle.end",
    "cycle.error",
)


class JournalError(ValueError):
    """The journal file or event stream is malformed or unsupported."""


def sha256_text(text: str) -> str:
    """Hex SHA-256 of ``text`` (UTF-8) — the journal's content hash."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class JournalEvent:
    """One recorded pipeline event.

    ``trace`` carries the serving-tier :class:`TraceContext` wire dict
    when one was active at recording time.  It lives *beside* ``data``,
    never inside it: replay compares event payloads, and trace ids are
    minted per run, so correlation metadata must stay outside the
    byte-compared surface (see :mod:`repro.obs.replay`).
    """

    seq: int
    type: str
    data: Dict[str, Any]
    trace: Optional[Dict[str, str]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "seq": self.seq,
            "type": self.type,
            "data": dict(self.data),
        }
        if self.trace is not None:
            payload["trace"] = dict(self.trace)
        return payload

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "JournalEvent":
        try:
            trace = raw.get("trace")
            return cls(
                seq=int(raw["seq"]),
                type=str(raw["type"]),
                data=dict(raw.get("data", {})),
                trace=dict(trace) if trace is not None else None,
            )
        except (KeyError, TypeError) as exc:
            raise JournalError(f"malformed journal event: {raw!r}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


class JournalRecorder:
    """Collects :class:`JournalEvent`s, optionally streaming to a file.

    Events are always retained in memory (``.events``); when ``sink`` is
    a path or an open text handle, each event is additionally written as
    one JSONL line as soon as it is recorded, so an aborted process still
    leaves every completed event on disk.  The ``journal.open`` header is
    emitted on construction.

    Passing ``events`` *resumes* a journal instead of opening a fresh
    one: the seed events (a validated complete prefix, e.g. the survivor
    of a crash — see :mod:`repro.serve.store`) are re-emitted to the sink
    verbatim and subsequent events continue the sequence numbering, so
    the resumed file is byte-identical to one recorded in a single run.
    """

    def __init__(
        self,
        sink: Union[str, IO[str], None] = None,
        events: Optional[List[JournalEvent]] = None,
    ) -> None:
        self.events: List[JournalEvent] = []
        self._lock = threading.Lock()
        self._handle: Optional[IO[str]] = None
        self._owns_handle = False
        if isinstance(sink, str):
            self._handle = open(sink, "w")
            self._owns_handle = True
        elif sink is not None:
            self._handle = sink
        if events is not None:
            validate_journal(list(events))
            for seeded in events:
                with self._lock:
                    self.events.append(seeded)
                    if self._handle is not None:
                        self._handle.write(seeded.to_json() + "\n")
                        self._handle.flush()
        else:
            self.event("journal.open", version=JOURNAL_VERSION)

    def event(self, type_: str, **data: Any) -> JournalEvent:
        """Record one event (thread-safe; assigns the next ``seq``).

        The serving-tier trace context, when one is active on the
        recording thread, is stamped beside the payload so journal
        events correlate back to the originating request.
        """
        trace = _current_trace()
        with self._lock:
            recorded = JournalEvent(
                seq=len(self.events),
                type=type_,
                data=data,
                trace=trace.to_dict() if trace is not None else None,
            )
            self.events.append(recorded)
            if self._handle is not None:
                self._handle.write(recorded.to_json() + "\n")
                self._handle.flush()
        return recorded

    def close(self) -> None:
        if self._handle is not None and self._owns_handle:
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "JournalRecorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.events)


# ------------------------------------------------------- journal loading


def loads_journal(
    text: str, drop_partial_tail: bool = False
) -> List[JournalEvent]:
    """Parse journal JSONL text into events, validating the header.

    With ``drop_partial_tail`` a malformed **final** line is silently
    dropped instead of raising.  A process killed mid-write (the crash
    case the durable session store recovers from) can leave at most one
    torn line, and only at the end of the file — corruption anywhere
    else still raises :class:`JournalError`.
    """
    events: List[JournalEvent] = []
    lines = [
        (lineno, line.strip())
        for lineno, line in enumerate(text.splitlines(), start=1)
        if line.strip()
    ]
    for index, (lineno, line) in enumerate(lines):
        last = index == len(lines) - 1
        try:
            raw = json.loads(line)
            events.append(JournalEvent.from_dict(raw))
        except (json.JSONDecodeError, JournalError) as exc:
            if drop_partial_tail and last:
                break
            raise JournalError(
                f"line {lineno} is not a valid journal event: {exc}"
            ) from exc
    validate_journal(events)
    return events


def read_journal(
    path: str, drop_partial_tail: bool = False
) -> List[JournalEvent]:
    """Load and validate a journal file written by :class:`JournalRecorder`."""
    with open(path) as handle:
        return loads_journal(handle.read(), drop_partial_tail=drop_partial_tail)


def dumps_journal(events: List[JournalEvent]) -> str:
    """Events back to the JSONL wire format (one line per event)."""
    return "".join(event.to_json() + "\n" for event in events)


def validate_journal(events: List[JournalEvent]) -> None:
    """Check the header and sequence numbering of an event list."""
    if not events:
        raise JournalError("journal is empty (no journal.open header)")
    header = events[0]
    if header.type != "journal.open":
        raise JournalError(
            f"journal does not start with journal.open (got {header.type!r})"
        )
    version = header.data.get("version")
    if not isinstance(version, int) or version < 1:
        raise JournalError(f"journal.open has no usable version: {version!r}")
    if version > JOURNAL_VERSION:
        raise JournalError(
            f"journal version {version} is newer than supported "
            f"version {JOURNAL_VERSION}"
        )
    for expected, event in enumerate(events):
        if event.seq != expected:
            raise JournalError(
                f"journal sequence broken at index {expected}: "
                f"event carries seq {event.seq}"
            )


# ----------------------------------------------------- the active journal
#
# Two layers, mirroring how sessions are served: a *process default*
# (:func:`install_journal`) and a *thread-local override*
# (:func:`journaling`).  Single-threaded harness code behaves exactly as
# before — the override shadows the default within the ``with`` block —
# while the serving layer (:mod:`repro.serve`) gives every worker thread
# its own override, so concurrent sessions journal independently instead
# of interleaving their events into one stream (which would break the
# byte-for-byte replay guarantee).

_default_journal: Optional[JournalRecorder] = None
_local = threading.local()


def get_journal() -> Optional[JournalRecorder]:
    """The journal this thread's events flow to, or ``None``.

    The thread-local override (set by :func:`journaling`) wins; with no
    override the process default (set by :func:`install_journal`)
    applies.
    """
    override = getattr(_local, "journal", None)
    if override is not None:
        return override
    return _default_journal


def install_journal(
    journal: Optional[JournalRecorder] = None,
) -> JournalRecorder:
    """Make ``journal`` (a fresh in-memory one by default) the process default."""
    global _default_journal
    recorder = journal if journal is not None else JournalRecorder()
    _default_journal = recorder
    return recorder


def uninstall_journal() -> None:
    """Drop the process-default journal (events become no-ops again)."""
    global _default_journal
    _default_journal = None


@contextlib.contextmanager
def journaling(
    journal: Optional[JournalRecorder] = None,
) -> Iterator[JournalRecorder]:
    """Activate a journal for the dynamic extent of a ``with`` block.

    The activation is **thread-local**: only the current thread's events
    flow to ``journal``, so concurrent workers can each journal their own
    session (see :mod:`repro.serve`).  On exit the previous override (or
    the process default) is restored.
    """
    recorder = journal if journal is not None else JournalRecorder()
    previous = getattr(_local, "journal", None)
    _local.journal = recorder
    try:
        yield recorder
    finally:
        _local.journal = previous


def journal_enabled() -> bool:
    """True when a journal is active for the current thread.

    Instrumentation gates *expensive payload construction* (rendering a
    configuration, formatting a differential example) on this; the
    :func:`event` hook itself is already a no-op without a journal.
    """
    return get_journal() is not None


def event(type_: str, **data: Any) -> None:
    """Record an event on the active journal (no-op by default)."""
    journal = get_journal()
    if journal is not None:
        journal.event(type_, **data)


__all__ = [
    "EVENT_TYPES",
    "JOURNAL_VERSION",
    "JournalError",
    "JournalEvent",
    "JournalRecorder",
    "dumps_journal",
    "event",
    "get_journal",
    "install_journal",
    "journal_enabled",
    "journaling",
    "loads_journal",
    "read_journal",
    "sha256_text",
    "uninstall_journal",
    "validate_journal",
]
