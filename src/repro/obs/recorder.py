"""Span recording and the process-wide recorder registry.

The model follows the usual tracing shape at its smallest useful size:

* a :class:`Span` is one named, timed region of work with attributes and
  child spans — one :class:`Recorder` run yields a forest of span trees;
* a :class:`Recorder` owns the span forest plus the metric registry
  (counters and histograms) and is safe to use from multiple threads:
  the span stack is thread-local (each thread nests independently) and
  the registry is guarded by a lock;
* a :class:`NullRecorder` is the default — every instrumentation hook in
  the library goes through the module-level :func:`span` / :func:`count`
  / :func:`observe` helpers, which dispatch to the *active* recorder, so
  with nothing installed the cost of an instrumented call site is one
  no-op method call and no allocation.

Instrumented code must never import ``Recorder`` directly; it calls the
helpers.  Harness code (the CLI, tests, benchmarks) installs a real
recorder around the region it wants to measure::

    from repro import obs

    with obs.recording() as rec:
        session.request(intent, "ISP_OUT")
    print(obs.render_report(rec))
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.metrics import Histogram

Number = Union[int, float]


class Span:
    """One named, timed region of work in a trace tree."""

    __slots__ = ("name", "attrs", "children", "start", "end")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        #: ``time.perf_counter()`` readings; ``None`` while in flight.
        self.start: Optional[float] = None
        self.end: Optional[float] = None

    def annotate(self, **attrs: Any) -> None:
        """Attach key/value attributes to the span after entry."""
        self.attrs.update(attrs)

    @property
    def duration_s(self) -> Optional[float]:
        """Wall-clock duration in seconds, or None while in flight."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span named ``name`` in this subtree, depth-first order."""
        return [span for span in self.walk() if span.name == name]

    def __repr__(self) -> str:
        timing = (
            f"{self.duration_s * 1000:.3f}ms"
            if self.duration_s is not None
            else "open"
        )
        return f"Span({self.name!r}, {timing}, children={len(self.children)})"


class _NullSpan:
    """The no-op span handed out when no recorder is active."""

    __slots__ = ()

    name: Optional[str] = None
    children: Tuple[()] = ()
    duration_s: Optional[float] = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that opens a :class:`Span` on a recorder."""

    __slots__ = ("_recorder", "_name", "_attrs", "_span")

    def __init__(self, recorder: "Recorder", name: str, attrs: Dict[str, Any]) -> None:
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        span = Span(self._name, self._attrs)
        span.start = time.perf_counter()
        stack = self._recorder._span_stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._recorder._lock:
                self._recorder.roots.append(span)
        stack.append(span)
        self._span = span
        return span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        span = self._span
        assert span is not None
        span.end = time.perf_counter()
        if exc_type is not None:
            span.attrs.setdefault("error", exc_type.__name__)
        stack = self._recorder._span_stack()
        if stack and stack[-1] is span:
            stack.pop()
        if self._recorder.time_spans:
            self._recorder.observe(f"span.{span.name}", span.end - span.start)
        return False


class _TimerSpan:
    """Duration-only span: no tree, just a ``span.<name>`` observation.

    Handed out when the recorder runs with ``capture_spans=False`` but
    ``time_spans=True`` — the benchmark harness's configuration, where
    per-phase durations matter but an unbounded span forest would not.
    """

    __slots__ = ("_recorder", "_name", "_start")

    name: Optional[str] = None
    children: Tuple[()] = ()
    duration_s: Optional[float] = None

    def __init__(self, recorder: "Recorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_TimerSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._recorder.observe(
            f"span.{self._name}", time.perf_counter() - self._start
        )
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


class Recorder:
    """Collects a span forest plus counters and histograms.

    ``capture_spans=False`` keeps only the metric registry — use it for
    long sessions (the benchmark harness does) where accumulating every
    span tree would grow without bound.  ``time_spans=True`` additionally
    observes every span's duration into a ``span.<name>`` histogram, so
    per-phase timings survive in the metric snapshot even when the span
    forest itself is not captured.
    """

    def __init__(
        self, capture_spans: bool = True, time_spans: bool = False
    ) -> None:
        self.capture_spans = capture_spans
        self.time_spans = time_spans
        self.roots: List[Span] = []
        self.counters: Dict[str, Number] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    def _span_stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------ recording

    def span(self, name: str, /, **attrs: Any):
        """Open a child span of the current thread's innermost span."""
        if not self.capture_spans:
            if self.time_spans:
                return _TimerSpan(self, name)
            return _NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def count(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at zero)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: Number) -> None:
        """Record one observation in the histogram ``name``."""
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.observe(value)

    # -------------------------------------------------------------- reading

    def counter(self, name: str) -> Number:
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> Histogram:
        return self.histograms.get(name, Histogram())

    def find(self, name: str) -> List[Span]:
        """Every recorded span named ``name``, depth-first across roots."""
        return [span for root in self.roots for span in root.find(name)]

    def reset(self) -> None:
        with self._lock:
            self.roots.clear()
            self.counters.clear()
            self.histograms.clear()


class NullRecorder:
    """The default recorder: records nothing, costs (almost) nothing."""

    capture_spans = False
    time_spans = False
    roots: Tuple[()] = ()

    def span(self, name: str, /, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: Number = 1) -> None:
        pass

    def observe(self, name: str, value: Number) -> None:
        pass

    def counter(self, name: str) -> Number:
        return 0

    def histogram(self, name: str) -> Histogram:
        return Histogram()

    def find(self, name: str) -> List[Span]:
        return []

    def reset(self) -> None:
        pass


_NULL_RECORDER = NullRecorder()
_active: Union[Recorder, NullRecorder] = _NULL_RECORDER

# The telemetry tap: an object with ``count`` / ``observe`` /
# ``span_close`` methods (see ``repro.obs.telemetry.TelemetryHub``) that
# shadows every module-level instrumentation call so per-request
# attribution works even when no metrics recorder is installed.  With no
# tap the added cost per call site is a single ``None`` check.
_tap: Optional[Any] = None


def _install_tap(tap: Optional[Any]) -> None:
    """Register (or clear, with ``None``) the telemetry tap."""
    global _tap
    _tap = tap


class _TapSpan:
    """Wraps a span handle to time it for the telemetry tap.

    The wrapper times the span with its own clock so durations reach the
    tap even when the active recorder is a :class:`NullRecorder` (the
    ``clarify serve --metrics-port`` configuration records metrics but
    not span forests).
    """

    __slots__ = ("_inner", "_name", "_tap", "_start")

    def __init__(self, inner: Any, name: str, tap: Any) -> None:
        self._inner = inner
        self._name = name
        self._tap = tap
        self._start = 0.0

    def __enter__(self) -> Any:
        self._start = time.perf_counter()
        span = self._inner.__enter__()
        self._tap.span_open(span)
        return span

    def __exit__(self, *exc: Any) -> bool:
        suppressed = bool(self._inner.__exit__(*exc))
        self._tap.span_close(
            self._name, time.perf_counter() - self._start
        )
        return suppressed


def get_recorder() -> Union[Recorder, NullRecorder]:
    """The recorder instrumentation currently dispatches to."""
    return _active


def install(recorder: Optional[Recorder] = None) -> Recorder:
    """Make ``recorder`` (a fresh one by default) the active recorder."""
    global _active
    rec = recorder if recorder is not None else Recorder()
    _active = rec
    return rec


def uninstall() -> None:
    """Restore the no-op default recorder."""
    global _active
    _active = _NULL_RECORDER


@contextlib.contextmanager
def recording(
    recorder: Optional[Recorder] = None,
) -> Iterator[Recorder]:
    """Activate a recorder for the dynamic extent of a ``with`` block."""
    global _active
    rec = recorder if recorder is not None else Recorder()
    previous = _active
    _active = rec
    try:
        yield rec
    finally:
        _active = previous


# Module-level hooks: what instrumented library code calls.  They read
# the active recorder at call time, so importing them early is safe.


def span(name: str, /, **attrs: Any):
    """Open a span on the active recorder (no-op span by default)."""
    handle = _active.span(name, **attrs)
    if _tap is not None:
        return _TapSpan(handle, name, _tap)
    return handle


def count(name: str, value: Number = 1) -> None:
    """Bump a counter on the active recorder (no-op by default)."""
    _active.count(name, value)
    if _tap is not None:
        _tap.count(name, value)


def observe(name: str, value: Number) -> None:
    """Record a histogram observation on the active recorder."""
    _active.observe(name, value)
    if _tap is not None:
        _tap.observe(name, value)


def enabled() -> bool:
    """True when a real recorder is active."""
    return _active is not _NULL_RECORDER


__all__ = [
    "NullRecorder",
    "Recorder",
    "Span",
    "count",
    "enabled",
    "get_recorder",
    "install",
    "observe",
    "recording",
    "span",
    "uninstall",
]
