"""Exporters: span trees and metric registries as text or JSON.

Two formats:

* **text** — :func:`render_span_tree` draws the forest with per-span
  wall-clock timings and attributes; :func:`render_metrics` tabulates
  counters and histogram summaries; :func:`render_report` is both.
* **JSON** — :func:`snapshot` flattens a recorder into plain dicts and
  lists (spans keep ``duration_s`` rather than raw clock readings, so a
  snapshot round-trips exactly through :func:`span_from_dict` /
  :func:`to_json` / ``json.loads``).  The benchmark harness writes one
  of these to ``benchmarks/BENCH_obs.json`` per run.
"""

from __future__ import annotations

import json
import platform
from typing import Any, Dict, List, Sequence, Union

from repro.obs.metrics import Histogram
from repro.obs.recorder import NullRecorder, Recorder, Span

#: Version 2 added the histograms' bounded sample reservoirs (``samples``
#: / ``stride`` keys); version-1 snapshots still load, with quantiles
#: unavailable.  Version 3 added the ``schema_version`` + ``meta``
#: run-metadata block (``bench-check`` refuses cross-version diffs).
SNAPSHOT_VERSION = 3


def run_metadata() -> Dict[str, str]:
    """The environment block stamped into snapshots and bench artifacts.

    Deliberately coarse — interpreter and platform identity, no
    timestamps or hostnames — so artifacts stay diffable across runs on
    the same machine while cross-machine comparisons are visibly
    cross-machine.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "machine": platform.machine(),
    }


# ----------------------------------------------------------------- spans


def span_to_dict(span: Span) -> Dict[str, Any]:
    """One span subtree as JSON-serialisable dicts."""
    return {
        "name": span.name,
        "duration_s": span.duration_s,
        "attrs": dict(span.attrs),
        "children": [span_to_dict(child) for child in span.children],
    }


def span_from_dict(data: Dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` tree from :func:`span_to_dict` output."""
    span = Span(data["name"], data.get("attrs"))
    duration = data.get("duration_s")
    if duration is not None:
        span.start = 0.0
        span.end = duration
    span.children = [span_from_dict(child) for child in data.get("children", ())]
    return span


def _format_duration(duration_s) -> str:
    if duration_s is None:
        return "open"
    millis = duration_s * 1000.0
    if millis >= 100:
        return f"{millis:.0f} ms"
    if millis >= 1:
        return f"{millis:.2f} ms"
    return f"{millis:.3f} ms"


def _format_attrs(attrs: Dict[str, Any]) -> str:
    return " ".join(f"{key}={attrs[key]}" for key in attrs)


def render_span_tree(spans: Sequence[Span]) -> str:
    """The span forest as an indented tree with timings and attributes."""
    lines: List[str] = []

    def walk(span: Span, lead: str, child_lead: str) -> None:
        attrs = _format_attrs(span.attrs)
        line = f"{lead}{span.name} [{_format_duration(span.duration_s)}]"
        if attrs:
            line += f"  {attrs}"
        lines.append(line)
        for idx, child in enumerate(span.children):
            last = idx == len(span.children) - 1
            walk(
                child,
                child_lead + ("`- " if last else "|- "),
                child_lead + ("   " if last else "|  "),
            )

    for root in spans:
        walk(root, "", "")
    return "\n".join(lines)


# --------------------------------------------------------------- metrics


def render_metrics(recorder: Union[Recorder, NullRecorder]) -> str:
    """Counters and histogram summaries as aligned text lines."""
    lines: List[str] = []
    counters = getattr(recorder, "counters", {})
    histograms = getattr(recorder, "histograms", {})
    if counters:
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"{name:<{width}}  {counters[name]}")
    for name in sorted(histograms):
        hist = histograms[name]
        line = (
            f"{name}  count={hist.count} min={hist.min} "
            f"mean={hist.mean:.2f} max={hist.max}"
        )
        p50 = hist.quantile(0.5)
        if p50 is not None:
            line += (
                f" p50={p50:.4g} p95={hist.quantile(0.95):.4g} "
                f"p99={hist.quantile(0.99):.4g}"
            )
        lines.append(line)
    return "\n".join(lines)


def render_report(recorder: Union[Recorder, NullRecorder]) -> str:
    """A full human-readable report: span tree plus metric summary."""
    sections = []
    roots = getattr(recorder, "roots", ())
    if roots:
        sections.append("== spans ==\n" + render_span_tree(roots))
    metrics = render_metrics(recorder)
    if metrics:
        sections.append("== metrics ==\n" + metrics)
    return "\n\n".join(sections) if sections else "(nothing recorded)"


# ------------------------------------------------------------- snapshots


def snapshot(recorder: Union[Recorder, NullRecorder]) -> Dict[str, Any]:
    """The recorder's full state as JSON-serialisable dicts.

    ``version`` (the pre-v3 key) is kept alongside ``schema_version``
    so older tooling keeps loading new snapshots.
    """
    return {
        "schema_version": SNAPSHOT_VERSION,
        "meta": run_metadata(),
        "version": SNAPSHOT_VERSION,
        "counters": {
            name: value
            for name, value in sorted(getattr(recorder, "counters", {}).items())
        },
        "histograms": {
            name: hist.to_dict()
            for name, hist in sorted(getattr(recorder, "histograms", {}).items())
        },
        "spans": [span_to_dict(root) for root in getattr(recorder, "roots", ())],
    }


def to_json(recorder: Union[Recorder, NullRecorder], indent: int = 2) -> str:
    """:func:`snapshot` rendered as a JSON document."""
    return json.dumps(snapshot(recorder), indent=indent, sort_keys=True)


def snapshot_to_recorder(data: Dict[str, Any]) -> Recorder:
    """Rebuild a :class:`Recorder` from a snapshot dict (for tooling)."""
    recorder = Recorder()
    for name, value in data.get("counters", {}).items():
        recorder.counters[name] = value
    for name, hist in data.get("histograms", {}).items():
        recorder.histograms[name] = Histogram.from_dict(hist)
    recorder.roots = [span_from_dict(span) for span in data.get("spans", ())]
    return recorder


__all__ = [
    "SNAPSHOT_VERSION",
    "render_metrics",
    "run_metadata",
    "render_report",
    "render_span_tree",
    "snapshot",
    "snapshot_to_recorder",
    "span_from_dict",
    "span_to_dict",
    "to_json",
]
