"""The perf-regression gate: diff two metric snapshots.

The benchmark harness writes a metric snapshot
(:func:`repro.obs.export.snapshot`) to ``benchmarks/BENCH_obs.json`` on
every run; a blessed copy lives in ``benchmarks/BASELINE_obs.json``.
This module compares the two:

* **counters** are behaviour, not timing — the benchmark workload is
  deterministic, so every counter (LLM calls, questions asked, verifier
  attempts, lint warnings, …) must match the baseline exactly (an
  optional relative tolerance loosens this for workloads that are not);
* **histogram counts** are likewise exact;
* **timings** — the ``span.*`` histograms produced by a
  ``time_spans=True`` recorder — are noisy, so their mean and p95 are
  *ratio*-bounded: only getting ``max_ratio`` times slower than the
  baseline counts as a regression (getting faster never does).

The result is a :class:`RegressionReport` of :class:`DeltaRow` entries
with text/JSON renderings; ``clarify bench-check`` exits nonzero when
any row regressed.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional

#: Histogram-name prefix identifying timing data (see
#: ``Recorder(time_spans=True)``).
TIMING_PREFIX = "span."

STATUS_OK = "ok"
STATUS_REGRESSION = "regression"
STATUS_WARNING = "warning"
STATUS_ADDED = "added"
STATUS_REMOVED = "removed"


class SnapshotError(ValueError):
    """A snapshot file is missing, unreadable, or malformed."""


@dataclasses.dataclass(frozen=True)
class Tolerances:
    """How far the current snapshot may drift from the baseline.

    ``counter_rel`` is a relative tolerance on counter values (0.0 means
    exact, the default — the benchmark workload is deterministic).
    ``timing_max_ratio`` bounds how much slower a ``span.*`` histogram's
    mean/p95 may get before it regresses.  ``timing_warn_only``
    downgrades timing regressions to warnings (for shared CI runners,
    where wall-clock noise swamps real signal).
    """

    counter_rel: float = 0.0
    timing_max_ratio: float = 1.5
    timing_warn_only: bool = False


@dataclasses.dataclass(frozen=True)
class DeltaRow:
    """One compared metric: baseline vs current and the verdict."""

    name: str
    kind: str  # "counter" | "histogram" | "timing"
    status: str
    baseline: Optional[float]
    current: Optional[float]
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class RegressionReport:
    """Everything :func:`compare_snapshots` found."""

    rows: List[DeltaRow]
    tolerances: Tolerances

    @property
    def regressions(self) -> List[DeltaRow]:
        return [r for r in self.rows if r.status == STATUS_REGRESSION]

    @property
    def warnings(self) -> List[DeltaRow]:
        return [r for r in self.rows if r.status == STATUS_WARNING]

    @property
    def ok(self) -> bool:
        return not self.regressions


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read one metric-snapshot JSON file, validating its shape."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"snapshot {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "counters" not in data:
        raise SnapshotError(
            f"snapshot {path} has no 'counters' key — not a metric snapshot?"
        )
    return data


def _schema_of(data: Dict[str, Any]) -> Optional[Any]:
    """A snapshot's schema version (``schema_version``, falling back to
    the pre-v3 ``version`` key; ``None`` for versionless snapshots)."""
    return data.get("schema_version", data.get("version"))


def check_schema_match(
    baseline: Dict[str, Any], current: Dict[str, Any]
) -> None:
    """Refuse to diff snapshots written under different schemas.

    A cross-version comparison would surface as a wall of spurious
    tolerance rows; failing fast with the actual versions tells the
    operator to regenerate the baseline instead.
    """
    base_schema = _schema_of(baseline)
    cur_schema = _schema_of(current)
    if base_schema != cur_schema:
        raise SnapshotError(
            f"schema_version mismatch: baseline {base_schema!r} vs "
            f"current {cur_schema!r} — regenerate the baseline under "
            f"the current schema instead of diffing across versions"
        )


def _rel_close(baseline: float, current: float, rel: float) -> bool:
    if baseline == current:
        return True
    if rel <= 0.0:
        return False
    scale = max(abs(baseline), abs(current))
    return abs(current - baseline) <= rel * scale


def _compare_counters(
    base: Dict[str, Any], cur: Dict[str, Any], tol: Tolerances
) -> List[DeltaRow]:
    rows: List[DeltaRow] = []
    for name in sorted(set(base) | set(cur)):
        if name not in cur:
            rows.append(
                DeltaRow(
                    name,
                    "counter",
                    STATUS_REMOVED,
                    float(base[name]),
                    None,
                    "counter present in baseline but not in this run",
                )
            )
            continue
        if name not in base:
            rows.append(
                DeltaRow(
                    name,
                    "counter",
                    STATUS_ADDED,
                    None,
                    float(cur[name]),
                    "new counter, not in baseline",
                )
            )
            continue
        b, c = float(base[name]), float(cur[name])
        if _rel_close(b, c, tol.counter_rel):
            rows.append(DeltaRow(name, "counter", STATUS_OK, b, c))
        else:
            rows.append(
                DeltaRow(
                    name,
                    "counter",
                    STATUS_REGRESSION,
                    b,
                    c,
                    f"counter changed {b:g} -> {c:g} "
                    f"(tolerance {tol.counter_rel:g})",
                )
            )
    return rows


def _timing_stats(name: str, hist: Dict[str, Any]) -> Dict[str, Optional[float]]:
    from repro.obs.metrics import Histogram

    try:
        h = Histogram.from_dict(hist)
    except (TypeError, ValueError, AttributeError) as exc:
        raise SnapshotError(
            f"histogram {name!r} is malformed: {exc}"
        ) from exc
    return {"mean": h.mean, "p95": h.quantile(0.95)}


def _histogram_dict(name: str, value: Any) -> Dict[str, Any]:
    """Validate one snapshot histogram entry's shape."""
    if not isinstance(value, dict):
        raise SnapshotError(
            f"histogram {name!r} is malformed: expected a dict, "
            f"got {type(value).__name__}"
        )
    return value


def _histogram_count(name: str, value: Dict[str, Any]) -> int:
    """A histogram entry's observation count, validated."""
    try:
        return int(value.get("count", 0))
    except (TypeError, ValueError) as exc:
        raise SnapshotError(
            f"histogram {name!r} is malformed: bad count: {exc}"
        ) from exc


def _compare_histograms(
    base: Dict[str, Any], cur: Dict[str, Any], tol: Tolerances
) -> List[DeltaRow]:
    rows: List[DeltaRow] = []
    for name in sorted(set(base) | set(cur)):
        timing = name.startswith(TIMING_PREFIX)
        kind = "timing" if timing else "histogram"
        if name in base:
            _histogram_dict(name, base[name])
        if name in cur:
            _histogram_dict(name, cur[name])
        if name not in cur:
            rows.append(
                DeltaRow(
                    name,
                    kind,
                    STATUS_REMOVED,
                    float(_histogram_count(name, base[name])),
                    None,
                    "histogram present in baseline but not in this run",
                )
            )
            continue
        if name not in base:
            rows.append(
                DeltaRow(
                    name,
                    kind,
                    STATUS_ADDED,
                    None,
                    float(_histogram_count(name, cur[name])),
                    "new histogram, not in baseline",
                )
            )
            continue
        b_count = _histogram_count(name, base[name])
        c_count = _histogram_count(name, cur[name])
        if timing:
            rows.extend(
                _compare_timing(name, base[name], cur[name], tol)
            )
            continue
        if b_count == c_count:
            rows.append(
                DeltaRow(name, kind, STATUS_OK, float(b_count), float(c_count))
            )
        else:
            rows.append(
                DeltaRow(
                    name,
                    kind,
                    STATUS_REGRESSION,
                    float(b_count),
                    float(c_count),
                    f"observation count changed {b_count} -> {c_count}",
                )
            )
    return rows


def _compare_timing(
    name: str, base: Dict[str, Any], cur: Dict[str, Any], tol: Tolerances
) -> List[DeltaRow]:
    rows: List[DeltaRow] = []
    b_stats = _timing_stats(name, base)
    c_stats = _timing_stats(name, cur)
    bad_status = STATUS_WARNING if tol.timing_warn_only else STATUS_REGRESSION
    for stat in ("mean", "p95"):
        b, c = b_stats[stat], c_stats[stat]
        row_name = f"{name}.{stat}"
        if b is None or c is None:
            # Version-1 baselines carry no samples: p95 is unknowable.
            rows.append(
                DeltaRow(
                    row_name,
                    "timing",
                    STATUS_OK,
                    b,
                    c,
                    "no samples recorded; skipped",
                )
            )
            continue
        if b <= 0.0:
            rows.append(DeltaRow(row_name, "timing", STATUS_OK, b, c))
            continue
        ratio = c / b
        if ratio <= tol.timing_max_ratio:
            rows.append(DeltaRow(row_name, "timing", STATUS_OK, b, c))
        else:
            rows.append(
                DeltaRow(
                    row_name,
                    "timing",
                    bad_status,
                    b,
                    c,
                    f"{ratio:.2f}x slower than baseline "
                    f"(bound {tol.timing_max_ratio:g}x)",
                )
            )
    return rows


def compare_snapshots(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tolerances: Optional[Tolerances] = None,
) -> RegressionReport:
    """Diff two metric snapshots under the given tolerances.

    Raises :class:`SnapshotError` when the two snapshots were written
    under different schema versions (see :func:`check_schema_match`) or
    when a histogram entry is malformed — both are artifact problems,
    not regressions, and must not be reported as tolerance rows.
    """
    check_schema_match(baseline, current)
    tol = tolerances if tolerances is not None else Tolerances()
    rows = _compare_counters(
        baseline.get("counters", {}), current.get("counters", {}), tol
    )
    rows.extend(
        _compare_histograms(
            baseline.get("histograms", {}), current.get("histograms", {}), tol
        )
    )
    return RegressionReport(rows=rows, tolerances=tol)


# ------------------------------------------------------------- rendering


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if float(value).is_integer() and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def render_text(report: RegressionReport, verbose: bool = False) -> str:
    """The delta table as aligned text; quiet rows elided by default."""
    shown = [
        row
        for row in report.rows
        if verbose or row.status != STATUS_OK
    ]
    lines: List[str] = []
    if shown:
        name_w = max(len(r.name) for r in shown)
        stat_w = max(len(r.status) for r in shown)
        for row in shown:
            line = (
                f"{row.status:<{stat_w}}  {row.name:<{name_w}}  "
                f"{_fmt(row.baseline)} -> {_fmt(row.current)}"
            )
            if row.detail:
                line += f"  ({row.detail})"
            lines.append(line)
    n_reg = len(report.regressions)
    n_warn = len(report.warnings)
    lines.append(
        f"{len(report.rows)} metrics compared: "
        f"{n_reg} regression{'s' if n_reg != 1 else ''}, "
        f"{n_warn} warning{'s' if n_warn != 1 else ''}"
    )
    return "\n".join(lines)


def render_json(report: RegressionReport) -> str:
    return json.dumps(
        {
            "ok": report.ok,
            "tolerances": dataclasses.asdict(report.tolerances),
            "regressions": len(report.regressions),
            "warnings": len(report.warnings),
            "rows": [row.to_dict() for row in report.rows],
        },
        indent=2,
        sort_keys=True,
    )


__all__ = [
    "DeltaRow",
    "RegressionReport",
    "SnapshotError",
    "TIMING_PREFIX",
    "Tolerances",
    "check_schema_match",
    "compare_snapshots",
    "load_snapshot",
    "render_json",
    "render_text",
]
