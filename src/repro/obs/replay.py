"""Deterministic session replay from a journal.

A journal (:mod:`repro.obs.journal`) records every decision a Clarify
session made; this module re-drives the *same* session from that record
with **zero** LLM or oracle calls:

* :class:`ReplayLLM` implements :class:`~repro.llm.client.LLMClient` by
  serving the journal's recorded ``llm.call`` responses in order, after
  verifying the pipeline is asking for exactly the recorded request
  (system-prompt hash and user prompt must match byte for byte);
* :class:`ReplayOracle` answers disambiguation questions from the
  recorded ``disambiguation.question`` events, again verifying the
  rendered differential example matches the recorded one;
* :func:`replay_journal` rebuilds the session(s) from the recorded
  inputs, runs every cycle under a *fresh* journal, and compares the
  replayed event stream against the recorded one event by event — the
  first mismatch (including the ``cycle.end`` configuration and
  ``UpdateReport`` hashes) is reported as a :class:`Divergence`.

Because the journalled event stream includes the rendered configuration
and report hashes, "the replayed event streams are identical" implies
"the replayed configuration and UpdateReport are byte-for-byte the
recorded ones".
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.errors import ClarifyError, DisambiguationError
from repro.obs.journal import JournalEvent, JournalRecorder, validate_journal


class ReplayError(ClarifyError):
    """The journal cannot drive a replay (malformed or incomplete)."""


@dataclasses.dataclass(frozen=True)
class Divergence:
    """The first point where the replay stopped matching the record."""

    #: Sequence number of the first mismatching recorded event (or the
    #: first missing one when the replay produced fewer events).
    seq: Optional[int]
    kind: str
    expected: Any
    actual: Any
    detail: str = ""

    def render(self) -> str:
        lines = [f"divergence at event {self.seq} ({self.kind})"]
        if self.detail:
            lines.append(f"  {self.detail}")
        lines.append(f"  expected: {self.expected!r}")
        lines.append(f"  actual:   {self.actual!r}")
        return "\n".join(lines)


class ReplayDivergence(ClarifyError):
    """Raised mid-replay when the pipeline departs from the record."""

    def __init__(self, divergence: Divergence) -> None:
        super().__init__(divergence.render())
        self.divergence = divergence


class ReplayLLM:
    """Serves recorded LLM responses instead of calling a model.

    The constructor takes the journal's ``llm.call`` events in order;
    each :meth:`complete` call is checked against the next recorded
    request before its recorded response is returned.
    """

    def __init__(self, calls: Sequence[JournalEvent]) -> None:
        self._calls = [e for e in calls if e.type == "llm.call"]
        self._cursor = 0

    @property
    def served(self) -> int:
        return self._cursor

    @property
    def remaining(self) -> int:
        return len(self._calls) - self._cursor

    def complete(self, system: str, prompt: str) -> str:
        if self._cursor >= len(self._calls):
            raise ReplayDivergence(
                Divergence(
                    seq=None,
                    kind="llm-call",
                    expected="(no further recorded LLM calls)",
                    actual={"prompt": prompt},
                    detail="replay made more LLM calls than the journal records",
                )
            )
        recorded = self._calls[self._cursor]
        want = recorded.data
        got = {
            "system_sha256": obs.sha256_text(system),
            "prompt": prompt,
        }
        if (
            got["system_sha256"] != want.get("system_sha256")
            or got["prompt"] != want.get("prompt")
        ):
            raise ReplayDivergence(
                Divergence(
                    seq=recorded.seq,
                    kind="llm-call",
                    expected={
                        "system_sha256": want.get("system_sha256"),
                        "prompt": want.get("prompt"),
                    },
                    actual=got,
                    detail="LLM was asked a different request than recorded",
                )
            )
        self._cursor += 1
        obs.count("replay.llm_served")
        return str(want.get("response", ""))


class ReplayOracle:
    """Answers disambiguation questions from the recorded transcript."""

    def __init__(self, questions: Sequence[JournalEvent]) -> None:
        self._questions = [
            e for e in questions if e.type == "disambiguation.question"
        ]
        self._cursor = 0

    @property
    def served(self) -> int:
        return self._cursor

    def choose(self, question) -> int:
        if self._cursor >= len(self._questions):
            raise DisambiguationError(
                "replay journal has no more recorded answers "
                f"(asked {self._cursor + 1} questions)"
            )
        recorded = self._questions[self._cursor]
        rendered = question.render()
        if rendered != recorded.data.get("question"):
            raise ReplayDivergence(
                Divergence(
                    seq=recorded.seq,
                    kind="oracle",
                    expected=recorded.data.get("question"),
                    actual=rendered,
                    detail="disambiguator asked a different question than recorded",
                )
            )
        self._cursor += 1
        obs.count("replay.answers_served")
        return int(recorded.data.get("answer", 1))


# --------------------------------------------------------------- driving


@dataclasses.dataclass
class ReplayResult:
    """What :func:`replay_journal` did and whether it matched."""

    ok: bool
    cycles: int
    llm_calls_served: int
    answers_served: int
    divergence: Optional[Divergence]
    recorded_events: List[JournalEvent]
    replayed_events: List[JournalEvent]
    #: The :class:`~repro.core.workflow.UpdateReport` of each replayed
    #: cycle that completed, in journal order.
    reports: List[Any] = dataclasses.field(default_factory=list)
    #: The rebuilt :class:`~repro.core.workflow.ClarifySession` per
    #: recorded session key — the durable session store adopts these as
    #: live sessions after a crash (see :mod:`repro.serve.store`).
    sessions: Dict[Any, Any] = dataclasses.field(default_factory=dict)

    @property
    def matched_events(self) -> int:
        """How many event pairs matched before the first divergence."""
        count = 0
        for recorded, replayed in zip(
            self.recorded_events, self.replayed_events
        ):
            if _canonical(recorded) != _canonical(replayed):
                break
            count += 1
        return count


def _canonical(event: JournalEvent) -> Tuple[str, Any]:
    """An event as a comparable (type, data) pair.

    Session ids are process-global, so replayed ones differ from the
    recorded ones; they are compared separately (by grouping) and
    dropped here.  ``cycle.error`` messages may legitimately differ when
    the error comes from the replay harness itself (e.g. an exhausted
    oracle), so only the error *type* is compared.
    """
    data = dict(event.data)
    if event.type == "cycle.start":
        data.pop("session", None)
    if event.type == "cycle.error":
        data.pop("message", None)
    return event.type, _freeze(data)


def _freeze(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _first_mismatch(
    recorded: Sequence[JournalEvent], replayed: Sequence[JournalEvent]
) -> Optional[Divergence]:
    for idx, rec in enumerate(recorded):
        if idx >= len(replayed):
            return Divergence(
                seq=rec.seq,
                kind="missing-event",
                expected={"type": rec.type, "data": rec.data},
                actual=None,
                detail="replay produced fewer events than the journal records",
            )
        rep = replayed[idx]
        if _canonical(rec) != _canonical(rep):
            return Divergence(
                seq=rec.seq,
                kind="event-mismatch",
                expected={"type": rec.type, "data": rec.data},
                actual={"type": rep.type, "data": rep.data},
                detail="replayed event differs from the recorded one",
            )
    if len(replayed) > len(recorded):
        extra = replayed[len(recorded)]
        return Divergence(
            seq=None,
            kind="extra-event",
            expected=None,
            actual={"type": extra.type, "data": extra.data},
            detail="replay produced more events than the journal records",
        )
    return None


def _split_cycles(
    events: Sequence[JournalEvent],
) -> List[List[JournalEvent]]:
    """Group the journal body into per-cycle event runs."""
    cycles: List[List[JournalEvent]] = []
    for event in events:
        if event.type == "journal.open":
            continue
        if event.type == "cycle.start":
            cycles.append([event])
        elif cycles:
            cycles[-1].append(event)
        else:
            raise ReplayError(
                f"journal event {event.seq} ({event.type}) precedes the "
                "first cycle.start"
            )
    return cycles


def replay_journal(events: Sequence[JournalEvent]) -> ReplayResult:
    """Re-drive every session in ``events`` and diff the event streams.

    Returns a :class:`ReplayResult` whose ``ok`` is True only when the
    replayed journal matches the recorded one event for event — which
    entails identical rendered configurations, diffs, ``UpdateReport``
    fields, verifier verdicts, and lint-gate outcomes, since all of
    those are part of the recorded stream.  No LLM client and no oracle
    other than the journal itself is ever consulted.
    """
    from repro.config import parse_config
    from repro.core.disambiguator import DisambiguationMode
    from repro.core.workflow import ClarifySession

    recorded = list(events)
    validate_journal(recorded)
    cycles = _split_cycles(recorded)
    llm = ReplayLLM(recorded)
    oracle = ReplayOracle(recorded)

    replay_record = JournalRecorder()
    sessions: Dict[Any, ClarifySession] = {}
    reports: List[Any] = []
    divergence: Optional[Divergence] = None

    with obs.journaling(replay_record):
        for cycle in cycles:
            start = cycle[0]
            data = start.data
            key = data.get("session")
            session = sessions.get(key)
            if session is None:
                session = ClarifySession(
                    store=parse_config(data.get("config", "")),
                    llm=llm,
                    oracle=oracle,
                    mode=DisambiguationMode(data.get("mode", "full")),
                    max_attempts=int(data.get("max_attempts", 3)),
                    lint_gate=bool(data.get("lint_gate", True)),
                )
                sessions[key] = session
            recorded_error = next(
                (e for e in cycle if e.type == "cycle.error"), None
            )
            try:
                if data.get("op") == "reuse":
                    report = session.reuse(
                        parse_config(data.get("snippet", "")),
                        data["target"],
                        kind=data.get("kind", "route-map"),
                    )
                else:
                    report = session.request(data["intent"], data["target"])
                reports.append(report)
            except ReplayDivergence as exc:
                divergence = exc.divergence
                break
            except ClarifyError:
                if recorded_error is None:
                    # The recorded cycle succeeded; the replayed one did
                    # not.  The event-stream diff below pins the spot.
                    break
                # Both failed; the emitted cycle.error events are
                # compared (by type) with the rest of the stream.
                continue

    if divergence is None:
        divergence = _first_mismatch(recorded, replay_record.events)
    return ReplayResult(
        ok=divergence is None,
        cycles=len(cycles),
        llm_calls_served=llm.served,
        answers_served=oracle.served,
        divergence=divergence,
        recorded_events=recorded,
        replayed_events=replay_record.events,
        reports=reports,
        sessions=sessions,
    )


__all__ = [
    "Divergence",
    "ReplayDivergence",
    "ReplayError",
    "ReplayLLM",
    "ReplayOracle",
    "ReplayResult",
    "replay_journal",
]
