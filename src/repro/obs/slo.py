"""Declarative SLOs with multi-window burn-rate evaluation.

An *objective* declares what fraction of requests must be *good*:

* ``latency`` — good means the wide event's ``timings.latency_s`` is at
  or under ``threshold_s``;
* ``availability`` — good means the outcome is not in
  ``error_outcomes``.

A *window* is a trailing event count with a maximum tolerated **burn
rate** — the rate at which the error budget (``1 - objective``) is being
spent: ``burn = bad_fraction / (1 - objective)``.  Burn 1.0 spends the
budget exactly at the objective's rate; burn 10 spends it ten times too
fast.  Following the SRE multi-window pattern, an objective **alerts**
only when *every* window is over its bound — the short window proves the
problem is current, the long window proves it is sustained, and neither
alone flaps.

Configs are plain JSON (see :func:`load_config` for the schema and
:func:`default_config` for the built-in defaults ``clarify loadgen``
evaluates).  ``clarify bench-check --slo-report`` turns a recorded
evaluation into an exit code.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Version of the SLO config / report schema.
SLO_SCHEMA_VERSION = 1

#: Outcomes that count against availability unless the config overrides.
DEFAULT_ERROR_OUTCOMES = ("error", "internal-error")

_KINDS = ("latency", "availability")


class SLOConfigError(ValueError):
    """An SLO config file is missing, unreadable, or malformed."""


@dataclasses.dataclass(frozen=True)
class Objective:
    """One declared objective: a good-event predicate plus a target."""

    name: str
    kind: str
    objective: float
    threshold_s: Optional[float] = None
    error_outcomes: Tuple[str, ...] = DEFAULT_ERROR_OUTCOMES

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise SLOConfigError(
                f"objective {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {_KINDS})"
            )
        if not 0.0 < self.objective < 1.0:
            raise SLOConfigError(
                f"objective {self.name!r}: objective must be in (0, 1), "
                f"got {self.objective!r}"
            )
        if self.kind == "latency" and (
            self.threshold_s is None or self.threshold_s <= 0
        ):
            raise SLOConfigError(
                f"objective {self.name!r}: latency objectives need a "
                f"positive threshold_s"
            )

    def is_good(self, event: Dict[str, Any]) -> bool:
        """Whether one wide event counts as good under this objective."""
        if self.kind == "latency":
            timings = event.get("timings", {})
            latency = float(timings.get("latency_s", 0.0))
            assert self.threshold_s is not None  # __post_init__ invariant
            return latency <= self.threshold_s
        return str(event.get("outcome", "")) not in self.error_outcomes


@dataclasses.dataclass(frozen=True)
class Window:
    """A trailing event-count window and its tolerated burn rate."""

    name: str
    events: int
    max_burn_rate: float

    def __post_init__(self) -> None:
        if self.events < 1:
            raise SLOConfigError(
                f"window {self.name!r}: events must be at least 1"
            )
        if self.max_burn_rate <= 0:
            raise SLOConfigError(
                f"window {self.name!r}: max_burn_rate must be positive"
            )


@dataclasses.dataclass(frozen=True)
class SLOConfig:
    """The full declaration: objectives × windows."""

    objectives: Tuple[Objective, ...]
    windows: Tuple[Window, ...]

    def __post_init__(self) -> None:
        if not self.objectives:
            raise SLOConfigError("config declares no objectives")
        if not self.windows:
            raise SLOConfigError("config declares no windows")


def default_config() -> SLOConfig:
    """The built-in objectives ``clarify loadgen`` evaluates by default.

    Latency: 90% of requests under 2s end to end.  Availability: 99%
    of requests resolve without an error outcome.  Windows: a short
    (32-event, burn ≤ 14) and a long (256-event, burn ≤ 6) pair.
    """
    return SLOConfig(
        objectives=(
            Objective(
                name="latency-p90-2s",
                kind="latency",
                objective=0.90,
                threshold_s=2.0,
            ),
            Objective(
                name="availability-99",
                kind="availability",
                objective=0.99,
            ),
        ),
        windows=(
            Window(name="short", events=32, max_burn_rate=14.0),
            Window(name="long", events=256, max_burn_rate=6.0),
        ),
    )


def config_from_dict(data: Dict[str, Any]) -> SLOConfig:
    """Build an :class:`SLOConfig` from parsed JSON, validating it."""
    version = data.get("schema_version", SLO_SCHEMA_VERSION)
    if version != SLO_SCHEMA_VERSION:
        raise SLOConfigError(
            f"unsupported SLO schema_version {version!r} "
            f"(supported: {SLO_SCHEMA_VERSION})"
        )
    try:
        objectives = tuple(
            Objective(
                name=str(obj["name"]),
                kind=str(obj["kind"]),
                objective=float(obj["objective"]),
                threshold_s=(
                    float(obj["threshold_s"])
                    if obj.get("threshold_s") is not None
                    else None
                ),
                error_outcomes=tuple(
                    obj.get("error_outcomes", DEFAULT_ERROR_OUTCOMES)
                ),
            )
            for obj in data.get("objectives", ())
        )
        windows = tuple(
            Window(
                name=str(win["name"]),
                events=int(win["events"]),
                max_burn_rate=float(win["max_burn_rate"]),
            )
            for win in data.get("windows", ())
        )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, SLOConfigError):
            raise
        raise SLOConfigError(f"malformed SLO config: {exc}") from exc
    return SLOConfig(objectives=objectives, windows=windows)


def load_config(path: str) -> SLOConfig:
    """Read and validate one SLO config JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise SLOConfigError(f"cannot read SLO config {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SLOConfigError(
            f"SLO config {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise SLOConfigError(f"SLO config {path} is not a JSON object")
    return config_from_dict(data)


@dataclasses.dataclass(frozen=True)
class WindowBurn:
    """One objective's burn rate over one window."""

    window: str
    events: int
    bad: int
    bad_fraction: float
    burn_rate: float
    max_burn_rate: float

    @property
    def breaching(self) -> bool:
        return self.burn_rate > self.max_burn_rate

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["breaching"] = self.breaching
        return data


@dataclasses.dataclass(frozen=True)
class ObjectiveReport:
    """One objective's verdict: per-window burns and the alert state."""

    name: str
    kind: str
    objective: float
    windows: Tuple[WindowBurn, ...]

    @property
    def alerting(self) -> bool:
        """True when every evaluated window is over its burn bound."""
        return bool(self.windows) and all(w.breaching for w in self.windows)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "alerting": self.alerting,
            "windows": [w.to_dict() for w in self.windows],
        }


@dataclasses.dataclass(frozen=True)
class SLOReport:
    """The full evaluation over one wide-event stream."""

    schema_version: int
    events: int
    objectives: Tuple[ObjectiveReport, ...]

    @property
    def ok(self) -> bool:
        return not any(obj.alerting for obj in self.objectives)

    @property
    def alerting(self) -> List[str]:
        return [obj.name for obj in self.objectives if obj.alerting]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "events": self.events,
            "ok": self.ok,
            "alerting": self.alerting,
            "objectives": [obj.to_dict() for obj in self.objectives],
        }


def _window_burn(
    objective: Objective, window: Window, events: Sequence[Dict[str, Any]]
) -> WindowBurn:
    tail = events[-window.events :] if window.events < len(events) else events
    bad = sum(1 for event in tail if not objective.is_good(event))
    count = len(tail)
    bad_fraction = bad / count if count else 0.0
    budget = 1.0 - objective.objective
    burn = bad_fraction / budget if budget > 0 else float("inf")
    return WindowBurn(
        window=window.name,
        events=count,
        bad=bad,
        bad_fraction=bad_fraction,
        burn_rate=burn,
        max_burn_rate=window.max_burn_rate,
    )


def evaluate(
    events: Sequence[Dict[str, Any]],
    config: Optional[SLOConfig] = None,
) -> SLOReport:
    """Evaluate every objective over the trailing windows of ``events``.

    ``events`` is a wide-event sequence in arrival order (each window is
    the trailing slice).  With no events every burn rate is zero and the
    report is trivially ok.
    """
    cfg = config if config is not None else default_config()
    ordered = list(events)
    reports = tuple(
        ObjectiveReport(
            name=objective.name,
            kind=objective.kind,
            objective=objective.objective,
            windows=tuple(
                _window_burn(objective, window, ordered)
                for window in cfg.windows
            ),
        )
        for objective in cfg.objectives
    )
    return SLOReport(
        schema_version=SLO_SCHEMA_VERSION,
        events=len(ordered),
        objectives=reports,
    )


__all__ = [
    "DEFAULT_ERROR_OUTCOMES",
    "Objective",
    "ObjectiveReport",
    "SLOConfig",
    "SLOConfigError",
    "SLOReport",
    "SLO_SCHEMA_VERSION",
    "Window",
    "WindowBurn",
    "config_from_dict",
    "default_config",
    "evaluate",
    "load_config",
]
