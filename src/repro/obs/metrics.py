"""Monotonic counters and summary histograms.

The metric model is deliberately tiny: a *counter* is a monotonically
increasing integer keyed by name, and a *histogram* is a streaming
summary (count / total / min / max) of observed values.  Both live in a
:class:`~repro.obs.recorder.Recorder`'s registry; this module only holds
the value types so the exporters and tests can use them standalone.
"""

from __future__ import annotations

from typing import Dict, Union

Number = Union[int, float]


class Histogram:
    """A streaming summary of observed values.

    Stores only the four aggregates Figure-4-style bookkeeping needs
    (count, total, min, max); :attr:`mean` is derived.  Not a bucketed
    histogram — per-value distributions are the spans' job.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: Number = 0
        self.min: Number = 0
        self.max: Number = 0

    def observe(self, value: Number) -> None:
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram."""
        if other.count == 0:
            return
        if self.count == 0:
            self.min = other.min
            self.max = other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total

    # ------------------------------------------------------- serialisation

    def to_dict(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Number]) -> "Histogram":
        hist = cls()
        hist.count = int(data["count"])
        hist.total = data["total"]
        hist.min = data["min"]
        hist.max = data["max"]
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, total={self.total}, "
            f"min={self.min}, max={self.max})"
        )


__all__ = ["Histogram"]
