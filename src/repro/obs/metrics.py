"""Monotonic counters and summary histograms.

The metric model is deliberately tiny: a *counter* is a monotonically
increasing integer keyed by name, and a *histogram* is a streaming
summary (count / total / min / max plus a bounded sample reservoir) of
observed values.  Both live in a :class:`~repro.obs.recorder.Recorder`'s
registry; this module only holds the value types so the exporters and
tests can use them standalone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

Number = Union[int, float]

#: Retained-sample bound per histogram.  Kept small: the reservoir exists
#: for tail quantiles (p95/p99 of span timings), not exact distributions.
MAX_SAMPLES = 512


class Histogram:
    """A streaming summary of observed values.

    Tracks the four exact aggregates (count, total, min, max; :attr:`mean`
    is derived) plus a bounded, *deterministic* sample reservoir for
    quantile estimates: every ``stride``-th observation is retained, and
    when the reservoir exceeds :data:`MAX_SAMPLES` it is decimated by
    dropping every other sample and doubling the stride.  The same
    observation sequence therefore always yields the same samples, which
    keeps metric snapshots diffable run to run.
    """

    __slots__ = ("count", "total", "min", "max", "samples", "_stride")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: Number = 0
        self.min: Number = 0
        self.max: Number = 0
        self.samples: List[Number] = []
        self._stride: int = 1

    def observe(self, value: Number) -> None:
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.total += value
        if (self.count - 1) % self._stride == 0:
            self.samples.append(value)
            if len(self.samples) > MAX_SAMPLES:
                self.samples = self.samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (0 ≤ q ≤ 1) from the retained samples.

        Linear interpolation between the two nearest order statistics;
        exact when nothing has been decimated.  Returns ``None`` for an
        empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return float(ordered[0])
        rank = q * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram."""
        if other.count == 0:
            return
        if self.count == 0:
            self.min = other.min
            self.max = other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total
        self.samples.extend(other.samples)
        self._stride = max(self._stride, other._stride)
        while len(self.samples) > MAX_SAMPLES:
            self.samples = self.samples[::2]
            self._stride *= 2

    # ------------------------------------------------------- serialisation

    def to_dict(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "samples": list(self.samples),
            "stride": self._stride,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Number]) -> "Histogram":
        hist = cls()
        hist.count = int(data["count"])
        hist.total = data["total"]
        hist.min = data["min"]
        hist.max = data["max"]
        # Pre-reservoir (version-1) snapshots carry no samples; quantiles
        # on such a restored histogram report None.
        hist.samples = list(data.get("samples", ()))
        hist._stride = int(data.get("stride", 1))
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, total={self.total}, "
            f"min={self.min}, max={self.max})"
        )


__all__ = ["MAX_SAMPLES", "Histogram"]
