"""``repro.obs`` — tracing and metrics for the Clarify pipeline.

A dependency-free observability layer (stdlib only) with three pieces:

* **spans** (:class:`Span`) — a wall-clock-timed tree mirroring one
  Clarify cycle: ``clarify.request`` at the root, synthesis attempts,
  verification, disambiguation, and LLM calls underneath;
* **metrics** — monotonic counters (LLM calls, verify retries, user
  questions, space intersections) and summary histograms (overlap
  set sizes, binary-search depth, BGP convergence iterations) in a
  thread-safe registry (:class:`Recorder`);
* **exporters** — text renderings (:func:`render_span_tree`,
  :func:`render_metrics`, :func:`render_report`) and a JSON snapshot
  (:func:`snapshot` / :func:`to_json`) that round-trips.

Sibling layers build on the same hook pattern: the **journal**
(:mod:`repro.obs.journal`) persists every pipeline decision as a JSONL
event stream that :mod:`repro.obs.replay` can re-drive with zero LLM or
oracle calls, :mod:`repro.obs.regress` diffs two metric snapshots as a
performance-regression gate (``clarify bench-check``), and the
**serving telemetry** pair — :mod:`repro.obs.telemetry` (per-request
trace propagation, wide-event request logs, the live Prometheus
``/metrics`` endpoint) and :mod:`repro.obs.slo` (declarative objectives
with multi-window burn rates) — turns a running ``clarify serve`` into
something you can actually watch.

Instrumentation is **off by default**: the active recorder is a
:class:`NullRecorder` and every hook is a no-op, so library users pay
nothing.  Turn it on around a region of interest::

    from repro import obs

    with obs.recording() as rec:
        session.request(intent, "ISP_OUT")
    print(obs.render_report(rec))
    rec.counter("llm.calls")          # == report.llm_calls

or process-wide with :func:`install` / :func:`uninstall`.  The
``clarify trace`` CLI subcommand does exactly this around one cycle.
The span and metric names emitted by the library are catalogued in
``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    SNAPSHOT_VERSION,
    render_metrics,
    render_report,
    render_span_tree,
    run_metadata,
    snapshot,
    snapshot_to_recorder,
    span_from_dict,
    span_to_dict,
    to_json,
)
from repro.obs.journal import (
    JOURNAL_VERSION,
    JournalError,
    JournalEvent,
    JournalRecorder,
    dumps_journal,
    event,
    get_journal,
    install_journal,
    journal_enabled,
    journaling,
    loads_journal,
    read_journal,
    sha256_text,
    uninstall_journal,
)
from repro.obs.metrics import Histogram
from repro.obs.recorder import (
    NullRecorder,
    Recorder,
    Span,
    count,
    enabled,
    get_recorder,
    install,
    observe,
    recording,
    span,
    uninstall,
)
from repro.obs.telemetry import (
    MetricsServer,
    RollingStats,
    TelemetryHub,
    TraceContext,
    current_trace,
    follow_events,
    get_hub,
    hub_active,
    install_hub,
    iter_events,
    mint_trace,
    render_prometheus,
    tracing,
    uninstall_hub,
)

__all__ = [
    "Histogram",
    "JOURNAL_VERSION",
    "JournalError",
    "JournalEvent",
    "JournalRecorder",
    "MetricsServer",
    "NullRecorder",
    "Recorder",
    "RollingStats",
    "SNAPSHOT_VERSION",
    "Span",
    "TelemetryHub",
    "TraceContext",
    "count",
    "current_trace",
    "dumps_journal",
    "enabled",
    "event",
    "follow_events",
    "get_hub",
    "get_journal",
    "get_recorder",
    "hub_active",
    "install",
    "install_hub",
    "install_journal",
    "iter_events",
    "journal_enabled",
    "journaling",
    "loads_journal",
    "mint_trace",
    "observe",
    "read_journal",
    "recording",
    "render_metrics",
    "render_prometheus",
    "render_report",
    "render_span_tree",
    "run_metadata",
    "sha256_text",
    "snapshot",
    "snapshot_to_recorder",
    "span",
    "span_from_dict",
    "span_to_dict",
    "to_json",
    "tracing",
    "uninstall",
    "uninstall_hub",
    "uninstall_journal",
]
