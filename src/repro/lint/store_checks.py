"""Store-level checks: RF001 dangling-reference, RF002
unused-definition, NM001 naming-inconsistency.

These need no symbolic analysis — they walk the reference graph between
route-maps, their ancillary lists, and (when a device is supplied)
interface ACL attachments.  RF001 findings additionally gate the
symbolic route-map checks: a guard with a dangling list reference cannot
be translated, so the registry skips those route-maps instead of
crashing mid-run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.config.device import DeviceConfig
from repro.config.matches import (
    MatchAsPath,
    MatchClause,
    MatchCommunity,
    MatchPrefixList,
)
from repro.config.names import numbered_family
from repro.config.routemap import RouteMap
from repro.config.store import ConfigStore
from repro.lint.diagnostics import Diagnostic, Severity, SourceLocation

#: (clause type, list kind, store membership test name) triples.
_CLAUSE_KINDS: Tuple[Tuple[type, str, str], ...] = (
    (MatchPrefixList, "prefix-list", "has_prefix_list"),
    (MatchCommunity, "community-list", "has_community_list"),
    (MatchAsPath, "as-path-list", "has_as_path_list"),
)


def _clause_references(clause: MatchClause) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """The (list kind, names) a match clause references, if any."""
    for clause_type, kind, _checker in _CLAUSE_KINDS:
        if isinstance(clause, clause_type):
            names: Tuple[str, ...] = clause.names  # type: ignore[attr-defined]
            return kind, names
    return None


def referenced_lists(route_map: RouteMap) -> Dict[str, Set[str]]:
    """Every ancillary-list name a route-map's stanzas reference, by kind."""
    out: Dict[str, Set[str]] = {
        "prefix-list": set(),
        "community-list": set(),
        "as-path-list": set(),
    }
    for stanza in route_map.stanzas:
        for clause in stanza.matches:
            reference = _clause_references(clause)
            if reference is not None:
                kind, names = reference
                out[kind].update(names)
    return out


def check_dangling_references(
    store: ConfigStore,
    device: Optional[DeviceConfig] = None,
    with_witnesses: bool = True,
) -> List[Diagnostic]:
    """RF001: references to lists/ACLs that are not defined.

    Evaluating such a policy raises at match time (the store fails
    loudly), and the symbolic engine cannot translate the guard at all —
    the configuration is broken, severity *error*.
    """
    diagnostics: List[Diagnostic] = []
    checkers = {
        kind: checker for _clause_type, kind, checker in _CLAUSE_KINDS
    }
    for route_map in store.route_maps():
        for stanza in route_map.stanzas:
            for clause in stanza.matches:
                reference = _clause_references(clause)
                if reference is None:
                    continue
                kind, names = reference
                has = getattr(store, checkers[kind])
                for name in names:
                    if has(name):
                        continue
                    diagnostics.append(
                        Diagnostic(
                            code="RF001",
                            severity=Severity.ERROR,
                            location=SourceLocation(
                                "route-map", route_map.name, stanza.seq
                            ),
                            message=(
                                f"stanza {stanza.seq} references undefined "
                                f"{kind} {name!r}"
                            ),
                            suggestion=f"define {kind} {name} or fix the "
                            "reference",
                        )
                    )
    if device is not None:
        for interface in device.interfaces:
            for attribute in ("acl_in", "acl_out"):
                acl_name = getattr(interface, attribute)
                if acl_name is None or store.has_acl(acl_name):
                    continue
                direction = "in" if attribute == "acl_in" else "out"
                diagnostics.append(
                    Diagnostic(
                        code="RF001",
                        severity=Severity.ERROR,
                        location=SourceLocation("interface", interface.name),
                        message=(
                            f"ip access-group {acl_name} {direction} "
                            f"references an undefined access-list"
                        ),
                        suggestion=f"define access-list {acl_name} or "
                        "remove the attachment",
                    )
                )
    return diagnostics


def check_unused_definitions(
    store: ConfigStore,
    device: Optional[DeviceConfig] = None,
    with_witnesses: bool = True,
) -> List[Diagnostic]:
    """RF002: ancillary lists no route-map references.

    Unused definitions are where half-applied updates hide; they also
    make family-style renaming pick surprising names.  ACLs are only
    checked when a device is supplied (interface attachments are the
    reference points at that level).
    """
    used: Dict[str, Set[str]] = {
        "prefix-list": set(),
        "community-list": set(),
        "as-path-list": set(),
    }
    for route_map in store.route_maps():
        for kind, names in referenced_lists(route_map).items():
            used[kind].update(names)
    defined = {
        "prefix-list": [pl.name for pl in store.prefix_lists()],
        "community-list": [cl.name for cl in store.community_lists()],
        "as-path-list": [al.name for al in store.as_path_lists()],
    }
    diagnostics: List[Diagnostic] = []
    for kind, names in defined.items():
        for name in names:
            if name in used[kind]:
                continue
            diagnostics.append(
                Diagnostic(
                    code="RF002",
                    severity=Severity.INFO,
                    location=SourceLocation(kind, name),
                    message=f"{kind} {name} is defined but never referenced",
                    suggestion="delete the definition or wire it into a "
                    "route-map",
                )
            )
    if device is not None:
        attached: Set[str] = set()
        for interface in device.interfaces:
            for acl_name in (interface.acl_in, interface.acl_out):
                if acl_name is not None:
                    attached.add(acl_name)
        for acl in store.acls():
            if acl.name in attached:
                continue
            diagnostics.append(
                Diagnostic(
                    code="RF002",
                    severity=Severity.INFO,
                    location=SourceLocation("acl", acl.name),
                    message=(
                        f"access-list {acl.name} is not attached to any "
                        "interface"
                    ),
                    suggestion="attach it with ip access-group or delete it",
                )
            )
    return diagnostics


def check_naming_families(
    store: ConfigStore,
    device: Optional[DeviceConfig] = None,
    with_witnesses: bool = True,
) -> List[Diagnostic]:
    """NM001: numbered list names that stray from the dominant family.

    Insertion-time renaming (Fig. 2) continues the dominant
    ``<stem><number>`` family; a lone numbered name with a different
    stem usually means an earlier update bypassed the rename and the
    naming scheme is drifting.  Descriptive (un-numbered) names are
    deliberate and never flagged.
    """
    kinds: Dict[str, str] = {}
    for pl in store.prefix_lists():
        kinds[pl.name] = "prefix-list"
    for cl in store.community_lists():
        kinds[cl.name] = "community-list"
    for al in store.as_path_lists():
        kinds[al.name] = "as-path-list"
    families: Dict[str, List[str]] = {}
    for name in kinds:
        family = numbered_family(name)
        if family is None:
            continue
        families.setdefault(family[0], []).append(name)
    if not families:
        return []
    best = max(len(names) for names in families.values())
    dominant = [
        stem for stem, names in families.items() if len(names) == best
    ]
    if best < 2 or len(dominant) != 1:
        return []
    stem = dominant[0]
    diagnostics: List[Diagnostic] = []
    for other_stem, names in sorted(families.items()):
        if other_stem == stem or len(names) != 1:
            continue
        (name,) = names
        diagnostics.append(
            Diagnostic(
                code="NM001",
                severity=Severity.INFO,
                location=SourceLocation(kinds[name], name),
                message=(
                    f"name {name} strays from the dominant "
                    f"{stem}<n> naming family ({best} members)"
                ),
                suggestion=f"rename it into the {stem}<n> family for "
                "consistency with insertion-time renaming",
            )
        )
    return diagnostics


__all__ = [
    "check_dangling_references",
    "check_naming_families",
    "check_unused_definitions",
    "referenced_lists",
]
