"""Symbolic route-map checks: RM001 shadowed-stanza, RM002
conflicting-overlap, RM003 no-terminal-permit.

All three run on top of the route-space engine
(:mod:`repro.analysis.routespace`) and the §3 overlap detector
(:mod:`repro.overlap.detector`); witnesses are concrete
:class:`~repro.route.BgpRoute` objects validated against the concrete
evaluator, the same machinery the differential disambiguator uses.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.analysis.evaluate import eval_route_map
from repro.analysis.routespace import (
    route_map_reachable_spaces,
    stanza_guard_space,
)
from repro.config.routemap import RouteMap
from repro.config.store import ConfigStore
from repro.lint.diagnostics import Diagnostic, Severity, SourceLocation
from repro.overlap.detector import route_map_overlap_report

PERMIT = "permit"


def _location(route_map: RouteMap, seq: Optional[int] = None) -> SourceLocation:
    return SourceLocation(kind="route-map", name=route_map.name, seq=seq)


def check_shadowed_stanzas(
    route_map: RouteMap, store: ConfigStore, with_witnesses: bool = True
) -> List[Diagnostic]:
    """RM001: stanzas no route can ever reach and match.

    A stanza is *fully shadowed* when the set of routes that both match
    its guard and survive every earlier stanza is empty — inserting or
    keeping it changes nothing.  The witness shows a route the stanza
    *would* match together with the earlier stanza that captures it.
    """
    diagnostics: List[Diagnostic] = []
    reachable = route_map_reachable_spaces(route_map, store)
    for stanza, space in reachable:
        if stanza is None or not space.is_empty():
            continue
        guard = stanza_guard_space(stanza, store)
        witness = guard.witness() if with_witnesses else None
        related = ()
        if witness is not None:
            result = eval_route_map(route_map, store, witness)
            if result.stanza_seq is not None and result.stanza_seq != stanza.seq:
                related = (_location(route_map, result.stanza_seq),)
                message = (
                    f"stanza {stanza.seq} is fully shadowed: every route it "
                    f"matches is captured by stanza {result.stanza_seq} first"
                )
            else:
                message = (
                    f"stanza {stanza.seq} is fully shadowed by the stanzas "
                    "above it"
                )
        elif guard.is_empty():
            message = (
                f"stanza {stanza.seq} matches no route at all (its match "
                "clauses are unsatisfiable)"
            )
        else:
            message = (
                f"stanza {stanza.seq} is fully shadowed by the stanzas above it"
            )
        diagnostics.append(
            Diagnostic(
                code="RM001",
                severity=Severity.WARNING,
                location=_location(route_map, stanza.seq),
                message=message,
                suggestion=(
                    "move the stanza earlier if its behaviour is intended, "
                    "or delete it"
                ),
                witness=witness,
                related=related,
            )
        )
    return diagnostics


def check_conflicting_overlaps(
    route_map: RouteMap, store: ConfigStore, with_witnesses: bool = True
) -> List[Diagnostic]:
    """RM002: stanza pairs with different actions whose guards overlap.

    Relative order decides the fate of every route in the intersection,
    so inserting anything between such a pair silently changes behaviour
    (the ambiguity §3 measures).  Pairs whose later stanza is entirely
    inside the earlier one are left to RM001 (the later stanza may be
    fully shadowed); the rest carry a concrete route matched by both.
    """
    diagnostics: List[Diagnostic] = []
    report = route_map_overlap_report(
        route_map, store, with_witnesses=with_witnesses
    )
    shadow_candidates: Set[int] = {
        pair.seq_b for pair in report.pairs if pair.b_in_a
    }
    for pair in report.pairs:
        if not pair.conflicting:
            continue
        if pair.seq_b in shadow_candidates:
            continue
        action_a = route_map.stanza_at(pair.seq_a).action
        action_b = route_map.stanza_at(pair.seq_b).action
        diagnostics.append(
            Diagnostic(
                code="RM002",
                severity=Severity.INFO,
                location=_location(route_map, pair.seq_b),
                message=(
                    f"stanza {pair.seq_b} ({action_b}) overlaps stanza "
                    f"{pair.seq_a} ({action_a}) with the opposite action; "
                    "their relative order decides the overlap"
                ),
                suggestion=(
                    "confirm the relative order is intended; insertions "
                    "between these stanzas change behaviour"
                ),
                witness=pair.witness,
                related=(_location(route_map, pair.seq_a),),
            )
        )
    return diagnostics


def check_no_terminal_permit(
    route_map: RouteMap, store: ConfigStore, with_witnesses: bool = True
) -> List[Diagnostic]:
    """RM003: a non-empty route-map whose stanzas all deny.

    With the implicit deny at the bottom, such a policy rejects every
    route — almost always a truncated or mis-synthesised policy.
    """
    if not route_map.stanzas:
        return []
    if any(stanza.action == PERMIT for stanza in route_map.stanzas):
        return []
    return [
        Diagnostic(
            code="RM003",
            severity=Severity.WARNING,
            location=_location(route_map),
            message=(
                "no stanza permits: together with the implicit deny this "
                "route-map rejects every route"
            ),
            suggestion="add a terminal permit stanza if fall-through "
            "routes should be accepted",
        )
    ]


__all__ = [
    "check_conflicting_overlaps",
    "check_no_terminal_permit",
    "check_shadowed_stanzas",
]
