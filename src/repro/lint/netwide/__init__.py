"""``repro.lint.netwide`` — whole-network static analysis.

Where :mod:`repro.lint` checks one configuration at a time, this package
checks a *device set* against the network it forms: the BGP simulator
(:mod:`repro.bgp`) derives the forwarding paths, the symbolic engines
compose the per-hop policies along them, and every finding carries a
concrete witness packet or route that reproduces the conflict through
the simulated path.

Layers (codes ``NW001``–``NW008``, catalogued in ``docs/LINT.md``):

* **path conflicts** — a downstream ACL cancelling an upstream permit
  (:func:`~repro.lint.netwide.checks.analyze_path`);
* **route cancellation** — a route-map chain dropping route space an
  upstream chain explicitly passed
  (:func:`~repro.lint.netwide.checks.analyze_route_propagation`);
* **drift** — same-named lists diverging semantically across devices
  (:func:`~repro.lint.netwide.checks.analyze_drift`);
* **contracts** — ``src ~> prefix must[-not]-reach`` assertions checked
  against the simulated RIBs
  (:func:`~repro.lint.netwide.contracts.check_contracts`).

:class:`~repro.lint.netwide.analyze.NetwideAnalyzer` runs them all,
incrementally (fingerprint-keyed caches) and optionally in parallel
(the :mod:`repro.perf.campaign` pool);
:class:`~repro.lint.netwide.gate.NetwideGate` wraps it as the advisory
insertion gate the serving layer uses.
"""

from repro.lint.netwide.analyze import NetwideAnalyzer, analyze_network
from repro.lint.netwide.checks import (
    CONFLICT_CODES,
    DRIFT_CODES,
    analyze_drift,
    analyze_path,
    analyze_route_propagation,
    replay_packet,
    witness_flips_at,
)
from repro.lint.netwide.contracts import (
    Contract,
    check_contracts,
    load_contracts,
    parse_contracts,
)
from repro.lint.netwide.gate import NetwideGate
from repro.lint.netwide.model import (
    ForwardingPath,
    PathFilter,
    Topology,
    TopologyError,
    build_topology,
    extract_paths,
    path_filters,
    topology_capable,
)
from repro.lint.netwide.seed import (
    DEFAULT_CONTRACTS_TEXT,
    default_contracts,
    embed_on_edge,
    seed_devices,
)
from repro.lint.netwide.spaces import (
    acl_permit_space,
    chain_permit_space,
    device_fingerprint,
    route_map_permit_space,
)

__all__ = [
    "CONFLICT_CODES",
    "Contract",
    "DEFAULT_CONTRACTS_TEXT",
    "DRIFT_CODES",
    "ForwardingPath",
    "NetwideAnalyzer",
    "NetwideGate",
    "PathFilter",
    "Topology",
    "TopologyError",
    "acl_permit_space",
    "analyze_drift",
    "analyze_network",
    "analyze_path",
    "analyze_route_propagation",
    "build_topology",
    "chain_permit_space",
    "check_contracts",
    "default_contracts",
    "device_fingerprint",
    "embed_on_edge",
    "extract_paths",
    "load_contracts",
    "parse_contracts",
    "path_filters",
    "replay_packet",
    "route_map_permit_space",
    "seed_devices",
    "topology_capable",
    "witness_flips_at",
]
