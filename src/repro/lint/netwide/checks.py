"""The network-wide checks: path conflicts, route cancellation, drift.

Code catalogue (see ``docs/LINT.md``):

========  ========  =====================================================
``NW001``  error     downstream ACL fully cancels upstream permits on a
                     simulated forwarding path (witness packet)
``NW002``  warning   downstream ACL partially cancels upstream permits
                     on a path (witness packet)
``NW003``  warning   route-map chain fully cancels route space an
                     upstream chain explicitly permitted (witness route)
``NW004``  info      route-map chain partially cancels upstream-permitted
                     route space (witness route)
``NW005``  warning   same-named ACLs diverge semantically across devices
``NW006``  warning   same-named route-maps diverge semantically across
                     devices
========  ========  =====================================================

Every path/route finding carries a concrete witness validated against
the first-match evaluator (:mod:`repro.analysis.evaluate`): the witness
really traverses the reported path and flips action at the reported hop.
Findings whose symbolic witness fails concrete replay (possible for
route chains, where set-clause transforms are not modelled symbolically)
are dropped rather than reported.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.evaluate import eval_acl, eval_route_map
from repro.analysis.headerspace import (
    PacketRegion,
    PacketSpace,
    intern_region,
)
from repro.analysis.prefixspace import PrefixSpace
from repro.analysis.routespace import RouteRegion, RouteSpace, intern_route_region
from repro.config.device import DeviceConfig
from repro.lint.diagnostics import Diagnostic, Severity, SourceLocation
from repro.lint.netwide.model import ForwardingPath, Topology
from repro.lint.netwide.spaces import (
    acl_permit_space,
    chain_permit_space,
    device_fingerprint,
)
from repro.netaddr import Ipv4Prefix
from repro.netaddr.intervals import IntervalSet
from repro.route import BgpRoute, Packet
from repro.route.bgproute import DEFAULT_LOCAL_PREFERENCE

#: Codes that count toward the ``netwide.conflicts`` obs counter.
CONFLICT_CODES = ("NW001", "NW002", "NW003", "NW004")
#: Codes that count toward the ``netwide.drift`` obs counter.
DRIFT_CODES = ("NW005", "NW006")


def _prefix_space(prefix: Ipv4Prefix) -> PacketSpace:
    """Packets destined to an address inside ``prefix``."""
    dst = IntervalSet.closed(
        prefix.first_address().value, prefix.last_address().value
    )
    return PacketSpace.of(intern_region(PacketRegion(dst=dst)))


# ------------------------------------------------------------- ACL paths


def replay_packet(
    path: ForwardingPath,
    devices: Dict[str, DeviceConfig],
    packet: Packet,
) -> Tuple[str, ...]:
    """The per-filter actions a packet takes along the path, in order."""
    actions: List[str] = []
    for pf in path.filters:
        acl = devices[pf.device].store.acl(pf.acl)
        actions.append(eval_acl(acl, packet).action)
    return tuple(actions)


def witness_flips_at(
    path: ForwardingPath,
    devices: Dict[str, DeviceConfig],
    packet: Packet,
    index: int,
) -> bool:
    """True when the packet passes every filter before ``index`` and is
    denied exactly there — the property every NW001/NW002 witness holds."""
    actions = replay_packet(path, devices, packet)
    return all(a == "permit" for a in actions[:index]) and (
        actions[index] == "deny"
    )


def analyze_path(
    path: ForwardingPath, devices: Dict[str, DeviceConfig]
) -> Tuple[Diagnostic, ...]:
    """Path-level ACL shadow/conflict detection (NW001/NW002).

    Composes the per-hop ACLs symbolically along the simulated path,
    restricted to packets destined to the path's prefix.  When a
    downstream device's ACL denies traffic an upstream device's ACL
    explicitly permitted, the cancelled space yields a witness packet;
    the finding is emitted only if the witness concretely traverses the
    path and flips action at the reported hop.  This function is pure —
    the campaign pool and the incremental analyzer both call it.
    """
    if len(path.filters) < 2:
        return ()
    fps = {
        name: device_fingerprint(devices[name])
        for name in {pf.device for pf in path.filters}
    }
    alive = _prefix_space(path.prefix)
    diagnostics: List[Diagnostic] = []
    seen: List[Tuple[int, str]] = []  # (filter index, device)
    for index, pf in enumerate(path.filters):
        permit = acl_permit_space(fps[pf.device], devices[pf.device], pf.acl)
        upstream_other = [
            i for i, device in seen if device != pf.device
        ]
        if upstream_other and not alive.is_empty():
            killed = alive.subtract(permit)
            if not killed.is_empty():
                witness = killed.witness()
                if witness is not None and witness_flips_at(
                    path, devices, witness, index
                ):
                    full = alive.intersect(permit).is_empty()
                    diagnostics.append(
                        _path_conflict(
                            path, devices, index, witness, full
                        )
                    )
        alive = alive.intersect(permit)
        seen.append((index, pf.device))
        if alive.is_empty():
            break
    return tuple(diagnostics)


def _path_conflict(
    path: ForwardingPath,
    devices: Dict[str, DeviceConfig],
    index: int,
    witness: Packet,
    full: bool,
) -> Diagnostic:
    pf = path.filters[index]
    acl = devices[pf.device].store.acl(pf.acl)
    deny_seq = eval_acl(acl, witness).rule_seq
    related: List[SourceLocation] = []
    upstream_name = ""
    for prior in path.filters[:index]:
        if prior.device == pf.device:
            continue
        prior_acl = devices[prior.device].store.acl(prior.acl)
        result = eval_acl(prior_acl, witness)
        if result.permitted():
            related.append(
                SourceLocation(
                    "acl", prior.acl, result.rule_seq, device=prior.device
                )
            )
            upstream_name = f"acl {prior.acl} on {prior.device}"
    scope = "every packet" if full else "part of the traffic"
    message = (
        f"{scope} toward {path.prefix} permitted upstream by "
        f"{upstream_name or 'an upstream device'} is denied by acl "
        f"{pf.acl} on {pf.device} (path {path.render()})"
    )
    suggestion = (
        f"align acl {pf.acl} on {pf.device} with the upstream permit, or "
        f"remove the now-dead upstream rule"
        if full
        else f"confirm acl {pf.acl} on {pf.device} intends to narrow the "
        f"upstream permit"
    )
    return Diagnostic(
        code="NW001" if full else "NW002",
        severity=Severity.ERROR if full else Severity.WARNING,
        location=SourceLocation("acl", pf.acl, deny_seq, device=pf.device),
        message=message,
        suggestion=suggestion,
        witness=witness,
        related=tuple(related),
    )


# -------------------------------------------------------- route policies


@dataclasses.dataclass(frozen=True)
class _Stage:
    """One route-map chain application along a propagation walk."""

    sender: str
    receiver: str
    device: str  # the device whose store resolves the chain
    direction: str  # "export" | "import"
    chain: Tuple[str, ...]


def _route_space(prefix: Ipv4Prefix) -> RouteSpace:
    return RouteSpace.of(
        intern_route_region(RouteRegion(prefix=PrefixSpace.exact(prefix)))
    )


def _replay_route(
    topo: Topology,
    stages: Sequence[_Stage],
    witness: BgpRoute,
    flip_index: int,
) -> bool:
    """Concrete replay with transforms and eBGP attribute semantics.

    Takes the witness as the route advertised at the walk's origin and
    pushes it through every stage with the concrete evaluator (set
    clauses applied), AS prepend / local-preference reset / loop
    prevention at eBGP boundaries, exactly as
    :mod:`repro.bgp.simulate` would.  True when every chain before
    ``flip_index`` permits and the chain at ``flip_index`` denies.
    """
    route = witness
    for index, stage in enumerate(stages):
        store = topo.devices[stage.device].store
        for name in stage.chain:
            result = eval_route_map(store.route_map(name), store, route)
            if not result.permitted():
                return index == flip_index
            assert result.output is not None
            route = result.output
        if index == flip_index:
            return False  # expected a deny here, chain permitted
        if stage.direction == "export":
            sender_asn = _device_asn(topo, stage.sender)
            receiver_asn = _device_asn(topo, stage.receiver)
            if sender_asn != receiver_asn:
                route = route.prepend((sender_asn,))
                route = route.with_updates(
                    local_preference=DEFAULT_LOCAL_PREFERENCE, weight=0
                )
            if receiver_asn in route.asns():
                return False  # loop prevention drops it, not a policy deny
    return False


def _device_asn(topo: Topology, name: str) -> int:
    bgp = topo.devices[name].bgp
    assert bgp is not None
    return bgp.asn


def analyze_route_propagation(
    topo: Topology, fps: Dict[str, str]
) -> Tuple[Diagnostic, ...]:
    """Route-map chain cancellation along propagation paths (NW003/NW004).

    Walks every originated route outward from its origin across BGP
    sessions (simple paths only), composing the per-session export and
    import chains symbolically.  Unlike the ACL pass this cannot start
    from the RIBs — a route a downstream chain cancels never *reaches*
    the RIB, which is exactly the situation worth reporting.
    """
    diagnostics: List[Diagnostic] = []
    for origin in sorted(topo.devices):
        router = topo.network.router(origin)
        for route in sorted(
            router.originated, key=lambda r: (r.network.network.value, r.network.length)
        ):
            _walk(
                topo,
                fps,
                route,
                origin,
                _route_space(route.network),
                (),
                frozenset((origin,)),
                False,
                diagnostics,
            )
    return tuple(diagnostics)


def _walk(
    topo: Topology,
    fps: Dict[str, str],
    origin_route: BgpRoute,
    current: str,
    alive: RouteSpace,
    stages: Tuple[_Stage, ...],
    visited: frozenset,
    upstream_explicit: bool,
    diagnostics: List[Diagnostic],
) -> None:
    if alive.is_empty():
        return
    for peer in sorted(topo.network.neighbors(current)):
        if peer in visited:
            continue
        sender_router = topo.network.router(current)
        receiver_router = topo.network.router(peer)
        session_stages = (
            _Stage(
                current,
                peer,
                current,
                "export",
                tuple(sender_router.export_policies.get(peer, ())),
            ),
            _Stage(
                current,
                peer,
                peer,
                "import",
                tuple(receiver_router.import_policies.get(current, ())),
            ),
        )
        branch_alive = alive
        branch_explicit = upstream_explicit
        branch_stages = stages
        pruned = False
        for stage in session_stages:
            branch_stages = branch_stages + (stage,)
            if not stage.chain:
                continue
            permit = chain_permit_space(
                fps[stage.device], topo.devices[stage.device], stage.chain
            )
            if branch_explicit:
                killed = branch_alive.subtract(permit)
                if not killed.is_empty():
                    witness = killed.witness()
                    if witness is not None and _replay_route(
                        topo,
                        branch_stages,
                        witness,
                        len(branch_stages) - 1,
                    ):
                        full = branch_alive.intersect(permit).is_empty()
                        diagnostics.append(
                            _route_conflict(
                                origin_route, branch_stages, witness, full
                            )
                        )
            branch_alive = branch_alive.intersect(permit)
            branch_explicit = True
            if branch_alive.is_empty():
                pruned = True
                break
        if pruned:
            continue
        _walk(
            topo,
            fps,
            origin_route,
            peer,
            branch_alive,
            branch_stages,
            visited | {peer},
            branch_explicit,
            diagnostics,
        )


def _route_conflict(
    origin_route: BgpRoute,
    stages: Tuple[_Stage, ...],
    witness: BgpRoute,
    full: bool,
) -> Diagnostic:
    stage = stages[-1]
    upstream = next(
        (s for s in reversed(stages[:-1]) if s.chain and s.device != stage.device),
        None,
    )
    path = [stages[0].sender] + [s.receiver for s in stages if s.direction == "import"]
    scope = (
        "the whole remaining route space"
        if full
        else "part of the route space"
    )
    upstream_name = (
        f"chain {'/'.join(upstream.chain)} on {upstream.device}"
        if upstream is not None
        else "an upstream chain"
    )
    message = (
        f"{scope} for {origin_route.network} permitted upstream by "
        f"{upstream_name} is denied by chain {'/'.join(stage.chain)} on "
        f"{stage.device} ({stage.direction} {stage.sender}->{stage.receiver}, "
        f"propagation {' -> '.join(path)})"
    )
    related = (
        (
            SourceLocation(
                "route-map", upstream.chain[0], device=upstream.device
            ),
        )
        if upstream is not None
        else ()
    )
    return Diagnostic(
        code="NW003" if full else "NW004",
        severity=Severity.WARNING if full else Severity.INFO,
        location=SourceLocation(
            "route-map", stage.chain[0], device=stage.device
        ),
        message=message,
        suggestion=(
            f"verify {'/'.join(stage.chain)} on {stage.device} intends to "
            f"drop what {upstream_name} advertises"
        ),
        witness=witness,
        related=related,
    )


# ---------------------------------------------------------------- drift


def analyze_drift(
    devices: Sequence[DeviceConfig], fps: Dict[str, str]
) -> Tuple[Diagnostic, ...]:
    """Cross-device drift: same-named lists with divergent semantics.

    The diff is semantic, not textual: two ACLs diverge only when some
    packet takes a different action (witnessed), and two route-maps only
    when :func:`repro.analysis.compare.compare_route_policies` finds a
    behavioural difference (including transform differences).
    """
    diagnostics: List[Diagnostic] = []
    by_name = sorted(
        {d.hostname: d for d in devices}.items(), key=lambda kv: kv[0]
    )
    acl_homes: Dict[str, List[str]] = {}
    rm_homes: Dict[str, List[str]] = {}
    for hostname, device in by_name:
        for acl in device.store.acls():
            acl_homes.setdefault(acl.name, []).append(hostname)
        for rm in device.store.route_maps():
            rm_homes.setdefault(rm.name, []).append(hostname)
    devices_map = {d.hostname: d for d in devices}
    for name in sorted(acl_homes):
        homes = acl_homes[name]
        if len(homes) < 2:
            continue
        reference = homes[0]
        for other in homes[1:]:
            diag = _acl_drift(name, devices_map, fps, reference, other)
            if diag is not None:
                diagnostics.append(diag)
    for name in sorted(rm_homes):
        homes = rm_homes[name]
        if len(homes) < 2:
            continue
        reference = homes[0]
        for other in homes[1:]:
            diag = _route_map_drift(name, devices_map, reference, other)
            if diag is not None:
                diagnostics.append(diag)
    return tuple(diagnostics)


def _acl_drift(
    name: str,
    devices: Dict[str, DeviceConfig],
    fps: Dict[str, str],
    reference: str,
    other: str,
) -> Optional[Diagnostic]:
    space_a = acl_permit_space(fps[reference], devices[reference], name)
    space_b = acl_permit_space(fps[other], devices[other], name)
    witness = space_a.subtract(space_b).witness()
    if witness is None:
        witness = space_b.subtract(space_a).witness()
    if witness is None:
        return None
    action_ref = eval_acl(devices[reference].store.acl(name), witness).action
    action_other = eval_acl(devices[other].store.acl(name), witness).action
    if action_ref == action_other:
        return None  # symbolic artefact; semantics agree on the witness
    verbs = {"permit": "permitted", "deny": "denied"}
    return Diagnostic(
        code="NW005",
        severity=Severity.WARNING,
        location=SourceLocation("acl", name, device=other),
        message=(
            f"acl {name} has drifted: the witness packet is "
            f"{verbs[action_ref]} on {reference} but "
            f"{verbs[action_other]} on {other}"
        ),
        suggestion=f"reconcile acl {name} across {reference} and {other}",
        witness=witness,
        related=(SourceLocation("acl", name, device=reference),),
    )


def _route_map_drift(
    name: str,
    devices: Dict[str, DeviceConfig],
    reference: str,
    other: str,
) -> Optional[Diagnostic]:
    from repro.analysis.compare import compare_route_policies

    differences = compare_route_policies(
        devices[reference].store.route_map(name),
        devices[other].store.route_map(name),
        devices[reference].store,
        devices[other].store,
        max_differences=1,
    )
    if not differences:
        return None
    difference = differences[0]
    witness = difference.subject
    return Diagnostic(
        code="NW006",
        severity=Severity.WARNING,
        location=SourceLocation("route-map", name, device=other),
        message=(
            f"route-map {name} has drifted between {reference} and "
            f"{other}: a route takes different outcomes"
        ),
        suggestion=f"reconcile route-map {name} across {reference} and {other}",
        witness=witness,
        related=(SourceLocation("route-map", name, device=reference),),
    )


__all__ = [
    "CONFLICT_CODES",
    "DRIFT_CODES",
    "analyze_drift",
    "analyze_path",
    "analyze_route_propagation",
    "replay_packet",
    "witness_flips_at",
]
