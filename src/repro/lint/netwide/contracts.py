"""End-to-end reachability contracts checked against the BGP simulation.

A contract file is plain text, one contract per line::

    # device ~> prefix, then the expectation
    EDGE ~> 10.9.0.0/16  must-reach
    EDGE ~> 10.66.0.0/16 must-not-reach

``->`` is accepted as a synonym for ``~>``; ``#`` starts a comment.  A
``must-reach`` contract holds when the source router's simulated RIB
installs a route for exactly that prefix; ``must-not-reach`` holds when
it does not.  Violations surface as ``NW007`` (a promised destination is
unreachable) and ``NW008`` (a forbidden destination is reachable, with
the installed route as witness) — both errors.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from repro.lint.diagnostics import Diagnostic, Severity, SourceLocation
from repro.lint.netwide.model import Topology
from repro.netaddr import Ipv4Prefix

_ARROWS = ("~>", "->")
_EXPECTATIONS = ("must-reach", "must-not-reach")


@dataclasses.dataclass(frozen=True)
class Contract:
    """One reachability contract: ``source ~> prefix`` plus expectation."""

    source: str
    prefix: Ipv4Prefix
    must_reach: bool

    def render(self) -> str:
        """Canonical one-line form (the parser's input format)."""
        expectation = _EXPECTATIONS[0] if self.must_reach else _EXPECTATIONS[1]
        return f"{self.source} ~> {self.prefix} {expectation}"


def parse_contracts(text: str) -> Tuple[Contract, ...]:
    """Parse a contract file; raises :class:`ValueError` on a bad line."""
    contracts: List[Contract] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        for arrow in _ARROWS:
            if arrow in line:
                head, _, tail = line.partition(arrow)
                break
        else:
            raise ValueError(
                f"contract line {lineno}: expected 'SOURCE ~> PREFIX "
                f"must-reach|must-not-reach', got {raw.strip()!r}"
            )
        source = head.strip()
        words = tail.split()
        if not source or len(words) != 2 or words[1] not in _EXPECTATIONS:
            raise ValueError(
                f"contract line {lineno}: expected 'SOURCE ~> PREFIX "
                f"must-reach|must-not-reach', got {raw.strip()!r}"
            )
        try:
            prefix = Ipv4Prefix.parse(words[0])
        except ValueError as exc:
            raise ValueError(f"contract line {lineno}: {exc}") from None
        contracts.append(
            Contract(source, prefix, must_reach=words[1] == "must-reach")
        )
    return tuple(contracts)


def load_contracts(path: str) -> Tuple[Contract, ...]:
    """Read and parse a contract file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_contracts(handle.read())


def check_contracts(
    topo: Topology, contracts: Sequence[Contract]
) -> Tuple[Diagnostic, ...]:
    """Check every contract against the simulated RIBs (NW007/NW008)."""
    diagnostics: List[Diagnostic] = []
    for contract in contracts:
        if contract.source not in topo.devices:
            diagnostics.append(
                Diagnostic(
                    code="NW007",
                    severity=Severity.ERROR,
                    location=_location(contract),
                    message=(
                        f"contract names unknown device "
                        f"{contract.source!r}: {contract.render()}"
                    ),
                    suggestion="fix the device name in the contract file",
                )
            )
            continue
        entry = topo.ribs.get(contract.source, {}).get(contract.prefix)
        if contract.must_reach and entry is None:
            diagnostics.append(
                Diagnostic(
                    code="NW007",
                    severity=Severity.ERROR,
                    location=_location(contract),
                    message=(
                        f"{contract.source} must reach {contract.prefix} "
                        f"but its simulated RIB installs no route for it"
                    ),
                    suggestion=(
                        "check the originator and every route-map chain "
                        "between it and the source"
                    ),
                )
            )
        elif not contract.must_reach and entry is not None:
            learned = (
                f"learned from {entry.learned_from}"
                if entry.learned_from is not None
                else "locally originated"
            )
            diagnostics.append(
                Diagnostic(
                    code="NW008",
                    severity=Severity.ERROR,
                    location=_location(contract),
                    message=(
                        f"{contract.source} must not reach "
                        f"{contract.prefix} but its simulated RIB installs "
                        f"a route ({learned})"
                    ),
                    suggestion=(
                        "deny the prefix in an import chain on the path "
                        "toward the source"
                    ),
                    witness=entry.route,
                )
            )
    return tuple(diagnostics)


def _location(contract: Contract) -> SourceLocation:
    return SourceLocation(
        "contract",
        f"{contract.source}~>{contract.prefix}",
        device=contract.source,
    )


__all__ = [
    "Contract",
    "check_contracts",
    "load_contracts",
    "parse_contracts",
]
