"""Fingerprint-keyed symbolic permit spaces for network-wide analysis.

The network-wide pass composes per-hop policies symbolically, so the
same (device, list) pair is queried once per path that crosses it.  The
permit spaces are memoized in :mod:`repro.perf.cache` tables keyed by
``(device fingerprint, list name)`` — content-addressed keys, so an
update to one device invalidates exactly that device's entries while
every other device's spaces (and the hash-consed regions underneath
them) are reused.  Cache traffic surfaces through the usual ``cache.*``
obs counters.
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.headerspace import PacketSpace, acl_reachable_spaces
from repro.analysis.routespace import RouteSpace, route_map_reachable_spaces
from repro.config.device import DeviceConfig
from repro.config.render import render_config
from repro.obs.journal import sha256_text
from repro.perf import cache as _perf

_ACL_PERMIT = _perf.Memo("netwide.acl_permit")
_CHAIN_PERMIT = _perf.Memo("netwide.chain_permit")


def device_fingerprint(device: DeviceConfig) -> str:
    """A content hash of one device configuration.

    Covers the hostname, every interface (address and ACL attachments),
    the BGP block (neighbors and their route-map chains, originations),
    and the rendered policy store — everything network-wide analysis can
    observe.  Two devices with identical configuration share fingerprints
    and therefore share memoized permit spaces.
    """
    parts = [f"hostname {device.hostname}"]
    for iface in device.interfaces:
        parts.append(
            f"interface {iface.name} {iface.address}/{iface.prefix_length} "
            f"in={iface.acl_in} out={iface.acl_out}"
        )
    if device.bgp is not None:
        parts.append(f"bgp {device.bgp.asn} router-id {device.bgp.router_id}")
        for statement in device.bgp.networks:
            parts.append(f"network {statement.prefix} map {statement.route_map}")
        for neighbor in device.bgp.neighbors:
            parts.append(
                f"neighbor {neighbor.address} as {neighbor.remote_as} "
                f"in={','.join(neighbor.import_chain)} "
                f"out={','.join(neighbor.export_chain)}"
            )
    parts.append(render_config(device.store))
    return sha256_text("\n".join(parts))


def acl_permit_space(
    device_fp: str, device: DeviceConfig, acl_name: str
) -> PacketSpace:
    """The packets ``acl_name`` on ``device`` permits, under first-match.

    Every permitted packet matched an explicit ``permit`` rule (the
    implicit tail is a deny), so this space doubles as the ACL's
    *explicit* permit space for shadow attribution.
    """

    def compute() -> PacketSpace:
        """Union the reachable spaces of the explicit permit rules."""
        acl = device.store.acl(acl_name)
        space = PacketSpace.empty()
        for rule, reachable in acl_reachable_spaces(acl):
            if rule is not None and rule.action == "permit":
                space = space.union(reachable)
        return space

    out = _ACL_PERMIT.lookup((device_fp, acl_name), compute)
    assert isinstance(out, PacketSpace)
    return out


def route_map_permit_space(
    device_fp: str, device: DeviceConfig, name: str
) -> RouteSpace:
    """The routes one route-map permits (transform-free guard view)."""
    return chain_permit_space(device_fp, device, (name,))


def chain_permit_space(
    device_fp: str, device: DeviceConfig, chain: Tuple[str, ...]
) -> RouteSpace:
    """The routes an ordered route-map chain passes end to end.

    Every map in the chain must permit (the chain semantics of
    :func:`repro.bgp.simulate.simulate`), so the space is the
    intersection of the per-map permit spaces.  Set-clause transforms
    are deliberately ignored here — the symbolic composition is a guard
    approximation, and every finding derived from it is re-validated
    against the concrete evaluator (with transforms) before it is
    reported.
    """

    def compute() -> RouteSpace:
        """Intersect the per-map explicit permit spaces along the chain."""
        space = RouteSpace.universe()
        for name in chain:
            route_map = device.store.route_map(name)
            permits = RouteSpace.empty()
            for stanza, reachable in route_map_reachable_spaces(
                route_map, device.store
            ):
                if stanza is not None and stanza.action == "permit":
                    permits = permits.union(reachable)
            space = space.intersect(permits)
            if space.is_trivially_empty():
                return RouteSpace.empty()
        return space

    out = _CHAIN_PERMIT.lookup((device_fp, chain), compute)
    assert isinstance(out, RouteSpace)
    return out


__all__ = [
    "acl_permit_space",
    "chain_permit_space",
    "device_fingerprint",
    "route_map_permit_space",
]
