"""A seeded multi-device demo topology for network-wide analysis.

Five routers in a line with one branch::

    EDGE(65001) -- AGG(65002) -- CORE(65003) -- DC(65004)
                     \\
                      LAB(65005)

DC originates ``10.9.0.0/16`` and ``10.8.0.0/16``, LAB ``10.20.0.0/16``,
EDGE ``192.0.2.0/24``.  EDGE filters its traffic toward the fabric with
``EDGE_OUT`` (egress), CORE re-filters it with ``CORE_IN`` (ingress from
AGG); AGG and EDGE run explicit permit-all import chains (``FROM_CORE``,
``FROM_AGG``).  The default topology is finding-free — the CI baseline
pins that — and three switches inject the defects the NW checks exist
to catch:

* ``inject_shadow`` — ``CORE_IN`` leads with ``deny ip any 10.9.0.0/16``,
  fully cancelling EDGE's explicit HTTPS/SSH permits → ``NW001``;
* ``inject_drift`` — a ``MGMT_GUARD`` ACL exists on EDGE and CORE with
  divergent semantics → ``NW005``;
* ``inject_route_shadow`` — EDGE's ``FROM_AGG`` denies ``10.9.0.0/16``,
  cancelling what AGG's ``FROM_CORE`` passed → ``NW003``, and breaking
  the ``EDGE ~> 10.9.0.0/16 must-reach`` contract → ``NW007``.

The branch matters for incrementality: paths that avoid a modified
device (e.g. ``EDGE -> AGG -> LAB`` when CORE changes) stay cached.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.config.acl import Acl, AclRule, PortSpec, ProtocolSpec
from repro.config.device import (
    BgpConfig,
    BgpNeighbor,
    DeviceConfig,
    Interface,
    NetworkStatement,
)
from repro.config.lists import PrefixList, PrefixListEntry
from repro.config.matches import MatchPrefixList
from repro.config.routemap import RouteMap, RouteMapStanza
from repro.config.store import ConfigStore
from repro.lint.netwide.contracts import Contract, parse_contracts
from repro.netaddr import Ipv4Address, Ipv4Prefix, Ipv4Wildcard

#: Link subnets are carved from this block, one /30 per BGP session.
LINK_BLOCK = Ipv4Prefix.parse("172.31.0.0/16")

_ASNS = {"EDGE": 65001, "AGG": 65002, "CORE": 65003, "DC": 65004, "LAB": 65005}
#: (link index, side A, side B) — A gets the .1, B the .2 of the /30.
_LINKS = (
    (0, "EDGE", "AGG"),
    (1, "AGG", "CORE"),
    (2, "CORE", "DC"),
    (3, "AGG", "LAB"),
)

DEFAULT_CONTRACTS_TEXT = """\
# Reachability contracts for the seeded netwide demo topology.
EDGE ~> 10.9.0.0/16  must-reach      # DC's production block
EDGE ~> 10.20.0.0/16 must-reach      # the LAB branch
EDGE ~> 10.66.0.0/16 must-not-reach  # nobody originates this
"""


def _link_addresses(index: int) -> Tuple[Ipv4Address, Ipv4Address]:
    base = LINK_BLOCK.network.value + 4 * index
    return Ipv4Address(base + 1), Ipv4Address(base + 2)


def _dst(prefix: str) -> Ipv4Wildcard:
    return Ipv4Wildcard.from_prefix(Ipv4Prefix.parse(prefix))


def _edge_out() -> Acl:
    return Acl(
        "EDGE_OUT",
        (
            AclRule(10, "permit", ProtocolSpec("tcp"), Ipv4Wildcard.any(),
                    _dst("10.9.0.0/16"), dst_ports=PortSpec("eq", (443,))),
            AclRule(20, "permit", ProtocolSpec("tcp"), Ipv4Wildcard.any(),
                    _dst("10.9.0.0/16"), dst_ports=PortSpec("eq", (22,))),
            AclRule(30, "permit", ProtocolSpec("udp"), Ipv4Wildcard.any(),
                    _dst("10.8.0.0/16"), dst_ports=PortSpec("eq", (53,))),
            AclRule(40, "permit", ProtocolSpec("ip"), Ipv4Wildcard.any(),
                    _dst("10.20.0.0/16")),
            AclRule(50, "deny", ProtocolSpec("ip"), Ipv4Wildcard.any(),
                    Ipv4Wildcard.any()),
        ),
    )


def _core_in(inject_shadow: bool) -> Acl:
    rules: List[AclRule] = []
    if inject_shadow:
        # The cross-device shadow: cancels EDGE_OUT's 10.9/16 permits.
        rules.append(
            AclRule(10, "deny", ProtocolSpec("ip"), Ipv4Wildcard.any(),
                    _dst("10.9.0.0/16"))
        )
    rules.extend(
        (
            AclRule(20, "permit", ProtocolSpec("tcp"), Ipv4Wildcard.any(),
                    _dst("10.9.0.0/16")),
            AclRule(30, "permit", ProtocolSpec("udp"), Ipv4Wildcard.any(),
                    _dst("10.8.0.0/16"), dst_ports=PortSpec("eq", (53,))),
            AclRule(40, "deny", ProtocolSpec("ip"), Ipv4Wildcard.any(),
                    Ipv4Wildcard.any()),
        )
    )
    return Acl("CORE_IN", tuple(rules))


def _mgmt_guard(ssh_port: int) -> Acl:
    return Acl(
        "MGMT_GUARD",
        (
            AclRule(10, "permit", ProtocolSpec("tcp"), Ipv4Wildcard.any(),
                    _dst("10.99.0.0/24"), dst_ports=PortSpec("eq", (ssh_port,))),
            AclRule(20, "deny", ProtocolSpec("ip"), Ipv4Wildcard.any(),
                    Ipv4Wildcard.any()),
        ),
    )


def _permit_all_map(name: str, store: ConfigStore, deny_10_9: bool) -> None:
    if not store.has_prefix_list("ANY"):
        store.add_prefix_list(
            PrefixList(
                "ANY",
                (PrefixListEntry(10, "permit", Ipv4Prefix.parse("0.0.0.0/0"),
                                 le=32),),
            )
        )
    stanzas: List[RouteMapStanza] = []
    if deny_10_9:
        store.add_prefix_list(
            PrefixList(
                "NET_10_9",
                (PrefixListEntry(10, "permit",
                                 Ipv4Prefix.parse("10.9.0.0/16")),),
            ),
            replace=True,
        )
        stanzas.append(
            RouteMapStanza(10, "deny", matches=(MatchPrefixList(("NET_10_9",)),))
        )
    stanzas.append(
        RouteMapStanza(20, "permit", matches=(MatchPrefixList(("ANY",)),))
    )
    store.add_route_map(RouteMap(name, tuple(stanzas)), replace=True)


def seed_devices(
    inject_shadow: bool = False,
    inject_drift: bool = False,
    inject_route_shadow: bool = False,
) -> List[DeviceConfig]:
    """Build the demo device set, optionally with injected defects."""
    devices: Dict[str, DeviceConfig] = {
        name: DeviceConfig(hostname=name) for name in _ASNS
    }

    devices["EDGE"].store.add_acl(_edge_out())
    devices["CORE"].store.add_acl(_core_in(inject_shadow))
    if inject_drift:
        devices["EDGE"].store.add_acl(_mgmt_guard(22))
        devices["CORE"].store.add_acl(_mgmt_guard(2323))
    _permit_all_map("FROM_CORE", devices["AGG"].store, deny_10_9=False)
    _permit_all_map(
        "FROM_AGG", devices["EDGE"].store, deny_10_9=inject_route_shadow
    )

    import_chains = {
        ("AGG", "CORE"): ("FROM_CORE",),
        ("EDGE", "AGG"): ("FROM_AGG",),
    }
    acl_out = {("EDGE", "AGG"): "EDGE_OUT"}
    acl_in = {("CORE", "AGG"): "CORE_IN"}

    neighbor_rows: Dict[str, List[BgpNeighbor]] = {n: [] for n in devices}
    for index, side_a, side_b in _LINKS:
        addr_a, addr_b = _link_addresses(index)
        for side, addr, peer, peer_addr in (
            (side_a, addr_a, side_b, addr_b),
            (side_b, addr_b, side_a, addr_a),
        ):
            devices[side].interfaces.append(
                Interface(
                    name=f"Link{index}",
                    address=addr,
                    prefix_length=30,
                    acl_in=acl_in.get((side, peer)),
                    acl_out=acl_out.get((side, peer)),
                )
            )
            neighbor_rows[side].append(
                BgpNeighbor(
                    address=peer_addr,
                    remote_as=_ASNS[peer],
                    import_chain=import_chains.get((side, peer), ()),
                )
            )

    originations = {
        "DC": ("10.9.0.0/16", "10.8.0.0/16"),
        "LAB": ("10.20.0.0/16",),
        "EDGE": ("192.0.2.0/24",),
    }
    for name, device in devices.items():
        device.bgp = BgpConfig(
            asn=_ASNS[name],
            networks=tuple(
                NetworkStatement(Ipv4Prefix.parse(p))
                for p in originations.get(name, ())
            ),
            neighbors=tuple(
                sorted(neighbor_rows[name], key=lambda n: n.address)
            ),
        )
        device.validate()
    return [devices[name] for name in sorted(devices)]


def default_contracts() -> Tuple[Contract, ...]:
    """The contracts shipped with the demo topology."""
    return parse_contracts(DEFAULT_CONTRACTS_TEXT)


def embed_on_edge(
    store: ConfigStore, devices: Sequence[DeviceConfig] = ()
) -> List[DeviceConfig]:
    """Graft a session's store onto the demo topology's EDGE router.

    This is the embedding the netwide insertion gate and the loadgen
    quality axis use: the session under analysis is treated as editing
    EDGE.  The session's objects join EDGE's store (session names win on
    collision), the first session ACL (sorted by name) replaces
    ``EDGE_OUT`` as the egress filter toward AGG, and the first session
    route-map is appended to EDGE's import chain from AGG — so a
    session update immediately participates in path, propagation, and
    contract analysis.
    """
    base = list(devices) if devices else seed_devices()
    out: List[DeviceConfig] = []
    for device in base:
        if device.hostname != "EDGE":
            out.append(device)
            continue
        merged = device.store.copy()
        for pl in store.prefix_lists():
            merged.add_prefix_list(pl, replace=True)
        for cl in store.community_lists():
            merged.add_community_list(cl, replace=True)
        for al in store.as_path_lists():
            merged.add_as_path_list(al, replace=True)
        for rm in store.route_maps():
            merged.add_route_map(rm, replace=True)
        for acl in store.acls():
            merged.add_acl(acl, replace=True)
        session_acls = sorted(acl.name for acl in store.acls())
        session_maps = sorted(rm.name for rm in store.route_maps())
        interfaces = []
        for iface in device.interfaces:
            if iface.acl_out is not None and session_acls:
                iface = Interface(
                    name=iface.name,
                    address=iface.address,
                    prefix_length=iface.prefix_length,
                    acl_in=iface.acl_in,
                    acl_out=session_acls[0],
                )
            interfaces.append(iface)
        assert device.bgp is not None
        neighbors = tuple(
            BgpNeighbor(
                address=n.address,
                remote_as=n.remote_as,
                import_chain=n.import_chain + tuple(session_maps[:1]),
                export_chain=n.export_chain,
            )
            if n.import_chain and session_maps
            else n
            for n in device.bgp.neighbors
        )
        edited = DeviceConfig(
            hostname=device.hostname,
            interfaces=interfaces,
            bgp=BgpConfig(
                asn=device.bgp.asn,
                router_id=device.bgp.router_id,
                networks=device.bgp.networks,
                neighbors=neighbors,
            ),
            store=merged,
        )
        edited.validate()
        out.append(edited)
    return out


__all__ = [
    "DEFAULT_CONTRACTS_TEXT",
    "default_contracts",
    "embed_on_edge",
    "seed_devices",
]
