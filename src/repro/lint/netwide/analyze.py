"""The network-wide analyzer: incremental, parallel, counter-threaded.

:class:`NetwideAnalyzer` composes the layers of :mod:`repro.lint.netwide`
into one pass:

1. path-level ACL conflicts over the BGP-simulated forwarding paths
   (``NW001``/``NW002``),
2. route-map chain cancellation along propagation paths
   (``NW003``/``NW004``),
3. cross-device drift of same-named lists (``NW005``/``NW006``),
4. end-to-end reachability contracts (``NW007``/``NW008``).

It is **incremental**: per-path results are cached under a key that
includes the content fingerprints of every device on the path, so after
an update that touches one device only the paths crossing that device
are re-analyzed (``netwide.paths.cached`` vs ``netwide.paths.analyzed``
counters make this observable), and the fingerprint-keyed permit-space
memos of :mod:`repro.lint.netwide.spaces` survive untouched for every
other device.  It is **parallel**: uncached paths can fan across the
:mod:`repro.perf.campaign` process pool, with the serial fallback
producing byte-identical reports.

Device sets without a simulatable BGP topology (e.g. the §3 campus and
cloud overlap corpora, which attach ACLs but speak no BGP) degrade to
the drift layer; contracts on such a set are reported as unverifiable
errors rather than silently skipped.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.config.device import DeviceConfig
from repro.lint.diagnostics import Diagnostic, LintReport, Severity, SourceLocation
from repro.lint.netwide.checks import (
    CONFLICT_CODES,
    DRIFT_CODES,
    analyze_drift,
    analyze_path,
    analyze_route_propagation,
)
from repro.lint.netwide.contracts import Contract, check_contracts
from repro.lint.netwide.model import (
    ForwardingPath,
    Topology,
    build_topology,
    extract_paths,
    topology_capable,
)
from repro.lint.netwide.spaces import device_fingerprint

#: One cached path analysis: keyed by the path identity *and* the
#: fingerprints of every device it crosses.
_PathKey = Tuple[object, ...]


class NetwideAnalyzer:
    """Whole-network analysis with per-path incremental caching.

    One analyzer instance amortises repeated analyses of an evolving
    network — the netwide insertion gate holds one across a session.
    ``max_cached_paths`` bounds the per-instance LRU.
    """

    def __init__(self, max_cached_paths: int = 4096) -> None:
        self._path_cache: "OrderedDict[_PathKey, Tuple[Diagnostic, ...]]" = (
            OrderedDict()
        )
        self._max_cached_paths = max_cached_paths

    def analyze(
        self,
        devices: Sequence[DeviceConfig],
        contracts: Sequence[Contract] = (),
        workers: Optional[int] = None,
        chunks: Optional[int] = None,
        pool: Optional[str] = None,
    ) -> LintReport:
        """Run every layer over ``devices`` and return the normalized report.

        ``workers > 1`` fans uncached path analyses across the campaign
        process pool (``chunks`` and ``pool`` as in
        :func:`repro.perf.campaign.run_campaign`); the serial default
        produces an identical report.
        """
        with obs.span("netwide.analyze", devices=len(devices)) as sp:
            fps = {d.hostname: device_fingerprint(d) for d in devices}
            findings: List[Diagnostic] = []
            capable = topology_capable(devices)
            if capable:
                topo = build_topology(devices)
                findings.extend(
                    self._analyze_paths(
                        topo, devices, fps, workers, chunks, pool
                    )
                )
                findings.extend(analyze_route_propagation(topo, fps))
                if contracts:
                    obs.count("netwide.contracts.checked", len(contracts))
                    violations = check_contracts(topo, contracts)
                    obs.count("netwide.contracts.violated", len(violations))
                    findings.extend(violations)
            elif contracts:
                obs.count("netwide.contracts.checked", len(contracts))
                obs.count("netwide.contracts.violated", len(contracts))
                findings.extend(_unverifiable(contract) for contract in contracts)
            findings.extend(analyze_drift(devices, fps))
            report = LintReport.of(findings).normalized()
            conflicts = sum(
                1 for d in report if d.code in CONFLICT_CODES
            )
            drift = sum(1 for d in report if d.code in DRIFT_CODES)
            obs.count("netwide.conflicts", conflicts)
            obs.count("netwide.drift", drift)
            sp.annotate(
                findings=len(report), conflicts=conflicts, topology=capable
            )
            return report

    def _analyze_paths(
        self,
        topo: Topology,
        devices: Sequence[DeviceConfig],
        fps: Dict[str, str],
        workers: Optional[int],
        chunks: Optional[int],
        pool: Optional[str],
    ) -> List[Diagnostic]:
        paths = extract_paths(topo)
        obs.count("netwide.paths", len(paths))
        keyed = [(self._path_key(path, fps), path) for path in paths]
        # Findings for this run are assembled from a local map, never
        # read back from the LRU — an LRU smaller than one run's path
        # count may evict entries mid-run without affecting the report.
        this_run: Dict[_PathKey, Tuple[Diagnostic, ...]] = {}
        todo = []
        for key, path in keyed:
            if key in self._path_cache:
                self._path_cache.move_to_end(key)
                this_run[key] = self._path_cache[key]
            else:
                todo.append((key, path))
        obs.count("netwide.paths.cached", len(keyed) - len(todo))
        obs.count("netwide.paths.analyzed", len(todo))
        if todo:
            if workers is not None and workers > 1:
                from repro.perf.campaign import netwide_path_campaign

                outcome = netwide_path_campaign(
                    [path for _, path in todo],
                    devices,
                    workers=workers,
                    chunks=chunks,
                    pool=pool,
                )
                computed = list(outcome.results)
            else:
                devices_map = {d.hostname: d for d in devices}
                computed = [
                    analyze_path(path, devices_map) for _, path in todo
                ]
            for (key, _), diagnostics in zip(todo, computed):
                this_run[key] = tuple(diagnostics)
                self._remember(key, tuple(diagnostics))
        findings: List[Diagnostic] = []
        for key, _ in keyed:
            findings.extend(this_run[key])
        return findings

    def _path_key(
        self, path: ForwardingPath, fps: Dict[str, str]
    ) -> _PathKey:
        return (
            str(path.prefix),
            path.devices,
            path.filters,
            tuple(fps[name] for name in path.devices),
        )

    def _remember(
        self, key: _PathKey, diagnostics: Tuple[Diagnostic, ...]
    ) -> None:
        self._path_cache[key] = diagnostics
        self._path_cache.move_to_end(key)
        while len(self._path_cache) > self._max_cached_paths:
            self._path_cache.popitem(last=False)


def _unverifiable(contract: Contract) -> Diagnostic:
    return Diagnostic(
        code="NW007",
        severity=Severity.ERROR,
        location=SourceLocation(
            "contract",
            f"{contract.source}~>{contract.prefix}",
            device=contract.source,
        ),
        message=(
            f"cannot check {contract.render()!r}: the device set has no "
            f"simulatable BGP topology"
        ),
        suggestion="run contracts against a fully BGP-configured device set",
    )


def analyze_network(
    devices: Sequence[DeviceConfig],
    contracts: Sequence[Contract] = (),
    workers: Optional[int] = None,
    chunks: Optional[int] = None,
    pool: Optional[str] = None,
) -> LintReport:
    """One-shot convenience: a fresh :class:`NetwideAnalyzer` run once."""
    return NetwideAnalyzer().analyze(
        devices, contracts=contracts, workers=workers, chunks=chunks, pool=pool
    )


__all__ = ["NetwideAnalyzer", "analyze_network"]
