"""The network model for whole-network analysis: topology and paths.

A :class:`Topology` bundles the parsed devices, the assembled
:class:`repro.bgp.topology.Network`, the simulated RIBs, and the
interface each device uses to face each BGP peer.  Forwarding paths are
*derived from the BGP simulation*: a packet destined to a prefix follows
the chain of ``learned_from`` pointers from the querying router down to
the originator, and every witness the checks emit reproduces its
conflict through one of these simulated paths.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bgp.fromconfig import TopologyError, network_from_devices
from repro.bgp.simulate import Ribs, simulate
from repro.bgp.topology import Network
from repro.config.device import DeviceConfig, Interface
from repro.netaddr import Ipv4Prefix


@dataclasses.dataclass(frozen=True)
class PathFilter:
    """One ACL applied somewhere along a forwarding path.

    ``direction`` is ``out`` for the sender's egress attachment and
    ``in`` for the receiver's ingress attachment of the same link.
    """

    device: str
    interface: str
    direction: str
    acl: str

    def render(self) -> str:
        """Short display form, e.g. ``CORE:Link2 in CORE_IN``."""
        return f"{self.device}:{self.interface} {self.direction} {self.acl}"


@dataclasses.dataclass(frozen=True)
class ForwardingPath:
    """One simulated forwarding path toward one destination prefix.

    ``devices`` runs from the querying router to the prefix's
    originator; ``filters`` lists every ACL attachment traffic crosses,
    in traversal order.
    """

    prefix: Ipv4Prefix
    devices: Tuple[str, ...]
    filters: Tuple[PathFilter, ...]

    def render(self) -> str:
        """Display form, e.g. ``EDGE -> AGG -> DC dst 10.9.0.0/16``."""
        return " -> ".join(self.devices) + f" dst {self.prefix}"


class Topology:
    """Devices + assembled network + simulated RIBs + facing interfaces."""

    def __init__(self, devices: Sequence[DeviceConfig]) -> None:
        self.devices: Dict[str, DeviceConfig] = {}
        for device in devices:
            if device.hostname in self.devices:
                raise TopologyError(
                    f"duplicate hostname {device.hostname!r} in device set"
                )
            self.devices[device.hostname] = device
        self.network: Network = network_from_devices(list(devices))
        self.ribs: Ribs = simulate(self.network)
        #: (device, peer) -> the interface ``device`` uses to reach ``peer``.
        self.facing: Dict[Tuple[str, str], Interface] = {}
        owner_of = {
            address: device.hostname
            for device in devices
            for address in device.interface_addresses()
        }
        for device in devices:
            assert device.bgp is not None  # network_from_devices checked
            for neighbor in device.bgp.neighbors:
                peer = owner_of[neighbor.address]
                for iface in device.interfaces:
                    net = iface.network()
                    if net is not None and net.contains_address(
                        neighbor.address
                    ):
                        self.facing[(device.hostname, peer)] = iface
                        break


def topology_capable(devices: Sequence[DeviceConfig]) -> bool:
    """True when the device set describes a simulatable BGP network."""
    return bool(devices) and all(
        device.bgp is not None for device in devices
    ) and any(
        device.bgp is not None and device.bgp.neighbors for device in devices
    )


def build_topology(devices: Sequence[DeviceConfig]) -> Topology:
    """Assemble and simulate; raises :class:`TopologyError` if incoherent."""
    return Topology(devices)


def _prefix_key(prefix: Ipv4Prefix) -> Tuple[int, int]:
    return (prefix.network.value, prefix.length)


def _rib_chain(
    topo: Topology, router: str, prefix: Ipv4Prefix
) -> Optional[Tuple[str, ...]]:
    """The learned-from chain from ``router`` to the prefix's originator."""
    chain: List[str] = [router]
    entry = topo.ribs[router][prefix]
    while entry.learned_from is not None:
        nxt = entry.learned_from
        if nxt in chain:
            return None  # defensive: a loop would mean a broken fixpoint
        chain.append(nxt)
        nxt_entry = topo.ribs.get(nxt, {}).get(prefix)
        if nxt_entry is None:
            return None
        entry = nxt_entry
    return tuple(chain)


def path_filters(
    topo: Topology, devices_on_path: Sequence[str]
) -> Tuple[PathFilter, ...]:
    """Every ACL attachment traffic crosses along ``devices_on_path``."""
    filters: List[PathFilter] = []
    for sender, receiver in zip(devices_on_path, devices_on_path[1:]):
        egress = topo.facing.get((sender, receiver))
        if egress is not None and egress.acl_out is not None:
            filters.append(
                PathFilter(sender, egress.name, "out", egress.acl_out)
            )
        ingress = topo.facing.get((receiver, sender))
        if ingress is not None and ingress.acl_in is not None:
            filters.append(
                PathFilter(receiver, ingress.name, "in", ingress.acl_in)
            )
    return tuple(filters)


def extract_paths(topo: Topology) -> Tuple[ForwardingPath, ...]:
    """Every maximal simulated forwarding path, deterministically ordered.

    One path per (source router, destination prefix) RIB entry, deduped:
    a path that is a strict suffix of another path toward the same
    prefix adds no filters of its own, so only maximal chains are kept.
    """
    chains: Set[Tuple[Ipv4Prefix, Tuple[str, ...]]] = set()
    for router in sorted(topo.ribs):
        for prefix in sorted(topo.ribs[router], key=_prefix_key):
            chain = _rib_chain(topo, router, prefix)
            if chain is not None and len(chain) > 1:
                chains.add((prefix, chain))
    maximal = [
        (prefix, chain)
        for prefix, chain in chains
        if not any(
            other != chain and other[-len(chain):] == chain
            for other_prefix, other in chains
            if other_prefix == prefix
        )
    ]
    maximal.sort(key=lambda item: (_prefix_key(item[0]), item[1]))
    return tuple(
        ForwardingPath(prefix, chain, path_filters(topo, chain))
        for prefix, chain in maximal
    )


__all__ = [
    "ForwardingPath",
    "PathFilter",
    "Topology",
    "TopologyError",
    "build_topology",
    "extract_paths",
    "path_filters",
    "topology_capable",
]
