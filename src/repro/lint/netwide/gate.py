"""The network-wide insertion gate: advisory whole-network diffing.

The per-device gate (:mod:`repro.lint.gate`) answers "what did this
insertion do to *this* policy?"; this gate answers "what did it do to
the *network*?".  It embeds the session's store into a device set (the
caller supplies the embedding — e.g. graft the store onto one router of
a known topology), runs the :class:`~repro.lint.netwide.analyze.
NetwideAnalyzer` before and after, and reports the findings the update
*introduced* at warning severity or above.

Like the per-device gate it is advisory: the warnings land in the same
``UpdateReport.gate_warnings`` channel (prefixed ``netwide:``) and bump
``lint.netwide_gate_warnings``.  The analyzer instance persists across
checks, so a session of small updates pays incremental cost — only the
paths crossing the updated device are re-analyzed each time.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro import obs
from repro.config.device import DeviceConfig
from repro.config.store import ConfigStore
from repro.lint.diagnostics import LintReport, Severity
from repro.lint.netwide.analyze import NetwideAnalyzer
from repro.lint.netwide.contracts import Contract

#: Maps a session store to the device set to analyze network-wide.
Embedding = Callable[[ConfigStore], Sequence[DeviceConfig]]


class NetwideGate:
    """Advisory pre/post-insertion network-wide check.

    ``embed`` turns a session's :class:`ConfigStore` into the device set
    whose network the update affects; ``contracts`` are checked on every
    run so a contract regression surfaces as a gate warning too.
    """

    def __init__(
        self, embed: Embedding, contracts: Sequence[Contract] = ()
    ) -> None:
        self.embed = embed
        self.contracts = tuple(contracts)
        self.analyzer = NetwideAnalyzer()

    def report(self, store: ConfigStore) -> LintReport:
        """The full network-wide report for one embedded store."""
        return self.analyzer.analyze(
            list(self.embed(store)), contracts=self.contracts
        )

    def check(self, before: ConfigStore, after: ConfigStore) -> Tuple[str, ...]:
        """Warnings for the findings ``after`` introduces over ``before``.

        Findings are compared by their rendered one-line form, so a
        finding that merely moved (renumbering) does not re-fire while a
        genuinely new conflict does.  Only warning severity and above
        surfaces — the gate is a tripwire, not a report viewer.
        """
        with obs.span("lint.netwide_gate"):
            obs.count("lint.netwide_gate_checks")
            baseline = {
                d.render()
                for d in self.report(before).at_least(Severity.WARNING)
            }
            introduced: List[str] = [
                f"netwide: {d.render()}"
                for d in self.report(after).at_least(Severity.WARNING)
                if d.render() not in baseline
            ]
            if introduced:
                obs.count("lint.netwide_gate_warnings", len(introduced))
            return tuple(introduced)


__all__ = ["Embedding", "NetwideGate"]
