"""``repro.lint`` — a symbolic policy linter over parsed configurations.

Static analysis on top of the route-space/header-space engines: every
check reasons about the *semantics* of a policy (which inputs reach
which rule), not its syntax, and defects come back as
:class:`~repro.lint.diagnostics.Diagnostic` objects with stable codes,
severities, suggested fixes, and — where the symbolic engines can
produce one — a concrete witness route or packet.

Diagnostic codes (catalogued in ``docs/LINT.md``):

========  ========  ====================================================
code      severity  meaning
========  ========  ====================================================
RM001     warning   fully shadowed route-map stanza
RM002     info      conflicting stanza overlap (order-sensitive pair)
RM003     warning   route-map with no terminal permit (denies all)
AC001     error     ACL rule fully shadowed by opposite-action rules
AC002     warning   redundant ACL rule (same-action cover)
AC003     info      correlated ACL rules (partial conflicting overlap)
AC004     info      generalization (catch-all reversing an earlier rule)
RF001     error     reference to an undefined list/ACL
RF002     info      defined but unreferenced list/ACL
NM001     info      name straying from the dominant naming family
NW001     error     downstream ACL fully cancels upstream path permits
NW002     warning   downstream ACL partially cancels upstream permits
NW003     warning   route-map chain fully cancels upstream route space
NW004     info      route-map chain partially cancels upstream space
NW005     warning   same-named ACLs diverge across devices
NW006     warning   same-named route-maps diverge across devices
NW007     error     must-reach contract violated
NW008     error     must-not-reach contract violated
========  ========  ====================================================

Entry points: :func:`lint_store` / :func:`lint_device` for one
configuration, :func:`gate_insertion` for the pre/post-insertion gate
the Clarify workflow runs, :func:`lint_campus_corpus` for the §3
corpus cross-check, and the ``clarify lint`` CLI subcommand.  The
network-wide layer (``NW*`` codes, :mod:`repro.lint.netwide`) analyzes a
whole device set against its simulated BGP forwarding paths — entry
points :func:`repro.lint.netwide.analyze_network` and the ``clarify
netlint`` subcommand.
"""

from repro.lint.corpus import (
    AclClassification,
    CorpusLintResult,
    classify_acl,
    lint_campus_corpus,
)
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    SourceLocation,
)
from repro.lint.gate import GateReport, gate_insertion
from repro.lint.registry import (
    Check,
    CheckRegistry,
    counts_by_object,
    default_registry,
    lint_device,
    lint_store,
)
from repro.lint.reporters import diagnostic_to_dict, render_json, render_text

__all__ = [
    "AclClassification",
    "Check",
    "CheckRegistry",
    "CorpusLintResult",
    "Diagnostic",
    "GateReport",
    "LintReport",
    "Severity",
    "SourceLocation",
    "classify_acl",
    "counts_by_object",
    "default_registry",
    "diagnostic_to_dict",
    "gate_insertion",
    "lint_campus_corpus",
    "lint_device",
    "lint_store",
    "render_json",
    "render_text",
]
