"""The insertion gate: lint the update an insertion is about to apply.

The paper's core observation is that a synthesized stanza can be
*correct in isolation* yet change nothing (or the wrong thing) once
spliced into the target policy.  The gate compares the configuration
before and after a proposed insertion:

* would the inserted stanza/rule land **fully shadowed** (no input ever
  reaches it)?  That is the clearest possible signal the user's intent
  was not realised;
* does the insertion **introduce new diagnostics** (per-code count
  deltas, robust against the renumbering an insertion performs)?

The result is advisory — a :class:`GateReport` of human-readable
warnings plus the before/after lint reports — because the §2 workflow
already asked the user where the stanza should go; the gate tells them
what that choice did.  Warnings bump the ``lint.gate_warnings`` counter
on the active :mod:`repro.obs` recorder.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro import obs
from repro.analysis.headerspace import acl_reachable_spaces
from repro.analysis.routespace import route_map_reachable_spaces
from repro.config.store import ConfigStore
from repro.lint.diagnostics import LintReport
from repro.lint.registry import (
    CheckRegistry,
    _translatable,
    lint_store,
)

ROUTE_MAP = "route-map"
ACL = "acl"


@dataclasses.dataclass(frozen=True)
class GateReport:
    """What the gate found about one proposed insertion."""

    warnings: Tuple[str, ...]
    #: True when the inserted entry itself is unreachable.
    inserted_shadowed: bool
    before: LintReport
    after: LintReport

    def __bool__(self) -> bool:
        return bool(self.warnings)

    @property
    def new_counts(self) -> dict:
        """Per-code diagnostic count increases caused by the insertion."""
        old = self.before.counts_by_code()
        new = self.after.counts_by_code()
        return {
            code: new[code] - old.get(code, 0)
            for code in sorted(new)
            if new[code] > old.get(code, 0)
        }


def _inserted_entry_shadowed(
    store: ConfigStore, kind: str, target: str, position: int
) -> Optional[bool]:
    """Whether the entry at index ``position`` is unreachable.

    Returns ``None`` when the question cannot be decided (unknown
    target, position out of range, or untranslatable guards).
    """
    if kind == ROUTE_MAP:
        if not store.has_route_map(target):
            return None
        route_map = store.route_map(target)
        if not 0 <= position < len(route_map.stanzas):
            return None
        if not _translatable(route_map, store):
            return None
        reachable = route_map_reachable_spaces(route_map, store)
        return reachable[position][1].is_empty()
    if kind == ACL:
        if not store.has_acl(target):
            return None
        acl = store.acl(target)
        if not 0 <= position < len(acl.rules):
            return None
        reachable = acl_reachable_spaces(acl)
        return reachable[position][1].is_empty()
    return None


def gate_insertion(
    before: ConfigStore,
    after: ConfigStore,
    kind: str,
    target: str,
    position: int,
    registry: Optional[CheckRegistry] = None,
    with_witnesses: bool = True,
) -> GateReport:
    """Lint a proposed insertion of one stanza/rule.

    ``before``/``after`` are the stores around the insertion; ``kind``
    is ``"route-map"`` or ``"acl"``; ``position`` is the insertion index
    (the inserted entry's index in the updated target).
    """
    with obs.span("lint.gate", kind=kind, target=target):
        report_before = lint_store(
            before, registry=registry, with_witnesses=False
        )
        report_after = lint_store(
            after, registry=registry, with_witnesses=with_witnesses
        )
        warnings: List[str] = []
        entry = "stanza" if kind == ROUTE_MAP else "rule"
        shadowed = _inserted_entry_shadowed(after, kind, target, position)
        if shadowed:
            seq = (position + 1) * 10
            warnings.append(
                f"the inserted {entry} ({kind} {target} {entry} ~{seq}) "
                "is fully shadowed: no input ever reaches it, so this "
                "update changes nothing"
            )
        old_counts = report_before.counts_by_code()
        for code, count in sorted(report_after.counts_by_code().items()):
            delta = count - old_counts.get(code, 0)
            if delta <= 0:
                continue
            plural = "s" if delta != 1 else ""
            warnings.append(
                f"insertion introduces {delta} new {code} "
                f"diagnostic{plural}"
            )
        if warnings:
            obs.count("lint.gate_warnings", len(warnings))
        obs.event(
            "lint.gate",
            kind=kind,
            target=target,
            warnings=list(warnings),
            inserted_shadowed=bool(shadowed),
        )
        return GateReport(
            warnings=tuple(warnings),
            inserted_shadowed=bool(shadowed),
            before=report_before,
            after=report_after,
        )


__all__ = ["ACL", "GateReport", "ROUTE_MAP", "gate_insertion"]
