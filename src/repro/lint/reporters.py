"""Reporters: render a :class:`~repro.lint.diagnostics.LintReport`.

Two formats: a human-readable text listing (witnesses indented under
each finding, a per-severity summary line at the bottom) and a JSON
document for toolchains (stable key order, witnesses rendered to
strings).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.lint.diagnostics import Diagnostic, LintReport, SourceLocation


def _location_dict(location: SourceLocation) -> Dict[str, object]:
    out: Dict[str, object] = {"kind": location.kind, "name": location.name}
    if location.seq is not None:
        out["seq"] = location.seq
    if location.device is not None:
        out["device"] = location.device
    return out


def diagnostic_to_dict(diagnostic: Diagnostic) -> Dict[str, object]:
    """One diagnostic as a JSON-ready dict (stable keys)."""
    out: Dict[str, object] = {
        "code": diagnostic.code,
        "severity": diagnostic.severity.value,
        "location": _location_dict(diagnostic.location),
        "message": diagnostic.message,
    }
    if diagnostic.suggestion is not None:
        out["suggestion"] = diagnostic.suggestion
    witness = diagnostic.witness_text(indent="")
    if witness is not None:
        out["witness"] = witness
    if diagnostic.related:
        out["related"] = [_location_dict(loc) for loc in diagnostic.related]
    return out


def render_json(report: LintReport, title: Optional[str] = None) -> str:
    """The whole report as a JSON document.

    The report is normalized first — deterministic (code, device,
    position) order, identical-witness findings deduped — so the output
    is byte-stable across runs and usable as a CI baseline artifact.
    """
    report = report.normalized()
    document: Dict[str, object] = {
        "diagnostics": [diagnostic_to_dict(d) for d in report],
        "counts_by_code": report.counts_by_code(),
        "counts_by_severity": report.counts_by_severity(),
    }
    if title is not None:
        document["title"] = title
    worst = report.max_severity()
    document["max_severity"] = worst.value if worst is not None else None
    return json.dumps(document, indent=2, sort_keys=False)


def render_text(
    report: LintReport,
    title: Optional[str] = None,
    show_witnesses: bool = True,
    show_suggestions: bool = True,
) -> str:
    """The whole report as a human-readable listing.

    Normalized like :func:`render_json`: deterministic (code, device,
    position) order with identical-witness findings deduped.
    """
    report = report.normalized()
    lines: List[str] = []
    if title is not None:
        lines.append(title)
    if not report:
        lines.append("no findings")
        return "\n".join(lines)
    for diagnostic in report:
        lines.append(diagnostic.render())
        if show_suggestions and diagnostic.suggestion is not None:
            lines.append(f"    fix: {diagnostic.suggestion}")
        if show_witnesses:
            witness = diagnostic.witness_text(indent="    ")
            if witness is not None:
                lines.append("    witness:")
                lines.extend(
                    "    " + line for line in witness.splitlines()
                )
        for related in diagnostic.related:
            lines.append(f"    see also: {related.render()}")
    severities = report.counts_by_severity()
    summary = ", ".join(
        f"{severities[key]} {key}"
        for key in ("error", "warning", "info")
        if key in severities
    )
    lines.append(f"{len(report)} finding(s): {summary}")
    return "\n".join(lines)


__all__ = ["diagnostic_to_dict", "render_json", "render_text"]
