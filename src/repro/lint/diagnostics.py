"""The diagnostic model: stable codes, severities, locations, reports.

Every lint finding is a :class:`Diagnostic` — a stable code (``RM001``),
a :class:`Severity`, a :class:`SourceLocation` naming the configuration
object (and, where applicable, the rule/stanza sequence number), a
human-readable message, an optional suggested fix, and an optional
concrete *witness* (a route or packet demonstrating the defect, produced
by the symbolic engines).  A :class:`LintReport` is an ordered,
immutable collection with the filtering and threshold helpers the CLI
and the insertion gate need.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``INFO < WARNING < ERROR``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def at_least(self, other: "Severity") -> bool:
        return self.rank >= other.rank

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls(text.lower())
        except ValueError:
            choices = ", ".join(s.value for s in cls)
            raise ValueError(
                f"unknown severity {text!r} (choose from {choices})"
            ) from None


_SEVERITY_RANK: Dict[Severity, int] = {
    Severity.INFO: 10,
    Severity.WARNING: 20,
    Severity.ERROR: 30,
}


@dataclasses.dataclass(frozen=True)
class SourceLocation:
    """Where in the configuration a diagnostic points.

    ``kind`` names the object type (``route-map``, ``acl``,
    ``prefix-list``, ``community-list``, ``as-path-list``,
    ``interface``); ``seq`` is the stanza/rule sequence number when the
    diagnostic is about one specific entry.  ``device`` qualifies the
    location with a hostname for network-wide findings (``repro.lint.
    netwide``); single-device lint leaves it ``None``.
    """

    kind: str
    name: str
    seq: Optional[int] = None
    device: Optional[str] = None

    def render(self) -> str:
        entry = "stanza" if self.kind == "route-map" else "rule"
        if self.seq is None:
            text = f"{self.kind} {self.name}"
        else:
            text = f"{self.kind} {self.name} {entry} {self.seq}"
        if self.device is not None:
            text += f" @{self.device}"
        return text


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    code: str
    severity: Severity
    location: SourceLocation
    message: str
    suggestion: Optional[str] = None
    #: A concrete route/packet demonstrating the defect (has ``render()``).
    witness: Optional[object] = None
    #: Locations of the other objects/entries involved (e.g. the stanza
    #: that shadows this one).
    related: Tuple[SourceLocation, ...] = ()

    def witness_text(self, indent: str = "    ") -> Optional[str]:
        """The witness rendered for display, or None without one."""
        if self.witness is None:
            return None
        render = getattr(self.witness, "render", None)
        if callable(render):
            return str(render(indent))
        return indent + str(self.witness)

    def render(self) -> str:
        """One-line summary: ``severity code location: message``."""
        return (
            f"{self.severity.value} {self.code} "
            f"{self.location.render()}: {self.message}"
        )


@dataclasses.dataclass(frozen=True)
class LintReport:
    """An ordered collection of diagnostics with threshold helpers."""

    diagnostics: Tuple[Diagnostic, ...] = ()

    @classmethod
    def of(cls, diagnostics: Iterable[Diagnostic]) -> "LintReport":
        return cls(tuple(diagnostics))

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    def extend(self, other: "LintReport") -> "LintReport":
        return LintReport(self.diagnostics + other.diagnostics)

    def with_code(self, *codes: str) -> "LintReport":
        wanted = set(codes)
        return LintReport(
            tuple(d for d in self.diagnostics if d.code in wanted)
        )

    def for_object(self, kind: str, name: str) -> "LintReport":
        return LintReport(
            tuple(
                d
                for d in self.diagnostics
                if d.location.kind == kind and d.location.name == name
            )
        )

    def at_least(self, severity: Severity) -> "LintReport":
        return LintReport(
            tuple(
                d for d in self.diagnostics if d.severity.at_least(severity)
            )
        )

    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return counts

    def counts_by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            key = diagnostic.severity.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def max_severity(self) -> Optional[Severity]:
        """The worst severity present, or None for a clean report."""
        worst: Optional[Severity] = None
        for diagnostic in self.diagnostics:
            if worst is None or diagnostic.severity.rank > worst.rank:
                worst = diagnostic.severity
        return worst

    def fails(self, threshold: Optional[Severity]) -> bool:
        """True when any diagnostic reaches ``threshold`` (None: never)."""
        if threshold is None:
            return False
        return any(d.severity.at_least(threshold) for d in self.diagnostics)

    def sorted(self) -> "LintReport":
        """Deterministic total order: (code, device, position).

        The primary key is the diagnostic code, then the device (empty
        for single-device findings), then the position (kind, object
        name, sequence number), then the message and severity as final
        tie-breakers — so two reports holding the same findings render
        byte-identically regardless of discovery order.
        """
        ordered: List[Diagnostic] = sorted(
            self.diagnostics, key=_diagnostic_sort_key
        )
        return LintReport(tuple(ordered))

    def deduped(self) -> "LintReport":
        """Drop findings identical up to their rendered witness.

        Network-wide analysis can surface one defect along several
        overlapping paths; identical (code, location, message, witness)
        findings collapse to the first occurrence so reports — and the
        CI baseline artifacts diffed against them — stay minimal.
        """
        seen = set()
        kept: List[Diagnostic] = []
        for diagnostic in self.diagnostics:
            key = (
                diagnostic.code,
                diagnostic.severity.value,
                diagnostic.location,
                diagnostic.message,
                diagnostic.suggestion,
                diagnostic.witness_text(indent=""),
                diagnostic.related,
            )
            if key in seen:
                continue
            seen.add(key)
            kept.append(diagnostic)
        return LintReport(tuple(kept))

    def normalized(self) -> "LintReport":
        """The canonical presentation: :meth:`sorted` then :meth:`deduped`."""
        return self.sorted().deduped()


def _diagnostic_sort_key(d: Diagnostic) -> Tuple:
    return (
        d.code,
        d.location.device or "",
        d.location.kind,
        d.location.name,
        d.location.seq if d.location.seq is not None else -1,
        d.message,
        -d.severity.rank,
    )


__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "SourceLocation",
]
