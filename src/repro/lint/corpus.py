"""Corpus mode: lint the §3 synthetic corpora and cross-check shares.

The campus generator (:mod:`repro.synth.campus`) builds ACLs from five
archetypes with exact counts (:class:`~repro.synth.campus.ArchetypeCounts`).
The linter sees only the finished configurations, so re-deriving the
archetype of every ACL from its diagnostics alone — and matching the
generator's counts exactly — is an end-to-end cross-check of the whole
symbolic stack:

* ``shadowed`` ACLs (specific permits, then ``deny ip any any``) show up
  as one **AC004** generalization per permit and nothing else;
* ``crossing`` ACLs show up as one **AC003** correlation per
  (permit, deny) pair and nothing else;
* ``clean`` ACLs produce zero overlap diagnostics;
* the light/heavy split falls out of the pair counts (threshold 20,
  §3.2's "more than 20 conflicts").

Only the overlap codes participate (``RM001``/``RM002``/``AC001``..
``AC004``) — style checks like RM003 say nothing about archetypes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.config.acl import Acl
from repro.lint.acl_checks import check_overlap_pairs, check_unreachable_aces
from repro.lint.diagnostics import LintReport
from repro.lint.registry import CheckRegistry, lint_store
from repro.synth.campus import ArchetypeCounts, CampusCorpus

#: §3.2's split between light and heavy conflict counts.
HEAVY_THRESHOLD = 20

#: The diagnostic codes that encode overlap structure.
OVERLAP_CODES = ("RM001", "RM002", "AC001", "AC002", "AC003", "AC004")

CLEAN = "clean"
SHADOWED_LIGHT = "shadowed-light"
SHADOWED_HEAVY = "shadowed-heavy"
CROSSING_LIGHT = "crossing-light"
CROSSING_HEAVY = "crossing-heavy"
MIXED = "mixed"


@dataclasses.dataclass(frozen=True)
class AclClassification:
    """One ACL's archetype as recovered from its diagnostics."""

    name: str
    archetype: str
    conflict_pairs: int
    diagnostics: LintReport


def classify_acl(acl: Acl, with_witnesses: bool = False) -> AclClassification:
    """Recover an ACL's §3 archetype from lint diagnostics alone."""
    diagnostics = LintReport.of(
        check_unreachable_aces(acl, with_witnesses=with_witnesses)
        + check_overlap_pairs(acl, with_witnesses=with_witnesses)
    )
    counts = diagnostics.counts_by_code()
    crossings = counts.get("AC003", 0)
    subsets = counts.get("AC004", 0)
    dead = counts.get("AC001", 0) + counts.get("AC002", 0)
    if crossings and not subsets and not dead:
        archetype = (
            CROSSING_HEAVY if crossings > HEAVY_THRESHOLD else CROSSING_LIGHT
        )
        pairs = crossings
    elif subsets and not crossings and not dead:
        archetype = (
            SHADOWED_HEAVY if subsets > HEAVY_THRESHOLD else SHADOWED_LIGHT
        )
        pairs = subsets
    elif not counts:
        archetype, pairs = CLEAN, 0
    else:
        archetype, pairs = MIXED, crossings + subsets + dead
    return AclClassification(
        name=acl.name,
        archetype=archetype,
        conflict_pairs=pairs,
        diagnostics=diagnostics,
    )


@dataclasses.dataclass(frozen=True)
class CorpusLintResult:
    """Linting one synthetic corpus, with the archetype cross-check."""

    total_acls: int
    observed: Dict[str, int]
    expected: Optional[ArchetypeCounts]
    classifications: Tuple[AclClassification, ...]
    route_map_report: LintReport

    @property
    def matches_expected(self) -> bool:
        """Whether recovered archetype counts equal the generator's."""
        if self.expected is None:
            return False
        return (
            self.observed.get(CLEAN, 0) == self.expected.clean
            and self.observed.get(SHADOWED_LIGHT, 0)
            == self.expected.shadowed_light
            and self.observed.get(SHADOWED_HEAVY, 0)
            == self.expected.shadowed_heavy
            and self.observed.get(CROSSING_LIGHT, 0)
            == self.expected.crossing_light
            and self.observed.get(CROSSING_HEAVY, 0)
            == self.expected.crossing_heavy
            and self.observed.get(MIXED, 0) == 0
        )

    @property
    def flagged_acls(self) -> int:
        return self.total_acls - self.observed.get(CLEAN, 0)

    def render(self) -> str:
        lines = [f"{self.total_acls} ACLs classified from diagnostics:"]
        order = (
            CLEAN,
            SHADOWED_LIGHT,
            SHADOWED_HEAVY,
            CROSSING_LIGHT,
            CROSSING_HEAVY,
            MIXED,
        )
        expected_map: Dict[str, Optional[int]] = {key: None for key in order}
        if self.expected is not None:
            expected_map.update(
                {
                    CLEAN: self.expected.clean,
                    SHADOWED_LIGHT: self.expected.shadowed_light,
                    SHADOWED_HEAVY: self.expected.shadowed_heavy,
                    CROSSING_LIGHT: self.expected.crossing_light,
                    CROSSING_HEAVY: self.expected.crossing_heavy,
                    MIXED: 0,
                }
            )
        for key in order:
            observed = self.observed.get(key, 0)
            expected = expected_map[key]
            if observed == 0 and not expected:
                continue
            suffix = "" if expected is None else f" (expected {expected})"
            lines.append(f"  {key:<15} {observed}{suffix}")
        if self.expected is not None:
            verdict = "MATCH" if self.matches_expected else "MISMATCH"
            lines.append(f"archetype cross-check: {verdict}")
        if self.route_map_report:
            lines.append(
                f"route-map findings: {len(self.route_map_report)}"
            )
            for diagnostic in self.route_map_report:
                lines.append("  " + diagnostic.render())
        else:
            lines.append("route-map findings: none")
        return "\n".join(lines)


def lint_campus_corpus(
    corpus: CampusCorpus,
    registry: Optional[CheckRegistry] = None,
    with_witnesses: bool = False,
) -> CorpusLintResult:
    """Lint a campus corpus and cross-check the archetype shares."""
    observed: Dict[str, int] = {}
    classifications = []
    for acl in corpus.acls:
        classification = classify_acl(acl, with_witnesses=with_witnesses)
        observed[classification.archetype] = (
            observed.get(classification.archetype, 0) + 1
        )
        classifications.append(classification)
    route_map_report = lint_store(
        corpus.store,
        registry=registry,
        select=("RM001", "RM002"),
        with_witnesses=with_witnesses,
    )
    return CorpusLintResult(
        total_acls=len(corpus.acls),
        observed=observed,
        expected=ArchetypeCounts.for_total(len(corpus.acls)),
        classifications=tuple(classifications),
        route_map_report=route_map_report,
    )


__all__ = [
    "AclClassification",
    "CLEAN",
    "CROSSING_HEAVY",
    "CROSSING_LIGHT",
    "CorpusLintResult",
    "HEAVY_THRESHOLD",
    "MIXED",
    "OVERLAP_CODES",
    "SHADOWED_HEAVY",
    "SHADOWED_LIGHT",
    "classify_acl",
    "lint_campus_corpus",
]
