"""The check registry and the two lint entry points.

Checks are small callables registered with a scope — ``store`` checks
see the whole :class:`~repro.config.store.ConfigStore` (plus the device,
when linting one), ``route-map`` and ``acl`` checks see one object at a
time.  :func:`default_registry` wires up every built-in check;
:func:`lint_store` / :func:`lint_device` drive a registry over a
configuration and return one merged, sorted
:class:`~repro.lint.diagnostics.LintReport`.

Ordering matters in one place: route-maps whose guards reference
undefined lists cannot be translated to route spaces, so the symbolic
route-map checks are skipped for those maps — RF001 already reports the
root cause.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro import obs
from repro.config.acl import Acl
from repro.config.device import DeviceConfig
from repro.config.routemap import RouteMap
from repro.config.store import ConfigStore
from repro.lint import acl_checks, routemap_checks, store_checks
from repro.lint.diagnostics import Diagnostic, LintReport

SCOPE_STORE = "store"
SCOPE_ROUTE_MAP = "route-map"
SCOPE_ACL = "acl"

StoreCheck = Callable[
    [ConfigStore, Optional[DeviceConfig], bool], List[Diagnostic]
]
RouteMapCheck = Callable[[RouteMap, ConfigStore, bool], List[Diagnostic]]
AclCheck = Callable[[Acl, bool], List[Diagnostic]]


@dataclasses.dataclass(frozen=True)
class Check:
    """One registered check: codes it may emit, scope, and the callable."""

    codes: tuple
    scope: str
    run: Callable[..., List[Diagnostic]]
    description: str = ""

    def emits(self, select: Optional[Set[str]]) -> bool:
        """Whether any of this check's codes survive a ``--select`` set."""
        if select is None:
            return True
        return any(code in select for code in self.codes)


class CheckRegistry:
    """An ordered collection of checks, filterable by scope and code."""

    def __init__(self) -> None:
        self._checks: List[Check] = []

    def register(self, check: Check) -> None:
        self._checks.append(check)

    def checks(
        self, scope: str, select: Optional[Set[str]] = None
    ) -> List[Check]:
        return [
            check
            for check in self._checks
            if check.scope == scope and check.emits(select)
        ]

    def all_codes(self) -> List[str]:
        codes: List[str] = []
        for check in self._checks:
            for code in check.codes:
                if code not in codes:
                    codes.append(code)
        return sorted(codes)


def default_registry() -> CheckRegistry:
    """All built-in checks, in diagnosis order."""
    registry = CheckRegistry()
    registry.register(
        Check(
            codes=("RF001",),
            scope=SCOPE_STORE,
            run=store_checks.check_dangling_references,
            description="references to undefined lists/ACLs",
        )
    )
    registry.register(
        Check(
            codes=("RF002",),
            scope=SCOPE_STORE,
            run=store_checks.check_unused_definitions,
            description="defined but unreferenced lists",
        )
    )
    registry.register(
        Check(
            codes=("NM001",),
            scope=SCOPE_STORE,
            run=store_checks.check_naming_families,
            description="names straying from the dominant family",
        )
    )
    registry.register(
        Check(
            codes=("RM001",),
            scope=SCOPE_ROUTE_MAP,
            run=routemap_checks.check_shadowed_stanzas,
            description="fully shadowed stanzas",
        )
    )
    registry.register(
        Check(
            codes=("RM002",),
            scope=SCOPE_ROUTE_MAP,
            run=routemap_checks.check_conflicting_overlaps,
            description="order-sensitive conflicting stanza pairs",
        )
    )
    registry.register(
        Check(
            codes=("RM003",),
            scope=SCOPE_ROUTE_MAP,
            run=routemap_checks.check_no_terminal_permit,
            description="route-maps that deny everything",
        )
    )
    registry.register(
        Check(
            codes=("AC001", "AC002"),
            scope=SCOPE_ACL,
            run=acl_checks.check_unreachable_aces,
            description="dead (shadowed or redundant) ACL rules",
        )
    )
    registry.register(
        Check(
            codes=("AC003", "AC004"),
            scope=SCOPE_ACL,
            run=acl_checks.check_overlap_pairs,
            description="order-sensitive conflicting ACL rule pairs",
        )
    )
    return registry


def _translatable(route_map: RouteMap, store: ConfigStore) -> bool:
    """Whether every list the route-map references is defined."""
    checkers = {
        "prefix-list": store.has_prefix_list,
        "community-list": store.has_community_list,
        "as-path-list": store.has_as_path_list,
    }
    for kind, names in store_checks.referenced_lists(route_map).items():
        for name in names:
            if not checkers[kind](name):
                return False
    return True


def _normalize_select(
    select: Optional[Iterable[str]],
) -> Optional[Set[str]]:
    if select is None:
        return None
    return {code.upper() for code in select}


def lint_store(
    store: ConfigStore,
    device: Optional[DeviceConfig] = None,
    registry: Optional[CheckRegistry] = None,
    select: Optional[Iterable[str]] = None,
    with_witnesses: bool = True,
) -> LintReport:
    """Run every (selected) check over one configuration store.

    ``select`` keeps only the given diagnostic codes (case-insensitive);
    ``with_witnesses=False`` skips witness extraction for speed.  Emits
    the ``lint.diagnostics`` counter on the active
    :mod:`repro.obs` recorder.
    """
    registry = registry or default_registry()
    wanted = _normalize_select(select)
    diagnostics: List[Diagnostic] = []
    for check in registry.checks(SCOPE_STORE, wanted):
        diagnostics.extend(check.run(store, device, with_witnesses))
    route_map_checks = registry.checks(SCOPE_ROUTE_MAP, wanted)
    if route_map_checks:
        for route_map in store.route_maps():
            if not _translatable(route_map, store):
                continue
            for check in route_map_checks:
                diagnostics.extend(
                    check.run(route_map, store, with_witnesses)
                )
    acl_scope_checks = registry.checks(SCOPE_ACL, wanted)
    if acl_scope_checks:
        for acl in store.acls():
            for check in acl_scope_checks:
                diagnostics.extend(check.run(acl, with_witnesses))
    if wanted is not None:
        diagnostics = [d for d in diagnostics if d.code in wanted]
    report = LintReport.of(diagnostics).sorted()
    obs.count("lint.diagnostics", len(report))
    return report


def lint_device(
    device: DeviceConfig,
    registry: Optional[CheckRegistry] = None,
    select: Optional[Iterable[str]] = None,
    with_witnesses: bool = True,
) -> LintReport:
    """Lint one device: its policy store plus interface attachments."""
    return lint_store(
        device.store,
        device=device,
        registry=registry,
        select=select,
        with_witnesses=with_witnesses,
    )


def counts_by_object(report: LintReport) -> Dict[str, int]:
    """Diagnostics per configuration object (``kind name`` keys)."""
    counts: Dict[str, int] = {}
    for diagnostic in report:
        key = f"{diagnostic.location.kind} {diagnostic.location.name}"
        counts[key] = counts.get(key, 0) + 1
    return counts


__all__ = [
    "Check",
    "CheckRegistry",
    "SCOPE_ACL",
    "SCOPE_ROUTE_MAP",
    "SCOPE_STORE",
    "counts_by_object",
    "default_registry",
    "lint_device",
    "lint_store",
]
