"""Symbolic ACL checks: AC001 shadowed-ace, AC002 redundant-ace, AC003
correlated-aces, AC004 generalization.

The taxonomy follows the classic firewall-anomaly classification
(shadowing / redundancy / correlation / generalization), computed
exactly on the packet-space engine (:mod:`repro.analysis.headerspace`)
and the §3 overlap detector.  Witness packets come straight from the
region algebra and are checked against the concrete evaluator.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.evaluate import eval_acl
from repro.analysis.headerspace import acl_guard_space, acl_reachable_spaces
from repro.config.acl import Acl
from repro.lint.diagnostics import Diagnostic, Severity, SourceLocation
from repro.overlap.detector import acl_overlap_report


def _location(acl: Acl, seq: Optional[int] = None) -> SourceLocation:
    return SourceLocation(kind="acl", name=acl.name, seq=seq)


def check_unreachable_aces(
    acl: Acl, with_witnesses: bool = True
) -> List[Diagnostic]:
    """AC001/AC002: rules no packet can ever reach and match.

    A rule whose reachable space is empty is dead.  When some earlier
    covering rule takes the *opposite* action the dead rule was meant to
    change behaviour and silently does not (**AC001 shadowed-ace**,
    error); when every covering rule agrees with it the rule is merely
    dead weight (**AC002 redundant-ace**, warning).
    """
    diagnostics: List[Diagnostic] = []
    reachable = acl_reachable_spaces(acl)
    guards = [acl_guard_space(rule) for rule in acl.rules]
    for index, (rule, space) in enumerate(reachable):
        if rule is None or not space.is_empty():
            continue
        conflicting_cover = False
        related = []
        for earlier in range(index):
            if guards[earlier].intersect(guards[index]).is_empty():
                continue
            related.append(_location(acl, acl.rules[earlier].seq))
            if acl.rules[earlier].action != rule.action:
                conflicting_cover = True
        witness = guards[index].witness() if with_witnesses else None
        capturing = ""
        if witness is not None:
            result = eval_acl(acl, witness)
            if result.rule_seq is not None and result.rule_seq != rule.seq:
                capturing = f" (e.g. rule {result.rule_seq} matches first)"
        if conflicting_cover:
            code, severity = "AC001", Severity.ERROR
            message = (
                f"rule {rule.seq} ({rule.action}) is fully shadowed by "
                f"earlier rules with the opposite action{capturing}"
            )
            suggestion = (
                "move the rule above the rules that shadow it, or delete "
                "it if the current behaviour is intended"
            )
        else:
            code, severity = "AC002", Severity.WARNING
            message = (
                f"rule {rule.seq} is redundant: earlier rules with the "
                f"same action already cover every packet it matches{capturing}"
            )
            suggestion = "delete the rule; behaviour is unchanged"
        diagnostics.append(
            Diagnostic(
                code=code,
                severity=severity,
                location=_location(acl, rule.seq),
                message=message,
                suggestion=suggestion,
                witness=witness,
                related=tuple(related),
            )
        )
    return diagnostics


def check_overlap_pairs(
    acl: Acl, with_witnesses: bool = True
) -> List[Diagnostic]:
    """AC003/AC004: order-sensitive conflicting rule pairs.

    **AC003 correlated-aces** — two rules with different actions whose
    spaces partially overlap (neither contains the other): the §3
    "non-trivial" conflicts, where reordering or inserting between them
    flips the overlap.  **AC004 generalization** — a later rule with the
    opposite action whose space fully contains an earlier rule's (the
    specific-permits-then-catch-all-deny shape §3.2 calls *shadowed*):
    legitimate idiom, but exactly the latent structure a user cannot see
    when asking for an insertion.  Both carry a packet matched by the
    pair.
    """
    diagnostics: List[Diagnostic] = []
    report = acl_overlap_report(acl, with_witnesses=with_witnesses)
    for pair in report.pairs:
        if not pair.conflicting:
            continue
        if pair.b_in_a:
            # Later rule (partially) shadowed by the earlier one; the
            # reachability checks report the fully-dead case exactly.
            continue
        if pair.a_in_b:
            diagnostics.append(
                Diagnostic(
                    code="AC004",
                    severity=Severity.INFO,
                    location=_location(acl, pair.seq_b),
                    message=(
                        f"rule {pair.seq_b} is a catch-all that reverses "
                        f"earlier rule {pair.seq_a} everywhere outside it; "
                        f"rule {pair.seq_a} is an exception punched into "
                        f"rule {pair.seq_b}"
                    ),
                    suggestion=(
                        "expected for exception-then-default policies; "
                        "keep new rules on the correct side of the catch-all"
                    ),
                    witness=pair.witness,
                    related=(_location(acl, pair.seq_a),),
                )
            )
        else:
            diagnostics.append(
                Diagnostic(
                    code="AC003",
                    severity=Severity.INFO,
                    location=_location(acl, pair.seq_b),
                    message=(
                        f"rules {pair.seq_a} and {pair.seq_b} take "
                        "different actions on a shared packet space and "
                        "neither contains the other; their order decides "
                        "the overlap"
                    ),
                    suggestion=(
                        "confirm the relative order is intended; insertions "
                        "between these rules change behaviour"
                    ),
                    witness=pair.witness,
                    related=(_location(acl, pair.seq_a),),
                )
            )
    return diagnostics


__all__ = ["check_overlap_pairs", "check_unreachable_aces"]
