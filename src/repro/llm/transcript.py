"""Call transcripts and per-task statistics.

Figure 4 of the paper reports the number of LLM calls per router during
incremental synthesis; :class:`TranscribingClient` wraps any
:class:`~repro.llm.client.LLMClient` and records every call so the
evaluation harness can reproduce those counts.

The retained transcript is bounded: once more than ``max_records`` calls
have been made, the oldest :class:`CallRecord` is evicted (and counted on
the ``llm.transcript.evicted`` obs counter).  The Figure-4 statistics
(:meth:`TranscribingClient.call_count`,
:meth:`TranscribingClient.counts_by_task`) use running counters, so they
stay exact no matter how many records were evicted — full per-call
payloads belong in the session journal (:mod:`repro.obs.journal`), which
persists them to disk instead of holding them in memory.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import Counter, deque
from typing import Deque, Dict, List, Optional

from repro import obs
from repro.llm.client import LLMClient
from repro.llm.prompts import TaskKind, task_kind_of

#: Default transcript bound: enough for any single interactive session,
#: small enough that long-lived sessions cannot grow without limit.
DEFAULT_MAX_RECORDS = 512


@dataclasses.dataclass(frozen=True)
class CallRecord:
    """One LLM invocation."""

    task: TaskKind
    system: str
    prompt: str
    response: str


class TranscribingClient:
    """An :class:`LLMClient` wrapper that logs every call.

    Thread-safe: the transcript, the running counters, and the eviction
    bookkeeping are guarded by one lock, so a client shared by several
    sessions — or one sitting behind the serving layer's deduplication
    fan-out (:mod:`repro.llm.dedup`) — keeps exact counts under
    concurrent ``complete`` calls.  The upstream call itself runs
    *outside* the lock; only the bookkeeping is serialised.
    """

    def __init__(
        self,
        inner: LLMClient,
        max_records: Optional[int] = DEFAULT_MAX_RECORDS,
    ) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be at least 1 (or None)")
        self._inner = inner
        self._max_records = max_records
        self._lock = threading.Lock()
        self._records: Deque[CallRecord] = deque()
        self._total = 0
        self._by_task: Counter = Counter()
        #: Records dropped to honour ``max_records`` (monotonic).
        self.evicted = 0

    @property
    def records(self) -> List[CallRecord]:
        """The retained transcript, oldest first (a copy).

        Bounded by ``max_records``; use :meth:`call_count` /
        :meth:`counts_by_task` for exact totals.
        """
        with self._lock:
            return list(self._records)

    @property
    def max_records(self) -> Optional[int]:
        """The transcript bound (``None`` = unbounded)."""
        return self._max_records

    @property
    def cache_safe(self) -> bool:
        """Delegates to the wrapped client (transcription adds no impurity)."""
        from repro.llm.respcache import cache_safe_of

        return cache_safe_of(self._inner)

    def _record(self, record: CallRecord) -> None:
        with self._lock:
            self._total += 1
            self._by_task[record.task] += 1
            self._records.append(record)
            evict = (
                self._max_records is not None
                and len(self._records) > self._max_records
            )
            if evict:
                self._records.popleft()
                self.evicted += 1
        if evict:
            obs.count("llm.transcript.evicted")

    def complete(self, system: str, prompt: str) -> str:
        """Complete via the inner client, logging the full call."""
        task = task_kind_of(system)
        with obs.span("llm.complete", task=task.value):
            response = self._inner.complete(system, prompt)
        obs.count("llm.calls")
        obs.count(f"llm.calls.{task.value}")
        obs.event(
            "llm.call",
            task=task.value,
            system_sha256=obs.sha256_text(system),
            prompt=prompt,
            response=response,
        )
        self._record(
            CallRecord(
                task=task,
                system=system,
                prompt=prompt,
                response=response,
            )
        )
        return response

    # ------------------------------------------------------------- stats

    def call_count(self, task: Optional[TaskKind] = None) -> int:
        """Exact number of calls made (per task kind when given).

        Computed from running counters, not the retained records, so the
        Figure-4 statistics survive transcript eviction.
        """
        with self._lock:
            if task is None:
                return self._total
            return self._by_task.get(task, 0)

    def counts_by_task(self) -> Dict[TaskKind, int]:
        """Exact per-task call counts (Figure 4's "#LLM calls" column)."""
        with self._lock:
            return {
                task: count for task, count in self._by_task.items() if count
            }

    def reset(self) -> None:
        """Drop the transcript and zero every counter."""
        with self._lock:
            self._records.clear()
            self._by_task.clear()
            self._total = 0
            self.evicted = 0


__all__ = ["CallRecord", "DEFAULT_MAX_RECORDS", "TranscribingClient"]
