"""Call transcripts and per-task statistics.

Figure 4 of the paper reports the number of LLM calls per router during
incremental synthesis; :class:`TranscribingClient` wraps any
:class:`~repro.llm.client.LLMClient` and records every call so the
evaluation harness can reproduce those counts.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, List, Optional

from repro import obs
from repro.llm.client import LLMClient
from repro.llm.prompts import TaskKind, task_kind_of


@dataclasses.dataclass(frozen=True)
class CallRecord:
    """One LLM invocation."""

    task: TaskKind
    system: str
    prompt: str
    response: str


class TranscribingClient:
    """An :class:`LLMClient` wrapper that logs every call."""

    def __init__(self, inner: LLMClient) -> None:
        self._inner = inner
        self.records: List[CallRecord] = []

    def complete(self, system: str, prompt: str) -> str:
        task = task_kind_of(system)
        with obs.span("llm.complete", task=task.value):
            response = self._inner.complete(system, prompt)
        obs.count("llm.calls")
        obs.count(f"llm.calls.{task.value}")
        self.records.append(
            CallRecord(
                task=task,
                system=system,
                prompt=prompt,
                response=response,
            )
        )
        return response

    # ------------------------------------------------------------- stats

    def call_count(self, task: Optional[TaskKind] = None) -> int:
        if task is None:
            return len(self.records)
        return sum(1 for record in self.records if record.task is task)

    def counts_by_task(self) -> Dict[TaskKind, int]:
        return dict(Counter(record.task for record in self.records))

    def reset(self) -> None:
        self.records.clear()


__all__ = ["CallRecord", "TranscribingClient"]
