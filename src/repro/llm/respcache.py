"""A persistent on-disk LLM response cache with purity gating.

The serving layer's :class:`~repro.llm.dedup.DedupClient` only coalesces
requests that are in flight *simultaneously*; BENCH_serve.json showed
that on the realistic loadgen mix this coalesces nothing (192/192
upstream calls) because identical prompts arrive seconds apart.  This
module adds the durable layer underneath it:

* a :class:`ResponseCache` stores one completion per *canonical prompt
  hash* — the SHA-256 of the canonical JSON of ``(system, prompt)`` —
  as one small JSON file, written atomically (temp file +
  ``os.replace``) so a crashed writer can never leave a torn entry;
* a :class:`CachedClient` wraps any :class:`~repro.llm.client.LLMClient`
  and memoizes **only verified-pure responses**: a response is stored
  if and only if :func:`cache_safe_of` proves the wrapped client chain
  is cache-safe.  A :class:`~repro.llm.faulty.FaultyLLM` anywhere in the
  chain makes it unsafe (memoizing a corrupted response would pin the
  corruption forever and defeat the verification retry loop), so chaos
  campaigns bypass the cache entirely.

Reads *re-verify* every entry: a cache file whose stored ``system`` /
``prompt`` do not match the request (hash collision, manual tampering,
torn write that somehow parsed) is treated as a miss and counted on
``llm.cache.corrupt`` — the cache refuses to serve anything it cannot
prove belongs to the request.

Failure discipline: the cache is only ever written *after* the upstream
returned successfully.  An attempt aborted by a deadline
(:class:`~repro.core.errors.DeadlineExceeded`) or any backend error
leaves the cache untouched.

Layering (see ``docs/LLM_BACKENDS.md``)::

    DedupClient( CachedClient( FaultyLLM?( backend ) ) )

so in-flight twins still collapse first, completed responses persist
across requests *and processes*, and purity gating sits exactly where
the fault injector would poison it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from repro import obs
from repro.llm.client import LLMClient

#: Schema tag stored in every cache entry.
CACHE_SCHEMA = 1


def cache_safe_of(client: object) -> bool:
    """True when ``client`` declares its responses safe to memoize.

    Purity is *opt-in*: a client (or wrapper) advertises it with a
    ``cache_safe`` attribute — ``True`` on
    :class:`~repro.llm.simulated.SimulatedLLM` (deterministic) and
    :class:`~repro.llm.remote.RemoteLLMClient` (a stored reply is a
    genuine upstream reply), ``False`` on
    :class:`~repro.llm.faulty.FaultyLLM` (memoizing would pin injected
    corruption), and a delegating property on wrappers.  Anything that
    does not declare itself is treated as unsafe — an unknown client
    costs cache hits, never correctness.
    """
    return bool(getattr(client, "cache_safe", False))


def canonical_key(system: str, prompt: str) -> str:
    """The canonical prompt hash: SHA-256 over canonical-JSON of the pair."""
    canonical = json.dumps(
        {"prompt": prompt, "system": system},
        sort_keys=True,
        ensure_ascii=False,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResponseCache:
    """One completion per canonical prompt hash, durable on disk.

    Counters (``hits`` / ``misses`` / ``writes`` / ``corrupt``) are plain
    attributes mirrored to ``llm.cache.*`` obs counters; they are
    per-instance, while the *entries* are shared by every instance (and
    every process) pointed at the same directory.  The obs counters fire
    on the calling thread, so with a serving-tier trace active
    (:mod:`repro.obs.telemetry`) each request's wide event carries its
    own cache disposition (``hit`` / ``miss`` / ``bypass``), derived
    from these deltas.
    """

    def __init__(self, directory: str) -> None:
        """Create (if needed) and use ``directory`` for cache entries."""
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, system: str, prompt: str) -> Optional[str]:
        """The stored response, or None on miss/corruption.

        An unreadable, unparseable, or mismatched entry (stored
        ``system``/``prompt`` differ from the request) counts as corrupt
        and is refused — the caller falls through to the upstream, and a
        later successful completion overwrites the bad entry.
        """
        path = self._path(canonical_key(system, prompt))
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            obs.count("llm.cache.misses")
            return None
        except (OSError, ValueError):
            self.corrupt += 1
            self.misses += 1
            obs.count("llm.cache.corrupt")
            obs.count("llm.cache.misses")
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("system") != system
            or entry.get("prompt") != prompt
            or not isinstance(entry.get("response"), str)
        ):
            self.corrupt += 1
            self.misses += 1
            obs.count("llm.cache.corrupt")
            obs.count("llm.cache.misses")
            return None
        self.hits += 1
        obs.count("llm.cache.hits")
        return entry["response"]

    def put(self, system: str, prompt: str, response: str) -> None:
        """Store ``response`` atomically (temp file + ``os.replace``)."""
        path = self._path(canonical_key(system, prompt))
        entry = {
            "schema": CACHE_SCHEMA,
            "system": system,
            "prompt": prompt,
            "response": response,
        }
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True, ensure_ascii=False)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:  # pragma: no cover - already replaced/removed
                pass
            raise
        self.writes += 1
        obs.count("llm.cache.writes")

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        return sum(
            1
            for name in os.listdir(self.directory)
            if name.endswith(".json")
        )

    def stats(self) -> Dict[str, int]:
        """A snapshot of the per-instance counters plus the entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "entries": len(self),
        }


class CachedClient:
    """Durable memoization over a cache-safe :class:`LLMClient`.

    When the wrapped chain is *not* cache-safe (see
    :func:`cache_safe_of`) every call passes straight through and is
    counted on ``bypassed`` / ``llm.cache.bypass`` — the cache never
    stores, and never serves, an unverified-purity response.
    """

    def __init__(self, inner: LLMClient, cache: ResponseCache) -> None:
        """Wrap ``inner``; purity is resolved once, at construction."""
        self._inner = inner
        self.cache = cache
        self._pure = cache_safe_of(inner)
        #: Calls that skipped the cache because the chain is impure.
        self.bypassed = 0

    @property
    def cache_safe(self) -> bool:
        """Delegates to the wrapped chain (memoizing never adds impurity)."""
        return self._pure

    def complete(self, system: str, prompt: str) -> str:
        """Serve from the cache, or complete upstream and memoize.

        Nothing is written unless the upstream call returns: a deadline
        abort or backend error propagates with the cache untouched.
        """
        if not self._pure:
            self.bypassed += 1
            obs.count("llm.cache.bypass")
            return self._inner.complete(system, prompt)
        cached = self.cache.get(system, prompt)
        if cached is not None:
            return cached
        response = self._inner.complete(system, prompt)
        self.cache.put(system, prompt, response)
        return response

    def stats(self) -> Dict[str, int]:
        """Cache counters plus this wrapper's bypass count."""
        report = self.cache.stats()
        report["bypassed"] = self.bypassed
        return report


__all__ = [
    "CACHE_SCHEMA",
    "CachedClient",
    "ResponseCache",
    "cache_safe_of",
    "canonical_key",
]
