"""The provider-agnostic LLM interface."""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class LLMClient(Protocol):
    """Anything that can complete a (system, user) prompt pair.

    The pipeline only ever consumes the returned text — synthesised
    configuration is re-parsed and verified, never trusted — so any
    text-in/text-out model fits behind this interface, including real
    LLM API clients.
    """

    def complete(self, system: str, prompt: str) -> str:
        """Return the model's completion for the given prompts."""
        ...


__all__ = ["LLMClient"]
