"""The structured English intent grammar the simulated LLM understands.

The paper's users write intents in "simple English language" (§2.1).
The simulated LLM parses a practical fragment of that language with
rules; the result is a structured intent that both the synthesiser and
the spec extractor consume, guaranteeing — as the paper observed of
GPT-4 on its workload — that the two stay consistent.

Supported route-map phrasing (examples)::

    Write a route-map stanza that permits routes containing the prefix
    100.0.0.0/16 with mask length less than or equal to 23 and tagged
    with the community 300:3. Their MED value should be set to 55.

    Write a route-map stanza that denies routes originating from AS 32.

    Write a route-map stanza that permits routes with local-preference
    300.

Supported ACL phrasing::

    Add a rule that denies tcp traffic from 10.0.0.0/8 to host 2.2.2.2
    on destination port 22.
"""

from __future__ import annotations

import dataclasses
import re
from typing import List, Optional, Tuple

from repro.netaddr import Ipv4Address, Ipv4Prefix


class IntentParseError(ValueError):
    """Raised when an English intent cannot be understood."""


@dataclasses.dataclass(frozen=True)
class PrefixConstraint:
    """A prefix with an optional mask-length window."""

    prefix: Ipv4Prefix
    ge: Optional[int] = None
    le: Optional[int] = None

    def bounds(self) -> Tuple[int, int]:
        """The effective ``(lo, hi)`` mask-length window of the constraint."""
        if self.ge is None and self.le is None:
            return (self.prefix.length, self.prefix.length)
        lo = self.ge if self.ge is not None else self.prefix.length
        hi = self.le if self.le is not None else 32
        return (lo, hi)


@dataclasses.dataclass(frozen=True)
class RouteMapIntent:
    """A parsed route-map stanza intent."""

    action: str
    prefixes: Tuple[PrefixConstraint, ...] = ()
    communities: Tuple[str, ...] = ()
    as_path_regex: Optional[str] = None
    local_preference: Optional[int] = None
    metric: Optional[int] = None
    tag: Optional[int] = None
    set_metric: Optional[int] = None
    set_local_preference: Optional[int] = None
    set_communities: Tuple[str, ...] = ()
    set_community_additive: bool = True
    set_next_hop: Optional[str] = None
    set_prepend: Tuple[int, ...] = ()
    set_tag: Optional[int] = None
    set_weight: Optional[int] = None

    def name_hint(self) -> str:
        """A route-map name in the style of the paper's examples."""
        if self.set_metric is not None:
            return "SET_METRIC"
        if self.set_local_preference is not None:
            return "SET_LOCAL_PREF"
        if self.set_communities:
            return "SET_COMMUNITY"
        if self.set_prepend:
            return "PREPEND_AS"
        if self.as_path_regex is not None:
            return "MATCH_AS" if self.action == "permit" else "DENY_AS"
        if self.prefixes:
            return "MATCH_PREFIX" if self.action == "permit" else "DENY_PREFIX"
        return "NEW_STANZA"


@dataclasses.dataclass(frozen=True)
class AclIntent:
    """A parsed ACL rule intent."""

    action: str
    protocol: str = "ip"
    src: Optional[Ipv4Prefix] = None
    dst: Optional[Ipv4Prefix] = None
    src_port_lo: Optional[int] = None
    src_port_hi: Optional[int] = None
    dst_port_lo: Optional[int] = None
    dst_port_hi: Optional[int] = None
    established: bool = False


_PREFIX_RE = re.compile(r"(\d+\.\d+\.\d+\.\d+/\d+)")
_HOST_RE = re.compile(r"host (\d+\.\d+\.\d+\.\d+)")


def _find_action(text: str) -> str:
    lowered = text.lower()
    permit_idx = min(
        (
            lowered.find(w)
            for w in ("permit", "allow", "accept")
            if w in lowered
        ),
        default=-1,
    )
    deny_idx = min(
        (lowered.find(w) for w in ("denies", "deny", "block", "drop", "reject") if w in lowered),
        default=-1,
    )
    if permit_idx == -1 and deny_idx == -1:
        raise IntentParseError(
            "intent must say whether to permit/allow or deny/block"
        )
    if deny_idx == -1:
        return "permit"
    if permit_idx == -1:
        return "deny"
    return "permit" if permit_idx < deny_idx else "deny"


def _mask_window(segment: str, prefix: Ipv4Prefix) -> Tuple[Optional[int], Optional[int]]:
    """Mask-length qualifiers following a prefix mention."""
    lowered = segment.lower()
    match = re.search(
        r"mask length (?:of )?between (\d+) and (\d+)", lowered
    )
    if match:
        return int(match.group(1)), int(match.group(2))
    match = re.search(
        r"mask length (?:of )?(?:less than or equal to|at most|up to|no more than) (\d+)",
        lowered,
    )
    if match:
        return None, int(match.group(1))
    match = re.search(
        r"mask length (?:of )?(?:greater than or equal to|at least|no less than) (\d+)",
        lowered,
    )
    if match:
        return int(match.group(1)), None
    match = re.search(r"mask length (?:of )?exactly (\d+)", lowered)
    if match:
        exact = int(match.group(1))
        if exact != prefix.length:
            return exact, exact
        return None, None
    if re.search(r"or longer", lowered):
        return prefix.length, 32
    if re.search(
        r"and (?:all )?(?:its |their )?(?:more[- ]specific |sub)prefixes", lowered
    ):
        return None, 32
    return None, None


def parse_route_map_intent(text: str) -> RouteMapIntent:
    """Parse an English route-map intent; raises on unparseable text."""
    action = _find_action(text)
    lowered = text.lower()

    # ------------------------------------------------------------ matches
    prefixes: List[PrefixConstraint] = []
    for match in _PREFIX_RE.finditer(text):
        try:
            prefix = Ipv4Prefix.parse(match.group(1))
        except ValueError as exc:
            raise IntentParseError(str(exc)) from None
        # Ignore prefixes that belong to a "next hop" clause.
        preceding = lowered[max(0, match.start() - 40) : match.start()]
        if "next hop" in preceding or "next-hop" in preceding:
            continue
        trailing = text[match.end() : match.end() + 80]
        ge, le = _mask_window(trailing, prefix)
        prefixes.append(PrefixConstraint(prefix, ge=ge, le=le))

    communities: List[str] = []
    for match in re.finditer(
        r"(?:tagged with|carrying|with|having) (?:the )?communit(?:y|ies) ([\d:]+(?:(?:,| and) [\d:]+)*)",
        lowered,
    ):
        for token in re.findall(r"\d+:\d+", match.group(1)):
            communities.append(token)

    as_path_regex: Optional[str] = None
    match = re.search(r"originating from as\s?(\d+)", lowered)
    if match:
        as_path_regex = f"_{match.group(1)}$"
    match = re.search(r"passing through as\s?(\d+)", lowered)
    if match:
        as_path_regex = f"_{match.group(1)}_"
    match = re.search(r"received from as\s?(\d+)|learned from as\s?(\d+)", lowered)
    if match:
        asn = match.group(1) or match.group(2)
        as_path_regex = f"^{asn}_"
    match = re.search(r"as-path matching /([^/]+)/", text)
    if match:
        as_path_regex = match.group(1)
    if re.search(r"with (?:an )?empty as-path", lowered):
        as_path_regex = "^$"

    local_preference: Optional[int] = None
    match = re.search(
        r"with (?:a )?local[- ]preference (?:of )?(\d+)", lowered
    )
    if match:
        local_preference = int(match.group(1))

    metric: Optional[int] = None
    match = re.search(r"with (?:a )?(?:metric|med) (?:of )?(\d+)", lowered)
    if match:
        metric = int(match.group(1))

    tag: Optional[int] = None
    match = re.search(r"with (?:a )?tag (?:of )?(\d+)", lowered)
    if match:
        tag = int(match.group(1))

    # --------------------------------------------------------------- sets
    set_metric = _set_value(lowered, r"(?:med|metric)")
    set_local_preference = _set_value(lowered, r"local[- ]preference")
    set_tag = _set_value(lowered, r"tag")
    set_weight = _set_value(lowered, r"weight")

    set_communities: List[str] = []
    additive = True
    match = re.search(
        r"(?:adding|add|attach(?:ing)?) (?:the )?communit(?:y|ies) ([\d:]+(?:(?:,| and) [\d:]+)*)",
        lowered,
    )
    if match:
        set_communities = re.findall(r"\d+:\d+", match.group(1))
    match = re.search(
        r"replac(?:e|ing) (?:the |their )?communit(?:y|ies) with ([\d:]+(?:(?:,| and) [\d:]+)*)",
        lowered,
    )
    if match:
        set_communities = re.findall(r"\d+:\d+", match.group(1))
        additive = False

    set_next_hop: Optional[str] = None
    match = re.search(
        r"next[- ]hop (?:should be |is )?(?:set )?to (\d+\.\d+\.\d+\.\d+)", lowered
    )
    if match:
        set_next_hop = match.group(1)

    set_prepend: Tuple[int, ...] = ()
    match = re.search(
        r"prepend(?:ing)? as\s?(\d+)(?: (\w+) times)?", lowered
    )
    if match:
        count = _word_number(match.group(2)) if match.group(2) else 1
        set_prepend = (int(match.group(1)),) * count

    intent = RouteMapIntent(
        action=action,
        prefixes=tuple(prefixes),
        communities=tuple(communities),
        as_path_regex=as_path_regex,
        local_preference=local_preference,
        metric=metric,
        tag=tag,
        set_metric=set_metric,
        set_local_preference=set_local_preference,
        set_communities=tuple(set_communities),
        set_community_additive=additive,
        set_next_hop=set_next_hop,
        set_prepend=set_prepend,
        set_tag=set_tag,
        set_weight=set_weight,
    )
    if not _has_any_content(intent):
        raise IntentParseError(
            "intent constrains nothing: no prefix, community, as-path, "
            "local-preference, or set action found"
        )
    return intent


def _set_value(lowered: str, noun: str) -> Optional[int]:
    patterns = [
        noun + r"(?: value)? (?:should be |is )?set to (\d+)",
        r"set(?:ting)? (?:the |their )?" + noun + r"(?: value)? to (\d+)",
    ]
    for pattern in patterns:
        match = re.search(pattern, lowered)
        if match:
            return int(match.group(1))
    return None


_WORD_NUMBERS = {
    "one": 1,
    "once": 1,
    "two": 2,
    "twice": 2,
    "three": 3,
    "thrice": 3,
    "four": 4,
    "five": 5,
}


def _word_number(word: str) -> int:
    word = word.lower()
    if word.isdigit():
        return int(word)
    if word in _WORD_NUMBERS:
        return _WORD_NUMBERS[word]
    raise IntentParseError(f"cannot read {word!r} as a count")


def _has_any_content(intent: RouteMapIntent) -> bool:
    return bool(
        intent.prefixes
        or intent.communities
        or intent.as_path_regex
        or intent.local_preference is not None
        or intent.metric is not None
        or intent.tag is not None
        or intent.set_metric is not None
        or intent.set_local_preference is not None
        or intent.set_communities
        or intent.set_next_hop
        or intent.set_prepend
        or intent.set_tag is not None
        or intent.set_weight is not None
    )


# ----------------------------------------------------------------- ACLs

_PROTOCOLS = ("tcp", "udp", "icmp", "gre", "ospf", "esp", "igmp")


def parse_acl_intent(text: str) -> AclIntent:
    """Parse an English ACL rule intent; raises on unparseable text."""
    action = _find_action(text)
    lowered = text.lower()

    protocol = "ip"
    for name in _PROTOCOLS:
        if re.search(rf"\b{name}\b", lowered):
            protocol = name
            break

    src = _endpoint(text, lowered, "from")
    dst = _endpoint(text, lowered, "to")

    src_lo = src_hi = dst_lo = dst_hi = None
    for match in re.finditer(
        r"on (source |destination )?ports? (\d+)(?:\s*(?:-|to|through)\s*(\d+))?",
        lowered,
    ):
        which = (match.group(1) or "destination ").strip()
        lo = int(match.group(2))
        hi = int(match.group(3)) if match.group(3) else lo
        if which == "source":
            src_lo, src_hi = lo, hi
        else:
            dst_lo, dst_hi = lo, hi
    match = re.search(r"from port (\d+)(?:\s*(?:-|to|through)\s*(\d+))?", lowered)
    if match:
        src_lo = int(match.group(1))
        src_hi = int(match.group(2)) if match.group(2) else src_lo

    established = bool(re.search(r"established", lowered))
    return AclIntent(
        action=action,
        protocol=protocol,
        src=src,
        dst=dst,
        src_port_lo=src_lo,
        src_port_hi=src_hi,
        dst_port_lo=dst_lo,
        dst_port_hi=dst_hi,
        established=established,
    )


def _endpoint(text: str, lowered: str, word: str) -> Optional[Ipv4Prefix]:
    match = re.search(
        rf"\b{word} (any(?:where)?|host \d+\.\d+\.\d+\.\d+|\d+\.\d+\.\d+\.\d+(?:/\d+)?)",
        lowered,
    )
    if match is None:
        return None
    token = match.group(1)
    if token.startswith("any"):
        return None
    try:
        if token.startswith("host "):
            return Ipv4Prefix.host(Ipv4Address.parse(token[len("host "):]))
        if "/" in token:
            return Ipv4Prefix.parse(token)
        return Ipv4Prefix.host(Ipv4Address.parse(token))
    except ValueError as exc:
        raise IntentParseError(str(exc)) from None


__all__ = [
    "AclIntent",
    "IntentParseError",
    "PrefixConstraint",
    "RouteMapIntent",
    "parse_acl_intent",
    "parse_route_map_intent",
]
