"""LLM-augmentation strategies (the paper's §7 question).

"Third, we have only used one form of LLM augmentation (few-shot
examples).  Can chain-of-thought, retrieval-augmented generation, graph
RAG or agentic AI do better?"  This module implements two augmentation
strategies that compose with any :class:`~repro.llm.client.LLMClient`:

* :class:`ExampleRetriever` — retrieval-augmented few-shot selection:
  instead of a fixed example block, the k most relevant examples from a
  library are selected per query by token-overlap similarity and spliced
  into the system prompt.  (The simulated LLM is insensitive to the
  examples, but the component is exercised and tested so a real LLM can
  use it directly.)
* :class:`MajorityVoteLLM` — self-consistency: sample the model several
  times and return the most common completion.  Under independent
  transient faults with rate p < 0.5 this recovers the clean completion
  with high probability, reducing retry-loop pressure — measured by
  ``benchmarks/test_bench_llm_strategies.py``.
"""

from __future__ import annotations

import dataclasses
import re
from collections import Counter
from typing import List, Sequence, Tuple

from repro.llm.client import LLMClient
from repro.llm.prompts import FewShotExample, PromptTemplate

_TOKEN = re.compile(r"[a-z0-9.:/]+")


def _tokens(text: str) -> frozenset:
    return frozenset(_TOKEN.findall(text.lower()))


def _similarity(a: frozenset, b: frozenset) -> float:
    """Jaccard similarity over lowercase tokens."""
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


@dataclasses.dataclass(frozen=True)
class ExampleRetriever:
    """Selects the most relevant few-shot examples for a query."""

    library: Tuple[FewShotExample, ...]
    k: int = 2

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")

    def select(self, prompt: str) -> List[FewShotExample]:
        """The top-k examples by token-overlap similarity, most similar
        first; ties broken by library order for determinism."""
        query = _tokens(prompt)
        scored = [
            (_similarity(query, _tokens(example.prompt)), idx, example)
            for idx, example in enumerate(self.library)
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [example for _score, _idx, example in scored[: self.k]]

    def augment(self, template: PromptTemplate, prompt: str) -> PromptTemplate:
        """A copy of ``template`` carrying the retrieved examples."""
        return PromptTemplate(
            kind=template.kind,
            system=template.system,
            examples=tuple(self.select(prompt)),
        )


class MajorityVoteLLM:
    """Self-consistency wrapper: sample ``k`` completions, return the mode.

    Ties are broken toward the earliest completion, keeping the wrapper
    deterministic given a deterministic (or seeded) inner client.
    """

    def __init__(self, inner: LLMClient, k: int = 3) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self._inner = inner
        self._k = k
        #: Total inner-model calls made (for cost accounting in benches).
        self.inner_calls = 0

    def complete(self, system: str, prompt: str) -> str:
        """Sample ``k`` completions and return the most common one."""
        completions = []
        for _ in range(self._k):
            completions.append(self._inner.complete(system, prompt))
            self.inner_calls += 1
        counts = Counter(completions)
        best_count = max(counts.values())
        for completion in completions:
            if counts[completion] == best_count:
                return completion
        raise AssertionError("unreachable")  # pragma: no cover


def build_library(templates: Sequence[PromptTemplate]) -> Tuple[FewShotExample, ...]:
    """Pool the few-shot examples of several templates into one library."""
    pooled: List[FewShotExample] = []
    for template in templates:
        pooled.extend(template.examples)
    return tuple(pooled)


__all__ = [
    "ExampleRetriever",
    "MajorityVoteLLM",
    "build_library",
]
