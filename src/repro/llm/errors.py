"""The typed error taxonomy for real LLM backends.

Remote backends fail in two fundamentally different ways, and the
retry/fallback machinery must tell them apart:

* a :class:`RetryableBackendError` is *transient* — rate limiting (HTTP
  429), request timeouts (408), server-side failures (5xx), connection
  resets.  :class:`~repro.llm.remote.RemoteLLMClient` retries these with
  exponential backoff until its
  :class:`~repro.llm.remote.RetryPolicy` is exhausted, at which point the
  last error surfaces and the
  :class:`~repro.llm.router.BackendRouter` may fall through to the next
  backend in its chain;
* a :class:`TerminalBackendError` is *permanent* — authentication
  failures, malformed requests, unparseable responses.  Retrying cannot
  help, so the client raises immediately and the router falls through to
  the next backend at once.

Both derive from :class:`BackendError` (itself a
:class:`~repro.core.errors.ClarifyError`), so the serving layer's
existing outcome taxonomy absorbs a fully failed backend chain as an
``error`` outcome, never an ``internal-error``.

Deadline expiry is deliberately *not* part of this taxonomy: a spent
:class:`~repro.core.budget.TimeBudget` raises
:class:`~repro.core.errors.DeadlineExceeded`, which neither the retry
loop nor the router catches — the request is out of time on every
backend.
"""

from __future__ import annotations

from repro.core.errors import ClarifyError

#: HTTP statuses the client treats as transient.
RETRYABLE_STATUSES = frozenset({408, 429, 500, 502, 503, 504, 529})


class BackendError(ClarifyError):
    """A real LLM backend failed to produce a completion.

    ``backend`` names the backend for router statistics and error
    messages; ``status`` carries the HTTP status when one exists.
    """

    def __init__(
        self, message: str, backend: str = "", status: int = 0
    ) -> None:
        """Record the failing ``backend`` and HTTP ``status`` (0 = none)."""
        detail = f"[{backend}] {message}" if backend else message
        super().__init__(detail)
        self.backend = backend
        self.status = status


class RetryableBackendError(BackendError):
    """A transient backend failure: retry with backoff, then fall back."""


class TerminalBackendError(BackendError):
    """A permanent backend failure: do not retry, fall back immediately."""


def error_for_status(
    status: int, message: str, backend: str = ""
) -> BackendError:
    """Classify an HTTP error status into the retryable/terminal taxonomy."""
    cls = (
        RetryableBackendError
        if status in RETRYABLE_STATUSES
        else TerminalBackendError
    )
    return cls(message, backend=backend, status=status)


__all__ = [
    "BackendError",
    "RETRYABLE_STATUSES",
    "RetryableBackendError",
    "TerminalBackendError",
    "error_for_status",
]
