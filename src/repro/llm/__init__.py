"""The LLM substrate.

The paper uses GPT-4 for three tasks: classifying a user query as ACL or
route-map synthesis, translating the English intent into one Cisco IOS
stanza, and extracting a JSON specification from the intent.  This
package provides the full client hierarchy (see
``docs/LLM_BACKENDS.md``), from deterministic simulation to real HTTP
backends:

* :class:`~repro.llm.client.LLMClient` — the provider-agnostic interface
  (swap in a real API client by implementing ``complete``);
* :mod:`~repro.llm.prompts` — the system prompts and few-shot example
  database the paper retrieves per query type (Fig. 1, step 2);
* :class:`~repro.llm.simulated.SimulatedLLM` — a deterministic rule-based
  stand-in for GPT-4 (see DESIGN.md, substitution table);
* :class:`~repro.llm.faulty.FaultyLLM` — a fault-injection wrapper used to
  exercise the verification/retry loop;
* :class:`~repro.llm.transcript.TranscribingClient` — call logging and the
  per-task statistics behind Figure 4's "#LLM calls" column;
* :class:`~repro.llm.dedup.DedupClient` — thread-safe deduplication of
  identical in-flight requests (one upstream call, fanned-out response),
  used by the :mod:`repro.serve` layer to serve concurrent sessions;
* :class:`~repro.llm.respcache.CachedClient` — a durable on-disk response
  cache keyed by canonical prompt hash, memoizing only verified-pure
  responses (never :class:`~repro.llm.faulty.FaultyLLM` output);
* :class:`~repro.llm.remote.RemoteLLMClient` — a real HTTP backend
  (anthropic-style messages API) with bounded deterministic retry,
  deadline-capped attempt timeouts, and an injectable transport so CI
  stays hermetic;
* :class:`~repro.llm.router.BackendRouter` — ordered fallback chains
  (``remote → simulated``) with per-backend health/latency counters, and
  :func:`~repro.llm.router.build_backend` to construct a stack from a
  ``--backend`` spec string;
* :class:`~repro.llm.batching.BatchingClient` — optional micro-batching
  of concurrent distinct prompts behind a flush window;
* :mod:`~repro.llm.errors` — the retryable/terminal backend error
  taxonomy the retry loop and router dispatch on.
"""

from repro.llm.batching import BatchingClient
from repro.llm.client import LLMClient
from repro.llm.dedup import DedupClient
from repro.llm.errors import (
    BackendError,
    RetryableBackendError,
    TerminalBackendError,
)
from repro.llm.faulty import FaultyLLM
from repro.llm.intents import (
    AclIntent,
    IntentParseError,
    RouteMapIntent,
    parse_acl_intent,
    parse_route_map_intent,
)
from repro.llm.prompts import PromptDatabase, TaskKind
from repro.llm.remote import RemoteLLMClient, RetryPolicy
from repro.llm.respcache import CachedClient, ResponseCache, cache_safe_of
from repro.llm.router import BackendRouter, build_backend
from repro.llm.simulated import SimulatedLLM
from repro.llm.transcript import (
    CallRecord,
    DEFAULT_MAX_RECORDS,
    TranscribingClient,
)

__all__ = [
    "AclIntent",
    "BackendError",
    "BackendRouter",
    "BatchingClient",
    "CachedClient",
    "CallRecord",
    "DEFAULT_MAX_RECORDS",
    "DedupClient",
    "FaultyLLM",
    "IntentParseError",
    "LLMClient",
    "PromptDatabase",
    "RemoteLLMClient",
    "ResponseCache",
    "RetryPolicy",
    "RetryableBackendError",
    "RouteMapIntent",
    "SimulatedLLM",
    "TaskKind",
    "TerminalBackendError",
    "TranscribingClient",
    "build_backend",
    "cache_safe_of",
    "parse_acl_intent",
    "parse_route_map_intent",
]
