"""The LLM substrate.

The paper uses GPT-4 for three tasks: classifying a user query as ACL or
route-map synthesis, translating the English intent into one Cisco IOS
stanza, and extracting a JSON specification from the intent.  This
package provides:

* :class:`~repro.llm.client.LLMClient` — the provider-agnostic interface
  (swap in a real API client by implementing ``complete``);
* :mod:`~repro.llm.prompts` — the system prompts and few-shot example
  database the paper retrieves per query type (Fig. 1, step 2);
* :class:`~repro.llm.simulated.SimulatedLLM` — a deterministic rule-based
  stand-in for GPT-4 (see DESIGN.md, substitution table);
* :class:`~repro.llm.faulty.FaultyLLM` — a fault-injection wrapper used to
  exercise the verification/retry loop;
* :class:`~repro.llm.transcript.TranscribingClient` — call logging and the
  per-task statistics behind Figure 4's "#LLM calls" column;
* :class:`~repro.llm.dedup.DedupClient` — thread-safe deduplication of
  identical in-flight requests (one upstream call, fanned-out response),
  used by the :mod:`repro.serve` layer to serve concurrent sessions.
"""

from repro.llm.client import LLMClient
from repro.llm.dedup import DedupClient
from repro.llm.faulty import FaultyLLM
from repro.llm.intents import (
    AclIntent,
    IntentParseError,
    RouteMapIntent,
    parse_acl_intent,
    parse_route_map_intent,
)
from repro.llm.prompts import PromptDatabase, TaskKind
from repro.llm.simulated import SimulatedLLM
from repro.llm.transcript import (
    CallRecord,
    DEFAULT_MAX_RECORDS,
    TranscribingClient,
)

__all__ = [
    "AclIntent",
    "CallRecord",
    "DEFAULT_MAX_RECORDS",
    "DedupClient",
    "FaultyLLM",
    "IntentParseError",
    "LLMClient",
    "PromptDatabase",
    "RouteMapIntent",
    "SimulatedLLM",
    "TaskKind",
    "TranscribingClient",
    "parse_acl_intent",
    "parse_route_map_intent",
]
