"""A real HTTP LLM backend (anthropic-style messages API).

:class:`RemoteLLMClient` implements :class:`~repro.llm.client.LLMClient`
against an HTTP completion endpoint shaped like the Anthropic messages
API: one POST per completion carrying the system prompt and a single
user message, answered with a list of content blocks whose text is the
completion.  Three properties make it safe to sit behind the serving
layer:

* **bounded retry with deterministic backoff** — transient failures
  (:class:`~repro.llm.errors.RetryableBackendError`: HTTP 429/408/5xx,
  connection errors) are retried per :class:`RetryPolicy`, an
  exponential schedule with *no jitter* so tests can assert the exact
  delays; terminal failures raise immediately;
* **deadline-aware attempts** — every attempt's socket timeout is capped
  by the ambient :class:`~repro.core.budget.TimeBudget`
  (:func:`repro.core.budget.remaining_time`), and the retry loop checks
  the budget before every attempt and every backoff sleep, raising
  :class:`~repro.core.errors.DeadlineExceeded` instead of sleeping past
  the deadline;
* **injectable transport** — all I/O goes through a :class:`Transport`
  (default :class:`UrllibTransport`, stdlib-only), so CI substitutes a
  scripted fake and stays fully hermetic: no test or CI job ever opens a
  network connection.

Configuration resolves from arguments first, then environment
variables: ``CLARIFY_LLM_API_KEY`` (falling back to
``ANTHROPIC_API_KEY``), ``CLARIFY_LLM_BASE_URL``, and
``CLARIFY_LLM_MODEL``.  See ``docs/LLM_BACKENDS.md``.

Observability: ``llm.remote.attempts`` / ``llm.remote.retries`` /
``llm.remote.errors`` counters and an ``llm.remote.latency`` histogram
via :mod:`repro.obs` (no-ops unless a recorder is active).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import urllib.error
import urllib.request
from typing import Callable, List, Optional, Protocol, Sequence, Tuple

from repro import obs
from repro.core.budget import check_budget, remaining_time
from repro.llm.errors import (
    RetryableBackendError,
    TerminalBackendError,
    error_for_status,
)
from repro.obs.telemetry import current_trace

#: Request header carrying the serving-tier trace id, when one is
#: active — lets upstream/proxy logs correlate back to a wide event.
TRACE_HEADER = "x-clarify-trace-id"

#: Environment variable holding the API key (preferred name).
ENV_API_KEY = "CLARIFY_LLM_API_KEY"
#: Fallback environment variable for the API key (anthropic convention).
ENV_API_KEY_FALLBACK = "ANTHROPIC_API_KEY"
#: Environment variable overriding the endpoint base URL.
ENV_BASE_URL = "CLARIFY_LLM_BASE_URL"
#: Environment variable overriding the model identifier.
ENV_MODEL = "CLARIFY_LLM_MODEL"

DEFAULT_BASE_URL = "https://api.anthropic.com"
DEFAULT_MODEL = "claude-sonnet-4-5"
DEFAULT_MAX_TOKENS = 1024
DEFAULT_ATTEMPT_TIMEOUT_S = 30.0
API_VERSION = "2023-06-01"


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """A deterministic exponential-backoff schedule.

    ``delays()`` is a pure function of the policy — no jitter — so the
    schedule is testable to the millisecond and identical across runs:
    with the defaults the sleeps between attempts are 0.2s, 0.4s, 0.8s.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.2
    multiplier: float = 2.0
    max_delay_s: float = 5.0

    def __post_init__(self) -> None:
        """Validate the schedule parameters."""
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")

    def delays(self) -> Tuple[float, ...]:
        """The backoff sleeps between attempts (``max_attempts - 1`` of them)."""
        return tuple(
            min(self.base_delay_s * self.multiplier**i, self.max_delay_s)
            for i in range(self.max_attempts - 1)
        )


@dataclasses.dataclass(frozen=True)
class TransportReply:
    """One HTTP response: status code and raw body bytes."""

    status: int
    body: bytes


class Transport(Protocol):
    """Anything that can POST a JSON body and return the raw reply.

    Implementations must raise
    :class:`~repro.llm.errors.RetryableBackendError` for connection-level
    failures (refused, reset, DNS, socket timeout) and return a
    :class:`TransportReply` for any HTTP response, error statuses
    included — status classification is the client's job.
    """

    def post(
        self,
        url: str,
        headers: Sequence[Tuple[str, str]],
        body: bytes,
        timeout_s: float,
    ) -> TransportReply:
        """POST ``body`` to ``url`` and return the reply."""
        ...


class UrllibTransport:
    """The default stdlib transport (``urllib.request``), no dependencies."""

    def post(
        self,
        url: str,
        headers: Sequence[Tuple[str, str]],
        body: bytes,
        timeout_s: float,
    ) -> TransportReply:
        """POST ``body`` to ``url``; connection failures become retryable."""
        request = urllib.request.Request(url, data=body, method="POST")
        for name, value in headers:
            request.add_header(name, value)
        try:
            with urllib.request.urlopen(request, timeout=timeout_s) as reply:
                return TransportReply(
                    status=reply.status, body=reply.read()
                )
        except urllib.error.HTTPError as exc:
            return TransportReply(status=exc.code, body=exc.read())
        except (urllib.error.URLError, OSError) as exc:
            raise RetryableBackendError(
                f"connection failed: {exc}", backend="remote"
            ) from exc


class RemoteLLMClient:
    """An :class:`~repro.llm.client.LLMClient` over a real HTTP backend.

    Responses are genuine upstream completions — cacheable by the
    durable response cache (``cache_safe`` is true): replaying a stored
    completion is indistinguishable from the upstream returning the same
    text again, and everything the model produces is re-parsed and
    verified downstream anyway.
    """

    #: Durable caching replays a genuine upstream response; always safe.
    cache_safe = True

    def __init__(
        self,
        model: Optional[str] = None,
        api_key: Optional[str] = None,
        base_url: Optional[str] = None,
        transport: Optional[Transport] = None,
        retry: Optional[RetryPolicy] = None,
        attempt_timeout_s: float = DEFAULT_ATTEMPT_TIMEOUT_S,
        max_tokens: int = DEFAULT_MAX_TOKENS,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        """Resolve configuration from arguments, then the environment.

        Raises :class:`~repro.llm.errors.TerminalBackendError` when no
        API key is given and neither ``CLARIFY_LLM_API_KEY`` nor
        ``ANTHROPIC_API_KEY`` is set — failing at construction keeps a
        misconfigured backend out of a router chain entirely.
        """
        key = (
            api_key
            or os.environ.get(ENV_API_KEY)
            or os.environ.get(ENV_API_KEY_FALLBACK)
        )
        if not key:
            raise TerminalBackendError(
                f"no API key: pass api_key= or set {ENV_API_KEY} "
                f"(or {ENV_API_KEY_FALLBACK})",
                backend="remote",
            )
        if attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be positive")
        self.model = model or os.environ.get(ENV_MODEL) or DEFAULT_MODEL
        self.base_url = (
            base_url or os.environ.get(ENV_BASE_URL) or DEFAULT_BASE_URL
        ).rstrip("/")
        self.retry = retry if retry is not None else RetryPolicy()
        self.attempt_timeout_s = attempt_timeout_s
        self.max_tokens = max_tokens
        self._api_key = key
        self._transport: Transport = (
            transport if transport is not None else UrllibTransport()
        )
        self._sleep = sleep
        #: HTTP round trips attempted (monotonic).
        self.attempts = 0
        #: Attempts that failed with a retryable error (monotonic).
        self.retries = 0

    # ------------------------------------------------------------- request

    def _request_body(self, system: str, prompt: str) -> bytes:
        payload = {
            "model": self.model,
            "max_tokens": self.max_tokens,
            "system": system,
            "messages": [{"role": "user", "content": prompt}],
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    def _headers(self) -> List[Tuple[str, str]]:
        headers = [
            ("content-type", "application/json"),
            ("x-api-key", self._api_key),
            ("anthropic-version", API_VERSION),
        ]
        trace = current_trace()
        if trace is not None:
            headers.append((TRACE_HEADER, trace.trace_id))
        return headers

    def _parse(self, body: bytes) -> str:
        try:
            data = json.loads(body.decode("utf-8"))
            blocks = data["content"]
            texts = [
                block["text"] for block in blocks if block.get("type") == "text"
            ]
        except (ValueError, KeyError, TypeError) as exc:
            raise TerminalBackendError(
                f"unparseable response: {exc}", backend="remote"
            ) from exc
        if not texts:
            raise TerminalBackendError(
                "response contains no text blocks", backend="remote"
            )
        return "".join(texts)

    def _attempt_timeout(self) -> float:
        """This attempt's socket timeout, capped by the ambient budget."""
        remaining = remaining_time()
        if remaining is None:
            return self.attempt_timeout_s
        return max(0.001, min(self.attempt_timeout_s, remaining))

    def _attempt(self, url: str, body: bytes) -> str:
        self.attempts += 1
        obs.count("llm.remote.attempts")
        t0 = time.perf_counter()
        reply = self._transport.post(
            url, self._headers(), body, self._attempt_timeout()
        )
        obs.observe("llm.remote.latency", time.perf_counter() - t0)
        if reply.status == 200:
            return self._parse(reply.body)
        detail = reply.body.decode("utf-8", errors="replace")[:200]
        raise error_for_status(
            reply.status,
            f"HTTP {reply.status}: {detail}",
            backend="remote",
        )

    def complete(self, system: str, prompt: str) -> str:
        """Complete one prompt pair, retrying transient failures.

        Raises :class:`~repro.llm.errors.RetryableBackendError` when the
        retry budget is exhausted,
        :class:`~repro.llm.errors.TerminalBackendError` on a permanent
        failure, and :class:`~repro.core.errors.DeadlineExceeded` when
        the ambient time budget expires between attempts.
        """
        url = f"{self.base_url}/v1/messages"
        body = self._request_body(system, prompt)
        delays = self.retry.delays()
        last_error: Optional[RetryableBackendError] = None
        for attempt in range(self.retry.max_attempts):
            check_budget("llm.remote")
            try:
                return self._attempt(url, body)
            except RetryableBackendError as exc:
                last_error = exc
                obs.count("llm.remote.errors")
                if attempt < len(delays):
                    self.retries += 1
                    obs.count("llm.remote.retries")
                    check_budget("llm.remote.backoff")
                    self._sleep(delays[attempt])
            except TerminalBackendError:
                obs.count("llm.remote.errors")
                raise
        assert last_error is not None  # max_attempts >= 1
        raise last_error


__all__ = [
    "API_VERSION",
    "DEFAULT_ATTEMPT_TIMEOUT_S",
    "DEFAULT_BASE_URL",
    "DEFAULT_MAX_TOKENS",
    "DEFAULT_MODEL",
    "ENV_API_KEY",
    "ENV_API_KEY_FALLBACK",
    "ENV_BASE_URL",
    "ENV_MODEL",
    "RemoteLLMClient",
    "RetryPolicy",
    "TRACE_HEADER",
    "Transport",
    "TransportReply",
    "UrllibTransport",
]
