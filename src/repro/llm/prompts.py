"""The system-prompt and few-shot example database (Fig. 1, step 2).

The paper stores, per query type, a task description and few-shot
examples that are retrieved after classification and prepended to the
LLM call.  The examples below are modelled on the paper's §2.1 prompt
and output pair.  Each system prompt carries a machine-readable task
marker (``TASK: ...``) that the simulated LLM dispatches on; a real LLM
simply reads the same text as instructions.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Tuple


class TaskKind(enum.Enum):
    """The LLM tasks of the Clarify pipeline."""

    CLASSIFY = "classify"
    ROUTE_MAP_SYNTH = "route-map-synth"
    ACL_SYNTH = "acl-synth"
    ROUTE_MAP_SPEC = "route-map-spec"
    ACL_SPEC = "acl-spec"


@dataclasses.dataclass(frozen=True)
class FewShotExample:
    """One (user prompt, ideal completion) pair."""

    prompt: str
    completion: str


@dataclasses.dataclass(frozen=True)
class PromptTemplate:
    """A system prompt plus its few-shot examples."""

    kind: TaskKind
    system: str
    examples: Tuple[FewShotExample, ...]

    def render_system(self) -> str:
        """The full system prompt: marker, instructions, few-shot block."""
        parts = [f"TASK: {self.kind.value}", self.system.strip()]
        for idx, example in enumerate(self.examples, start=1):
            parts.append(
                f"EXAMPLE {idx} PROMPT:\n{example.prompt.strip()}\n"
                f"EXAMPLE {idx} OUTPUT:\n{example.completion.strip()}"
            )
        return "\n\n".join(parts)


_CLASSIFY = PromptTemplate(
    kind=TaskKind.CLASSIFY,
    system=(
        "You are a network-configuration assistant. Classify the user's "
        "request as either a route-map synthesis query or an ACL synthesis "
        "query. Answer with exactly one word: 'route-map' or 'acl'."
    ),
    examples=(
        FewShotExample(
            prompt=(
                "Write a route-map stanza that permits routes containing "
                "the prefix 100.0.0.0/16 with mask length less than or "
                "equal to 23 and tagged with the community 300:3. Their "
                "MED value should be set to 55."
            ),
            completion="route-map",
        ),
        FewShotExample(
            prompt=(
                "Add a rule that denies tcp traffic from 10.0.0.0/8 to "
                "host 2.2.2.2 on destination port 22."
            ),
            completion="acl",
        ),
    ),
)

_ROUTE_MAP_SYNTH = PromptTemplate(
    kind=TaskKind.ROUTE_MAP_SYNTH,
    system=(
        "Generate exactly one route-map stanza in Cisco IOS syntax for the "
        "user's intent, together with any prefix-lists, community-lists, "
        "or as-path access-lists the stanza references. Do not reference "
        "or modify any existing configuration; synthesise the stanza in "
        "isolation under a fresh route-map name."
    ),
    examples=(
        FewShotExample(
            prompt=(
                "Write a route-map stanza that permits routes containing "
                "the prefix 100.0.0.0/16 with mask length less than or "
                "equal to 23 and tagged with the community 300:3. Their "
                "MED value should be set to 55."
            ),
            completion=(
                "ip community-list expanded COM_LIST permit _300:3_\n"
                "ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23\n"
                "route-map SET_METRIC permit 10\n"
                " match community COM_LIST\n"
                " match ip address prefix-list PREFIX_100\n"
                " set metric 55"
            ),
        ),
        FewShotExample(
            prompt=(
                "Write a route-map stanza that denies routes originating "
                "from AS 65001."
            ),
            completion=(
                "ip as-path access-list AS_LIST permit _65001$\n"
                "route-map DENY_AS deny 10\n"
                " match as-path AS_LIST"
            ),
        ),
    ),
)

_ACL_SYNTH = PromptTemplate(
    kind=TaskKind.ACL_SYNTH,
    system=(
        "Generate exactly one extended access-list rule in Cisco IOS "
        "syntax for the user's intent, wrapped in a fresh ACL name. Do "
        "not reference any existing configuration."
    ),
    examples=(
        FewShotExample(
            prompt=(
                "Add a rule that denies tcp traffic from 10.0.0.0/8 to "
                "host 2.2.2.2 on destination port 22."
            ),
            completion=(
                "ip access-list extended NEW_RULE\n"
                " 10 deny tcp 10.0.0.0 0.255.255.255 host 2.2.2.2 eq 22"
            ),
        ),
    ),
)

_ROUTE_MAP_SPEC = PromptTemplate(
    kind=TaskKind.ROUTE_MAP_SPEC,
    system=(
        "Produce a JSON specification of the user's route-map intent. Use "
        'the keys "permit" (boolean), "prefix" (a list of '
        '"P/len:lo-hi" strings), "community" (a "/regex/" string), '
        '"as_path" (a "/regex/" string), "local_preference" (integer), '
        'and "set" (an object of attribute assignments). Include only the '
        "keys the intent constrains."
    ),
    examples=(
        FewShotExample(
            prompt=(
                "Write a route-map stanza that permits routes containing "
                "the prefix 100.0.0.0/16 with mask length less than or "
                "equal to 23 and tagged with the community 300:3. Their "
                "MED value should be set to 55."
            ),
            completion=(
                '{"permit": true, "prefix": ["100.0.0.0/16:16-23"], '
                '"community": "/_300:3_/", "set": {"metric": 55}}'
            ),
        ),
    ),
)

_ACL_SPEC = PromptTemplate(
    kind=TaskKind.ACL_SPEC,
    system=(
        "Produce a JSON specification of the user's ACL intent. Use the "
        'keys "permit" (boolean), "protocol", "src", "dst" (prefix '
        'strings or "any"), "src_ports", "dst_ports" (lists of '
        '"lo-hi" strings), and "established" (boolean). Include only '
        "the keys the intent constrains."
    ),
    examples=(
        FewShotExample(
            prompt=(
                "Add a rule that denies tcp traffic from 10.0.0.0/8 to "
                "host 2.2.2.2 on destination port 22."
            ),
            completion=(
                '{"permit": false, "protocol": "tcp", "src": "10.0.0.0/8", '
                '"dst": "2.2.2.2/32", "dst_ports": ["22-22"]}'
            ),
        ),
    ),
)


class PromptDatabase:
    """Retrieval of system prompts and examples by task (Fig. 1, step 2)."""

    def __init__(self) -> None:
        self._templates: Dict[TaskKind, PromptTemplate] = {
            t.kind: t
            for t in (
                _CLASSIFY,
                _ROUTE_MAP_SYNTH,
                _ACL_SYNTH,
                _ROUTE_MAP_SPEC,
                _ACL_SPEC,
            )
        }

    def template(self, kind: TaskKind) -> PromptTemplate:
        """The stored :class:`PromptTemplate` for ``kind``."""
        return self._templates[kind]

    def system_prompt(self, kind: TaskKind) -> str:
        """The fully rendered system prompt for ``kind``."""
        return self._templates[kind].render_system()

    def kinds(self) -> List[TaskKind]:
        """Every task kind the database has a template for."""
        return list(self._templates)


def task_kind_of(system: str) -> TaskKind:
    """Recover the task marker from a rendered system prompt."""
    first_line = system.strip().splitlines()[0] if system.strip() else ""
    if first_line.startswith("TASK: "):
        return TaskKind(first_line[len("TASK: "):].strip())
    raise ValueError("system prompt carries no TASK marker")


__all__ = [
    "FewShotExample",
    "PromptDatabase",
    "PromptTemplate",
    "TaskKind",
    "task_kind_of",
]
