"""Ordered fallback routing across multiple LLM backends.

A :class:`BackendRouter` holds an ordered chain of named backends (for
example ``remote → simulated``) and serves each completion from the
first backend that succeeds.  A backend is skipped — and the next one
tried — only when it raises a :class:`~repro.llm.errors.BackendError`:

* :class:`~repro.llm.errors.TerminalBackendError` falls through
  immediately (retrying cannot help);
* :class:`~repro.llm.errors.RetryableBackendError` surfaces from a
  backend only after its own retry budget is exhausted (see
  :class:`~repro.llm.remote.RemoteLLMClient`), so the router never
  duplicates backoff logic.

Everything else propagates untouched: in particular
:class:`~repro.core.errors.DeadlineExceeded` aborts the whole chain (a
request that is out of time on one backend is out of time on all of
them), and intent-grammar errors from the simulated backend keep their
meaning for the pipeline's verification loop.

Per-backend health and latency land in :mod:`repro.obs` counters —
``llm.router.calls.<name>``, ``llm.router.errors.<name>``,
``llm.router.fallbacks`` — and an ``llm.router.latency.<name>``
histogram, plus local :class:`BackendHealth` counters that
:meth:`BackendRouter.stats` snapshots for the loadgen report.

:func:`build_backend` is the one-stop factory the CLI flags use: it
turns a spec string like ``"simulated"``, ``"remote"``, or
``"remote,simulated"`` into a ready client (a bare client for a single
backend, a router for a chain).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.llm.client import LLMClient
from repro.llm.errors import BackendError, TerminalBackendError
from repro.llm.respcache import cache_safe_of
from repro.obs import telemetry

#: Backend names ``build_backend`` understands.
KNOWN_BACKENDS = ("simulated", "remote")


@dataclasses.dataclass
class BackendHealth:
    """Running health counters for one backend in a chain."""

    #: Completions attempted against this backend.
    calls: int = 0
    #: Completions served by this backend.
    successes: int = 0
    #: Calls that failed with a :class:`BackendError`.
    failures: int = 0
    #: Failures in a row since the last success (0 = healthy).
    consecutive_failures: int = 0
    #: Total seconds spent in this backend's successful calls.
    latency_total_s: float = 0.0

    def snapshot(self) -> Dict[str, float]:
        """The counters as a plain dict for reports."""
        return {
            "calls": self.calls,
            "successes": self.successes,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "latency_total_s": self.latency_total_s,
        }


class BackendRouter:
    """Serve completions from the first healthy backend in a chain."""

    def __init__(self, backends: Sequence[Tuple[str, LLMClient]]) -> None:
        """``backends`` is an ordered ``(name, client)`` chain (≥ 1 entry)."""
        if not backends:
            raise ValueError("a router needs at least one backend")
        names = [name for name, _ in backends]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate backend names: {names}")
        self._backends: List[Tuple[str, LLMClient]] = list(backends)
        self.health: Dict[str, BackendHealth] = {
            name: BackendHealth() for name in names
        }
        #: Completions that fell through at least one backend (monotonic).
        self.fallbacks = 0

    @property
    def cache_safe(self) -> bool:
        """True only when every backend in the chain is cache-safe.

        A completion may come from *any* backend, so one impure link
        (for example a :class:`~repro.llm.faulty.FaultyLLM` chaos layer)
        makes the whole chain unsafe to memoize.
        """
        return all(cache_safe_of(client) for _, client in self._backends)

    @property
    def backend_names(self) -> Tuple[str, ...]:
        """The chain's backend names, in fallback order."""
        return tuple(name for name, _ in self._backends)

    def complete(self, system: str, prompt: str) -> str:
        """Complete via the first backend that succeeds.

        Raises the *last* backend's :class:`BackendError` when every
        backend fails, and propagates non-backend exceptions (deadline
        expiry, intent-grammar errors) from whichever backend raised
        them.
        """
        last_error: Optional[BackendError] = None
        for index, (name, client) in enumerate(self._backends):
            health = self.health[name]
            health.calls += 1
            obs.count(f"llm.router.calls.{name}")
            t0 = time.perf_counter()
            try:
                response = client.complete(system, prompt)
            except BackendError as exc:
                health.failures += 1
                health.consecutive_failures += 1
                obs.count(f"llm.router.errors.{name}")
                last_error = exc
                if index + 1 < len(self._backends):
                    self.fallbacks += 1
                    obs.count("llm.router.fallbacks")
                continue
            elapsed = time.perf_counter() - t0
            health.successes += 1
            health.consecutive_failures = 0
            health.latency_total_s += elapsed
            obs.observe(f"llm.router.latency.{name}", elapsed)
            telemetry.annotate(backend=name)
            return response
        assert last_error is not None  # the chain is non-empty
        raise TerminalBackendError(
            f"all backends failed ({', '.join(self.backend_names)}); "
            f"last: {last_error}",
            backend=self.backend_names[-1],
        ) from last_error

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-backend health snapshots plus the fallback total."""
        report: Dict[str, Dict[str, float]] = {
            name: health.snapshot() for name, health in self.health.items()
        }
        report["_router"] = {"fallbacks": float(self.fallbacks)}
        return report


def build_backend(spec: str, **remote_kwargs: object) -> LLMClient:
    """Build the client a ``--backend`` spec names.

    ``spec`` is a comma-separated fallback chain drawn from
    ``simulated`` and ``remote`` — ``"remote,simulated"`` tries the real
    API first and degrades to the deterministic simulator.  A
    single-entry spec returns the bare client; a chain returns a
    :class:`BackendRouter`.  ``remote_kwargs`` are forwarded to
    :class:`~repro.llm.remote.RemoteLLMClient` (tests inject a fake
    transport this way).
    """
    from repro.llm.remote import RemoteLLMClient
    from repro.llm.simulated import SimulatedLLM

    names = [name.strip() for name in spec.split(",") if name.strip()]
    if not names:
        raise ValueError(f"empty backend spec {spec!r}")
    clients: List[Tuple[str, LLMClient]] = []
    for name in names:
        if name == "simulated":
            clients.append((name, SimulatedLLM()))
        elif name == "remote":
            clients.append((name, RemoteLLMClient(**remote_kwargs)))  # type: ignore[arg-type]
        else:
            raise ValueError(
                f"unknown backend {name!r} (known: {', '.join(KNOWN_BACKENDS)})"
            )
    if len(clients) == 1:
        return clients[0][1]
    return BackendRouter(clients)


__all__ = [
    "BackendHealth",
    "BackendRouter",
    "KNOWN_BACKENDS",
    "build_backend",
]
