"""LLM request deduplication: one upstream call per in-flight request.

When many Clarify sessions run concurrently (:mod:`repro.serve`), bursts
of identical requests are common — the synthetic loadgen mixes a small
set of intent archetypes, and real fleets of operators issue the same
"deny this prefix" update against many devices.  :class:`DedupClient`
wraps any :class:`~repro.llm.client.LLMClient` and coalesces identical
``(system, prompt)`` requests that are *in flight at the same time* into
a single upstream call whose response is fanned out to every waiter,
using :class:`repro.perf.cache.SingleFlight`.

Coalescing in-flight calls is always semantics-preserving for a
deterministic upstream (every waiter receives exactly the bytes the
upstream would have returned it), which is what keeps the serving
layer's serial-vs-pooled differential identity intact.  An optional
*memo* layer (``memoize=True``, a bounded
:class:`repro.perf.cache.Memo`) additionally reuses **completed**
responses; leave it off when the upstream is impure — with
:class:`~repro.llm.faulty.FaultyLLM` underneath, memoizing would pin a
corrupted response forever and turn every retry into a guaranteed
failure.

Counters (exposed as attributes and, when a recorder is active, as
``llm.dedup.*`` obs counters):

* ``requests`` — calls into this client;
* ``upstream_calls`` — calls that reached the inner client;
* ``coalesced`` — calls served by another thread's in-flight call;
* ``memo_hits`` — calls served from the completed-response memo.

Trace attribution contract (:mod:`repro.obs.telemetry`): the obs
counters are deliberately emitted on specific threads — ``requests`` on
the *calling* thread (so every request's wide event counts its own
call) and ``upstream`` inside the single-flight leader's closure (so
only the request that actually paid for the upstream call records it).
The hub derives each request's dedup disposition (``leader`` vs
``follower``) from exactly this split; keep the emission sites if you
refactor.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro import obs
from repro.llm.client import LLMClient
from repro.perf.cache import Memo, SingleFlight

#: Default bound for the optional completed-response memo.
DEFAULT_MEMO_SIZE = 1 << 12


class DedupClient:
    """Thread-safe wrapper deduplicating identical in-flight LLM calls."""

    def __init__(
        self,
        inner: LLMClient,
        memoize: bool = False,
        memo_size: int = DEFAULT_MEMO_SIZE,
    ) -> None:
        self._inner = inner
        self._flight: SingleFlight = SingleFlight("llm.dedup")
        self._memo: Optional[Memo] = (
            Memo("llm.dedup.memo", memo_size) if memoize else None
        )
        self._counter_lock = threading.Lock()
        self.requests = 0
        self.upstream_calls = 0

    @property
    def coalesced(self) -> int:
        """Calls that were fanned out from another thread's upstream call."""
        return self._flight.followers

    @property
    def memo_hits(self) -> int:
        """Calls served from the optional completed-response memo."""
        return self._memo.hits if self._memo is not None else 0

    @property
    def cache_safe(self) -> bool:
        """Delegates to the wrapped client (coalescing adds no impurity)."""
        from repro.llm.respcache import cache_safe_of

        return cache_safe_of(self._inner)

    def complete(self, system: str, prompt: str) -> str:
        """Complete via the inner client, coalescing in-flight twins."""
        key: Tuple[str, str] = (system, prompt)
        with self._counter_lock:
            self.requests += 1
        obs.count("llm.dedup.requests")

        def upstream() -> str:
            with self._counter_lock:
                self.upstream_calls += 1
            obs.count("llm.dedup.upstream")
            return self._inner.complete(system, prompt)

        if self._memo is not None:
            memo = self._memo
            response = self._flight.do(key, lambda: memo.lookup(key, upstream))
        else:
            response = self._flight.do(key, upstream)
        return response

    def stats(self) -> Dict[str, int]:
        """A snapshot of the deduplication counters."""
        return {
            "requests": self.requests,
            "upstream_calls": self.upstream_calls,
            "coalesced": self.coalesced,
            "memo_hits": self.memo_hits,
        }


__all__ = ["DEFAULT_MEMO_SIZE", "DedupClient"]
