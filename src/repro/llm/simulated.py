"""A deterministic, rule-based stand-in for GPT-4.

See the substitution table in DESIGN.md: the Clarify pipeline treats the
LLM as a black box that classifies queries, emits one IOS stanza, and
emits a JSON spec; everything it produces is re-parsed and verified.
:class:`SimulatedLLM` implements those three tasks with the rule-based
intent grammar of :mod:`repro.llm.intents`, dispatching on the ``TASK:``
marker the prompt database embeds in each system prompt.  A real LLM
client can be slotted into the same pipeline by implementing
:class:`~repro.llm.client.LLMClient`.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.llm.intents import (
    AclIntent,
    RouteMapIntent,
    parse_acl_intent,
    parse_route_map_intent,
)
from repro.llm.prompts import TaskKind, task_kind_of

_ACL_HINTS = (
    "traffic",
    "packet",
    "acl",
    "access-list",
    "access list",
    "port",
    "tcp",
    "udp",
    "icmp",
    "firewall",
)
_ROUTE_MAP_HINTS = (
    "route-map",
    "route map",
    "routes",
    "route",
    "advertis",
    "bgp",
    "med",
    "metric",
    "local-preference",
    "local preference",
    "community",
    "as-path",
    "as ",
)


class SimulatedLLM:
    """Deterministic English → Cisco IOS translator behind the LLM API."""

    #: A pure function of the prompt pair: safe for the durable response
    #: cache (see :func:`repro.llm.respcache.cache_safe_of`).
    cache_safe = True

    def complete(self, system: str, prompt: str) -> str:
        """Dispatch on the system prompt's ``TASK:`` marker and translate."""
        kind = task_kind_of(system)
        if kind is TaskKind.CLASSIFY:
            return self._classify(prompt)
        if kind is TaskKind.ROUTE_MAP_SYNTH:
            return render_route_map_snippet(parse_route_map_intent(prompt))
        if kind is TaskKind.ACL_SYNTH:
            return render_acl_snippet(parse_acl_intent(prompt))
        if kind is TaskKind.ROUTE_MAP_SPEC:
            return render_route_map_spec(parse_route_map_intent(prompt))
        if kind is TaskKind.ACL_SPEC:
            return render_acl_spec(parse_acl_intent(prompt))
        raise ValueError(f"unsupported task {kind}")  # pragma: no cover

    @staticmethod
    def _classify(prompt: str) -> str:
        lowered = prompt.lower()
        acl_score = sum(lowered.count(hint) for hint in _ACL_HINTS)
        rm_score = sum(lowered.count(hint) for hint in _ROUTE_MAP_HINTS)
        return "acl" if acl_score > rm_score else "route-map"


# ------------------------------------------------------ snippet rendering


def render_route_map_snippet(intent: RouteMapIntent) -> str:
    """One stanza plus its ancillary lists, in the paper's §2.1 style."""
    lines: List[str] = []
    matches: List[str] = []

    if intent.communities:
        if len(intent.communities) == 1:
            lines.append(
                "ip community-list expanded COM_LIST permit "
                f"_{intent.communities[0]}_"
            )
        else:
            # All communities must be present: one standard-list entry.
            lines.append(
                "ip community-list standard COM_LIST permit "
                + " ".join(intent.communities)
            )
        matches.append("match community COM_LIST")

    if intent.prefixes:
        list_name = f"PREFIX_{intent.prefixes[0].prefix.network.value >> 24}"
        for idx, constraint in enumerate(intent.prefixes):
            entry = (
                f"ip prefix-list {list_name} seq {10 * (idx + 1)} permit "
                f"{constraint.prefix}"
            )
            if constraint.ge is not None:
                entry += f" ge {constraint.ge}"
            if constraint.le is not None:
                entry += f" le {constraint.le}"
            lines.append(entry)
        matches.append(f"match ip address prefix-list {list_name}")

    if intent.as_path_regex is not None:
        lines.append(
            f"ip as-path access-list AS_LIST permit {intent.as_path_regex}"
        )
        matches.append("match as-path AS_LIST")

    if intent.local_preference is not None:
        matches.append(f"match local-preference {intent.local_preference}")

    if intent.metric is not None:
        matches.append(f"match metric {intent.metric}")

    if intent.tag is not None:
        matches.append(f"match tag {intent.tag}")

    lines.append(f"route-map {intent.name_hint()} {intent.action} 10")
    lines.extend(" " + m for m in matches)
    lines.extend(" " + s for s in _set_lines(intent))
    return "\n".join(lines)


def _set_lines(intent: RouteMapIntent) -> List[str]:
    out: List[str] = []
    if intent.set_metric is not None:
        out.append(f"set metric {intent.set_metric}")
    if intent.set_local_preference is not None:
        out.append(f"set local-preference {intent.set_local_preference}")
    if intent.set_communities:
        suffix = " additive" if intent.set_community_additive else ""
        out.append("set community " + " ".join(intent.set_communities) + suffix)
    if intent.set_next_hop is not None:
        out.append(f"set ip next-hop {intent.set_next_hop}")
    if intent.set_prepend:
        out.append(
            "set as-path prepend " + " ".join(str(a) for a in intent.set_prepend)
        )
    if intent.set_tag is not None:
        out.append(f"set tag {intent.set_tag}")
    if intent.set_weight is not None:
        out.append(f"set weight {intent.set_weight}")
    return out


def render_acl_snippet(intent: AclIntent) -> str:
    """One extended-ACL rule under a fresh name."""

    def endpoint(prefix) -> str:
        if prefix is None:
            return "any"
        if prefix.length == 32:
            return f"host {prefix.network}"
        from repro.netaddr import Ipv4Wildcard

        return str(Ipv4Wildcard.from_prefix(prefix))

    parts = ["10", intent.action, intent.protocol, endpoint(intent.src)]
    if intent.src_port_lo is not None:
        parts.append(_port_tokens(intent.src_port_lo, intent.src_port_hi))
    parts.append(endpoint(intent.dst))
    if intent.dst_port_lo is not None:
        parts.append(_port_tokens(intent.dst_port_lo, intent.dst_port_hi))
    if intent.established:
        parts.append("established")
    return "ip access-list extended NEW_RULE\n " + " ".join(parts)


def _port_tokens(lo: int, hi: int) -> str:
    if lo == hi:
        return f"eq {lo}"
    return f"range {lo} {hi}"


# --------------------------------------------------------- spec rendering


def render_route_map_spec(intent: RouteMapIntent) -> str:
    """The JSON specification in the paper's §2.1 format."""
    spec: Dict[str, object] = {"permit": intent.action == "permit"}
    if intent.prefixes:
        spec["prefix"] = [
            f"{c.prefix}:{c.bounds()[0]}-{c.bounds()[1]}" for c in intent.prefixes
        ]
    if intent.communities:
        patterns = [f"/_{c}_/" for c in intent.communities]
        spec["community"] = patterns[0] if len(patterns) == 1 else patterns
    if intent.as_path_regex is not None:
        spec["as_path"] = f"/{intent.as_path_regex}/"
    if intent.local_preference is not None:
        spec["local_preference"] = intent.local_preference
    if intent.metric is not None:
        spec["metric"] = intent.metric
    if intent.tag is not None:
        spec["tag"] = intent.tag
    sets: Dict[str, object] = {}
    if intent.set_metric is not None:
        sets["metric"] = intent.set_metric
    if intent.set_local_preference is not None:
        sets["local_preference"] = intent.set_local_preference
    if intent.set_communities:
        sets["community"] = list(intent.set_communities)
        sets["community_additive"] = intent.set_community_additive
    if intent.set_next_hop is not None:
        sets["next_hop"] = intent.set_next_hop
    if intent.set_prepend:
        sets["prepend"] = list(intent.set_prepend)
    if intent.set_tag is not None:
        sets["tag"] = intent.set_tag
    if intent.set_weight is not None:
        sets["weight"] = intent.set_weight
    if sets:
        spec["set"] = sets
    return json.dumps(spec)


def render_acl_spec(intent: AclIntent) -> str:
    """The ACL JSON specification in the paper's §2.1 format."""
    spec: Dict[str, object] = {"permit": intent.action == "permit"}
    if intent.protocol != "ip":
        spec["protocol"] = intent.protocol
    spec["src"] = str(intent.src) if intent.src is not None else "any"
    spec["dst"] = str(intent.dst) if intent.dst is not None else "any"
    if intent.src_port_lo is not None:
        spec["src_ports"] = [f"{intent.src_port_lo}-{intent.src_port_hi}"]
    if intent.dst_port_lo is not None:
        spec["dst_ports"] = [f"{intent.dst_port_lo}-{intent.dst_port_hi}"]
    if intent.established:
        spec["established"] = True
    return json.dumps(spec)


__all__ = [
    "SimulatedLLM",
    "render_acl_snippet",
    "render_acl_spec",
    "render_route_map_snippet",
    "render_route_map_spec",
]
