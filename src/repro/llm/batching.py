"""Micro-batching of concurrent LLM requests behind a flush window.

Where :class:`~repro.llm.dedup.DedupClient` collapses concurrent
*identical* prompts, :class:`BatchingClient` groups concurrent
**distinct** prompts: calls arriving within ``flush_window_s`` of each
other are collected into one batch and dispatched together — through the
upstream's ``complete_many(pairs)`` when it offers one (a single HTTP
round trip for batch-capable transports), else through a per-item loop
by the one flusher thread.

The mechanism is strictly *semantics-preserving*: every caller receives
exactly the completion of its own ``(system, prompt)`` pair, and a
per-item failure is raised only to the caller that owns the item, so
batching can sit anywhere in the client stack without perturbing the
serving layer's serial-vs-pooled identity gate.  The window only trades
a bounded added latency (at most ``flush_window_s``) for fewer upstream
round trips.

The first caller to an empty buffer becomes the *flusher*: it waits out
the window (cut short when ``max_batch`` fills), takes the whole buffer,
dispatches it, and distributes results; followers just wait on their
item.  Counters: ``flushes``, ``batched`` (requests that shared a
flush with at least one other), and an ``llm.batch.size`` histogram.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.llm.client import LLMClient
from repro.llm.respcache import cache_safe_of

#: Default flush window: long enough to catch a concurrent burst, short
#: enough to be invisible next to an LLM round trip.
DEFAULT_FLUSH_WINDOW_S = 0.005

#: Default batch-size cap: a full buffer flushes without waiting.
DEFAULT_MAX_BATCH = 16


class _Item:
    """One buffered request: its prompt pair and its caller's resolution."""

    __slots__ = ("system", "prompt", "done", "response", "error")

    def __init__(self, system: str, prompt: str) -> None:
        self.system = system
        self.prompt = prompt
        self.done = threading.Event()
        self.response: Optional[str] = None
        self.error: Optional[BaseException] = None


class BatchingClient:
    """Group concurrent distinct requests into upstream batches."""

    def __init__(
        self,
        inner: LLMClient,
        flush_window_s: float = DEFAULT_FLUSH_WINDOW_S,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> None:
        """Wrap ``inner``; a window of 0 degrades to pass-through timing."""
        if flush_window_s < 0:
            raise ValueError("flush_window_s must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self._inner = inner
        self.flush_window_s = flush_window_s
        self.max_batch = max_batch
        self._lock = threading.Lock()
        self._buffer: List[_Item] = []
        self._full = threading.Event()
        #: Batches dispatched upstream (monotonic).
        self.flushes = 0
        #: Requests that shared a flush with at least one other request.
        self.batched = 0

    @property
    def cache_safe(self) -> bool:
        """Delegates to the wrapped client (batching adds no impurity)."""
        return cache_safe_of(self._inner)

    def _dispatch(self, batch: Sequence[_Item]) -> None:
        """Complete every buffered item, distributing per-item results."""
        self.flushes += 1
        if len(batch) > 1:
            self.batched += len(batch)
        obs.count("llm.batch.flushes")
        obs.observe("llm.batch.size", float(len(batch)))
        many: Optional[
            Callable[[Sequence[Tuple[str, str]]], Sequence[str]]
        ] = getattr(self._inner, "complete_many", None)
        if many is not None and len(batch) > 1:
            try:
                responses = many([(i.system, i.prompt) for i in batch])
            except BaseException as exc:
                for item in batch:
                    item.error = exc
                    item.done.set()
                return
            for item, response in zip(batch, responses):
                item.response = response
                item.done.set()
            return
        for item in batch:
            try:
                item.response = self._inner.complete(item.system, item.prompt)
            except BaseException as exc:
                item.error = exc
            item.done.set()

    def complete(self, system: str, prompt: str) -> str:
        """Buffer the request; the window's flusher completes the batch."""
        item = _Item(system, prompt)
        with self._lock:
            flusher = not self._buffer
            self._buffer.append(item)
            if flusher:
                self._full.clear()
            if len(self._buffer) >= self.max_batch:
                self._full.set()
        if flusher:
            if self.flush_window_s > 0:
                self._full.wait(self.flush_window_s)
            with self._lock:
                batch = self._buffer
                self._buffer = []
            self._dispatch(batch)
        item.done.wait()
        if item.error is not None:
            raise item.error
        assert item.response is not None
        return item.response

    def stats(self) -> Dict[str, int]:
        """A snapshot of the batching counters."""
        return {"flushes": self.flushes, "batched": self.batched}


__all__ = ["BatchingClient", "DEFAULT_FLUSH_WINDOW_S", "DEFAULT_MAX_BATCH"]
