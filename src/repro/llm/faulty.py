"""Fault injection for exercising the verification loop.

The paper's pipeline iterates synthesis with verification "until the LLM
finally produces the correct output or we reach a threshold and punt to
the user" (§2.1).  With the deterministic simulated LLM that loop never
triggers, so :class:`FaultyLLM` corrupts synthesis outputs at a
configurable rate with realistic LLM error modes: wrong numeric values,
flipped actions, and malformed syntax.  Spec-extraction outputs are left
intact — in the paper's workflow the user manually validates the spec,
so the spec is the trusted side of the check.
"""

from __future__ import annotations

import random
import re
import threading

from repro import obs
from repro.llm.client import LLMClient
from repro.llm.prompts import TaskKind, task_kind_of

_SYNTH_TASKS = (TaskKind.ROUTE_MAP_SYNTH, TaskKind.ACL_SYNTH)


class FaultyLLM:
    """Wraps a client, corrupting synthesis outputs with probability ``error_rate``.

    Thread-safe: the seeded RNG and the ``injected_faults`` counter are
    guarded by a lock so the wrapper can serve concurrent sessions (the
    serving layer's chaos mode shares one instance across the worker
    pool).  The serialised region is only the corruption decision; the
    upstream call runs outside the lock.  Note that under concurrency
    the *assignment* of RNG draws to calls depends on thread scheduling,
    so chaos runs are reproducible only per-process-schedule, not
    byte-for-byte.
    """

    #: Never memoize: a cached fault would be replayed forever, turning
    #: every verification retry into a guaranteed failure (see
    #: :func:`repro.llm.respcache.cache_safe_of`).
    cache_safe = False

    def __init__(
        self, inner: LLMClient, error_rate: float, seed: int = 0
    ) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1], got {error_rate}")
        self._inner = inner
        self._error_rate = error_rate
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.injected_faults = 0

    def complete(self, system: str, prompt: str) -> str:
        """Complete upstream, then maybe corrupt a synthesis output."""
        response = self._inner.complete(system, prompt)
        if task_kind_of(system) not in _SYNTH_TASKS:
            return response
        with self._lock:
            if self._rng.random() >= self._error_rate:
                return response
            corrupted = self._corrupt(response)
            injected = corrupted != response
            if injected:
                self.injected_faults += 1
        if injected:
            obs.count("llm.faults_injected")
        return corrupted

    def _corrupt(self, text: str) -> str:
        mutation = self._rng.choice(
            (self._wrong_number, self._flip_action, self._break_syntax)
        )
        corrupted = mutation(text)
        if corrupted == text:
            # The chosen mutation had nothing to bite on; try the others.
            for fallback in (self._wrong_number, self._flip_action, self._break_syntax):
                corrupted = fallback(text)
                if corrupted != text:
                    return corrupted
        return corrupted

    def _wrong_number(self, text: str) -> str:
        """Perturb the numeric argument of a set clause or port match."""
        pattern = re.compile(
            r"(set (?:metric|local-preference|tag|weight) |eq |range )(\d+)"
        )
        match = pattern.search(text)
        if match is None:
            return text
        value = int(match.group(2))
        nudge = self._rng.choice((1, 10, 100))
        return text[: match.start(2)] + str(value + nudge) + text[match.end(2):]

    def _flip_action(self, text: str) -> str:
        """Flip the stanza/rule action."""
        if re.search(r"^(route-map \S+ )permit", text, flags=re.M):
            return re.sub(
                r"^(route-map \S+ )permit", r"\1deny", text, count=1, flags=re.M
            )
        if re.search(r"^(route-map \S+ )deny", text, flags=re.M):
            return re.sub(
                r"^(route-map \S+ )deny", r"\1permit", text, count=1, flags=re.M
            )
        if re.search(r"permit", text):
            return text.replace("permit", "deny", 1)
        return text.replace("deny", "permit", 1)

    def _break_syntax(self, text: str) -> str:
        """Introduce a parse error (a hallucinated keyword)."""
        return text.replace("match ", "match the ", 1).replace(
            "set ", "apply ", 1
        )


__all__ = ["FaultyLLM"]
